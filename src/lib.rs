//! # reuse-dnn
//!
//! Rust reproduction of *"Computation Reuse in DNNs by Exploiting Input
//! Similarity"* (Riera, Arnau, González — ISCA 2018).
//!
//! This façade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`tensor`] — tensors, matmul, convolution, fixed-point scalars.
//! * [`nn`] — forward-inference layers (FC, Conv2D/3D, pooling, LSTM) and
//!   sequential networks.
//! * [`quant`] — linear input quantization (paper Eq. 9) and range profiling.
//! * [`reuse`] — the paper's contribution: temporal computation reuse across
//!   consecutive DNN executions (paper Eq. 10).
//! * [`serve`] — multi-stream serving runtime multiplexing many input
//!   streams over one shared [`reuse::CompiledModel`].
//! * [`accel`] — analytical simulator of the tiled accelerator (paper
//!   Table II) with energy and timing models.
//! * [`workloads`] — the four evaluation DNNs (Kaldi, EESEN, C3D, AutoPilot)
//!   and synthetic temporally-correlated input generators.
//!
//! # Quickstart
//!
//! ```
//! use reuse_dnn::prelude::*;
//!
//! // A tiny MLP, a correlated input sequence, and the reuse engine.
//! let network = NetworkBuilder::new("demo", 8)
//!     .fully_connected(16, Activation::Relu)
//!     .fully_connected(4, Activation::Identity)
//!     .build()
//!     .unwrap();
//! let mut engine = ReuseEngine::from_network(&network, &ReuseConfig::uniform(16));
//! let frame = vec![0.1f32; 8];
//! engine.execute(&frame).unwrap();           // calibrates, runs in fp32
//! let out1 = engine.execute(&frame).unwrap(); // quantized, from scratch
//! let out2 = engine.execute(&frame).unwrap(); // identical frame: full reuse
//! assert_eq!(out1.as_slice(), out2.as_slice());
//! assert!(engine.metrics().overall_input_similarity() > 0.99);
//! ```

pub use reuse_accel as accel;
pub use reuse_core as reuse;
pub use reuse_nn as nn;
pub use reuse_quant as quant;
pub use reuse_serve as serve;
pub use reuse_tensor as tensor;
pub use reuse_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use reuse_accel::{AcceleratorConfig, Simulator};
    pub use reuse_core::{CompiledModel, ParallelConfig, ReuseConfig, ReuseEngine, ReuseSession};
    pub use reuse_nn::{Activation, Network, NetworkBuilder};
    pub use reuse_quant::LinearQuantizer;
    pub use reuse_serve::{ServerConfig, StreamServer, SubmitResult};
    pub use reuse_tensor::{Shape, Tensor};
    pub use reuse_workloads::{Workload, WorkloadKind};
}

//! Property-based exactness of the cache-blocked kernels against their
//! naive serial oracles, gated on the resolved SIMD level.
//!
//! The accumulation-order contract (see `reuse_tensor::simd`) makes this a
//! two-tier check:
//!
//! * Under the **scalar** level the blocked kernels perform the same
//!   IEEE-754 additions in the same order as the naive loops, so results
//!   must be *bit-identical* across arbitrary shapes — including dimensions
//!   that are not a multiple of the panel width or tile width, 1×1
//!   convolutions, and strides > 1.
//! * Under the **AVX2** level the same terms are accumulated in the same
//!   order but multiplies fuse into FMAs, so results must agree with the
//!   oracle within `simd::fma_tolerance`.
//!
//! `simd::kernel_mismatch` applies the right comparison for the active
//! level; `scripts/ci.sh` runs this suite under both `REUSE_SIMD=off` and
//! the detected fast path.

use proptest::prelude::*;
use reuse_tensor::block::{apply_deltas_rows, fc_forward_packed_into};
use reuse_tensor::conv::{
    conv2d_forward_naive, conv2d_forward_with, conv3d_forward_naive, conv3d_forward_with,
    Conv2dSpec, Conv3dSpec,
};
use reuse_tensor::matmul::{fc_forward_into, matmul_naive, matmul_with};
use reuse_tensor::{simd, PackedPanels, ParallelConfig, Shape, Tensor};

/// All generators below draw values in roughly ±10, so every product term
/// is bounded by ~150 in magnitude.
const MAX_TERM: f32 = 150.0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_fc_forward_matches_naive(
        n_in in 1usize..40,
        n_out in 1usize..70,
        seed in 0u64..1000,
    ) {
        let mut gen = seed;
        let mut next = move || {
            gen = gen.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((gen >> 33) % 201) as i64 - 100;
            // Every ~4th value an exact zero to exercise the skip.
            if gen % 4 == 0 { 0.0 } else { v as f32 / 10.0 }
        };
        let w: Vec<f32> = (0..n_in * n_out).map(|_| next()).collect();
        let x: Vec<f32> = (0..n_in).map(|_| next()).collect();
        let b: Vec<f32> = (0..n_out).map(|_| next()).collect();
        let weights = Tensor::from_vec(Shape::d2(n_in, n_out), w.clone()).unwrap();
        let tx = Tensor::from_slice_1d(&x).unwrap();
        let tb = Tensor::from_slice_1d(&b).unwrap();
        let cfg = ParallelConfig::serial();

        let mut naive = Vec::new();
        fc_forward_into(&cfg, &weights, &tx, &tb, &mut naive).unwrap();

        let packed = PackedPanels::pack_slice(&w, n_in, n_out);
        let mut blocked = Vec::new();
        fc_forward_packed_into(&cfg, &packed, &x, &b, &mut blocked).unwrap();

        let tol = simd::fma_tolerance(n_in + 1, MAX_TERM);
        let mismatch = simd::kernel_mismatch(&blocked, &naive, tol);
        prop_assert!(mismatch.is_none(), "{:?}", mismatch);
    }

    #[test]
    fn blocked_matmul_matches_naive(
        m in 1usize..6,
        k in 1usize..20,
        n in 1usize..50,
        seed in 0u64..1000,
    ) {
        let mut gen = seed.wrapping_add(1);
        let mut next = move || {
            gen = gen.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((gen >> 33) % 201) as i64 as f32 / 10.0 - 10.0
        };
        let av: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let bv: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let ta = Tensor::from_vec(Shape::d2(m, k), av).unwrap();
        let tb = Tensor::from_vec(Shape::d2(k, n), bv).unwrap();

        let naive = matmul_naive(&ta, &tb).unwrap();
        let blocked = matmul_with(&ParallelConfig::serial(), &ta, &tb).unwrap();

        let tol = simd::fma_tolerance(k, MAX_TERM);
        let mismatch = simd::kernel_mismatch(blocked.as_slice(), naive.as_slice(), tol);
        prop_assert!(mismatch.is_none(), "m={} k={} n={}: {:?}", m, k, n, mismatch);
    }

    #[test]
    fn blocked_conv2d_matches_naive(
        in_c in 1usize..4,
        out_c in 1usize..7,
        h in 3usize..9,
        w in 3usize..11,
        kh in 1usize..4,
        kw in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let spec = Conv2dSpec { in_channels: in_c, out_channels: out_c, kh, kw, stride, pad };
        let mut gen = (h * 31 + w) as u64;
        let mut next = move || {
            gen = gen.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((gen >> 33) % 201) as i64 as f32 / 10.0 - 10.0
        };
        let input = Tensor::from_fn(Shape::d3(in_c, h, w), |_| next());
        let weights = Tensor::from_fn(spec.weight_shape(), |_| next());
        let bias = Tensor::from_fn(Shape::d1(out_c), |_| next());

        let naive = conv2d_forward_naive(&spec, &input, &weights, &bias).unwrap();
        let blocked =
            conv2d_forward_with(&ParallelConfig::serial(), &spec, &input, &weights, &bias)
                .unwrap();

        let tol = simd::fma_tolerance(in_c * kh * kw + 1, MAX_TERM);
        let mismatch = simd::kernel_mismatch(blocked.as_slice(), naive.as_slice(), tol);
        prop_assert!(mismatch.is_none(), "{:?}", mismatch);
    }

    #[test]
    fn blocked_conv3d_matches_naive(
        in_c in 1usize..3,
        out_c in 1usize..5,
        d in 2usize..5,
        h in 3usize..7,
        w in 3usize..7,
        kd in 1usize..3,
        khw in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        prop_assume!(d + 2 * pad >= kd);
        let spec = Conv3dSpec {
            in_channels: in_c,
            out_channels: out_c,
            kd,
            kh: khw,
            kw: khw,
            stride,
            pad,
        };
        let mut gen = (d * 97 + h * 13 + w) as u64;
        let mut next = move || {
            gen = gen.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((gen >> 33) % 201) as i64 as f32 / 10.0 - 10.0
        };
        let input = Tensor::from_fn(Shape::d4(in_c, d, h, w), |_| next());
        let weights = Tensor::from_fn(spec.weight_shape(), |_| next());
        let bias = Tensor::from_fn(Shape::d1(out_c), |_| next());

        let naive = conv3d_forward_naive(&spec, &input, &weights, &bias).unwrap();
        let blocked =
            conv3d_forward_with(&ParallelConfig::serial(), &spec, &input, &weights, &bias)
                .unwrap();

        let tol = simd::fma_tolerance(in_c * kd * khw * khw + 1, MAX_TERM);
        let mismatch = simd::kernel_mismatch(blocked.as_slice(), naive.as_slice(), tol);
        prop_assert!(mismatch.is_none(), "{:?}", mismatch);
    }

    #[test]
    fn batched_delta_rows_match_naive_walk(
        n_in in 1usize..30,
        n_out in 1usize..60,
        mask in 0u64..(1u64 << 30),
        w_seed in 0u64..500,
    ) {
        let mut gen = w_seed.wrapping_add(7);
        let mut next = move || {
            gen = gen.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((gen >> 33) % 201) as i64 as f32 / 10.0 - 10.0
        };
        let w: Vec<f32> = (0..n_in * n_out).map(|_| next()).collect();
        // Strictly-ascending changed list, as pass 1 produces it; arbitrary
        // length covers full DELTA_BATCH groups plus ragged remainders.
        let deltas: Vec<(u32, f32)> = (0..n_in)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| (i as u32, next()))
            .collect();
        let mut z_blocked: Vec<f32> = (0..n_out).map(|_| next()).collect();
        let mut z_naive = z_blocked.clone();

        for &(i, d) in &deltas {
            for (j, zj) in z_naive.iter_mut().enumerate() {
                *zj += d * w[i as usize * n_out + j];
            }
        }
        apply_deltas_rows(&ParallelConfig::serial(), &w, n_out, &deltas, &mut z_blocked);

        let tol = simd::fma_tolerance(deltas.len() + 1, MAX_TERM);
        let mismatch = simd::kernel_mismatch(&z_blocked, &z_naive, tol);
        prop_assert!(mismatch.is_none(), "{:?}", mismatch);
    }
}

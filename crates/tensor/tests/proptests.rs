//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use reuse_tensor::{conv, fixed, matmul, ops, Shape, Tensor};

fn small_f32() -> impl Strategy<Value = f32> {
    // Bounded magnitudes keep accumulations exact enough for tight asserts.
    (-100i32..=100).prop_map(|v| v as f32 / 10.0)
}

fn vec_of(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(small_f32(), len)
}

proptest! {
    #[test]
    fn shape_offsets_are_bijective(dims in proptest::collection::vec(1usize..5, 1..4)) {
        let shape = Shape::new(&dims).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut index = vec![0usize; dims.len()];
        loop {
            let off = shape.offset(&index).unwrap();
            prop_assert!(off < shape.volume());
            prop_assert!(seen.insert(off));
            // Odometer increment over the index space.
            let mut d = dims.len();
            loop {
                if d == 0 { break; }
                d -= 1;
                index[d] += 1;
                if index[d] < dims[d] { break; }
                index[d] = 0;
                if d == 0 {
                    prop_assert_eq!(seen.len(), shape.volume());
                    return Ok(());
                }
            }
            if index.iter().all(|&i| i == 0) { break; }
        }
        prop_assert_eq!(seen.len(), shape.volume());
    }

    #[test]
    fn add_sub_round_trip(a in vec_of(16), b in vec_of(16)) {
        let ta = Tensor::from_slice_1d(&a).unwrap();
        let tb = Tensor::from_slice_1d(&b).unwrap();
        let sum = ops::add(&ta, &tb).unwrap();
        let back = ops::sub(&sum, &tb).unwrap();
        // One-decimal fixed-point values survive exactly under f32 add/sub
        // only approximately; allow tiny tolerance.
        prop_assert!(back.approx_eq(&ta, 1e-4).unwrap());
    }

    #[test]
    fn fc_forward_linearity(x in vec_of(6), w in vec_of(6 * 3), k in 1i32..5) {
        let weights = Tensor::from_vec(Shape::d2(6, 3), w).unwrap();
        let bias = Tensor::zeros(Shape::d1(3));
        let tx = Tensor::from_slice_1d(&x).unwrap();
        let y1 = matmul::fc_forward(&weights, &tx, &bias).unwrap();
        let kx = ops::scale(&tx, k as f32);
        let y2 = matmul::fc_forward(&weights, &kx, &bias).unwrap();
        let ky1 = ops::scale(&y1, k as f32);
        prop_assert!(y2.approx_eq(&ky1, 1e-2).unwrap());
    }

    #[test]
    fn fc_forward_superposition(x in vec_of(5), d in vec_of(5), w in vec_of(5 * 4)) {
        // f(x + d) == f(x) + (f(d) - bias) — the identity the paper's
        // incremental correction (Eq. 10) relies on.
        let weights = Tensor::from_vec(Shape::d2(5, 4), w).unwrap();
        let bias = Tensor::from_slice_1d(&[1.0, -1.0, 0.5, 2.0]).unwrap();
        let zero_bias = Tensor::zeros(Shape::d1(4));
        let tx = Tensor::from_slice_1d(&x).unwrap();
        let td = Tensor::from_slice_1d(&d).unwrap();
        let xd = ops::add(&tx, &td).unwrap();
        let f_xd = matmul::fc_forward(&weights, &xd, &bias).unwrap();
        let f_x = matmul::fc_forward(&weights, &tx, &bias).unwrap();
        let f_d0 = matmul::fc_forward(&weights, &td, &zero_bias).unwrap();
        let recomposed = ops::add(&f_x, &f_d0).unwrap();
        prop_assert!(f_xd.approx_eq(&recomposed, 1e-2).unwrap());
    }

    #[test]
    fn matmul_associates_with_identity(a in vec_of(9)) {
        let ta = Tensor::from_vec(Shape::d2(3, 3), a).unwrap();
        let id = Tensor::from_vec(Shape::d2(3, 3), vec![1., 0., 0., 0., 1., 0., 0., 0., 1.]).unwrap();
        prop_assert_eq!(matmul::matmul(&ta, &id).unwrap(), ta.clone());
        prop_assert_eq!(matmul::matmul(&id, &ta).unwrap(), ta);
    }

    #[test]
    fn conv2d_is_linear_in_input(x in vec_of(16), w in vec_of(4)) {
        let spec = conv::Conv2dSpec { in_channels: 1, out_channels: 1, kh: 2, kw: 2, stride: 1, pad: 0 };
        let input = Tensor::from_vec(Shape::d3(1, 4, 4), x).unwrap();
        let weights = Tensor::from_vec(spec.weight_shape(), w).unwrap();
        let bias = Tensor::zeros(Shape::d1(1));
        let y = conv::conv2d_forward(&spec, &input, &weights, &bias).unwrap();
        let x2 = ops::scale(&input, 2.0);
        let y2 = conv::conv2d_forward(&spec, &x2, &weights, &bias).unwrap();
        prop_assert!(y2.approx_eq(&ops::scale(&y, 2.0), 1e-3).unwrap());
    }

    #[test]
    fn q8_round_trip_error_bounded(v in -10.0f32..10.0, max_abs in 0.5f32..20.0) {
        let scale = fixed::q8_scale(max_abs);
        let q = fixed::Q8::from_f32(v, scale);
        // The representable interval is [-128*scale, 127*scale]; inside it
        // rounding error is half a step, outside the value clamps to the
        // nearest edge code.
        let clamped = v.clamp(-128.0 * scale, 127.0 * scale);
        prop_assert!((q.to_f32() - clamped).abs() <= scale / 2.0 + 1e-6);
    }

    #[test]
    fn q8_idempotent(v in -5.0f32..5.0) {
        let scale = fixed::q8_scale(5.0);
        let q1 = fixed::Q8::from_f32(v, scale);
        let q2 = fixed::Q8::from_f32(q1.to_f32(), scale);
        prop_assert_eq!(q1.raw(), q2.raw());
    }

    #[test]
    fn max_pool_never_below_any_kept_element(x in vec_of(16)) {
        let input = Tensor::from_vec(Shape::d3(1, 4, 4), x.clone()).unwrap();
        let pooled = conv::max_pool2d(&input, 2, 2).unwrap();
        let max_in = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let max_out = pooled.as_slice().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(max_in, max_out);
    }
}

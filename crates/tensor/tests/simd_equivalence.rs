//! Direct SIMD==scalar equivalence: every AVX2 kernel in
//! `reuse_tensor::simd::avx2` is pinned against the scalar-level body it
//! replaces, on the same inputs, regardless of which level the process
//! resolved (the AVX2 side is invoked explicitly, gated only on hardware
//! support). This is stronger than the dispatch-level suites in
//! `tests/blocked.rs`: a bug that made `level()` resolve to the wrong
//! branch would not hide a kernel divergence here.
//!
//! The kernels fuse multiply-adds, so agreement is within
//! `simd::fma_tolerance` (the scalar bodies multiply then add); the
//! accumulation *order* is identical by the `reuse_tensor::simd` contract.
//! On non-AVX2 hosts every test passes vacuously.

#![cfg(target_arch = "x86_64")]

use proptest::prelude::*;
use reuse_tensor::conv::interior_range;
use reuse_tensor::simd::{self, avx2};
use reuse_tensor::PackedPanels;

/// Bounded weight/input values keep `fma_tolerance` meaningful.
fn vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((-64i32..=64).prop_map(|v| v as f32 / 8.0), n)
}

const MAX_ABS: f32 = 8.0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fc_panels_matches_scalar(
        n_in in 1usize..40,
        n_out in 1usize..90,
        seed in 0u64..1000,
    ) {
        if !avx2::available() {
            return Ok(());
        }
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 40) as i32 % 129 - 64) as f32 / 8.0
        };
        let w: Vec<f32> = (0..n_in * n_out).map(|_| next()).collect();
        let x: Vec<f32> = (0..n_in).map(|_| next()).collect();
        let bias: Vec<f32> = (0..n_out).map(|_| next()).collect();
        let packed = PackedPanels::pack_slice(&w, n_in, n_out);
        let mut fast = bias.clone();
        let mut slow = bias;
        avx2::fc_panels(&packed, &x, 0, &mut fast);
        reuse_tensor::block::forward_panels_scalar(&packed, &x, 0, &mut slow);
        let tol = simd::fma_tolerance(n_in + 1, MAX_ABS * MAX_ABS);
        for (j, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
            prop_assert!((a - b).abs() <= tol, "out[{j}]: {a} vs {b} (tol {tol})");
        }
    }

    #[test]
    fn matmul_rows_matches_per_row_scalar(
        m in 1usize..6,
        k in 1usize..20,
        n in 1usize..70,
        a in vals(120),
        w in vals(1400),
    ) {
        if !avx2::available() {
            return Ok(());
        }
        prop_assume!(a.len() >= m * k && w.len() >= k * n);
        let a = &a[..m * k];
        let w = &w[..k * n];
        let packed = PackedPanels::pack_slice(w, k, n);
        let mut fast = vec![0.0f32; m * n];
        avx2::matmul_rows(&packed, a, k, 0, n, &mut fast);
        let mut slow = vec![0.0f32; m * n];
        for (i, row) in slow.chunks_mut(n).enumerate() {
            reuse_tensor::block::forward_panels_scalar(&packed, &a[i * k..(i + 1) * k], 0, row);
        }
        let tol = simd::fma_tolerance(k, MAX_ABS * MAX_ABS);
        for (j, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
            prop_assert!((a - b).abs() <= tol, "c[{j}]: {a} vs {b} (tol {tol})");
        }
    }

    #[test]
    fn apply_deltas_matches_scalar(
        n_in in 1usize..16,
        n_out in 1usize..70,
        split_num in 0usize..=100,
        w in vals(1024),
        dvals in vals(16),
    ) {
        if !avx2::available() {
            return Ok(());
        }
        prop_assume!(w.len() >= n_in * n_out);
        let w = &w[..n_in * n_out];
        let deltas: Vec<(u32, f32)> = dvals
            .iter()
            .take(n_in)
            .enumerate()
            .map(|(i, &d)| (i as u32, d))
            .collect();
        let mut fast = vec![1.0f32; n_out];
        let mut slow = fast.clone();
        // Exercise worker-style offsets: correct the two halves separately.
        let split = split_num * n_out / 100;
        let (f0, f1) = fast.split_at_mut(split);
        avx2::apply_deltas(w, n_out, 0, &deltas, f0);
        avx2::apply_deltas(w, n_out, split, &deltas, f1);
        let (s0, s1) = slow.split_at_mut(split);
        reuse_tensor::block::apply_deltas_scalar(w, n_out, 0, &deltas, s0);
        reuse_tensor::block::apply_deltas_scalar(w, n_out, split, &deltas, s1);
        let tol = simd::fma_tolerance(deltas.len() + 1, MAX_ABS * MAX_ABS);
        for (j, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
            prop_assert!((a - b).abs() <= tol, "z[{j}]: {a} vs {b} (tol {tol})");
        }
    }

    #[test]
    fn conv_row_pass_matches_scalar(
        w in 1usize..24,
        kw in 1usize..6,
        stride in 1usize..3,
        pad in 0usize..3,
        xr in vals(24),
        wr in vals(6),
        init in vals(32),
    ) {
        if !avx2::available() {
            return Ok(());
        }
        prop_assume!(w + 2 * pad >= kw);
        let ow = (w + 2 * pad - kw) / stride + 1;
        prop_assume!(init.len() >= ow);
        let xrow = &xr[..w];
        let wrow = &wr[..kw];
        let (int_lo, int_hi) = interior_range(w, kw, stride, pad, ow);
        let mut fast = init[..ow].to_vec();
        let mut slow = fast.clone();
        avx2::conv_row_pass(&mut fast, xrow, wrow, w, stride, pad, int_lo, int_hi);
        reuse_tensor::conv::conv_row_pass_scalar(
            &mut slow, xrow, wrow, w, stride, pad, int_lo, int_hi,
        );
        let tol = simd::fma_tolerance(kw + 1, MAX_ABS * MAX_ABS);
        for (j, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
            prop_assert!(
                (a - b).abs() <= tol,
                "orow[{j}] (w {w} kw {kw} s {stride} p {pad}): {a} vs {b} (tol {tol})"
            );
        }
    }

    #[test]
    fn row_axpy_matches_scalar(row in vals(40), scale in -8.0f32..8.0) {
        if !avx2::available() {
            return Ok(());
        }
        let mut fast = vec![0.5f32; row.len()];
        let mut slow = fast.clone();
        avx2::row_axpy(&mut fast, &row, scale);
        for (d, &r) in slow.iter_mut().zip(row.iter()) {
            *d += scale * r;
        }
        // One term per element: a lone FMA vs a lone multiply-add.
        let tol = simd::fma_tolerance(2, MAX_ABS * MAX_ABS);
        for (j, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
            prop_assert!((a - b).abs() <= tol, "dst[{j}]: {a} vs {b} (tol {tol})");
        }
    }
}

//! Property tests: every parallel kernel is bit-identical to its serial
//! counterpart for random shapes and worker counts (including 1 and counts
//! that do not divide the output size). This is the load-bearing guarantee
//! of the threading model — output-partitioned workers preserve each
//! output's serial accumulation order exactly (see DESIGN.md).

use proptest::prelude::*;
use reuse_tensor::conv::{
    conv2d_forward, conv2d_forward_with, conv3d_forward, conv3d_forward_with, Conv2dSpec,
    Conv3dSpec,
};
use reuse_tensor::matmul::{fc_forward, fc_forward_with, matmul, matmul_with};
use reuse_tensor::{parallel_for_mut, ParallelConfig, Shape, Tensor};

fn any_f32() -> impl Strategy<Value = f32> {
    // Full-precision values: bit-identity must hold regardless of rounding.
    (-1000i32..=1000).prop_map(|v| v as f32 * 0.123)
}

fn vec_of(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(any_f32(), len)
}

fn cfg(threads: usize) -> ParallelConfig {
    // Zero work floor so even tiny outputs actually split across workers,
    // zero inline threshold so small kernels don't dodge the thread pool,
    // and oversubscription allowed so the split still happens on hosts with
    // fewer hardware threads than `threads`.
    ParallelConfig::with_threads(threads)
        .min_work_per_thread(1)
        .inline_flops(0)
        .oversubscribed()
}

fn assert_bits_eq(a: &Tensor, b: &Tensor) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape());
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "element {} differs: {} vs {}",
            i,
            x,
            y
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn fc_forward_parallel_is_bit_identical(
        n_in in 1usize..24,
        n_out in 1usize..48,
        threads in 1usize..7,
        seed in 0u64..1000,
    ) {
        let mut v = seed as f32;
        let mut next = move || { v = (v * 1.37 + 0.61) % 13.0 - 6.5; v };
        let w = Tensor::from_vec(Shape::d2(n_in, n_out), (0..n_in * n_out).map(|_| next()).collect()).unwrap();
        let b = Tensor::from_vec(Shape::d1(n_out), (0..n_out).map(|_| next()).collect()).unwrap();
        let x = Tensor::from_vec(Shape::d1(n_in), (0..n_in).map(|_| next()).collect()).unwrap();
        let serial = fc_forward(&w, &x, &b).unwrap();
        let parallel = fc_forward_with(&cfg(threads), &w, &x, &b).unwrap();
        assert_bits_eq(&serial, &parallel)?;
    }

    #[test]
    fn matmul_parallel_is_bit_identical(
        m in 1usize..8,
        k in 1usize..8,
        n in 1usize..8,
        threads in 1usize..7,
        a in vec_of(64),
        b in vec_of(64),
    ) {
        let ta = Tensor::from_vec(Shape::d2(m, k), a[..m * k].to_vec()).unwrap();
        let tb = Tensor::from_vec(Shape::d2(k, n), b[..k * n].to_vec()).unwrap();
        let serial = matmul(&ta, &tb).unwrap();
        let parallel = matmul_with(&cfg(threads), &ta, &tb).unwrap();
        assert_bits_eq(&serial, &parallel)?;
    }

    #[test]
    fn conv2d_parallel_is_bit_identical(
        in_c in 1usize..4,
        out_c in 1usize..5,
        h in 3usize..8,
        w in 3usize..8,
        threads in 1usize..7,
        seed in 0u64..1000,
    ) {
        let stride = 1 + (seed % 2) as usize;
        let pad = ((seed / 2) % 2) as usize;
        let spec = Conv2dSpec { in_channels: in_c, out_channels: out_c, kh: 3, kw: 3, stride, pad };
        let mut v = seed as f32;
        let mut next = move || { v = (v * 1.37 + 0.61) % 13.0 - 6.5; v };
        let input = Tensor::from_vec(Shape::d3(in_c, h, w), (0..in_c * h * w).map(|_| next()).collect()).unwrap();
        let weights = Tensor::from_vec(spec.weight_shape(), (0..spec.weight_shape().volume()).map(|_| next()).collect()).unwrap();
        let bias = Tensor::from_vec(Shape::d1(out_c), (0..out_c).map(|_| next()).collect()).unwrap();
        let serial = conv2d_forward(&spec, &input, &weights, &bias).unwrap();
        let parallel = conv2d_forward_with(&cfg(threads), &spec, &input, &weights, &bias).unwrap();
        assert_bits_eq(&serial, &parallel)?;
    }

    #[test]
    fn conv3d_parallel_is_bit_identical(
        in_c in 1usize..3,
        out_c in 1usize..4,
        d in 2usize..5,
        hw in 3usize..6,
        threads in 1usize..7,
        seed in 0u64..1000,
    ) {
        let spec = Conv3dSpec { in_channels: in_c, out_channels: out_c, kd: 2, kh: 2, kw: 2, stride: 1, pad: 1 };
        let mut v = seed as f32;
        let mut next = move || { v = (v * 1.37 + 0.61) % 13.0 - 6.5; v };
        let vol = in_c * d * hw * hw;
        let input = Tensor::from_vec(Shape::d4(in_c, d, hw, hw), (0..vol).map(|_| next()).collect()).unwrap();
        let weights = Tensor::from_vec(spec.weight_shape(), (0..spec.weight_shape().volume()).map(|_| next()).collect()).unwrap();
        let bias = Tensor::from_vec(Shape::d1(out_c), (0..out_c).map(|_| next()).collect()).unwrap();
        let serial = conv3d_forward(&spec, &input, &weights, &bias).unwrap();
        let parallel = conv3d_forward_with(&cfg(threads), &spec, &input, &weights, &bias).unwrap();
        assert_bits_eq(&serial, &parallel)?;
    }

    #[test]
    fn parallel_for_mut_visits_each_granule_once(
        n_granules in 1usize..40,
        granule in 1usize..6,
        threads in 1usize..9,
    ) {
        let mut out = vec![0u32; n_granules * granule];
        parallel_for_mut(&cfg(threads), &mut out, granule, |offset, chunk| {
            assert_eq!(offset % granule, 0);
            for v in chunk.iter_mut() {
                *v += 1;
            }
        });
        prop_assert!(out.iter().all(|&v| v == 1));
    }
}

//! Cache-blocked weight panels and the 16-lane FC microkernel.
//!
//! The naive FC kernel streams the whole input-major weight matrix once per
//! call, touching `n_out` floats per input row but accumulating into a
//! cache-resident output chunk. That is already sequential, but every
//! accumulator lives in memory and the compiler cannot keep a fixed set of
//! registers hot. The blocked kernel instead repacks the weights **once per
//! layer** into column panels of [`PANEL_WIDTH`] output neurons:
//!
//! ```text
//! packed[(p · n_in + i) · 16 + l] = w[i · n_out + p · 16 + l]
//! ```
//!
//! i.e. panel `p` holds the weights of outputs `16p .. 16p+16` for *all*
//! inputs, contiguously, input-major within the panel (tail lanes of the
//! last panel are zero-padded). One panel of a Kaldi-sized layer
//! (`n_in = 400`) is `400 × 16 × 4 B = 25 KiB` — it fits L1 and is
//! streamed exactly once per forward pass while the accumulators sit in
//! registers: two 256-bit vectors per panel on the AVX2 path, a fixed-width
//! array the compiler auto-vectorizes on the scalar path.
//!
//! **Exactness.** The kernels dispatch on [`crate::simd::level`]:
//!
//! * Scalar level: for each output `j`, the blocked kernel performs the
//!   same additions in the same order as the naive loop — bias first, then
//!   `x[i] · w[i][j]` for `i` ascending, skipping `x[i] == 0.0` terms — so
//!   results are **bit-identical** to [`crate::matmul::fc_forward_into`].
//! * AVX2 level: same terms, same ascending order, but each step is a fused
//!   multiply-add and exact zeros are multiplied rather than skipped;
//!   results agree with the oracle within [`crate::simd::fma_tolerance`].
//!
//! Either way every output's accumulation runs on one thread in one chain,
//! so results never depend on the worker count; the proptests in
//! `tests/blocked.rs` assert the level-appropriate property across odd
//! shapes.

use crate::matmul::fc_flops;
use crate::parallel::{parallel_for_mut_cost, ParallelConfig};
use crate::simd;
use crate::{Tensor, TensorError};

/// Number of output lanes per packed panel: 16 `f32` lanes fill two 256-bit
/// vector registers (the AVX2 kernels' unroll unit); on narrower machines
/// the compiler splits the fixed-width accumulator array further.
pub const PANEL_WIDTH: usize = 16;

/// Panels walked together per microkernel pass. Each panel's 16-lane
/// accumulator is an *independent* pair of floating-point dependency
/// chains, so four panels in flight (eight chains) hide the FP-add/FMA
/// latency that a single chain would serialize on (the adds within one
/// output stay strictly ordered — ILP comes from interleaving different
/// outputs, which does not change any output's accumulation order).
pub(crate) const TILE_PANELS: usize = 4;

/// Output lanes per tile pass (`TILE_PANELS × PANEL_WIDTH`).
pub(crate) const TILE_LANES: usize = TILE_PANELS * PANEL_WIDTH;

/// An input-major weight matrix repacked into [`PANEL_WIDTH`]-output column
/// panels (see the module docs for the exact layout).
///
/// Packing is a one-time, per-layer cost paid at construction; the packed
/// buffer is then read-only and streamed by the forward microkernel.
/// (Reuse corrections read the *raw* row-major matrix instead — see
/// [`apply_deltas_rows`] — because a sparse changed set touches only its
/// own rows, and panel interleaving would waste half of every cache line.)
/// [`PackedPanels::pack_into`] exposes the pooled-buffer form for callers
/// that recycle allocations.
#[derive(Debug, Clone)]
pub struct PackedPanels {
    data: Vec<f32>,
    n_in: usize,
    n_out: usize,
}

impl PackedPanels {
    /// Packs a rank-2 input-major (`[n_in, n_out]`) weight tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `weights` is not rank-2.
    pub fn pack(weights: &Tensor) -> Result<Self, TensorError> {
        let dims = weights.shape().dims();
        if dims.len() != 2 {
            return Err(TensorError::ShapeMismatch {
                context: format!("packed weights must be rank-2, got {}", weights.shape()),
            });
        }
        Ok(Self::pack_slice(weights.as_slice(), dims[0], dims[1]))
    }

    /// Packs a raw input-major weight slice of shape `[n_in, n_out]`.
    ///
    /// # Panics
    ///
    /// Panics when `w.len() != n_in * n_out`.
    pub fn pack_slice(w: &[f32], n_in: usize, n_out: usize) -> Self {
        let mut data = Vec::new();
        Self::pack_into(w, n_in, n_out, &mut data);
        PackedPanels { data, n_in, n_out }
    }

    /// Pooled-buffer packing core: clears `buf`, reuses its capacity, and
    /// fills it with the panel layout. Tail lanes beyond `n_out` are
    /// zero-filled so the microkernel can always read full 16-lane rows.
    ///
    /// # Panics
    ///
    /// Panics when `w.len() != n_in * n_out`.
    pub fn pack_into(w: &[f32], n_in: usize, n_out: usize, buf: &mut Vec<f32>) {
        assert_eq!(w.len(), n_in * n_out, "weight slice/shape mismatch");
        let n_panels = n_out.div_ceil(PANEL_WIDTH);
        buf.clear();
        buf.resize(n_panels * n_in * PANEL_WIDTH, 0.0);
        for p in 0..n_panels {
            let col0 = p * PANEL_WIDTH;
            let lanes = (n_out - col0).min(PANEL_WIDTH);
            let panel = &mut buf[p * n_in * PANEL_WIDTH..(p + 1) * n_in * PANEL_WIDTH];
            for i in 0..n_in {
                let src = &w[i * n_out + col0..i * n_out + col0 + lanes];
                panel[i * PANEL_WIDTH..i * PANEL_WIDTH + lanes].copy_from_slice(src);
            }
        }
    }

    /// Wraps an already-packed buffer (e.g. one produced by
    /// [`Self::pack_into`] through a pool) without copying.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` disagrees with the panel layout for
    /// `[n_in, n_out]`.
    pub fn from_packed_vec(data: Vec<f32>, n_in: usize, n_out: usize) -> Self {
        let n_panels = n_out.div_ceil(PANEL_WIDTH);
        assert_eq!(data.len(), n_panels * n_in * PANEL_WIDTH, "bad packed len");
        PackedPanels { data, n_in, n_out }
    }

    /// Number of weight-matrix rows (layer inputs).
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of weight-matrix columns (layer outputs).
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Number of [`PANEL_WIDTH`]-output panels (`ceil(n_out / 16)`).
    pub fn n_panels(&self) -> usize {
        self.n_out.div_ceil(PANEL_WIDTH)
    }

    /// Panel `p` as a `[n_in × PANEL_WIDTH]` row-major slice: row `i` holds
    /// `w[i][16p .. 16p+16]` (zero-padded past `n_out`).
    ///
    /// # Panics
    ///
    /// Panics when `p >= n_panels()`.
    pub fn panel(&self, p: usize) -> &[f32] {
        let stride = self.n_in * PANEL_WIDTH;
        &self.data[p * stride..(p + 1) * stride]
    }

    /// Heap bytes held by the packed buffer.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<f32>()
    }
}

/// Blocked fully-connected forward pass: `out[j] = Σ_i w[i][j]·x[i] + b[j]`,
/// walking the one-time-packed panels with register accumulators. Under the
/// scalar [`crate::simd::level`] it is bit-identical to
/// [`crate::matmul::fc_forward_into`] (same per-output accumulation order —
/// bias first, then ascending `i` with the `x[i] == 0.0` skip); under AVX2
/// it sums the same terms in the same order with fused multiply-adds (see
/// the [`crate::simd`] contract).
///
/// Dispatch is adaptive: the call runs inline when its FLOP estimate is
/// below [`ParallelConfig::inline_flops`], and output panels are otherwise
/// chunked across the clamped worker count (granule = one panel).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `x` or `bias` disagree with
/// the packed shape.
pub fn fc_forward_packed_into(
    config: &ParallelConfig,
    packed: &PackedPanels,
    x: &[f32],
    bias: &[f32],
    out: &mut Vec<f32>,
) -> Result<(), TensorError> {
    if x.len() != packed.n_in {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "packed fc input length {} does not match weight rows {}",
                x.len(),
                packed.n_in
            ),
        });
    }
    if bias.len() != packed.n_out {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "packed fc bias length {} does not match weight cols {}",
                bias.len(),
                packed.n_out
            ),
        });
    }
    out.clear();
    out.extend_from_slice(bias);
    let flops = fc_flops(packed.n_in, packed.n_out);
    parallel_for_mut_cost(config, out, PANEL_WIDTH, flops, |offset, chunk| {
        debug_assert_eq!(offset % PANEL_WIDTH, 0);
        forward_panels(packed, x, offset / PANEL_WIDTH, chunk);
    });
    Ok(())
}

/// Walks a run of output panels starting at `first_panel`, dispatching on
/// the active SIMD level: the AVX2 kernels when available, otherwise the
/// scalar tile walk.
#[inline]
pub(crate) fn forward_panels(
    packed: &PackedPanels,
    x: &[f32],
    first_panel: usize,
    out: &mut [f32],
) {
    match simd::level() {
        #[cfg(target_arch = "x86_64")]
        simd::SimdLevel::Avx2 => simd::avx2::fc_panels(packed, x, first_panel, out),
        _ => forward_panels_scalar(packed, x, first_panel, out),
    }
}

/// The scalar panel walk: four panels at a time with the tile kernel and
/// one at a time for the remainder. Bit-identical to the naive row walk.
/// Public (but hidden) so the SIMD==scalar equivalence suites can pin the
/// scalar side regardless of the dispatched level.
#[doc(hidden)]
#[inline]
pub fn forward_panels_scalar(
    packed: &PackedPanels,
    x: &[f32],
    first_panel: usize,
    out: &mut [f32],
) {
    let mut p = first_panel;
    for seg in out.chunks_mut(TILE_LANES) {
        if seg.len() == TILE_LANES {
            panel_tile_kernel(
                [
                    packed.panel(p),
                    packed.panel(p + 1),
                    packed.panel(p + 2),
                    packed.panel(p + 3),
                ],
                x,
                seg,
            );
            p += TILE_PANELS;
        } else {
            for sub in seg.chunks_mut(PANEL_WIDTH) {
                panel_kernel(packed.panel(p), x, sub);
                p += 1;
            }
        }
    }
}

/// The wide scalar microkernel: accumulates four panels' outputs over all
/// inputs with four independent 16-lane register chains. `seg` enters
/// holding the 64 valid outputs' biases (or partial sums) and leaves
/// holding the results; per-output accumulation order is identical to
/// [`panel_kernel`]'s.
#[inline]
fn panel_tile_kernel(panels: [&[f32]; TILE_PANELS], x: &[f32], seg: &mut [f32]) {
    let mut acc = [0.0f32; TILE_LANES];
    acc.copy_from_slice(seg);
    let rows = x
        .iter()
        .zip(panels[0].chunks_exact(PANEL_WIDTH))
        .zip(panels[1].chunks_exact(PANEL_WIDTH))
        .zip(panels[2].chunks_exact(PANEL_WIDTH))
        .zip(panels[3].chunks_exact(PANEL_WIDTH));
    for ((((&xi, r0), r1), r2), r3) in rows {
        if xi == 0.0 {
            continue;
        }
        for l in 0..PANEL_WIDTH {
            acc[l] += xi * r0[l];
            acc[PANEL_WIDTH + l] += xi * r1[l];
            acc[2 * PANEL_WIDTH + l] += xi * r2[l];
            acc[3 * PANEL_WIDTH + l] += xi * r3[l];
        }
    }
    seg.copy_from_slice(&acc);
}

/// The 16-lane scalar microkernel: accumulates one panel's outputs over all
/// inputs. `seg` enters holding the bias (or any partial sums) for the
/// panel's `seg.len() ≤ 16` valid outputs and leaves holding the results.
#[inline]
pub(crate) fn panel_kernel(panel: &[f32], x: &[f32], seg: &mut [f32]) {
    let mut acc = [0.0f32; PANEL_WIDTH];
    acc[..seg.len()].copy_from_slice(seg);
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            // Same no-op skip as the naive kernel: keeps the flop pattern
            // (and the bit pattern) identical.
            continue;
        }
        let row = &panel[i * PANEL_WIDTH..i * PANEL_WIDTH + PANEL_WIDTH];
        for l in 0..PANEL_WIDTH {
            acc[l] += xi * row[l];
        }
    }
    seg.copy_from_slice(&acc[..seg.len()]);
}

/// Changed-input deltas batched per correction pass: their weight rows are
/// streamed together so the buffered pre-activation vector is
/// read-modified-written once per batch instead of once per delta.
pub const DELTA_BATCH: usize = 4;

/// Applies a batch of reuse-correction deltas `(i, Δc·s)` to a buffered
/// pre-activation vector `z`, reading the row-major `[n_in, n_out]` weight
/// matrix directly. Deltas are processed [`DELTA_BATCH`] at a time: the
/// batch's weight rows are walked as parallel sequential streams and `z` is
/// loaded and stored once per batch, instead of one full `z`
/// read-modify-write sweep per changed input. Sparse changed sets touch
/// only the changed rows, and every touched cache line is consumed in full.
///
/// Per output `j` the additions are `Δ₀·w[i₀][j], Δ₁·w[i₁][j], …` in
/// `deltas` order — exactly the order the naive correction loop uses — so
/// under the scalar [`crate::simd::level`] the result is bit-identical to
/// the unblocked path (paper Eq. 10); the AVX2 level fuses each step and
/// agrees within [`crate::simd::fma_tolerance`]. Both levels confine each
/// output to one chain, so results are chunking-independent.
///
/// The FLOP estimate for adaptive dispatch is `2 · deltas · n_out`; small
/// correction frames stay inline and never pay thread-spawn cost.
///
/// # Panics
///
/// Panics (in debug) when `z.len() * max(i)` overruns `w`.
pub fn apply_deltas_rows(
    config: &ParallelConfig,
    w: &[f32],
    n_out: usize,
    deltas: &[(u32, f32)],
    z: &mut [f32],
) {
    debug_assert_eq!(z.len(), n_out);
    if deltas.is_empty() || n_out == 0 {
        return;
    }
    let flops = 2 * deltas.len() as u64 * n_out as u64;
    parallel_for_mut_cost(config, z, 1, flops, |offset, chunk| match simd::level() {
        #[cfg(target_arch = "x86_64")]
        simd::SimdLevel::Avx2 => simd::avx2::apply_deltas(w, n_out, offset, deltas, chunk),
        _ => apply_deltas_scalar(w, n_out, offset, deltas, chunk),
    });
}

/// The scalar correction sweep over one worker's span of `z` (bit-identical
/// to the naive scattered walk). Public (but hidden) for the SIMD==scalar
/// equivalence suites.
#[doc(hidden)]
pub fn apply_deltas_scalar(
    w: &[f32],
    n_out: usize,
    offset: usize,
    deltas: &[(u32, f32)],
    chunk: &mut [f32],
) {
    {
        let len = chunk.len();
        let mut batches = deltas.chunks_exact(DELTA_BATCH);
        for batch in batches.by_ref() {
            let (i0, d0) = batch[0];
            let (i1, d1) = batch[1];
            let (i2, d2) = batch[2];
            let (i3, d3) = batch[3];
            let r0 = &w[i0 as usize * n_out + offset..][..len];
            let r1 = &w[i1 as usize * n_out + offset..][..len];
            let r2 = &w[i2 as usize * n_out + offset..][..len];
            let r3 = &w[i3 as usize * n_out + offset..][..len];
            for (j, zj) in chunk.iter_mut().enumerate() {
                // One chain per output element; vectorizing over `j` gives
                // the ILP, and the in-order adds keep bit-identity.
                let mut acc = *zj;
                acc += d0 * r0[j];
                acc += d1 * r1[j];
                acc += d2 * r2[j];
                acc += d3 * r3[j];
                *zj = acc;
            }
        }
        for &(i, delta) in batches.remainder() {
            let row = &w[i as usize * n_out + offset..][..len];
            for (zj, &wij) in chunk.iter_mut().zip(row.iter()) {
                *zj += delta * wij;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::fc_forward_into;
    use crate::Shape;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|v| (v as f32) * 0.25 - 3.0).collect()
    }

    #[test]
    fn pack_layout_round_trips() {
        let (n_in, n_out) = (3, 19); // tail panel of 3 lanes
        let w = ramp(n_in * n_out);
        let packed = PackedPanels::pack_slice(&w, n_in, n_out);
        assert_eq!(packed.n_panels(), 2);
        for p in 0..packed.n_panels() {
            let panel = packed.panel(p);
            for i in 0..n_in {
                for l in 0..PANEL_WIDTH {
                    let j = p * PANEL_WIDTH + l;
                    let expect = if j < n_out { w[i * n_out + j] } else { 0.0 };
                    assert_eq!(panel[i * PANEL_WIDTH + l], expect, "p={p} i={i} l={l}");
                }
            }
        }
    }

    #[test]
    fn packed_forward_matches_naive_kernel() {
        // Bit-identical under the scalar level, FMA-tolerance-bounded under
        // AVX2 (see `crate::simd` for the accumulation contract).
        for (n_in, n_out) in [
            (1usize, 1usize),
            (3, 8),
            (5, 13),
            (17, 31),
            (40, 64),
            (9, 70),
        ] {
            let w = Tensor::from_vec(Shape::d2(n_in, n_out), ramp(n_in * n_out)).unwrap();
            let mut xv = ramp(n_in);
            if n_in > 2 {
                xv[2] = 0.0; // exercise the zero-skip path
            }
            let x = Tensor::from_vec(Shape::d1(n_in), xv).unwrap();
            let b = Tensor::from_vec(Shape::d1(n_out), ramp(n_out)).unwrap();
            let cfg = ParallelConfig::serial();
            let mut naive = Vec::new();
            fc_forward_into(&cfg, &w, &x, &b, &mut naive).unwrap();
            let packed = PackedPanels::pack(&w).unwrap();
            let mut blocked = Vec::new();
            fc_forward_packed_into(&cfg, &packed, x.as_slice(), b.as_slice(), &mut blocked)
                .unwrap();
            let tol = simd::fma_tolerance(n_in + 1, 700.0);
            let mismatch = simd::kernel_mismatch(&blocked, &naive, tol);
            assert!(
                mismatch.is_none(),
                "n_in={n_in} n_out={n_out}: {mismatch:?}"
            );
        }
    }

    #[test]
    fn batched_deltas_match_row_walk() {
        // 9 deltas exercises two full DELTA_BATCH groups plus a remainder.
        let (n_in, n_out) = (13usize, 21usize);
        let w = ramp(n_in * n_out);
        let deltas: Vec<(u32, f32)> = vec![
            (0, 0.5),
            (1, -1.25),
            (3, 2.0),
            (4, 0.75),
            (6, -0.5),
            (7, 1.5),
            (9, -2.25),
            (10, 0.25),
            (12, 3.0),
        ];
        let mut z_blocked = ramp(n_out);
        let mut z_naive = z_blocked.clone();
        // Naive order: for each output, deltas applied in list order.
        for &(i, d) in &deltas {
            for (j, zj) in z_naive.iter_mut().enumerate() {
                *zj += d * w[i as usize * n_out + j];
            }
        }
        apply_deltas_rows(
            &ParallelConfig::serial(),
            &w,
            n_out,
            &deltas,
            &mut z_blocked,
        );
        let tol = simd::fma_tolerance(deltas.len() + 1, 300.0);
        let mismatch = simd::kernel_mismatch(&z_blocked, &z_naive, tol);
        assert!(mismatch.is_none(), "{mismatch:?}");
    }

    #[test]
    fn pack_rejects_non_rank2() {
        let t = Tensor::zeros(Shape::d1(4));
        assert!(PackedPanels::pack(&t).is_err());
    }

    #[test]
    fn forward_validates_dimensions() {
        let packed = PackedPanels::pack_slice(&ramp(6), 2, 3);
        let mut out = Vec::new();
        let cfg = ParallelConfig::serial();
        assert!(fc_forward_packed_into(&cfg, &packed, &[1.0], &[0.0; 3], &mut out).is_err());
        assert!(fc_forward_packed_into(&cfg, &packed, &[1.0, 2.0], &[0.0; 2], &mut out).is_err());
    }
}

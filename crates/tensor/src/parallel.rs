//! Scoped-thread parallel runtime with adaptive serial/parallel dispatch.
//!
//! The build environment pins an offline registry, so there is no rayon
//! here: workers are plain `std::thread::scope` threads. Every parallel
//! kernel in the workspace partitions its **output** elements into
//! contiguous chunks, one per worker. Each output element is still
//! accumulated by exactly one thread, walking the inputs in the same
//! ascending order as the serial loop — so parallel results are
//! bit-identical to serial ones, and the paper's incremental-correction
//! invariant (`z' = z + (c'−c)·w`, Eq. 10) is preserved under any thread
//! count. See DESIGN.md, "Threading model & determinism".
//!
//! Dispatch is adaptive on two axes:
//!
//! * **Hardware clamp** — a config never resolves to more workers than the
//!   host exposes ([`hardware_threads`]), even when `num_threads` asks for
//!   more. Oversubscribing a small host turns every spawn into pure
//!   scheduling overhead (the regression PR 1's `BENCH_kernels.json`
//!   recorded on a 1-thread machine). Tests that need to exercise the
//!   chunking logic itself can opt out with
//!   [`ParallelConfig::oversubscribed`].
//! * **Work-size threshold** — kernels that know their FLOP count call
//!   [`parallel_for_mut_cost`]; calls below
//!   [`ParallelConfig::inline_flops`] run inline on the caller thread, so
//!   tiny reuse-correction frames never pay thread-spawn latency.

/// The detected number of hardware threads (`1` when detection fails).
pub fn hardware_threads() -> usize {
    // Cached: `available_parallelism` is a syscall, and adaptive dispatch
    // consults the clamp on every kernel call.
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// How much parallelism a kernel call may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads to use. `0` means "ask the OS"
    /// (`std::thread::available_parallelism`); `1` runs inline with no
    /// thread spawns at all. Explicit counts are clamped to the hardware
    /// thread count unless [`Self::oversubscribed`] is set.
    pub num_threads: usize,
    /// Minimum output elements each worker must receive. Calls whose total
    /// output is below `2 × min_work_per_thread` run inline; otherwise the
    /// worker count is capped at `total / min_work_per_thread`. This keeps
    /// tiny layers from paying thread-spawn latency for nothing.
    pub min_work_per_thread: usize,
    /// Total-work threshold in FLOPs below which a cost-aware call
    /// ([`parallel_for_mut_cost`]) runs inline regardless of output size.
    /// Kernels estimate this from `fc_flops` / `Conv*Spec::flops` / the
    /// changed-delta count. Default [`DEFAULT_INLINE_FLOPS`].
    pub inline_flops: u64,
    /// Allows `num_threads` to exceed the hardware thread count. Off by
    /// default (the clamp); tests of the chunking logic switch it on to
    /// force multi-chunk execution on small hosts.
    pub oversubscribe: bool,
}

/// Default floor under which spawning a thread costs more than it saves.
pub const DEFAULT_MIN_WORK: usize = 1024;

/// Default FLOP threshold for inline dispatch (~0.1 ms of serial work on
/// this class of host — comfortably above thread spawn+join latency).
pub const DEFAULT_INLINE_FLOPS: u64 = 1_000_000;

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::serial()
    }
}

impl ParallelConfig {
    /// Run everything inline on the calling thread (never spawns).
    pub const fn serial() -> Self {
        ParallelConfig {
            num_threads: 1,
            min_work_per_thread: DEFAULT_MIN_WORK,
            inline_flops: DEFAULT_INLINE_FLOPS,
            oversubscribe: false,
        }
    }

    /// Use up to `n` workers (clamped to at least 1, and to the hardware
    /// thread count at resolution time unless [`Self::oversubscribed`]).
    pub fn with_threads(n: usize) -> Self {
        ParallelConfig {
            num_threads: n.max(1),
            ..ParallelConfig::serial()
        }
    }

    /// Use one worker per hardware thread.
    pub fn auto() -> Self {
        ParallelConfig {
            num_threads: 0,
            ..ParallelConfig::serial()
        }
    }

    /// Overrides the per-worker work floor (in output elements).
    pub fn min_work_per_thread(mut self, elements: usize) -> Self {
        self.min_work_per_thread = elements;
        self
    }

    /// Overrides the FLOP threshold below which cost-aware calls stay
    /// inline (`0` disables the threshold entirely).
    pub fn inline_flops(mut self, flops: u64) -> Self {
        self.inline_flops = flops;
        self
    }

    /// Disables the hardware clamp, letting `num_threads` spawn more
    /// workers than the host has hardware threads. Only useful for testing
    /// the chunk partitioning itself; never faster.
    pub fn oversubscribed(mut self) -> Self {
        self.oversubscribe = true;
        self
    }

    /// Resolved worker count for a call producing `total_work` output
    /// elements. Always at least 1; 1 means "run inline".
    pub fn workers_for(&self, total_work: usize) -> usize {
        self.workers_for_with(total_work, hardware_threads())
    }

    /// [`Self::workers_for`] with an explicit hardware thread count —
    /// the pure resolution logic, exposed so tests and benches can check
    /// clamping deterministically on any host.
    pub fn workers_for_with(&self, total_work: usize, hardware: usize) -> usize {
        let hardware = hardware.max(1);
        let requested = if self.num_threads == 0 {
            hardware
        } else if self.oversubscribe {
            self.num_threads
        } else {
            self.num_threads.min(hardware)
        };
        let work_cap = total_work / self.min_work_per_thread.max(1);
        requested.min(work_cap.max(1)).min(total_work.max(1))
    }
}

/// Runs `body` over contiguous chunks of `out`, one chunk per worker.
///
/// `granule` is the indivisible output unit in elements (e.g. one conv
/// output plane); chunk boundaries always fall on granule boundaries so a
/// worker owns whole granules. `body(offset, chunk)` receives the chunk's
/// starting element offset within `out`.
///
/// With one resolved worker (or one granule) the body runs inline on the
/// caller thread and nothing is spawned; otherwise the first chunk runs on
/// the caller thread while the rest run on scoped threads.
///
/// # Panics
///
/// Propagates panics from `body` (the scope joins all workers first).
pub fn parallel_for_mut<T, F>(config: &ParallelConfig, out: &mut [T], granule: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    parallel_for_mut_cost(config, out, granule, u64::MAX, body);
}

/// Cost-aware variant of [`parallel_for_mut`]: `flops` is the caller's
/// estimate of the call's total arithmetic work. Calls below
/// [`ParallelConfig::inline_flops`] run inline on the caller thread — the
/// adaptive-dispatch path that keeps small corrections from paying
/// thread-spawn latency. Results are bit-identical either way.
///
/// # Panics
///
/// Propagates panics from `body` (the scope joins all workers first).
pub fn parallel_for_mut_cost<T, F>(
    config: &ParallelConfig,
    out: &mut [T],
    granule: usize,
    flops: u64,
    body: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if out.is_empty() {
        return;
    }
    if flops < config.inline_flops {
        body(0, out);
        return;
    }
    let granule = granule.max(1);
    let n_granules = out.len().div_ceil(granule);
    let workers = config.workers_for(out.len()).min(n_granules);
    if workers <= 1 {
        body(0, out);
        return;
    }
    let per_chunk = n_granules.div_ceil(workers) * granule;
    std::thread::scope(|scope| {
        let body = &body;
        let mut rest = out;
        let mut offset = 0usize;
        let mut caller_chunk: Option<(usize, &mut [T])> = None;
        while !rest.is_empty() {
            let take = per_chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            if caller_chunk.is_none() {
                caller_chunk = Some((offset, head));
            } else {
                scope.spawn(move || body(offset, head));
            }
            offset += take;
            rest = tail;
        }
        if let Some((off, head)) = caller_chunk {
            body(off, head);
        }
    });
}

/// Shares a `*mut T` across scoped workers that claim disjoint indices
/// through an atomic counter. Soundness: every index is produced by exactly
/// one `fetch_add`, so no two workers ever form a `&mut` to the same
/// element.
struct SharedSlice<T>(*mut T);

unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

/// Runs `f` once per element of `items` with **dynamic (work-stealing)
/// scheduling**: workers claim the next unprocessed index from a shared
/// atomic counter, so uneven per-item costs balance automatically. This is
/// the dispatch primitive for task-shaped work — e.g. the serving runtime's
/// per-stream batches, where one stream may have a full queue and its
/// neighbor a single frame — in contrast to [`parallel_for_mut`], whose
/// static contiguous chunks suit uniform element-wise kernels.
///
/// `f(index, item)` receives the item's position in `items`. Items are
/// claimed in ascending index order, but completion order is unspecified;
/// callers must not rely on cross-item ordering (each item itself is
/// processed exactly once, by one worker).
///
/// With one resolved worker the loop runs inline on the caller thread and
/// performs **zero heap allocations** — the serving runtime's steady-state
/// dispatch contract. Multi-worker calls spawn scoped threads (which
/// allocate stacks) and join them all before returning.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_for_each_mut<T, F>(config: &ParallelConfig, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let workers = config.workers_for(n).min(n);
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let shared = SharedSlice(items.as_mut_ptr());
    let run = |next: &std::sync::atomic::AtomicUsize, shared: &SharedSlice<T>| loop {
        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if i >= n {
            break;
        }
        // SAFETY: `i < n` indexes into the live `items` slice, and the
        // fetch_add above hands each index to exactly one worker.
        let item = unsafe { &mut *shared.0.add(i) };
        f(i, item);
    };
    std::thread::scope(|scope| {
        let next = &next;
        let shared = &shared;
        let run = &run;
        for _ in 1..workers {
            scope.spawn(move || run(next, shared));
        }
        run(next, shared);
    });
}

/// [`parallel_for_each_mut`] with an explicit **claim order**: workers
/// claim positions of `order` (not raw indices) from the shared atomic
/// counter, so earlier entries of `order` start executing first. The
/// serving runtime uses this for priority lanes — streams with a
/// high-priority frame at the head of their queue are placed first in
/// `order`, so they are dispatched before normal-lane streams each tick
/// (with one worker this is an exact service order; with several it is a
/// start-order guarantee, which is what a priority lane means under
/// work stealing).
///
/// `order` must contain each index it mentions at most once and every
/// index must be `< items.len()`; both are debug-asserted. Items not
/// mentioned in `order` are not visited.
///
/// # Panics
///
/// Propagates panics from `f`; panics (debug builds) on duplicate or
/// out-of-range indices.
pub fn parallel_for_each_mut_order<T, F>(
    config: &ParallelConfig,
    items: &mut [T],
    order: &[usize],
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = order.len();
    if n == 0 {
        return;
    }
    #[cfg(debug_assertions)]
    {
        let mut seen = vec![false; items.len()];
        for &i in order {
            assert!(i < items.len(), "order index {i} out of range");
            assert!(!seen[i], "order index {i} appears twice");
            seen[i] = true;
        }
    }
    let workers = config.workers_for(n).min(n);
    if workers <= 1 {
        for &i in order {
            f(i, &mut items[i]);
        }
        return;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let shared = SharedSlice(items.as_mut_ptr());
    let run = |next: &std::sync::atomic::AtomicUsize, shared: &SharedSlice<T>| loop {
        let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if k >= n {
            break;
        }
        let i = order[k];
        // SAFETY: `order` holds unique in-range indices (checked above in
        // debug builds, required by the contract), and the fetch_add hands
        // each position to exactly one worker — so no two workers ever
        // form a `&mut` to the same element.
        let item = unsafe { &mut *shared.0.add(i) };
        f(i, item);
    };
    std::thread::scope(|scope| {
        let next = &next;
        let shared = &shared;
        let run = &run;
        for _ in 1..workers {
            scope.spawn(move || run(next, shared));
        }
        run(next, shared);
    });
}

/// Maps `f` over `items` with the configured parallelism, preserving order.
///
/// Used by the accelerator config sweep to fan simulation points out across
/// cores. Results arrive in input order regardless of thread interleaving.
pub fn parallel_map<T, R, F>(config: &ParallelConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    parallel_for_mut(
        &config.min_work_per_thread(1),
        &mut out,
        1,
        |offset, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(f(&items[offset + k]));
            }
        },
    );
    out.into_iter()
        .map(|r| r.expect("parallel_map fills every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_config_never_splits() {
        assert_eq!(ParallelConfig::serial().workers_for(1 << 20), 1);
    }

    #[test]
    fn worker_count_respects_work_floor() {
        let cfg = ParallelConfig::with_threads(8).min_work_per_thread(100);
        // Resolved against an 8-thread host so the floor is the only limit.
        assert_eq!(cfg.workers_for_with(50, 8), 1);
        assert_eq!(cfg.workers_for_with(250, 8), 2);
        assert_eq!(cfg.workers_for_with(100_000, 8), 8);
    }

    #[test]
    fn explicit_thread_count_is_clamped_to_hardware() {
        // The oversubscription fix: with_threads(8) on a 2-thread host
        // resolves to 2 workers, not 8.
        let cfg = ParallelConfig::with_threads(8).min_work_per_thread(1);
        assert_eq!(cfg.workers_for_with(1 << 20, 2), 2);
        assert_eq!(cfg.workers_for_with(1 << 20, 1), 1);
        // auto() asks the host directly.
        assert_eq!(
            ParallelConfig::auto()
                .min_work_per_thread(1)
                .workers_for_with(1 << 20, 3),
            3
        );
    }

    /// The CI clamp gate: honors a forced `REUSE_THREADS` (default 8) and
    /// asserts the *detected-hardware* resolution never exceeds the host.
    #[test]
    fn clamp_holds_under_forced_reuse_threads() {
        let requested: usize = std::env::var("REUSE_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(8);
        let cfg = ParallelConfig::with_threads(requested).min_work_per_thread(1);
        let resolved = cfg.workers_for(usize::MAX);
        assert!(
            resolved <= hardware_threads(),
            "resolved {resolved} workers on a {}-thread host (requested {requested})",
            hardware_threads()
        );
    }

    #[test]
    fn oversubscribed_escape_hatch_bypasses_clamp() {
        let cfg = ParallelConfig::with_threads(8)
            .min_work_per_thread(1)
            .oversubscribed();
        assert_eq!(cfg.workers_for_with(1 << 20, 2), 8);
    }

    #[test]
    fn inline_flops_threshold_keeps_small_calls_inline() {
        let cfg = ParallelConfig::with_threads(4)
            .min_work_per_thread(1)
            .oversubscribed();
        let chunks = AtomicUsize::new(0);
        let mut out = vec![0u32; 64];
        // Below the default threshold: one inline chunk.
        parallel_for_mut_cost(&cfg, &mut out, 1, DEFAULT_INLINE_FLOPS - 1, |_, _| {
            chunks.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(chunks.load(Ordering::Relaxed), 1);
        // At/above the threshold: splits into several chunks.
        chunks.store(0, Ordering::Relaxed);
        parallel_for_mut_cost(&cfg, &mut out, 1, DEFAULT_INLINE_FLOPS, |_, _| {
            chunks.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(chunks.load(Ordering::Relaxed), 4);
        // inline_flops(0) disables the threshold.
        chunks.store(0, Ordering::Relaxed);
        parallel_for_mut_cost(&cfg.inline_flops(0), &mut out, 1, 1, |_, _| {
            chunks.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(chunks.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn chunks_cover_every_element_once() {
        for threads in 1..6 {
            for len in [1usize, 2, 7, 64, 65] {
                let cfg = ParallelConfig::with_threads(threads)
                    .min_work_per_thread(1)
                    .oversubscribed();
                let mut out = vec![0u32; len];
                parallel_for_mut(&cfg, &mut out, 1, |offset, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v += (offset + k) as u32 + 1;
                    }
                });
                let expect: Vec<u32> = (0..len as u32).map(|i| i + 1).collect();
                assert_eq!(out, expect, "threads={threads} len={len}");
            }
        }
    }

    #[test]
    fn granules_are_never_split() {
        let cfg = ParallelConfig::with_threads(3)
            .min_work_per_thread(1)
            .oversubscribed();
        let granule = 4;
        let mut out = vec![usize::MAX; granule * 7];
        parallel_for_mut(&cfg, &mut out, granule, |offset, chunk| {
            assert_eq!(offset % granule, 0, "chunk start off-granule");
            assert_eq!(chunk.len() % granule, 0, "chunk length off-granule");
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (offset + k) / granule;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i / granule);
        }
    }

    #[test]
    fn for_each_visits_every_item_exactly_once() {
        for threads in [1usize, 2, 3, 5] {
            for len in [0usize, 1, 2, 7, 64, 65] {
                let cfg = ParallelConfig::with_threads(threads)
                    .min_work_per_thread(1)
                    .oversubscribed();
                let mut hits = vec![0u32; len];
                parallel_for_each_mut(&cfg, &mut hits, |i, v| {
                    *v += i as u32 + 1;
                });
                let expect: Vec<u32> = (0..len as u32).map(|i| i + 1).collect();
                assert_eq!(hits, expect, "threads={threads} len={len}");
            }
        }
    }

    #[test]
    fn for_each_balances_uneven_tasks() {
        // One huge task plus many tiny ones: dynamic scheduling must let
        // other workers drain the tiny tasks while the big one runs, so all
        // items complete (a static split would also complete — this guards
        // the claim-counter logic under contention).
        let cfg = ParallelConfig::with_threads(4)
            .min_work_per_thread(1)
            .oversubscribed();
        let mut items = vec![0u64; 33];
        parallel_for_each_mut(&cfg, &mut items, |i, v| {
            let spin = if i == 0 { 20_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            *v = acc | 1;
        });
        assert!(items.iter().all(|&v| v != 0));
    }

    #[test]
    fn for_each_serial_runs_in_index_order() {
        let mut order = Vec::new();
        let mut items = vec![(); 9];
        // One worker: inline, deterministic ascending order.
        let log = std::sync::Mutex::new(&mut order);
        parallel_for_each_mut(&ParallelConfig::serial(), &mut items, |i, ()| {
            log.lock().unwrap().push(i);
        });
        assert_eq!(order, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_order_visits_exactly_the_ordered_subset() {
        for threads in [1usize, 2, 4] {
            let cfg = ParallelConfig::with_threads(threads)
                .min_work_per_thread(1)
                .oversubscribed();
            let mut hits = vec![0u32; 10];
            // A permuted subset: indices 7, 2, 9, 0 only.
            let order = [7usize, 2, 9, 0];
            parallel_for_each_mut_order(&cfg, &mut hits, &order, |i, v| {
                *v += i as u32 + 1;
            });
            for (i, &v) in hits.iter().enumerate() {
                let expect = if order.contains(&i) { i as u32 + 1 } else { 0 };
                assert_eq!(v, expect, "threads={threads} index={i}");
            }
        }
    }

    #[test]
    fn for_each_order_serial_follows_the_given_order() {
        let mut items = vec![(); 6];
        let order = [3usize, 5, 1, 0, 4, 2];
        let mut seen = Vec::new();
        let log = std::sync::Mutex::new(&mut seen);
        parallel_for_each_mut_order(&ParallelConfig::serial(), &mut items, &order, |i, ()| {
            log.lock().unwrap().push(i);
        });
        assert_eq!(seen, order);
    }

    #[test]
    fn for_each_order_empty_order_is_a_noop() {
        let mut items = vec![1u8; 4];
        parallel_for_each_mut_order(
            &ParallelConfig::with_threads(4).oversubscribed(),
            &mut items,
            &[],
            |_, _| panic!("no work"),
        );
        assert_eq!(items, vec![1u8; 4]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "appears twice")]
    fn for_each_order_rejects_duplicate_indices() {
        let mut items = vec![0u8; 3];
        parallel_for_each_mut_order(&ParallelConfig::serial(), &mut items, &[1, 1], |_, _| {});
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..57).collect();
        for threads in [1, 2, 5] {
            let cfg = ParallelConfig::with_threads(threads).oversubscribed();
            let mapped = parallel_map(&cfg, &items, |&v| v * 3);
            assert_eq!(mapped, items.iter().map(|v| v * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_slice_is_a_noop() {
        let mut out: Vec<f32> = Vec::new();
        parallel_for_mut(&ParallelConfig::auto(), &mut out, 8, |_, _| {
            panic!("no work")
        });
    }
}

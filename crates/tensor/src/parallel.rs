//! Scoped-thread parallel runtime for the kernels.
//!
//! The build environment pins an offline registry, so there is no rayon
//! here: workers are plain `std::thread::scope` threads. Every parallel
//! kernel in the workspace partitions its **output** elements into
//! contiguous chunks, one per worker. Each output element is still
//! accumulated by exactly one thread, walking the inputs in the same
//! ascending order as the serial loop — so parallel results are
//! bit-identical to serial ones, and the paper's incremental-correction
//! invariant (`z' = z + (c'−c)·w`, Eq. 10) is preserved under any thread
//! count. See DESIGN.md, "Threading model & determinism".

/// How much parallelism a kernel call may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads to use. `0` means "ask the OS"
    /// (`std::thread::available_parallelism`); `1` runs inline with no
    /// thread spawns at all.
    pub num_threads: usize,
    /// Minimum output elements each worker must receive. Calls whose total
    /// output is below `2 × min_work_per_thread` run inline; otherwise the
    /// worker count is capped at `total / min_work_per_thread`. This keeps
    /// tiny layers from paying thread-spawn latency for nothing.
    pub min_work_per_thread: usize,
}

/// Default floor under which spawning a thread costs more than it saves.
pub const DEFAULT_MIN_WORK: usize = 1024;

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::serial()
    }
}

impl ParallelConfig {
    /// Run everything inline on the calling thread (never spawns).
    pub const fn serial() -> Self {
        ParallelConfig {
            num_threads: 1,
            min_work_per_thread: DEFAULT_MIN_WORK,
        }
    }

    /// Use exactly `n` workers (clamped to at least 1).
    pub fn with_threads(n: usize) -> Self {
        ParallelConfig {
            num_threads: n.max(1),
            min_work_per_thread: DEFAULT_MIN_WORK,
        }
    }

    /// Use one worker per hardware thread.
    pub fn auto() -> Self {
        ParallelConfig {
            num_threads: 0,
            min_work_per_thread: DEFAULT_MIN_WORK,
        }
    }

    /// Overrides the per-worker work floor (in output elements).
    pub fn min_work_per_thread(mut self, elements: usize) -> Self {
        self.min_work_per_thread = elements;
        self
    }

    /// Resolved worker count for a call producing `total_work` output
    /// elements. Always at least 1; 1 means "run inline".
    pub fn workers_for(&self, total_work: usize) -> usize {
        let hw = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        let work_cap = total_work / self.min_work_per_thread.max(1);
        hw.min(work_cap.max(1)).min(total_work.max(1))
    }
}

/// Runs `body` over contiguous chunks of `out`, one chunk per worker.
///
/// `granule` is the indivisible output unit in elements (e.g. one conv
/// output plane); chunk boundaries always fall on granule boundaries so a
/// worker owns whole granules. `body(offset, chunk)` receives the chunk's
/// starting element offset within `out`.
///
/// With one resolved worker (or one granule) the body runs inline on the
/// caller thread and nothing is spawned; otherwise the first chunk runs on
/// the caller thread while the rest run on scoped threads.
///
/// # Panics
///
/// Propagates panics from `body` (the scope joins all workers first).
pub fn parallel_for_mut<T, F>(config: &ParallelConfig, out: &mut [T], granule: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if out.is_empty() {
        return;
    }
    let granule = granule.max(1);
    let n_granules = out.len().div_ceil(granule);
    let workers = config.workers_for(out.len()).min(n_granules);
    if workers <= 1 {
        body(0, out);
        return;
    }
    let per_chunk = n_granules.div_ceil(workers) * granule;
    std::thread::scope(|scope| {
        let body = &body;
        let mut rest = out;
        let mut offset = 0usize;
        let mut caller_chunk: Option<(usize, &mut [T])> = None;
        while !rest.is_empty() {
            let take = per_chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            if caller_chunk.is_none() {
                caller_chunk = Some((offset, head));
            } else {
                scope.spawn(move || body(offset, head));
            }
            offset += take;
            rest = tail;
        }
        if let Some((off, head)) = caller_chunk {
            body(off, head);
        }
    });
}

/// Maps `f` over `items` with the configured parallelism, preserving order.
///
/// Used by the accelerator config sweep to fan simulation points out across
/// cores. Results arrive in input order regardless of thread interleaving.
pub fn parallel_map<T, R, F>(config: &ParallelConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    parallel_for_mut(
        &config.min_work_per_thread(1),
        &mut out,
        1,
        |offset, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(f(&items[offset + k]));
            }
        },
    );
    out.into_iter()
        .map(|r| r.expect("parallel_map fills every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_config_never_splits() {
        assert_eq!(ParallelConfig::serial().workers_for(1 << 20), 1);
    }

    #[test]
    fn worker_count_respects_work_floor() {
        let cfg = ParallelConfig::with_threads(8).min_work_per_thread(100);
        assert_eq!(cfg.workers_for(50), 1);
        assert_eq!(cfg.workers_for(250), 2);
        assert_eq!(cfg.workers_for(100_000), 8);
    }

    #[test]
    fn chunks_cover_every_element_once() {
        for threads in 1..6 {
            for len in [1usize, 2, 7, 64, 65] {
                let cfg = ParallelConfig::with_threads(threads).min_work_per_thread(1);
                let mut out = vec![0u32; len];
                parallel_for_mut(&cfg, &mut out, 1, |offset, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v += (offset + k) as u32 + 1;
                    }
                });
                let expect: Vec<u32> = (0..len as u32).map(|i| i + 1).collect();
                assert_eq!(out, expect, "threads={threads} len={len}");
            }
        }
    }

    #[test]
    fn granules_are_never_split() {
        let cfg = ParallelConfig::with_threads(3).min_work_per_thread(1);
        let granule = 4;
        let mut out = vec![usize::MAX; granule * 7];
        parallel_for_mut(&cfg, &mut out, granule, |offset, chunk| {
            assert_eq!(offset % granule, 0, "chunk start off-granule");
            assert_eq!(chunk.len() % granule, 0, "chunk length off-granule");
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (offset + k) / granule;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i / granule);
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..57).collect();
        for threads in [1, 2, 5] {
            let cfg = ParallelConfig::with_threads(threads);
            let mapped = parallel_map(&cfg, &items, |&v| v * 3);
            assert_eq!(mapped, items.iter().map(|v| v * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_slice_is_a_noop() {
        let mut out: Vec<f32> = Vec::new();
        parallel_for_mut(&ParallelConfig::auto(), &mut out, 8, |_, _| {
            panic!("no work")
        });
    }
}

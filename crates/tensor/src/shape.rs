use crate::TensorError;

/// The shape of a tensor: an ordered list of dimension sizes.
///
/// Shapes are row-major: the last dimension varies fastest in memory.
///
/// # Example
///
/// ```
/// use reuse_tensor::Shape;
///
/// let s = Shape::d3(2, 3, 4);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] if `dims` is empty or any
    /// dimension is zero.
    pub fn new(dims: &[usize]) -> Result<Self, TensorError> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(TensorError::EmptyShape);
        }
        Ok(Shape {
            dims: dims.to_vec(),
        })
    }

    /// Creates a 1-dimensional shape.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn d1(n: usize) -> Self {
        Self::new(&[n]).expect("dimension must be non-zero")
    }

    /// Creates a 2-dimensional shape (rows, cols).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn d2(rows: usize, cols: usize) -> Self {
        Self::new(&[rows, cols]).expect("dimensions must be non-zero")
    }

    /// Creates a 3-dimensional shape (channels, height, width).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn d3(c: usize, h: usize, w: usize) -> Self {
        Self::new(&[c, h, w]).expect("dimensions must be non-zero")
    }

    /// Creates a 4-dimensional shape (channels, depth, height, width),
    /// the NCDHW-without-batch convention used for 3D convolutions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn d4(c: usize, d: usize, h: usize, w: usize) -> Self {
        Self::new(&[c, d, h, w]).expect("dimensions must be non-zero")
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The total number of elements.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `index` has the wrong rank and
    /// [`TensorError::OutOfBounds`] if any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                expected: self.dims.len(),
                actual: index.len(),
            });
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for dim in (0..self.dims.len()).rev() {
            let idx = index[dim];
            let size = self.dims[dim];
            if idx >= size {
                return Err(TensorError::OutOfBounds {
                    dim,
                    index: idx,
                    size,
                });
            }
            off += idx * stride;
            stride *= size;
        }
        Ok(off)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Shape> for Vec<usize> {
    fn from(shape: Shape) -> Self {
        shape.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::d4(3, 16, 112, 112);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.volume(), 3 * 16 * 112 * 112);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s1 = Shape::d1(7);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::d3(2, 3, 4);
        let mut seen = std::collections::HashSet::new();
        for c in 0..2 {
            for h in 0..3 {
                for w in 0..4 {
                    let off = s.offset(&[c, h, w]).unwrap();
                    assert!(off < s.volume());
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), s.volume());
    }

    #[test]
    fn offset_rejects_bad_rank_and_bounds() {
        let s = Shape::d2(2, 3);
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            s.offset(&[0, 3]),
            Err(TensorError::OutOfBounds { dim: 1, .. })
        ));
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::OutOfBounds { dim: 0, .. })
        ));
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert_eq!(Shape::new(&[]), Err(TensorError::EmptyShape));
        assert_eq!(Shape::new(&[2, 0, 3]), Err(TensorError::EmptyShape));
    }

    #[test]
    fn display_formats_dimensions() {
        assert_eq!(Shape::d3(3, 66, 200).to_string(), "[3x66x200]");
    }
}

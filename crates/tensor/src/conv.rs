//! Direct convolution kernels (2D and 3D).
//!
//! The paper evaluates 2D convolutions (AutoPilot, paper Table I) and 3D
//! convolutions (C3D, Eq. 2). These kernels implement the same loop nest the
//! accelerator model accounts for: direct convolution (no im2col) with
//! symmetric zero padding and a configurable stride, matching the Table I
//! layer geometries:
//!
//! * AutoPilot: 5×5 kernels stride 2 (CONV1-3) and 3×3 stride 1 (CONV4-5),
//!   no padding.
//! * C3D: 3×3×3 kernels stride 1 with "same" padding (pad 1), pooling
//!   between layers (pool1 is 1×2×2, the rest 2×2×2, ceil mode).
//!
//! Input layout is `[channels, (depth,) height, width]`; weights are
//! `[out_channels, in_channels, (kd,) kh, kw]`.

use crate::parallel::{parallel_for_mut_cost, ParallelConfig};
use crate::{Shape, Tensor, TensorError};

/// Lane count of the fixed-width accumulator tile the blocked conv kernels
/// carry along each output row (mirrors [`crate::block::PANEL_WIDTH`]).
const LANES: usize = crate::block::PANEL_WIDTH;

/// Geometry of a 2D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding in both spatial dimensions.
    pub pad: usize,
}

impl Conv2dSpec {
    /// Output spatial size for a given input `(h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the padded input is
    /// smaller than the kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize), TensorError> {
        let (ph, pw) = (h + 2 * self.pad, w + 2 * self.pad);
        if ph < self.kh || pw < self.kw {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "conv2d kernel {}x{} larger than padded input {}x{}",
                    self.kh, self.kw, ph, pw
                ),
            });
        }
        Ok((
            (ph - self.kh) / self.stride + 1,
            (pw - self.kw) / self.stride + 1,
        ))
    }

    /// Weight tensor shape `[out_c, in_c, kh, kw]`.
    pub fn weight_shape(&self) -> Shape {
        Shape::d4(self.out_channels, self.in_channels, self.kh, self.kw)
    }

    /// Multiply+add count for one forward pass over an `h×w` input.
    pub fn flops(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = match self.output_hw(h, w) {
            Ok(v) => v,
            Err(_) => return 0,
        };
        2 * (self.out_channels * oh * ow * self.in_channels * self.kh * self.kw) as u64
    }
}

/// Geometry of a 3D convolution (paper Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv3dSpec {
    /// Number of input feature maps.
    pub in_channels: usize,
    /// Number of output feature maps (filters).
    pub out_channels: usize,
    /// Kernel depth (temporal extent).
    pub kd: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride in all three dimensions.
    pub stride: usize,
    /// Symmetric zero padding in all three dimensions.
    pub pad: usize,
}

impl Conv3dSpec {
    /// Output size for a `(d, h, w)` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the padded input is
    /// smaller than the kernel.
    pub fn output_dhw(
        &self,
        d: usize,
        h: usize,
        w: usize,
    ) -> Result<(usize, usize, usize), TensorError> {
        let (pd, ph, pw) = (d + 2 * self.pad, h + 2 * self.pad, w + 2 * self.pad);
        if pd < self.kd || ph < self.kh || pw < self.kw {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "conv3d kernel {}x{}x{} larger than padded input {}x{}x{}",
                    self.kd, self.kh, self.kw, pd, ph, pw
                ),
            });
        }
        Ok((
            (pd - self.kd) / self.stride + 1,
            (ph - self.kh) / self.stride + 1,
            (pw - self.kw) / self.stride + 1,
        ))
    }

    /// Weight tensor shape `[out_c, in_c, kd, kh, kw]`.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero (specs are validated at layer build time).
    pub fn weight_shape(&self) -> Shape {
        Shape::new(&[
            self.out_channels,
            self.in_channels,
            self.kd,
            self.kh,
            self.kw,
        ])
        .expect("conv3d spec fields must be non-zero")
    }

    /// Multiply+add count for one forward pass over a `d×h×w` input.
    pub fn flops(&self, d: usize, h: usize, w: usize) -> u64 {
        let (od, oh, ow) = match self.output_dhw(d, h, w) {
            Ok(v) => v,
            Err(_) => return 0,
        };
        2 * (self.out_channels * od * oh * ow * self.in_channels * self.kd * self.kh * self.kw)
            as u64
    }
}

/// Direct 2D convolution with symmetric zero padding.
///
/// `input`: `[in_c, h, w]`; `weights`: `[out_c, in_c, kh, kw]`;
/// `bias`: `[out_c]`. Returns `[out_c, oh, ow]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when any dimension disagrees with
/// the spec.
pub fn conv2d_forward(
    spec: &Conv2dSpec,
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
) -> Result<Tensor, TensorError> {
    conv2d_forward_with(&ParallelConfig::serial(), spec, input, weights, bias)
}

/// [`conv2d_forward`] with an explicit parallelism budget. Output channels
/// are chunked across workers (granule = one `oh×ow` output plane), so each
/// output element is accumulated by one thread in the serial loop order.
///
/// The kernel is cache-blocked: one filter's weight block
/// `[in_c × kh × kw]` *is* the L1 panel (it is read front-to-back per
/// output plane), and each output row is walked in `LANES`-wide tiles
/// with a fixed-width register accumulator, `kx` innermost over the tile.
/// Per output element the additions still happen in ascending
/// `(ic, ky, kx)` order with the same out-of-bounds skips as the naive
/// triple loop. Under [`crate::simd::SimdLevel::Scalar`] results are
/// bit-identical to [`conv2d_forward_naive`]; under the AVX2 level the
/// interior row tiles use fused multiply-adds, so outputs agree with the
/// oracle within the tolerance of [`crate::simd::fma_tolerance`] (see the
/// accumulation-order contract in [`crate::simd`]).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when any dimension disagrees with
/// the spec.
pub fn conv2d_forward_with(
    config: &ParallelConfig,
    spec: &Conv2dSpec,
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
) -> Result<Tensor, TensorError> {
    let (h, w, oh, ow) = check_conv2d(spec, input, weights, bias)?;
    let x = input.as_slice();
    let wv = weights.as_slice();
    let bv = bias.as_slice();
    let mut out = vec![0.0f32; spec.out_channels * oh * ow];

    let in_plane = h * w;
    let k_plane = spec.kh * spec.kw;
    let w_per_filter = spec.in_channels * k_plane;
    let s = spec.stride;
    let pad = spec.pad;
    let o_plane = oh * ow;
    // Interior columns: every kx tap lands inside [0, w).
    let (int_lo, int_hi) = interior_range(w, spec.kw, s, pad, ow);
    let flops = spec.flops(h, w);
    parallel_for_mut_cost(config, &mut out, o_plane, flops, |chunk_offset, chunk| {
        let first_oc = chunk_offset / o_plane;
        for (p, plane) in chunk.chunks_mut(o_plane).enumerate() {
            let oc = first_oc + p;
            plane.fill(bv[oc]);
            let wf = &wv[oc * w_per_filter..(oc + 1) * w_per_filter];
            for ic in 0..spec.in_channels {
                let xc = &x[ic * in_plane..(ic + 1) * in_plane];
                let wc = &wf[ic * k_plane..(ic + 1) * k_plane];
                for ky in 0..spec.kh {
                    let wrow = &wc[ky * spec.kw..(ky + 1) * spec.kw];
                    for oy in 0..oh {
                        let iy = (oy * s + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow = &xc[iy as usize * w..(iy as usize + 1) * w];
                        let orow = &mut plane[oy * ow..(oy + 1) * ow];
                        conv_row_pass(orow, xrow, wrow, w, s, pad, int_lo, int_hi);
                    }
                }
            }
        }
    });
    Tensor::from_vec(Shape::d3(spec.out_channels, oh, ow), out)
}

/// The unblocked serial oracle for [`conv2d_forward`]: the original
/// per-output triple loop with no row tiling. Kept public so proptests and
/// `kernel_bench` can compare the blocked kernel against the original
/// baseline.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when any dimension disagrees with
/// the spec.
pub fn conv2d_forward_naive(
    spec: &Conv2dSpec,
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
) -> Result<Tensor, TensorError> {
    let (h, w, oh, ow) = check_conv2d(spec, input, weights, bias)?;
    let x = input.as_slice();
    let wv = weights.as_slice();
    let bv = bias.as_slice();
    let mut out = vec![0.0f32; spec.out_channels * oh * ow];

    let in_plane = h * w;
    let k_plane = spec.kh * spec.kw;
    let w_per_filter = spec.in_channels * k_plane;
    let pad = spec.pad as isize;
    let o_plane = oh * ow;
    for (oc, plane) in out.chunks_mut(o_plane).enumerate() {
        let wbase = oc * w_per_filter;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bv[oc];
                let iy0 = (oy * spec.stride) as isize - pad;
                let ix0 = (ox * spec.stride) as isize - pad;
                for ic in 0..spec.in_channels {
                    let ibase = ic * in_plane;
                    let wcbase = wbase + ic * k_plane;
                    for ky in 0..spec.kh {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let irow = ibase + iy as usize * w;
                        let wrow = wcbase + ky * spec.kw;
                        for kx in 0..spec.kw {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += x[irow + ix as usize] * wv[wrow + kx];
                        }
                    }
                }
                plane[oy * ow + ox] = acc;
            }
        }
    }
    Tensor::from_vec(Shape::d3(spec.out_channels, oh, ow), out)
}

fn check_conv2d(
    spec: &Conv2dSpec,
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
) -> Result<(usize, usize, usize, usize), TensorError> {
    let idims = input.shape().dims();
    if idims.len() != 3 || idims[0] != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "conv2d input {} does not match spec in_channels {}",
                input.shape(),
                spec.in_channels
            ),
        });
    }
    if weights.shape() != &spec.weight_shape() {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "conv2d weights {} do not match spec {}",
                weights.shape(),
                spec.weight_shape()
            ),
        });
    }
    if bias.len() != spec.out_channels {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "conv2d bias length {} != out_channels {}",
                bias.len(),
                spec.out_channels
            ),
        });
    }
    let (h, w) = (idims[1], idims[2]);
    let (oh, ow) = spec.output_hw(h, w)?;
    Ok((h, w, oh, ow))
}

/// Output-column range `[lo, hi]` (inclusive) whose kernel taps all land
/// inside `[0, w)`, i.e. where the row pass can skip per-tap bounds checks.
/// Returns an empty range (`lo > hi`) when no column is fully interior.
/// Doc-hidden: exposed so equivalence proptests drive the row-pass kernels
/// with production geometry.
#[doc(hidden)]
pub fn interior_range(
    w: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ow: usize,
) -> (usize, Option<usize>) {
    let lo = pad.div_ceil(stride);
    let hi_num = w as isize + pad as isize - kw as isize;
    if hi_num < 0 || lo >= ow {
        return (lo, None);
    }
    Some((hi_num as usize / stride).min(ow - 1))
        .filter(|&hi| hi >= lo)
        .map_or((lo, None), |hi| (lo, Some(hi)))
}

/// One `(ic, [kz,] ky)` accumulation pass over an output row, dispatched on
/// the resolved [`crate::simd::level`].
///
/// Interior columns run in `LANES`-wide register tiles (`kx` innermost,
/// preserving per-output tap order); the padded border columns fall back to
/// the scalar per-tap-checked walk. The scalar level is bit-identical to
/// visiting each output column independently; the AVX2 level fuses each
/// interior tap into an FMA (same tap order, borders stay exact).
#[inline]
#[allow(clippy::too_many_arguments)]
fn conv_row_pass(
    orow: &mut [f32],
    xrow: &[f32],
    wrow: &[f32],
    w: usize,
    stride: usize,
    pad: usize,
    int_lo: usize,
    int_hi: Option<usize>,
) {
    match crate::simd::level() {
        #[cfg(target_arch = "x86_64")]
        crate::simd::SimdLevel::Avx2 => {
            crate::simd::avx2::conv_row_pass(orow, xrow, wrow, w, stride, pad, int_lo, int_hi);
        }
        _ => conv_row_pass_scalar(orow, xrow, wrow, w, stride, pad, int_lo, int_hi),
    }
}

/// The scalar-level body of [`conv_row_pass`]: `LANES`-wide accumulator
/// tiles with separate multiply and add per tap. Exposed (doc-hidden) so
/// equivalence proptests can pin the SIMD kernel against it directly.
#[doc(hidden)]
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn conv_row_pass_scalar(
    orow: &mut [f32],
    xrow: &[f32],
    wrow: &[f32],
    w: usize,
    stride: usize,
    pad: usize,
    int_lo: usize,
    int_hi: Option<usize>,
) {
    let ow = orow.len();
    let kw = wrow.len();
    let scalar = |orow: &mut [f32], ox: usize| {
        let ix0 = (ox * stride) as isize - pad as isize;
        let mut acc = orow[ox];
        for (kx, &wk) in wrow.iter().enumerate() {
            let ix = ix0 + kx as isize;
            if ix < 0 || ix >= w as isize {
                continue;
            }
            acc += xrow[ix as usize] * wk;
        }
        orow[ox] = acc;
    };
    let Some(int_hi) = int_hi else {
        for ox in 0..ow {
            scalar(orow, ox);
        }
        return;
    };
    for ox in 0..int_lo.min(ow) {
        scalar(orow, ox);
    }
    let mut t = int_lo;
    while t <= int_hi {
        let len = LANES.min(int_hi + 1 - t);
        let mut acc = [0.0f32; LANES];
        acc[..len].copy_from_slice(&orow[t..t + len]);
        for (kx, &wk) in wrow.iter().enumerate() {
            let xbase = t * stride + kx - pad;
            if kw == 1 || stride == 1 {
                // Contiguous loads: the common stride-1 fast path the
                // compiler vectorizes cleanly.
                let xs = &xrow[xbase..xbase + (len - 1) * stride + 1];
                for (l, a) in acc[..len].iter_mut().enumerate() {
                    *a += xs[l * stride] * wk;
                }
            } else {
                for (l, a) in acc[..len].iter_mut().enumerate() {
                    *a += xrow[xbase + l * stride] * wk;
                }
            }
        }
        orow[t..t + len].copy_from_slice(&acc[..len]);
        t += len;
    }
    for ox in (int_hi + 1).max(int_lo)..ow {
        scalar(orow, ox);
    }
}

/// Direct 3D convolution with symmetric zero padding (paper Eq. 2).
///
/// `input`: `[in_c, d, h, w]`; `weights`: `[out_c, in_c, kd, kh, kw]`;
/// `bias`: `[out_c]`. Returns `[out_c, od, oh, ow]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when any dimension disagrees with
/// the spec.
pub fn conv3d_forward(
    spec: &Conv3dSpec,
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
) -> Result<Tensor, TensorError> {
    conv3d_forward_with(&ParallelConfig::serial(), spec, input, weights, bias)
}

/// [`conv3d_forward`] with an explicit parallelism budget. Output filters
/// are chunked across workers (granule = one `od×oh×ow` output volume).
///
/// Blocked exactly like [`conv2d_forward_with`]: the filter's weight block
/// is streamed front-to-back as the L1 panel and output rows run in
/// `LANES`-wide register tiles, preserving the naive per-output
/// `(ic, kz, ky, kx)` tap order. Bit-identical to
/// [`conv3d_forward_naive`] under the scalar SIMD level,
/// tolerance-bounded under AVX2 (see [`crate::simd`]).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when any dimension disagrees with
/// the spec.
pub fn conv3d_forward_with(
    config: &ParallelConfig,
    spec: &Conv3dSpec,
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
) -> Result<Tensor, TensorError> {
    let (d, h, w, od, oh, ow) = check_conv3d(spec, input, weights, bias)?;
    let x = input.as_slice();
    let wv = weights.as_slice();
    let bv = bias.as_slice();
    let mut out = vec![0.0f32; spec.out_channels * od * oh * ow];

    let in_plane = h * w;
    let in_vol = d * in_plane;
    let k_plane = spec.kh * spec.kw;
    let k_vol = spec.kd * k_plane;
    let w_per_filter = spec.in_channels * k_vol;
    let s = spec.stride;
    let pad = spec.pad;
    let o_plane = oh * ow;
    let o_vol = od * o_plane;
    let (int_lo, int_hi) = interior_range(w, spec.kw, s, pad, ow);
    let flops = spec.flops(d, h, w);
    parallel_for_mut_cost(config, &mut out, o_vol, flops, |chunk_offset, chunk| {
        let first_oc = chunk_offset / o_vol;
        for (p, vol) in chunk.chunks_mut(o_vol).enumerate() {
            let oc = first_oc + p;
            vol.fill(bv[oc]);
            let wf = &wv[oc * w_per_filter..(oc + 1) * w_per_filter];
            for ic in 0..spec.in_channels {
                let xc = &x[ic * in_vol..(ic + 1) * in_vol];
                let wc = &wf[ic * k_vol..(ic + 1) * k_vol];
                for kz in 0..spec.kd {
                    let wz = &wc[kz * k_plane..(kz + 1) * k_plane];
                    for oz in 0..od {
                        let iz = (oz * s + kz) as isize - pad as isize;
                        if iz < 0 || iz >= d as isize {
                            continue;
                        }
                        let xz = &xc[iz as usize * in_plane..(iz as usize + 1) * in_plane];
                        let oplane = &mut vol[oz * o_plane..(oz + 1) * o_plane];
                        for ky in 0..spec.kh {
                            let wrow = &wz[ky * spec.kw..(ky + 1) * spec.kw];
                            for oy in 0..oh {
                                let iy = (oy * s + ky) as isize - pad as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let xrow = &xz[iy as usize * w..(iy as usize + 1) * w];
                                let orow = &mut oplane[oy * ow..(oy + 1) * ow];
                                conv_row_pass(orow, xrow, wrow, w, s, pad, int_lo, int_hi);
                            }
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(Shape::d4(spec.out_channels, od, oh, ow), out)
}

/// The unblocked serial oracle for [`conv3d_forward`] (see
/// [`conv2d_forward_naive`]).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when any dimension disagrees with
/// the spec.
pub fn conv3d_forward_naive(
    spec: &Conv3dSpec,
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
) -> Result<Tensor, TensorError> {
    let (d, h, w, od, oh, ow) = check_conv3d(spec, input, weights, bias)?;
    let x = input.as_slice();
    let wv = weights.as_slice();
    let bv = bias.as_slice();
    let mut out = vec![0.0f32; spec.out_channels * od * oh * ow];

    let in_plane = h * w;
    let in_vol = d * in_plane;
    let k_plane = spec.kh * spec.kw;
    let k_vol = spec.kd * k_plane;
    let w_per_filter = spec.in_channels * k_vol;
    let pad = spec.pad as isize;
    let o_vol = od * oh * ow;
    for (oc, vol) in out.chunks_mut(o_vol).enumerate() {
        let wbase = oc * w_per_filter;
        for oz in 0..od {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bv[oc];
                    let iz0 = (oz * spec.stride) as isize - pad;
                    let iy0 = (oy * spec.stride) as isize - pad;
                    let ix0 = (ox * spec.stride) as isize - pad;
                    for ic in 0..spec.in_channels {
                        let icbase = ic * in_vol;
                        let wcbase = wbase + ic * k_vol;
                        for kz in 0..spec.kd {
                            let iz = iz0 + kz as isize;
                            if iz < 0 || iz >= d as isize {
                                continue;
                            }
                            let izbase = icbase + iz as usize * in_plane;
                            let wzbase = wcbase + kz * k_plane;
                            for ky in 0..spec.kh {
                                let iy = iy0 + ky as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let irow = izbase + iy as usize * w;
                                let wrow = wzbase + ky * spec.kw;
                                for kx in 0..spec.kw {
                                    let ix = ix0 + kx as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += x[irow + ix as usize] * wv[wrow + kx];
                                }
                            }
                        }
                    }
                    vol[(oz * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(Shape::d4(spec.out_channels, od, oh, ow), out)
}

fn check_conv3d(
    spec: &Conv3dSpec,
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
) -> Result<(usize, usize, usize, usize, usize, usize), TensorError> {
    let idims = input.shape().dims();
    if idims.len() != 4 || idims[0] != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "conv3d input {} does not match spec in_channels {}",
                input.shape(),
                spec.in_channels
            ),
        });
    }
    if weights.shape() != &spec.weight_shape() {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "conv3d weights {} do not match spec {}",
                weights.shape(),
                spec.weight_shape()
            ),
        });
    }
    if bias.len() != spec.out_channels {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "conv3d bias length {} != out_channels {}",
                bias.len(),
                spec.out_channels
            ),
        });
    }
    let (d, h, w) = (idims[1], idims[2], idims[3]);
    let (od, oh, ow) = spec.output_dhw(d, h, w)?;
    Ok((d, h, w, od, oh, ow))
}

fn pool_extent(size: usize, window: usize, stride: usize, ceil: bool) -> usize {
    if size < window {
        return 0;
    }
    let span = size - window;
    if ceil && !span.is_multiple_of(stride) {
        span / stride + 2
    } else {
        span / stride + 1
    }
}

/// 2D max pooling with a square window and equal stride (floor mode).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the window does not fit.
pub fn max_pool2d(input: &Tensor, window: usize, stride: usize) -> Result<Tensor, TensorError> {
    max_pool2d_mode(input, window, stride, false)
}

/// 2D max pooling with a selectable rounding mode.
///
/// In ceil mode a final partial window is emitted when the stride does not
/// divide the input evenly (Caffe's convention, used by C3D).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the window does not fit.
pub fn max_pool2d_mode(
    input: &Tensor,
    window: usize,
    stride: usize,
    ceil: bool,
) -> Result<Tensor, TensorError> {
    let idims = input.shape().dims();
    if idims.len() != 3 {
        return Err(TensorError::ShapeMismatch {
            context: "max_pool2d expects [c,h,w]".into(),
        });
    }
    let (c, h, w) = (idims[0], idims[1], idims[2]);
    let oh = pool_extent(h, window, stride, ceil);
    let ow = pool_extent(w, window, stride, ceil);
    if oh == 0 || ow == 0 {
        return Err(TensorError::ShapeMismatch {
            context: format!("pool window {window} larger than input {h}x{w}"),
        });
    }
    let x = input.as_slice();
    let mut out = vec![f32::NEG_INFINITY; c * oh * ow];
    for ci in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = f32::NEG_INFINITY;
                for ky in 0..window {
                    let iy = oy * stride + ky;
                    if iy >= h {
                        continue;
                    }
                    for kx in 0..window {
                        let ix = ox * stride + kx;
                        if ix >= w {
                            continue;
                        }
                        m = m.max(x[ci * h * w + iy * w + ix]);
                    }
                }
                out[ci * oh * ow + oy * ow + ox] = m;
            }
        }
    }
    Tensor::from_vec(Shape::d3(c, oh, ow), out)
}

/// 3D max pooling with independent temporal/spatial windows, stride equal to
/// the window, floor mode (the C3D convention: pool1 is 1×2×2, the rest
/// 2×2×2).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the window does not fit.
pub fn max_pool3d(input: &Tensor, wd: usize, whw: usize) -> Result<Tensor, TensorError> {
    max_pool3d_mode(input, wd, whw, false)
}

/// 3D max pooling with a selectable rounding mode (see [`max_pool2d_mode`]).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the window does not fit.
pub fn max_pool3d_mode(
    input: &Tensor,
    wd: usize,
    whw: usize,
    ceil: bool,
) -> Result<Tensor, TensorError> {
    let idims = input.shape().dims();
    if idims.len() != 4 {
        return Err(TensorError::ShapeMismatch {
            context: "max_pool3d expects [c,d,h,w]".into(),
        });
    }
    let (c, d, h, w) = (idims[0], idims[1], idims[2], idims[3]);
    let od = pool_extent(d, wd, wd, ceil);
    let oh = pool_extent(h, whw, whw, ceil);
    let ow = pool_extent(w, whw, whw, ceil);
    if od == 0 || oh == 0 || ow == 0 {
        return Err(TensorError::ShapeMismatch {
            context: format!("pool window {wd}x{whw}x{whw} larger than input {d}x{h}x{w}"),
        });
    }
    let x = input.as_slice();
    let mut out = vec![f32::NEG_INFINITY; c * od * oh * ow];
    for ci in 0..c {
        for oz in 0..od {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut m = f32::NEG_INFINITY;
                    for kz in 0..wd {
                        let iz = oz * wd + kz;
                        if iz >= d {
                            continue;
                        }
                        for ky in 0..whw {
                            let iy = oy * whw + ky;
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..whw {
                                let ix = ox * whw + kx;
                                if ix >= w {
                                    continue;
                                }
                                m = m.max(x[((ci * d + iz) * h + iy) * w + ix]);
                            }
                        }
                    }
                    out[((ci * od + oz) * oh + oy) * ow + ox] = m;
                }
            }
        }
    }
    Tensor::from_vec(Shape::d4(c, od, oh, ow), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1 reproduces the input.
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let input = Tensor::from_vec(Shape::d3(1, 2, 2), vec![1., 2., 3., 4.]).unwrap();
        let w = Tensor::from_vec(spec.weight_shape(), vec![1.0]).unwrap();
        let b = Tensor::from_slice_1d(&[0.0]).unwrap();
        let out = conv2d_forward(&spec, &input, &w, &b).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv2d_sum_kernel() {
        // 2x2 all-ones kernel computes window sums.
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kh: 2,
            kw: 2,
            stride: 1,
            pad: 0,
        };
        let input =
            Tensor::from_vec(Shape::d3(1, 3, 3), (1..=9).map(|v| v as f32).collect()).unwrap();
        let w = Tensor::from_vec(spec.weight_shape(), vec![1.0; 4]).unwrap();
        let b = Tensor::from_slice_1d(&[0.0]).unwrap();
        let out = conv2d_forward(&spec, &input, &w, &b).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv2d_stride_two() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kh: 1,
            kw: 1,
            stride: 2,
            pad: 0,
        };
        let input =
            Tensor::from_vec(Shape::d3(1, 3, 3), (0..9).map(|v| v as f32).collect()).unwrap();
        let w = Tensor::from_vec(spec.weight_shape(), vec![1.0]).unwrap();
        let b = Tensor::from_slice_1d(&[0.0]).unwrap();
        let out = conv2d_forward(&spec, &input, &w, &b).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 2.0, 6.0, 8.0]);
    }

    #[test]
    fn conv2d_same_padding_preserves_size() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(spec.output_hw(5, 7).unwrap(), (5, 7));
        let input = Tensor::full(Shape::d3(1, 3, 3), 1.0);
        let w = Tensor::from_vec(spec.weight_shape(), vec![1.0; 9]).unwrap();
        let b = Tensor::from_slice_1d(&[0.0]).unwrap();
        let out = conv2d_forward(&spec, &input, &w, &b).unwrap();
        // Center sees all 9 ones; corners see only 4.
        assert_eq!(out.get(&[0, 1, 1]).unwrap(), 9.0);
        assert_eq!(out.get(&[0, 0, 0]).unwrap(), 4.0);
    }

    #[test]
    fn conv2d_multi_channel_accumulates() {
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 1,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let input = Tensor::from_vec(Shape::d3(2, 1, 1), vec![3.0, 4.0]).unwrap();
        let w = Tensor::from_vec(spec.weight_shape(), vec![1.0, 10.0]).unwrap();
        let b = Tensor::from_slice_1d(&[0.5]).unwrap();
        let out = conv2d_forward(&spec, &input, &w, &b).unwrap();
        assert_eq!(out.as_slice(), &[3.0 + 40.0 + 0.5]);
    }

    #[test]
    fn conv2d_bias_per_filter() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 2,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let input = Tensor::from_vec(Shape::d3(1, 1, 1), vec![1.0]).unwrap();
        let w = Tensor::from_vec(spec.weight_shape(), vec![2.0, 3.0]).unwrap();
        let b = Tensor::from_slice_1d(&[10.0, 20.0]).unwrap();
        let out = conv2d_forward(&spec, &input, &w, &b).unwrap();
        assert_eq!(out.as_slice(), &[12.0, 23.0]);
    }

    #[test]
    fn conv3d_matches_2d_when_depth_is_one() {
        let spec3 = Conv3dSpec {
            in_channels: 1,
            out_channels: 1,
            kd: 1,
            kh: 2,
            kw: 2,
            stride: 1,
            pad: 0,
        };
        let spec2 = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kh: 2,
            kw: 2,
            stride: 1,
            pad: 0,
        };
        let data: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let in3 = Tensor::from_vec(Shape::d4(1, 1, 3, 3), data.clone()).unwrap();
        let in2 = Tensor::from_vec(Shape::d3(1, 3, 3), data).unwrap();
        let w3 = Tensor::from_vec(spec3.weight_shape(), vec![1.0; 4]).unwrap();
        let w2 = Tensor::from_vec(spec2.weight_shape(), vec![1.0; 4]).unwrap();
        let b = Tensor::from_slice_1d(&[0.0]).unwrap();
        let o3 = conv3d_forward(&spec3, &in3, &w3, &b).unwrap();
        let o2 = conv2d_forward(&spec2, &in2, &w2, &b).unwrap();
        assert_eq!(o3.as_slice(), o2.as_slice());
    }

    #[test]
    fn conv3d_temporal_sum() {
        // Kernel 2x1x1 of ones sums adjacent frames.
        let spec = Conv3dSpec {
            in_channels: 1,
            out_channels: 1,
            kd: 2,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let input = Tensor::from_vec(Shape::d4(1, 3, 1, 1), vec![1.0, 2.0, 4.0]).unwrap();
        let w = Tensor::from_vec(spec.weight_shape(), vec![1.0, 1.0]).unwrap();
        let b = Tensor::from_slice_1d(&[0.0]).unwrap();
        let out = conv3d_forward(&spec, &input, &w, &b).unwrap();
        assert_eq!(out.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn conv3d_same_padding_preserves_size() {
        // The C3D convention: 3x3x3 kernel, stride 1, pad 1.
        let spec = Conv3dSpec {
            in_channels: 1,
            out_channels: 1,
            kd: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(spec.output_dhw(16, 112, 112).unwrap(), (16, 112, 112));
    }

    #[test]
    fn output_geometry() {
        // AutoPilot CONV1: 3x66x200 -> 24x31x98 with 5x5 stride 2.
        let spec = Conv2dSpec {
            in_channels: 3,
            out_channels: 24,
            kh: 5,
            kw: 5,
            stride: 2,
            pad: 0,
        };
        assert_eq!(spec.output_hw(66, 200).unwrap(), (31, 98));
        // kernel larger than input
        assert!(spec.output_hw(4, 4).is_err());
    }

    #[test]
    fn flop_counts() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kh: 2,
            kw: 2,
            stride: 1,
            pad: 0,
        };
        // 2x2 output, 4 macs each, x2 for mul+add.
        assert_eq!(spec.flops(3, 3), 2 * 4 * 4);
    }

    #[test]
    fn max_pool2d_takes_window_max() {
        let input =
            Tensor::from_vec(Shape::d3(1, 2, 4), vec![1., 5., 2., 0., 3., 4., 8., 1.]).unwrap();
        let out = max_pool2d(&input, 2, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2]);
        assert_eq!(out.as_slice(), &[5.0, 8.0]);
    }

    #[test]
    fn max_pool2d_ceil_emits_partial_window() {
        let input = Tensor::from_vec(Shape::d3(1, 1, 5), vec![1., 2., 3., 4., 9.]).unwrap();
        let floor = max_pool2d_mode(&input, 1, 2, false).unwrap();
        assert_eq!(floor.shape().dims(), &[1, 1, 3]);
        let input2 =
            Tensor::from_vec(Shape::d3(1, 3, 3), (1..=9).map(|v| v as f32).collect()).unwrap();
        let ceil = max_pool2d_mode(&input2, 2, 2, true).unwrap();
        assert_eq!(ceil.shape().dims(), &[1, 2, 2]);
        assert_eq!(ceil.as_slice(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn max_pool3d_c3d_style() {
        // pool 1x2x2 keeps depth.
        let input =
            Tensor::from_vec(Shape::d4(1, 2, 2, 2), vec![1., 2., 3., 4., 5., 6., 7., 8.]).unwrap();
        let out = max_pool3d(&input, 1, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 1, 1]);
        assert_eq!(out.as_slice(), &[4.0, 8.0]);
        // pool 2x2x2 collapses depth too.
        let input2 =
            Tensor::from_vec(Shape::d4(1, 2, 2, 2), vec![1., 2., 3., 4., 5., 6., 7., 8.]).unwrap();
        let out2 = max_pool3d(&input2, 2, 2).unwrap();
        assert_eq!(out2.as_slice(), &[8.0]);
    }

    #[test]
    fn max_pool3d_ceil_matches_c3d_pool5() {
        // C3D pool5: 512x2x7x7 --2x2x2 ceil--> 512x1x4x4.
        let input = Tensor::zeros(Shape::d4(1, 2, 7, 7));
        let out = max_pool3d_mode(&input, 2, 2, true).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 4, 4]);
    }

    #[test]
    fn pool_rejects_oversized_window() {
        let input = Tensor::zeros(Shape::d3(1, 2, 2));
        assert!(max_pool2d(&input, 3, 3).is_err());
    }

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|v| (v as f32) * 0.31 - 4.0).collect()
    }

    #[test]
    fn blocked_conv2d_matches_naive() {
        // (in_c, out_c, k, stride, pad, h, w) — borders, stride>1, 1×1.
        // Bit-identical under the scalar SIMD level, tolerance-bounded
        // under AVX2 (interior taps fuse into FMAs).
        for (ic, oc, k, s, p, h, w) in [
            (1usize, 1usize, 1usize, 1usize, 0usize, 5usize, 9usize),
            (2, 3, 3, 1, 1, 6, 11),
            (3, 2, 5, 2, 0, 9, 17),
            (1, 2, 3, 2, 2, 4, 4),
        ] {
            let spec = Conv2dSpec {
                in_channels: ic,
                out_channels: oc,
                kh: k,
                kw: k,
                stride: s,
                pad: p,
            };
            let input = Tensor::from_vec(Shape::d3(ic, h, w), ramp(ic * h * w)).unwrap();
            let wt = Tensor::from_vec(spec.weight_shape(), ramp(oc * ic * k * k)).unwrap();
            let b = Tensor::from_vec(Shape::d1(oc), ramp(oc)).unwrap();
            let naive = conv2d_forward_naive(&spec, &input, &wt, &b).unwrap();
            let blocked = conv2d_forward(&spec, &input, &wt, &b).unwrap();
            let tol = crate::simd::fma_tolerance(ic * k * k + 1, 7000.0);
            let mismatch = crate::simd::kernel_mismatch(blocked.as_slice(), naive.as_slice(), tol);
            assert!(
                mismatch.is_none(),
                "ic={ic} oc={oc} k={k} s={s} p={p} {h}x{w}: {mismatch:?}"
            );
        }
    }

    #[test]
    fn blocked_conv3d_matches_naive() {
        for (s, p) in [(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = Conv3dSpec {
                in_channels: 2,
                out_channels: 3,
                kd: 3,
                kh: 3,
                kw: 3,
                stride: s,
                pad: p,
            };
            let (d, h, w) = (4usize, 5usize, 11usize);
            if spec.output_dhw(d, h, w).is_err() {
                continue;
            }
            let input = Tensor::from_vec(Shape::d4(2, d, h, w), ramp(2 * d * h * w)).unwrap();
            let wt = Tensor::from_vec(spec.weight_shape(), ramp(3 * 2 * 27)).unwrap();
            let b = Tensor::from_vec(Shape::d1(3), ramp(3)).unwrap();
            let naive = conv3d_forward_naive(&spec, &input, &wt, &b).unwrap();
            let blocked = conv3d_forward(&spec, &input, &wt, &b).unwrap();
            let tol = crate::simd::fma_tolerance(2 * 27 + 1, 7000.0);
            let mismatch = crate::simd::kernel_mismatch(blocked.as_slice(), naive.as_slice(), tol);
            assert!(mismatch.is_none(), "s={s} p={p}: {mismatch:?}");
        }
    }
}

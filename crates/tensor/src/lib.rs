//! Tensor substrate for the `reuse-dnn` reproduction.
//!
//! This crate provides the minimal-but-complete numeric foundation the rest
//! of the workspace builds on:
//!
//! * [`Shape`] — dimension bookkeeping with row-major strides.
//! * [`Tensor`] — an owned, row-major `f32` tensor with checked indexing.
//! * [`ops`] — elementwise operations and reductions.
//! * [`matmul`] — dense matrix multiply / matrix-vector kernels used by
//!   fully-connected layers.
//! * [`conv`] — direct 2D and 3D convolution kernels used by convolutional
//!   layers (no im2col; the accelerator model mirrors the direct loop nest).
//! * [`fixed`] — Q-format fixed-point scalars used by the reduced-precision
//!   accelerator study (paper Section VI-A).
//! * [`parallel`] — dependency-free scoped-thread runtime with adaptive
//!   serial/parallel dispatch; kernels partition their outputs across
//!   workers while staying bit-identical to serial.
//! * [`block`] — cache-blocked weight panels and the 16-lane FC microkernel
//!   shared by the forward and reuse-correction hot paths.
//! * [`simd`] — runtime-dispatched `std::arch` kernels (AVX2+FMA fast path,
//!   portable scalar fallback) behind a deterministic accumulation-order
//!   contract; override with `REUSE_SIMD=off|avx2`.
//!
//! # Example
//!
//! ```
//! use reuse_tensor::{Shape, Tensor};
//!
//! let t = Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! assert_eq!(t.get(&[1, 2])?, 6.0);
//! # Ok::<(), reuse_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod conv;
mod error;
pub mod fixed;
pub mod matmul;
pub mod ops;
pub mod parallel;
mod shape;
pub mod simd;
mod tensor;

pub use block::{PackedPanels, PANEL_WIDTH};
pub use error::TensorError;
pub use parallel::{
    hardware_threads, parallel_for_each_mut, parallel_for_each_mut_order, parallel_for_mut,
    parallel_for_mut_cost, parallel_map, ParallelConfig,
};
pub use shape::Shape;
pub use simd::SimdLevel;
pub use tensor::Tensor;

//! Elementwise operations and reductions over [`Tensor`]s.
//!
//! These are the scalar building blocks the `reuse-nn` layers compose.
//! Everything here is deliberately simple and allocation-transparent so the
//! accelerator model in `reuse-accel` can mirror op counts one-to-one.

use crate::{Tensor, TensorError};

/// Elementwise sum `a + b` into a new tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    zip_map(a, b, "add", |x, y| x + y)
}

/// Elementwise difference `a - b` into a new tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    zip_map(a, b, "sub", |x, y| x - y)
}

/// Elementwise (Hadamard) product `a ⊙ b` into a new tensor.
///
/// This is the `⊙` of the LSTM cell equations (paper Fig. 3).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    zip_map(a, b, "mul", |x, y| x * y)
}

/// Elementwise map with an arbitrary scalar function.
pub fn map(a: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let data = a.as_slice().iter().map(|&v| f(v)).collect();
    Tensor::from_vec(a.shape().clone(), data).expect("map preserves length")
}

/// In-place elementwise map.
pub fn map_in_place(a: &mut Tensor, f: impl Fn(f32) -> f32) {
    for v in a.as_mut_slice() {
        *v = f(*v);
    }
}

/// Scales every element by a constant.
pub fn scale(a: &Tensor, k: f32) -> Tensor {
    map(a, |v| v * k)
}

/// Sum of all elements (f64 accumulation to limit drift in reductions).
pub fn sum(a: &Tensor) -> f32 {
    a.as_slice().iter().map(|&v| v as f64).sum::<f64>() as f32
}

/// Arithmetic mean of all elements.
pub fn mean(a: &Tensor) -> f32 {
    sum(a) / a.len() as f32
}

/// Minimum and maximum elements as a `(min, max)` pair.
pub fn min_max(a: &Tensor) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in a.as_slice() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Counts the elements for which `pred` holds.
pub fn count(a: &Tensor, pred: impl Fn(f32) -> bool) -> usize {
    a.as_slice().iter().filter(|&&v| pred(v)).count()
}

fn zip_map(
    a: &Tensor,
    b: &Tensor,
    op: &str,
    f: impl Fn(f32, f32) -> f32,
) -> Result<Tensor, TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            context: format!("{op} between {} and {}", a.shape(), b.shape()),
        });
    }
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Ok(Tensor::from_vec(a.shape().clone(), data).expect("zip_map preserves length"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice_1d(v).unwrap()
    }

    #[test]
    fn add_sub_mul_elementwise() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(mul(&a, &b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Tensor::zeros(Shape::d2(2, 2));
        let b = Tensor::zeros(Shape::d1(4));
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn map_and_scale() {
        let a = t(&[-1.0, 2.0]);
        assert_eq!(map(&a, f32::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(scale(&a, 2.0).as_slice(), &[-2.0, 4.0]);
    }

    #[test]
    fn map_in_place_mutates() {
        let mut a = t(&[1.0, 2.0]);
        map_in_place(&mut a, |v| v + 1.0);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sum(&a), 10.0);
        assert_eq!(mean(&a), 2.5);
        assert_eq!(min_max(&a), (1.0, 4.0));
        assert_eq!(count(&a, |v| v > 2.0), 2);
    }

    #[test]
    fn min_max_of_single_element() {
        let a = t(&[-3.0]);
        assert_eq!(min_max(&a), (-3.0, -3.0));
    }
}

//! Runtime-dispatched SIMD kernels for the forward and correction hot paths.
//!
//! Every hot kernel in this crate exists in two implementations:
//!
//! * a **scalar** path — the original cache-blocked loops, bit-identical to
//!   the naive serial oracles (`matmul_naive`, `conv*_forward_naive`, the
//!   scattered correction walk);
//! * an **AVX2+FMA** path — explicit `std::arch` intrinsics that widen each
//!   loop to 256-bit lanes and fuse every multiply-add.
//!
//! The active path is resolved **once per process** by [`level`] (a
//! [`OnceLock`]): AVX2+FMA when the host supports both, scalar otherwise.
//! The environment variable `REUSE_SIMD` overrides detection for testing:
//!
//! * `REUSE_SIMD=off` (or `scalar`) — force the scalar path everywhere;
//! * `REUSE_SIMD=avx2` — request the AVX2 path (silently falls back to
//!   scalar when the host lacks AVX2/FMA, so test scripts stay portable).
//!
//! # Accumulation-order contract
//!
//! Dispatch never changes *which* terms a kernel sums, only how the sums
//! are rounded:
//!
//! * **Scalar level** keeps the historical contract: per output element,
//!   separate multiply then add in ascending input order, skipping exact
//!   `0.0` inputs — bit-identical to the naive oracles for every shape.
//! * **AVX2 level** computes, per output element, the same terms in the
//!   same ascending order but with **fused** multiply-adds and **no zero
//!   skip**. Adding `x·w` with `x == 0.0` is exact (for finite weights), so
//!   the only difference from the scalar path is the single rounding of
//!   each fused step. Scalar tail elements (output counts that do not fill
//!   a vector) use [`f32::mul_add`], which rounds identically to the vector
//!   lanes — so a given output's value never depends on whether it landed
//!   in a full vector or a tail, and therefore never depends on how worker
//!   threads chunk the output range.
//!
//! Both levels keep every output element's accumulation confined to one
//! chain on one thread, so results are deterministic for any thread count.
//! Under the scalar level the kernels are *bit-exact* against the naive
//! oracles; under AVX2 they agree within an ULP-scale bound that
//! [`fma_tolerance`] over-approximates. Tests assert the right property for
//! the active level via [`kernel_mismatch`].
//!
//! Quantization (`reuse-quant`) is the exception: its AVX2 kernel emulates
//! `f32::round` exactly, so quantized codes — and hence changed-input sets,
//! reuse hit rates, and MAC counts — are bit-identical across levels.

use std::sync::OnceLock;

/// The SIMD instruction level the kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar loops; bit-identical to the naive serial oracles.
    Scalar,
    /// 256-bit AVX2 lanes with fused multiply-add (x86-64 only).
    Avx2,
}

impl SimdLevel {
    /// Short stable name for logs and benchmark provenance
    /// (`"scalar"` / `"avx2+fma"`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2+fma",
        }
    }
}

static LEVEL: OnceLock<SimdLevel> = OnceLock::new();

/// The active kernel level, resolved once per process: the detected level
/// unless `REUSE_SIMD` overrides it (see the module docs).
pub fn level() -> SimdLevel {
    *LEVEL.get_or_init(|| match std::env::var("REUSE_SIMD").as_deref() {
        Ok("off") | Ok("scalar") | Ok("0") => SimdLevel::Scalar,
        // An explicit fast-path request still honors the hardware check so
        // forced-env test runs stay portable to scalar-only hosts.
        _ => detected(),
    })
}

/// The best level the host supports, ignoring the `REUSE_SIMD` override.
/// Recorded in benchmark provenance alongside the active level.
pub fn detected() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

/// Whether the active level guarantees bit-identity to the naive serial
/// oracles (true exactly when [`level`] is [`SimdLevel::Scalar`]).
///
/// Exactness tests use this to pick their assertion: bit-equality under the
/// scalar contract, [`fma_tolerance`]-bounded closeness under AVX2.
pub fn is_bit_exact() -> bool {
    level() == SimdLevel::Scalar
}

/// A sound (deliberately loose) absolute bound on the difference between a
/// fused and an unfused accumulation of `terms` products each bounded by
/// `max_abs_term`: `4 · terms² · max_abs_term · ε`.
///
/// Each of the `terms` rounding steps differs by at most one ULP of the
/// running sum, which is bounded by `terms · max_abs_term`; the factor 4
/// absorbs the product rounding. Real kernel deviations are orders of
/// magnitude smaller; real indexing bugs are orders of magnitude larger, so
/// the looseness costs no detection power.
pub fn fma_tolerance(terms: usize, max_abs_term: f32) -> f32 {
    let n = terms.max(1) as f32;
    4.0 * n * n * max_abs_term.abs().max(f32::MIN_POSITIVE) * f32::EPSILON
}

/// Level-aware kernel comparison: returns `None` when `actual` matches
/// `oracle` under the active level's contract, or a description of the
/// first violation.
///
/// * Scalar level: the slices must be **bit-identical** (the scalar kernels
///   promise oracle bit-exactness).
/// * AVX2 level: elementwise `|a − o| ≤ tol`, with NaN matching NaN.
pub fn kernel_mismatch(actual: &[f32], oracle: &[f32], tol: f32) -> Option<String> {
    if actual.len() != oracle.len() {
        return Some(format!(
            "length mismatch: actual {} vs oracle {}",
            actual.len(),
            oracle.len()
        ));
    }
    for (j, (&a, &o)) in actual.iter().zip(oracle.iter()).enumerate() {
        let ok = if is_bit_exact() {
            a.to_bits() == o.to_bits()
        } else {
            (a.is_nan() && o.is_nan()) || (a - o).abs() <= tol
        };
        if !ok {
            return Some(format!(
                "[{j}] actual {a:e} vs oracle {o:e} (|Δ| {:e}, tol {tol:e}, level {})",
                (a - o).abs(),
                level().name()
            ));
        }
    }
    None
}

/// `dst[j] += scale · row[j]`, dispatched on [`level`].
///
/// The scalar level performs separate multiply-then-add per element
/// (bit-identical to the plain loop it replaces); AVX2 fuses each step.
/// Used by the LSTM from-scratch gate accumulation, where callers may still
/// skip whole rows with `scale == 0.0` — the skip is exact at both levels.
pub fn row_axpy(dst: &mut [f32], row: &[f32], scale: f32) {
    debug_assert_eq!(dst.len(), row.len());
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => avx2::row_axpy(dst, row, scale),
        _ => {
            for (d, &r) in dst.iter_mut().zip(row.iter()) {
                *d += scale * r;
            }
        }
    }
}

/// AVX2+FMA kernel implementations (x86-64 only).
///
/// Every function is a safe wrapper that panics when the host lacks
/// AVX2/FMA; the dispatchers in `block`/`matmul`/`conv` only call them when
/// [`level`] resolved to [`SimdLevel::Avx2`], and the SIMD==scalar
/// equivalence suites gate on `is_x86_feature_detected!` before calling
/// them directly.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use core::arch::x86_64::*;

    use crate::block::{PackedPanels, DELTA_BATCH, PANEL_WIDTH, TILE_LANES, TILE_PANELS};

    // The kernels hand-unroll two 256-bit registers per panel row.
    const _: () = assert!(PANEL_WIDTH == 16);
    const _: () = assert!(TILE_PANELS == 4);
    const _: () = assert!(DELTA_BATCH == 4);

    /// Whether this host can run the AVX2+FMA kernels.
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    /// Asserts the host can run the AVX2+FMA kernels. Downstream crates
    /// (e.g. `reuse-quant`) call this before entering their own
    /// `target_feature` kernels.
    #[track_caller]
    pub fn require() {
        assert!(
            available(),
            "AVX2+FMA kernels called on an unsupported host"
        );
    }

    /// AVX2 walk of a run of output panels starting at `first_panel`:
    /// the FC forward hot loop (`out[j] += Σ_i x[i]·w[i][j]`, `out` enters
    /// holding biases or partial sums). Four panels (eight 256-bit
    /// accumulators) in flight for full tiles, one panel for the remainder.
    ///
    /// # Panics
    ///
    /// Panics when the host lacks AVX2/FMA.
    pub fn fc_panels(packed: &PackedPanels, x: &[f32], first_panel: usize, out: &mut [f32]) {
        require();
        unsafe { fc_panels_impl(packed, x, first_panel, out) }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn fc_panels_impl(
        packed: &PackedPanels,
        x: &[f32],
        first_panel: usize,
        out: &mut [f32],
    ) {
        let mut p = first_panel;
        for seg in out.chunks_mut(TILE_LANES) {
            if seg.len() == TILE_LANES {
                unsafe {
                    tile4_kernel(
                        [
                            packed.panel(p),
                            packed.panel(p + 1),
                            packed.panel(p + 2),
                            packed.panel(p + 3),
                        ],
                        x,
                        seg,
                    );
                }
                p += TILE_PANELS;
            } else {
                for sub in seg.chunks_mut(PANEL_WIDTH) {
                    unsafe { panel_kernel(packed.panel(p), x, sub) };
                    p += 1;
                }
            }
        }
    }

    /// Four 16-lane panels accumulated together: eight independent FMA
    /// chains, enough to hide the 4-5 cycle FMA latency on one core.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile4_kernel(panels: [&[f32]; TILE_PANELS], x: &[f32], seg: &mut [f32]) {
        debug_assert_eq!(seg.len(), TILE_LANES);
        let sp = seg.as_mut_ptr();
        let mut acc = [_mm256_setzero_ps(); 8];
        for (h, a) in acc.iter_mut().enumerate() {
            *a = unsafe { _mm256_loadu_ps(sp.add(8 * h)) };
        }
        for (i, &xi) in x.iter().enumerate() {
            let xv = _mm256_set1_ps(xi);
            let base = i * PANEL_WIDTH;
            for (t, panel) in panels.iter().enumerate() {
                let wp = unsafe { panel.as_ptr().add(base) };
                let w0 = unsafe { _mm256_loadu_ps(wp) };
                let w1 = unsafe { _mm256_loadu_ps(wp.add(8)) };
                acc[2 * t] = _mm256_fmadd_ps(xv, w0, acc[2 * t]);
                acc[2 * t + 1] = _mm256_fmadd_ps(xv, w1, acc[2 * t + 1]);
            }
        }
        for (h, a) in acc.iter().enumerate() {
            unsafe { _mm256_storeu_ps(sp.add(8 * h), *a) };
        }
    }

    /// One 16-lane panel (two FMA chains) for tile remainders; `seg` may be
    /// a partial panel (the zero-padded tail lanes are computed in registers
    /// and discarded on store).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn panel_kernel(panel: &[f32], x: &[f32], seg: &mut [f32]) {
        debug_assert!(seg.len() <= PANEL_WIDTH);
        let mut buf = [0.0f32; PANEL_WIDTH];
        buf[..seg.len()].copy_from_slice(seg);
        let mut a0 = unsafe { _mm256_loadu_ps(buf.as_ptr()) };
        let mut a1 = unsafe { _mm256_loadu_ps(buf.as_ptr().add(8)) };
        for (i, &xi) in x.iter().enumerate() {
            let xv = _mm256_set1_ps(xi);
            let wp = unsafe { panel.as_ptr().add(i * PANEL_WIDTH) };
            a0 = _mm256_fmadd_ps(xv, unsafe { _mm256_loadu_ps(wp) }, a0);
            a1 = _mm256_fmadd_ps(xv, unsafe { _mm256_loadu_ps(wp.add(8)) }, a1);
        }
        unsafe {
            _mm256_storeu_ps(buf.as_mut_ptr(), a0);
            _mm256_storeu_ps(buf.as_mut_ptr().add(8), a1);
        }
        seg.copy_from_slice(&buf[..seg.len()]);
    }

    /// AVX2 matmul over a worker's span of `C` rows: panels **outer**, rows
    /// of `A` in register blocks of four, so each streamed panel row is
    /// reused by four broadcast FMAs (eight accumulators in flight — the
    /// compute-bound shape, ~6x the scalar blocked kernel on one core).
    ///
    /// `c_chunk` covers rows `first_row ..` of `C` (`c_chunk.len() % n ==
    /// 0`) and must enter zeroed; `a` is the full `[m, k]` matrix.
    ///
    /// # Panics
    ///
    /// Panics when the host lacks AVX2/FMA.
    pub fn matmul_rows(
        packed: &PackedPanels,
        a: &[f32],
        k: usize,
        first_row: usize,
        n: usize,
        c_chunk: &mut [f32],
    ) {
        require();
        debug_assert_eq!(c_chunk.len() % n, 0);
        debug_assert_eq!(packed.n_in(), k);
        debug_assert_eq!(packed.n_out(), n);
        unsafe { matmul_rows_impl(packed, a, k, first_row, n, c_chunk) }
    }

    /// Panel-block working-set target. A block of panels (`panels × k × 16`
    /// floats) is kept within this budget so every 4-row pass re-reads it
    /// from L2 instead of re-streaming the whole `B` from L3 — for a
    /// 400×2000 `B` that cuts panel traffic from one full-matrix stream per
    /// row group to one per block. Purely a traversal-order change: each
    /// `C[r]` span is still produced by exactly one kernel call, so results
    /// are independent of the block size.
    const MATMUL_L2_BLOCK_BYTES: usize = 192 * 1024;

    #[target_feature(enable = "avx2,fma")]
    unsafe fn matmul_rows_impl(
        packed: &PackedPanels,
        a: &[f32],
        k: usize,
        first_row: usize,
        n: usize,
        c_chunk: &mut [f32],
    ) {
        let rows = c_chunk.len() / n;
        let cp = c_chunk.as_mut_ptr();
        let n_panels = packed.n_panels();
        let panel_bytes = k * PANEL_WIDTH * core::mem::size_of::<f32>();
        let block = (MATMUL_L2_BLOCK_BYTES / panel_bytes.max(1)).max(1);
        let mut pb = 0;
        while pb < n_panels {
            let pend = (pb + block).min(n_panels);
            let mut r = 0;
            while r + 4 <= rows {
                let arows = [
                    &a[(first_row + r) * k..(first_row + r + 1) * k],
                    &a[(first_row + r + 1) * k..(first_row + r + 2) * k],
                    &a[(first_row + r + 2) * k..(first_row + r + 3) * k],
                    &a[(first_row + r + 3) * k..(first_row + r + 4) * k],
                ];
                for p in pb..pend {
                    let panel = packed.panel(p);
                    let col0 = p * PANEL_WIDTH;
                    let lanes = (n - col0).min(PANEL_WIDTH);
                    unsafe { rows4_kernel(panel, arows, cp.add(r * n + col0), n, lanes) };
                }
                r += 4;
            }
            while r < rows {
                let arow = &a[(first_row + r) * k..(first_row + r + 1) * k];
                for p in pb..pend {
                    let panel = packed.panel(p);
                    let col0 = p * PANEL_WIDTH;
                    let lanes = (n - col0).min(PANEL_WIDTH);
                    let crow =
                        unsafe { core::slice::from_raw_parts_mut(cp.add(r * n + col0), lanes) };
                    unsafe { panel_kernel(panel, arow, crow) };
                }
                r += 1;
            }
            pb = pend;
        }
    }

    /// Four `A` rows × one 16-lane panel: eight accumulators, two panel
    /// loads and four broadcasts per input — the register-blocked matmul
    /// microkernel. `c` points at `C[first_row + r][col0]`; rows are `n`
    /// apart; only `lanes` columns are stored.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn rows4_kernel(panel: &[f32], arows: [&[f32]; 4], c: *mut f32, n: usize, lanes: usize) {
        let k = arows[0].len();
        let mut acc = [_mm256_setzero_ps(); 8];
        for i in 0..k {
            let wp = unsafe { panel.as_ptr().add(i * PANEL_WIDTH) };
            let w0 = unsafe { _mm256_loadu_ps(wp) };
            let w1 = unsafe { _mm256_loadu_ps(wp.add(8)) };
            for (r, arow) in arows.iter().enumerate() {
                let b = _mm256_set1_ps(unsafe { *arow.get_unchecked(i) });
                acc[2 * r] = _mm256_fmadd_ps(b, w0, acc[2 * r]);
                acc[2 * r + 1] = _mm256_fmadd_ps(b, w1, acc[2 * r + 1]);
            }
        }
        if lanes == PANEL_WIDTH {
            for r in 0..4 {
                unsafe {
                    _mm256_storeu_ps(c.add(r * n), acc[2 * r]);
                    _mm256_storeu_ps(c.add(r * n + 8), acc[2 * r + 1]);
                }
            }
        } else {
            let mut buf = [0.0f32; PANEL_WIDTH];
            for r in 0..4 {
                unsafe {
                    _mm256_storeu_ps(buf.as_mut_ptr(), acc[2 * r]);
                    _mm256_storeu_ps(buf.as_mut_ptr().add(8), acc[2 * r + 1]);
                    core::ptr::copy_nonoverlapping(buf.as_ptr(), c.add(r * n), lanes);
                }
            }
        }
    }

    /// AVX2 reuse-correction sweep over one worker's span of the buffered
    /// pre-activations: `chunk = z[offset .. offset + chunk.len()]`,
    /// `chunk[j] += Σ_b Δ_b · w[i_b][offset + j]` with deltas applied in
    /// list order, [`DELTA_BATCH`] weight rows streamed per pass (paper
    /// Eq. 10). Tail outputs use `mul_add`, matching the vector lanes
    /// bit-for-bit, so any worker chunking yields the same result.
    ///
    /// # Panics
    ///
    /// Panics when the host lacks AVX2/FMA.
    pub fn apply_deltas(
        w: &[f32],
        n_out: usize,
        offset: usize,
        deltas: &[(u32, f32)],
        chunk: &mut [f32],
    ) {
        require();
        unsafe { apply_deltas_impl(w, n_out, offset, deltas, chunk) }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn apply_deltas_impl(
        w: &[f32],
        n_out: usize,
        offset: usize,
        deltas: &[(u32, f32)],
        chunk: &mut [f32],
    ) {
        let len = chunk.len();
        let zp = chunk.as_mut_ptr();
        let mut batches = deltas.chunks_exact(DELTA_BATCH);
        for batch in batches.by_ref() {
            let (i0, d0) = batch[0];
            let (i1, d1) = batch[1];
            let (i2, d2) = batch[2];
            let (i3, d3) = batch[3];
            let r0 = w[i0 as usize * n_out + offset..][..len].as_ptr();
            let r1 = w[i1 as usize * n_out + offset..][..len].as_ptr();
            let r2 = w[i2 as usize * n_out + offset..][..len].as_ptr();
            let r3 = w[i3 as usize * n_out + offset..][..len].as_ptr();
            let (v0, v1) = (_mm256_set1_ps(d0), _mm256_set1_ps(d1));
            let (v2, v3) = (_mm256_set1_ps(d2), _mm256_set1_ps(d3));
            let mut j = 0;
            while j + 8 <= len {
                unsafe {
                    let mut z = _mm256_loadu_ps(zp.add(j));
                    z = _mm256_fmadd_ps(v0, _mm256_loadu_ps(r0.add(j)), z);
                    z = _mm256_fmadd_ps(v1, _mm256_loadu_ps(r1.add(j)), z);
                    z = _mm256_fmadd_ps(v2, _mm256_loadu_ps(r2.add(j)), z);
                    z = _mm256_fmadd_ps(v3, _mm256_loadu_ps(r3.add(j)), z);
                    _mm256_storeu_ps(zp.add(j), z);
                }
                j += 8;
            }
            while j < len {
                unsafe {
                    let mut z = *zp.add(j);
                    z = d0.mul_add(*r0.add(j), z);
                    z = d1.mul_add(*r1.add(j), z);
                    z = d2.mul_add(*r2.add(j), z);
                    z = d3.mul_add(*r3.add(j), z);
                    *zp.add(j) = z;
                }
                j += 1;
            }
        }
        for &(i, delta) in batches.remainder() {
            let row = w[i as usize * n_out + offset..][..len].as_ptr();
            let dv = _mm256_set1_ps(delta);
            let mut j = 0;
            while j + 8 <= len {
                unsafe {
                    let z = _mm256_fmadd_ps(
                        dv,
                        _mm256_loadu_ps(row.add(j)),
                        _mm256_loadu_ps(zp.add(j)),
                    );
                    _mm256_storeu_ps(zp.add(j), z);
                }
                j += 8;
            }
            while j < len {
                unsafe { *zp.add(j) = delta.mul_add(*row.add(j), *zp.add(j)) };
                j += 1;
            }
        }
    }

    /// AVX2 accumulation pass over one convolution output row (one
    /// `(ic, [kz,] ky)` slice of taps). Interior columns — where every `kx`
    /// tap is in bounds — run eight outputs per FMA step, with contiguous
    /// loads at stride 1 and gathers otherwise; padded border columns keep
    /// the scalar per-tap-checked walk (plain multiply-add, bit-identical
    /// to the naive oracle).
    ///
    /// # Panics
    ///
    /// Panics when the host lacks AVX2/FMA.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_row_pass(
        orow: &mut [f32],
        xrow: &[f32],
        wrow: &[f32],
        w: usize,
        stride: usize,
        pad: usize,
        int_lo: usize,
        int_hi: Option<usize>,
    ) {
        require();
        unsafe { conv_row_pass_impl(orow, xrow, wrow, w, stride, pad, int_lo, int_hi) }
    }

    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn conv_row_pass_impl(
        orow: &mut [f32],
        xrow: &[f32],
        wrow: &[f32],
        w: usize,
        stride: usize,
        pad: usize,
        int_lo: usize,
        int_hi: Option<usize>,
    ) {
        let ow = orow.len();
        let scalar = |orow: &mut [f32], ox: usize| {
            let ix0 = (ox * stride) as isize - pad as isize;
            let mut acc = orow[ox];
            for (kx, &wk) in wrow.iter().enumerate() {
                let ix = ix0 + kx as isize;
                if ix < 0 || ix >= w as isize {
                    continue;
                }
                acc += xrow[ix as usize] * wk;
            }
            orow[ox] = acc;
        };
        let Some(int_hi) = int_hi else {
            for ox in 0..ow {
                scalar(orow, ox);
            }
            return;
        };
        for ox in 0..int_lo.min(ow) {
            scalar(orow, ox);
        }
        let op = orow.as_mut_ptr();
        let xp = xrow.as_ptr();
        #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
        let idx = _mm256_mullo_epi32(
            _mm256_set1_epi32(stride as i32),
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        );
        let mut t = int_lo;
        while t + 8 <= int_hi + 1 {
            let mut acc = unsafe { _mm256_loadu_ps(op.add(t)) };
            for (kx, &wk) in wrow.iter().enumerate() {
                let xbase = t * stride + kx - pad;
                let xv = if stride == 1 {
                    unsafe { _mm256_loadu_ps(xp.add(xbase)) }
                } else {
                    unsafe { _mm256_i32gather_ps::<4>(xp.add(xbase), idx) }
                };
                acc = _mm256_fmadd_ps(_mm256_set1_ps(wk), xv, acc);
            }
            unsafe { _mm256_storeu_ps(op.add(t), acc) };
            t += 8;
        }
        // Interior remainder: per-column fused chain (same rounding as the
        // vector lanes; tap order is ascending kx either way).
        for (ox, out) in orow.iter_mut().enumerate().take(int_hi + 1).skip(t) {
            let xbase = ox * stride - pad;
            let mut acc = *out;
            for (kx, &wk) in wrow.iter().enumerate() {
                acc = xrow[xbase + kx].mul_add(wk, acc);
            }
            *out = acc;
        }
        for ox in (int_hi + 1).max(int_lo)..ow {
            scalar(orow, ox);
        }
    }

    /// `dst[j] += scale · row[j]` with fused vector steps and a `mul_add`
    /// tail (see [`super::row_axpy`]).
    ///
    /// # Panics
    ///
    /// Panics when the host lacks AVX2/FMA.
    pub fn row_axpy(dst: &mut [f32], row: &[f32], scale: f32) {
        require();
        debug_assert_eq!(dst.len(), row.len());
        unsafe { row_axpy_impl(dst, row, scale) }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn row_axpy_impl(dst: &mut [f32], row: &[f32], scale: f32) {
        let len = dst.len();
        let dp = dst.as_mut_ptr();
        let rp = row.as_ptr();
        let sv = _mm256_set1_ps(scale);
        let mut j = 0;
        while j + 8 <= len {
            unsafe {
                let d = _mm256_fmadd_ps(sv, _mm256_loadu_ps(rp.add(j)), _mm256_loadu_ps(dp.add(j)));
                _mm256_storeu_ps(dp.add(j), d);
            }
            j += 8;
        }
        while j < len {
            unsafe { *dp.add(j) = scale.mul_add(*rp.add(j), *dp.add(j)) };
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_name_is_stable() {
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(SimdLevel::Avx2.name(), "avx2+fma");
    }

    #[test]
    fn level_is_detected_or_overridden() {
        // Whatever the environment, the resolved level must be one the
        // hardware can actually run.
        let l = level();
        assert!(l == SimdLevel::Scalar || detected() == SimdLevel::Avx2);
        assert_eq!(is_bit_exact(), l == SimdLevel::Scalar);
    }

    #[test]
    fn tolerance_grows_with_terms_and_magnitude() {
        assert!(fma_tolerance(100, 1.0) > fma_tolerance(10, 1.0));
        assert!(fma_tolerance(10, 100.0) > fma_tolerance(10, 1.0));
        assert!(fma_tolerance(0, 0.0) > 0.0);
    }

    #[test]
    fn mismatch_reports_divergence() {
        assert!(kernel_mismatch(&[1.0, 2.0], &[1.0, 2.0], 0.0).is_none());
        assert!(kernel_mismatch(&[1.0], &[1.0, 2.0], 1.0).is_some());
        assert!(kernel_mismatch(&[1.0, 5.0], &[1.0, 2.0], 1e-3).is_some());
        if !is_bit_exact() {
            assert!(kernel_mismatch(&[1.0 + 1e-7], &[1.0], 1e-5).is_none());
            assert!(kernel_mismatch(&[f32::NAN], &[f32::NAN], 1e-5).is_none());
        }
    }

    #[test]
    fn row_axpy_accumulates() {
        let mut dst = vec![1.0f32; 19];
        let row: Vec<f32> = (0..19).map(|v| v as f32).collect();
        row_axpy(&mut dst, &row, 2.0);
        for (j, &d) in dst.iter().enumerate() {
            assert!((d - (1.0 + 2.0 * j as f32)).abs() < 1e-5, "j={j}");
        }
    }
}

use crate::{Shape, TensorError};

/// An owned, row-major `f32` tensor.
///
/// `Tensor` is the single data container used throughout the workspace for
/// layer inputs, outputs, weights and intermediate buffers. It deliberately
/// stays small: checked construction, checked/unchecked element access, and
/// a flat view of the data for kernels that do their own indexing.
///
/// # Example
///
/// ```
/// use reuse_tensor::{Shape, Tensor};
///
/// let mut t = Tensor::zeros(Shape::d2(2, 2));
/// t.set(&[0, 1], 3.5)?;
/// assert_eq!(t.get(&[0, 1])?, 3.5);
/// assert_eq!(t.as_slice(), &[0.0, 3.5, 0.0, 0.0]);
/// # Ok::<(), reuse_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; volume],
        }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: Shape, value: f32) -> Self {
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![value; volume],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the shape volume.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice_1d(data: &[f32]) -> Result<Self, TensorError> {
        let shape = Shape::new(&[data.len()])?;
        Ok(Tensor {
            shape,
            data: data.to_vec(),
        })
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize) -> f32) -> Self {
        let volume = shape.volume();
        let data = (0..volume).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A flat, row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A mutable flat, row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::offset`].
    pub fn get(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates indexing errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reinterprets the tensor with a new shape of identical volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the volumes differ.
    pub fn reshape(self, shape: Shape) -> Result<Self, TensorError> {
        if shape.volume() != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "cannot reshape {} (volume {}) to {} (volume {})",
                    self.shape,
                    self.data.len(),
                    shape,
                    shape.volume()
                ),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// The maximum absolute element, or 0.0 for all-zero tensors.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Index of the maximum element (ties resolve to the first occurrence).
    ///
    /// This is the classification decision used by the accuracy-proxy
    /// evaluation in `reuse-workloads`.
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|v| (*v as f64) * (*v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Euclidean distance to another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn l2_distance(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                context: format!("l2_distance between {} and {}", self.shape, other.shape),
            });
        }
        let sum: f64 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| {
                let d = (*a as f64) - (*b as f64);
                d * d
            })
            .sum();
        Ok(sum.sqrt() as f32)
    }

    /// Returns true when every element differs from `other` by at most `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                context: format!("approx_eq between {} and {}", self.shape, other.shape),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .all(|(a, b)| (a - b).abs() <= tol))
    }
}

impl AsRef<[f32]> for Tensor {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(Shape::d2(2, 3));
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Tensor::full(Shape::d1(4), 2.5);
        assert!(f.as_slice().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 5]),
            Err(TensorError::LengthMismatch {
                expected: 4,
                actual: 5
            })
        ));
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(Shape::d3(2, 2, 2));
        t.set(&[1, 0, 1], -7.0).unwrap();
        assert_eq!(t.get(&[1, 0, 1]).unwrap(), -7.0);
        assert_eq!(t.get(&[0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.clone().reshape(Shape::d2(3, 2)).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(Shape::d2(4, 2)).is_err());
    }

    #[test]
    fn argmax_picks_first_maximum() {
        let t = Tensor::from_slice_1d(&[0.1, 0.9, 0.9, 0.2]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn l2_norm_and_distance() {
        let a = Tensor::from_slice_1d(&[3.0, 4.0]).unwrap();
        let b = Tensor::from_slice_1d(&[0.0, 0.0]).unwrap();
        assert!((a.l2_norm() - 5.0).abs() < 1e-6);
        assert!((a.l2_distance(&b).unwrap() - 5.0).abs() < 1e-6);
        let c = Tensor::from_slice_1d(&[1.0]).unwrap();
        assert!(a.l2_distance(&c).is_err());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::from_slice_1d(&[1.0, 2.0]).unwrap();
        let b = Tensor::from_slice_1d(&[1.0005, 2.0]).unwrap();
        assert!(a.approx_eq(&b, 1e-3).unwrap());
        assert!(!a.approx_eq(&b, 1e-4).unwrap());
    }

    #[test]
    fn from_fn_uses_flat_indices() {
        let t = Tensor::from_fn(Shape::d2(2, 2), |i| i as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn max_abs_handles_negatives() {
        let t = Tensor::from_slice_1d(&[-3.0, 2.0, 1.0]).unwrap();
        assert_eq!(t.max_abs(), 3.0);
    }
}

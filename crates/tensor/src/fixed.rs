//! Q-format fixed-point arithmetic for the reduced-precision accelerator
//! study (paper Section VI-A).
//!
//! The paper's 8-bit variant represents weights and inputs as signed 8-bit
//! fixed-point values. [`Q8`] models one such value together with its scale;
//! [`quantize_slice_q8`] converts an `f32` slice given a symmetric range.
//! Because an 8-bit value space is itself a 256-cluster linear quantizer,
//! switching the accelerator to Q8 both raises input similarity (fewer
//! distinguishable values) and shrinks every memory/compute cost — exactly
//! the effect Section VI-A reports.

use std::fmt;

/// A signed 8-bit fixed-point value with an associated power-free scale.
///
/// The represented real value is `raw as f32 * scale`.
///
/// # Example
///
/// ```
/// use reuse_tensor::fixed::Q8;
///
/// let q = Q8::from_f32(0.5, 1.0 / 127.0);
/// assert!((q.to_f32() - 0.5).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Q8 {
    raw: i8,
    scale: f32,
}

impl Q8 {
    /// Quantizes an `f32` to the nearest representable Q8 value, saturating
    /// at the i8 range.
    pub fn from_f32(value: f32, scale: f32) -> Self {
        let raw = (value / scale)
            .round()
            .clamp(i8::MIN as f32, i8::MAX as f32) as i8;
        Q8 { raw, scale }
    }

    /// The raw integer code.
    pub fn raw(&self) -> i8 {
        self.raw
    }

    /// The scale (real value per unit code).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Dequantizes back to `f32`.
    pub fn to_f32(&self) -> f32 {
        self.raw as f32 * self.scale
    }
}

impl fmt::Display for Q8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}q({:.6})", self.raw, self.scale)
    }
}

/// Derives the symmetric Q8 scale covering `[-max_abs, max_abs]`.
///
/// A `max_abs` of zero yields a unit scale so zero tensors stay representable.
pub fn q8_scale(max_abs: f32) -> f32 {
    if max_abs == 0.0 {
        1.0
    } else {
        max_abs / 127.0
    }
}

/// Quantizes a slice to raw i8 codes under a shared scale.
pub fn quantize_slice_q8(values: &[f32], scale: f32) -> Vec<i8> {
    values
        .iter()
        .map(|&v| (v / scale).round().clamp(i8::MIN as f32, i8::MAX as f32) as i8)
        .collect()
}

/// Dequantizes raw i8 codes back to `f32` under a shared scale.
pub fn dequantize_slice_q8(codes: &[i8], scale: f32) -> Vec<f32> {
    codes.iter().map(|&c| c as f32 * scale).collect()
}

/// Fixed-point dot product: accumulates in i32 (the hardware accumulator
/// width) and rescales once at the end, mirroring an 8-bit MAC array.
pub fn dot_q8(a: &[i8], b: &[i8], a_scale: f32, b_scale: f32) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let acc: i32 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| x as i32 * y as i32)
        .sum();
    acc as f32 * a_scale * b_scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_half_step() {
        let scale = q8_scale(1.0);
        for &v in &[0.0f32, 0.25, -0.5, 0.999, -1.0] {
            let q = Q8::from_f32(v, scale);
            assert!((q.to_f32() - v).abs() <= scale / 2.0 + 1e-7, "value {v}");
        }
    }

    #[test]
    fn saturation_at_range_edges() {
        let scale = q8_scale(1.0);
        let hi = Q8::from_f32(10.0, scale);
        assert_eq!(hi.raw(), 127);
        let lo = Q8::from_f32(-10.0, scale);
        assert_eq!(lo.raw(), -128);
    }

    #[test]
    fn zero_max_abs_keeps_unit_scale() {
        assert_eq!(q8_scale(0.0), 1.0);
        assert_eq!(Q8::from_f32(0.0, q8_scale(0.0)).raw(), 0);
    }

    #[test]
    fn slice_round_trip() {
        let values = [0.5f32, -0.25, 0.75, 0.0];
        let scale = q8_scale(1.0);
        let codes = quantize_slice_q8(&values, scale);
        let back = dequantize_slice_q8(&codes, scale);
        for (v, b) in values.iter().zip(back.iter()) {
            assert!((v - b).abs() <= scale / 2.0 + 1e-7);
        }
    }

    #[test]
    fn quantization_is_idempotent() {
        let scale = q8_scale(2.0);
        let q1 = Q8::from_f32(1.37, scale);
        let q2 = Q8::from_f32(q1.to_f32(), scale);
        assert_eq!(q1.raw(), q2.raw());
    }

    #[test]
    fn dot_q8_matches_f32_dot_within_quantization_error() {
        let a = [0.5f32, -0.5, 0.25, 1.0];
        let b = [1.0f32, 1.0, -1.0, 0.5];
        let (sa, sb) = (q8_scale(1.0), q8_scale(1.0));
        let qa = quantize_slice_q8(&a, sa);
        let qb = quantize_slice_q8(&b, sb);
        let fx = dot_q8(&qa, &qb, sa, sb);
        let fl: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert!((fx - fl).abs() < 0.05, "fixed {fx} vs float {fl}");
    }

    #[test]
    fn display_shows_raw_and_scale() {
        let q = Q8::from_f32(0.5, 0.01);
        assert!(q.to_string().contains('q'));
    }
}

use std::fmt;

/// Errors produced by tensor construction and access.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The data length does not match the number of elements the shape implies.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// An index had the wrong number of dimensions for the tensor.
    RankMismatch {
        /// Rank of the tensor.
        expected: usize,
        /// Rank of the supplied index.
        actual: usize,
    },
    /// An index was out of bounds in some dimension.
    OutOfBounds {
        /// Dimension in which the index was out of range.
        dim: usize,
        /// The offending index value.
        index: usize,
        /// The size of that dimension.
        size: usize,
    },
    /// Two tensors had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the incompatibility.
        context: String,
    },
    /// A shape with zero dimensions or a zero-sized dimension was rejected.
    EmptyShape,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(
                    f,
                    "index rank {actual} does not match tensor rank {expected}"
                )
            }
            TensorError::OutOfBounds { dim, index, size } => {
                write!(
                    f,
                    "index {index} out of bounds for dimension {dim} of size {size}"
                )
            }
            TensorError::ShapeMismatch { context } => {
                write!(f, "incompatible shapes: {context}")
            }
            TensorError::EmptyShape => write!(f, "shape must have at least one non-zero dimension"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        let msg = err.to_string();
        assert!(msg.contains('5') && msg.contains('6'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<TensorError>();
    }

    #[test]
    fn out_of_bounds_reports_all_fields() {
        let err = TensorError::OutOfBounds {
            dim: 1,
            index: 9,
            size: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains('9') && msg.contains('4') && msg.contains('1'));
    }
}

//! Dense matrix kernels for fully-connected layers.
//!
//! The fully-connected layer of the paper (Eq. 1) is a matrix-vector product
//! plus bias. Weights are stored **input-major** (`weights[input][neuron]`),
//! mirroring the accelerator's interleaved Weights Buffer layout (paper
//! Fig. 7): all the weights that a single *input* feeds are contiguous, which
//! is exactly what the reuse scheme needs to skip or correct one input at a
//! time.

use crate::block::PackedPanels;
use crate::parallel::{parallel_for_mut_cost, ParallelConfig};
use crate::{Shape, Tensor, TensorError};

/// Computes `out[j] = Σ_i w[i][j] · x[i] + b[j]` (paper Eq. 1).
///
/// * `weights` must have shape `[n_inputs, n_outputs]` (input-major).
/// * `input` must have `n_inputs` elements (any shape; flattened).
/// * `bias` must have `n_outputs` elements.
///
/// The accumulation walks inputs in ascending order so that the incremental
/// reuse path in `reuse-core` can reproduce results deterministically.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when dimensions disagree.
pub fn fc_forward(weights: &Tensor, input: &Tensor, bias: &Tensor) -> Result<Tensor, TensorError> {
    fc_forward_with(&ParallelConfig::serial(), weights, input, bias)
}

/// [`fc_forward`] with an explicit parallelism budget. Output neurons are
/// chunked across workers; results are bit-identical to the serial path.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when dimensions disagree.
pub fn fc_forward_with(
    config: &ParallelConfig,
    weights: &Tensor,
    input: &Tensor,
    bias: &Tensor,
) -> Result<Tensor, TensorError> {
    let mut out = Vec::new();
    fc_forward_into(config, weights, input, bias, &mut out)?;
    let n_out = weights.shape().dims()[1];
    Tensor::from_vec(Shape::d1(n_out), out)
}

/// Allocation-free core of [`fc_forward`]: clears `out` and writes the
/// `n_outputs` results into it, reusing its capacity across calls.
///
/// Each worker owns a contiguous span of output neurons and walks **all**
/// inputs in ascending order, exactly like the serial loop — only the
/// `out[o] +=` targets are partitioned — so every output element sees the
/// same additions in the same order regardless of thread count.
///
/// This unpacked walk is the **serial oracle** for the cache-blocked
/// [`crate::block::fc_forward_packed_into`] kernel (bit-identical under the
/// scalar [`crate::simd::level`], within [`crate::simd::fma_tolerance`]
/// under AVX2); layers that run repeatedly should pack once and use the
/// blocked path instead.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when dimensions disagree.
pub fn fc_forward_into(
    config: &ParallelConfig,
    weights: &Tensor,
    input: &Tensor,
    bias: &Tensor,
    out: &mut Vec<f32>,
) -> Result<(), TensorError> {
    let dims = weights.shape().dims();
    if dims.len() != 2 {
        return Err(TensorError::ShapeMismatch {
            context: format!("fc weights must be rank-2, got {}", weights.shape()),
        });
    }
    let (n_in, n_out) = (dims[0], dims[1]);
    if input.len() != n_in {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "fc input length {} does not match weight rows {}",
                input.len(),
                n_in
            ),
        });
    }
    if bias.len() != n_out {
        return Err(TensorError::ShapeMismatch {
            context: format!(
                "fc bias length {} does not match weight cols {}",
                bias.len(),
                n_out
            ),
        });
    }
    let w = weights.as_slice();
    let x = input.as_slice();
    out.clear();
    out.extend_from_slice(bias.as_slice());
    let flops = fc_flops(n_in, n_out);
    parallel_for_mut_cost(config, out, 1, flops, |offset, chunk| {
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                // Mathematically a no-op; skipping keeps the flop pattern
                // identical to what the zero-aware hardware would do while
                // not changing the result.
                continue;
            }
            let row = &w[i * n_out + offset..i * n_out + offset + chunk.len()];
            for (o, &wij) in chunk.iter_mut().zip(row.iter()) {
                *o += xi * wij;
            }
        }
    });
    Ok(())
}

/// General dense matrix multiply `C = A · B` with `A: [m, k]`, `B: [k, n]`.
///
/// Used by tests and by the LSTM gates when batching the four gate weight
/// matrices.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when inner dimensions disagree or
/// either operand is not rank-2.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_with(&ParallelConfig::serial(), a, b)
}

/// [`matmul`] with an explicit parallelism budget. Rows of `C` are chunked
/// across workers (granule = one output row), so each `C[i][j]` is
/// accumulated by one thread in the serial order — results are
/// bit-identical to [`matmul_naive`] under the scalar
/// [`crate::simd::level`], and within [`crate::simd::fma_tolerance`] under
/// AVX2.
///
/// When `A` has at least [`MATMUL_PACK_MIN_ROWS`] rows the kernel repacks
/// `B` into [`crate::block::PANEL_WIDTH`]-column cache panels (a per-call
/// cost amortized over the rows of `C`) and runs the blocked microkernel;
/// smaller products use the naive row walk. On the AVX2 path each worker
/// walks the panels **outermost** with four `C` rows register-blocked per
/// pass (eight fused accumulator chains), so every streamed panel row is
/// reused fourfold from registers; the scalar path keeps the historic
/// row-major walk with the `A[i][l] == 0.0` skip, which never changes the
/// bits.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when inner dimensions disagree or
/// either operand is not rank-2.
pub fn matmul_with(config: &ParallelConfig, a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = matmul_dims(a, b)?;
    if m < MATMUL_PACK_MIN_ROWS {
        return matmul_naive_with(config, a, b);
    }
    let packed = PackedPanels::pack_slice(b.as_slice(), k, n);
    let mut c = vec![0.0f32; m * n];
    matmul_packed_into(config, a.as_slice(), &packed, m, &mut c);
    Tensor::from_vec(Shape::d2(m, n), c)
}

/// The blocked multiply against an already-packed `B`: `C = A · B` where
/// `a` is row-major `[m, k]`, `packed` holds `B` (`k = packed.n_in()`,
/// `n = packed.n_out()`), and `c` is the zeroed row-major `[m, n]` output.
/// Callers that multiply repeatedly against the same matrix (weight
/// matrices, benchmark loops) pack once and skip [`matmul_with`]'s
/// per-call repack. Exactness contract matches [`matmul_with`].
///
/// # Panics
///
/// Panics when `a` or `c` disagree with `m` and the packed dimensions.
pub fn matmul_packed_into(
    config: &ParallelConfig,
    a: &[f32],
    packed: &PackedPanels,
    m: usize,
    c: &mut [f32],
) {
    let (k, n) = (packed.n_in(), packed.n_out());
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    parallel_for_mut_cost(config, c, n, flops, |offset, chunk| {
        let first_row = offset / n;
        match crate::simd::level() {
            #[cfg(target_arch = "x86_64")]
            crate::simd::SimdLevel::Avx2 => {
                crate::simd::avx2::matmul_rows(packed, a, k, first_row, n, chunk);
            }
            _ => {
                for (r, crow) in chunk.chunks_mut(n).enumerate() {
                    let arow = &a[(first_row + r) * k..(first_row + r + 1) * k];
                    // crow starts zeroed, so the microkernels' accumulators
                    // begin at 0.0 exactly like the naive loop.
                    crate::block::forward_panels_scalar(packed, arow, 0, crow);
                }
            }
        }
    });
}

/// Row threshold below which [`matmul_with`] skips the per-call `B` repack:
/// packing costs `k·n` writes, so it only pays for itself once several rows
/// of `C` stream the same panels.
pub const MATMUL_PACK_MIN_ROWS: usize = 4;

/// The unblocked serial oracle for [`matmul`]: a plain row walk with no
/// weight repacking. Kept public so proptests and `kernel_bench` can compare
/// the blocked kernel against the original baseline.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when inner dimensions disagree or
/// either operand is not rank-2.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    matmul_naive_with(&ParallelConfig::serial(), a, b)
}

fn matmul_naive_with(
    config: &ParallelConfig,
    a: &Tensor,
    b: &Tensor,
) -> Result<Tensor, TensorError> {
    let (m, k, n) = matmul_dims(a, b)?;
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut c = vec![0.0f32; m * n];
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    parallel_for_mut_cost(config, &mut c, n, flops, |offset, chunk| {
        let first_row = offset / n;
        for (r, crow) in chunk.chunks_mut(n).enumerate() {
            let i = first_row + r;
            for l in 0..k {
                let aik = av[i * k + l];
                if aik == 0.0 {
                    continue;
                }
                let brow = &bv[l * n..(l + 1) * n];
                for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                    *cj += aik * bj;
                }
            }
        }
    });
    Tensor::from_vec(Shape::d2(m, n), c)
}

fn matmul_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize), TensorError> {
    let (ad, bd) = (a.shape().dims(), b.shape().dims());
    if ad.len() != 2 || bd.len() != 2 {
        return Err(TensorError::ShapeMismatch {
            context: "matmul operands must be rank-2".into(),
        });
    }
    let (m, k) = (ad[0], ad[1]);
    let (k2, n) = (bd[0], bd[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            context: format!("matmul inner dims {k} vs {k2}"),
        });
    }
    Ok((m, k, n))
}

/// Number of multiply and add operations an FC layer performs from scratch:
/// `2 · n_in · n_out` (paper Section II-A).
pub fn fc_flops(n_in: usize, n_out: usize) -> u64 {
    2 * n_in as u64 * n_out as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_forward_matches_hand_computation() {
        // 2 inputs, 3 neurons; weights input-major.
        let w = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let x = Tensor::from_slice_1d(&[10.0, 100.0]).unwrap();
        let b = Tensor::from_slice_1d(&[0.5, 0.5, 0.5]).unwrap();
        let y = fc_forward(&w, &x, &b).unwrap();
        assert_eq!(
            y.as_slice(),
            &[10.0 + 400.0 + 0.5, 20.0 + 500.0 + 0.5, 30.0 + 600.0 + 0.5]
        );
    }

    #[test]
    fn fc_forward_with_zero_input_equals_bias() {
        let w = Tensor::from_vec(Shape::d2(3, 2), vec![1.0; 6]).unwrap();
        let x = Tensor::from_slice_1d(&[0.0, 0.0, 0.0]).unwrap();
        let b = Tensor::from_slice_1d(&[7.0, -7.0]).unwrap();
        let y = fc_forward(&w, &x, &b).unwrap();
        assert_eq!(y.as_slice(), b.as_slice());
    }

    #[test]
    fn fc_forward_validates_dimensions() {
        let w = Tensor::from_vec(Shape::d2(2, 3), vec![0.0; 6]).unwrap();
        let x = Tensor::from_slice_1d(&[1.0]).unwrap();
        let b = Tensor::from_slice_1d(&[0.0; 3]).unwrap();
        assert!(fc_forward(&w, &x, &b).is_err());
        let x2 = Tensor::from_slice_1d(&[1.0, 2.0]).unwrap();
        let b2 = Tensor::from_slice_1d(&[0.0; 2]).unwrap();
        assert!(fc_forward(&w, &x2, &b2).is_err());
    }

    #[test]
    fn matmul_identity() {
        let i = Tensor::from_vec(Shape::d2(2, 2), vec![1., 0., 0., 1.]).unwrap();
        let a = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(matmul(&i, &a).unwrap(), a);
        assert_eq!(matmul(&a, &i).unwrap(), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(Shape::d2(1, 3), vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(Shape::d2(3, 2), vec![1., 0., 0., 1., 1., 1.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[1, 2]);
        assert_eq!(c.as_slice(), &[1. + 3., 2. + 3.]);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(2, 2));
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn flops_formula() {
        assert_eq!(fc_flops(400, 2000), 1_600_000);
    }

    #[test]
    fn blocked_matmul_matches_naive() {
        // Shapes straddling MATMUL_PACK_MIN_ROWS, the 16-lane panel width,
        // and the AVX2 4-row register block. Bit-identical under the scalar
        // level, tolerance-bounded under AVX2 (see `crate::simd`).
        for (m, k, n) in [
            (4usize, 3usize, 5usize),
            (6, 7, 8),
            (9, 11, 13),
            (5, 1, 17),
            (8, 5, 16),
            (11, 9, 33),
        ] {
            let av: Vec<f32> = (0..m * k).map(|v| (v as f32) * 0.37 - 2.0).collect();
            let bv: Vec<f32> = (0..k * n).map(|v| 1.5 - (v as f32) * 0.21).collect();
            let mut av = av;
            av[1] = 0.0; // exercise the zero-skip
            let a = Tensor::from_vec(Shape::d2(m, k), av).unwrap();
            let b = Tensor::from_vec(Shape::d2(k, n), bv).unwrap();
            let naive = matmul_naive(&a, &b).unwrap();
            let blocked = matmul(&a, &b).unwrap();
            let tol = crate::simd::fma_tolerance(k, 3000.0);
            let mismatch = crate::simd::kernel_mismatch(blocked.as_slice(), naive.as_slice(), tol);
            assert!(mismatch.is_none(), "m={m} k={k} n={n}: {mismatch:?}");
        }
    }
}

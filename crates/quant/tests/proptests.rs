//! Property-based tests for linear quantization (paper Eq. 9 invariants).

use proptest::prelude::*;
use reuse_quant::{fixed, InputRange, LinearQuantizer, RangeProfiler};

proptest! {
    #[test]
    fn quantization_error_bounded(x in -1.0f32..1.0, clusters in 2usize..64) {
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), clusters).unwrap();
        let err = (q.quantized_value(x) - x).abs();
        prop_assert!(err <= q.max_error() + 1e-6, "err {err} > {}", q.max_error());
    }

    #[test]
    fn quantization_idempotent(x in -5.0f32..5.0, clusters in 2usize..64) {
        let q = LinearQuantizer::new(InputRange::new(-5.0, 5.0), clusters).unwrap();
        let once = q.quantized_value(x);
        prop_assert_eq!(q.quantize(once), q.quantize(x));
        prop_assert_eq!(q.quantized_value(once), once);
    }

    #[test]
    fn range_boundaries_quantize_to_edge_codes(
        lo in -100.0f32..100.0,
        width in 1e-3f32..200.0,
        clusters in 2usize..64,
    ) {
        // Regression for the boundary bug: `round(max / step)` could land
        // one past the derived top code when `step` subdivided the range
        // unevenly. The edges must map to the edge codes exactly, for every
        // range, and the code span must be exactly `clusters` wide.
        let range = InputRange::new(lo, lo + width);
        let q = LinearQuantizer::new(range, clusters).unwrap();
        prop_assert_eq!(q.quantize(range.min()).0, q.code_min());
        prop_assert_eq!(q.quantize(range.max()).0, q.code_max());
        prop_assert_eq!(q.code_max() - q.code_min(), clusters as i32);
        // Out-of-range values clamp onto the same edge codes.
        prop_assert_eq!(q.quantize(range.min() - 1.0).0, q.code_min());
        prop_assert_eq!(q.quantize(range.max() + 1.0).0, q.code_max());
        // Interior values never escape the code span.
        for i in 0..=16 {
            let x = range.min() + range.width() * (i as f32 / 16.0);
            let c = q.quantize(x).0;
            prop_assert!(c >= q.code_min() && c <= q.code_max(), "code {c} for x={x}");
        }
    }

    #[test]
    fn codes_are_monotone(a in -1.0f32..1.0, b in -1.0f32..1.0) {
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        if a <= b {
            prop_assert!(q.quantize(a) <= q.quantize(b));
        } else {
            prop_assert!(q.quantize(a) >= q.quantize(b));
        }
    }

    #[test]
    fn centroid_is_fixed_point(code in -8i32..=8) {
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let c = q.centroid(reuse_quant::QuantCode(code));
        prop_assert_eq!(q.quantized_value(c), c);
    }

    #[test]
    fn coarser_quantizer_never_splits_a_cluster(
        x in -1.0f32..1.0, y in -1.0f32..1.0
    ) {
        // If a fine quantizer (32) maps two values to the same code, a
        // coarse one (16, step exactly double) cannot map them apart by more
        // than one code.
        let fine = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 32).unwrap();
        let coarse = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        if fine.quantize(x) == fine.quantize(y) {
            let (cx, cy) = (coarse.quantize(x).0, coarse.quantize(y).0);
            prop_assert!((cx - cy).abs() <= 1);
        }
    }

    #[test]
    fn profiled_range_covers_all_samples(xs in proptest::collection::vec(-10.0f32..10.0, 2..100)) {
        let mut p = RangeProfiler::new();
        p.observe_slice(&xs);
        if let Ok(r) = p.range(0.0) {
            for &x in &xs {
                prop_assert!(x >= r.min() - 1e-6 && x <= r.max() + 1e-6);
                prop_assert_eq!(r.clamp(x), x);
            }
        }
    }

    #[test]
    fn q8_mode_matches_tensor_fixed(v in -1.0f32..1.0) {
        // The 255-cluster linear quantizer and the i8 datapath agree on the
        // representable values up to rounding at the exact midpoints.
        let q = fixed::q8_quantizer(1.0).unwrap();
        let scale = reuse_tensor::fixed::q8_scale(1.0);
        let tensor_q = reuse_tensor::fixed::Q8::from_f32(v, scale);
        let lin = q.quantized_value(v);
        // Steps differ slightly (255 clusters vs 127-step scale); both stay
        // within one step of the input.
        prop_assert!((lin - v).abs() <= q.step());
        prop_assert!((tensor_q.to_f32() - v).abs() <= scale);
    }
}

proptest! {
    #[test]
    fn kmeans_never_worse_than_linear(
        seed in 0u64..50, clusters in 4usize..20
    ) {
        // Deterministic pseudo-random skewed samples.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        let samples: Vec<f32> = (0..500).map(|_| { let u = next(); u * u * 3.0 }).collect();
        let lo = samples.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = samples.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assume!(hi > lo);
        let km = reuse_quant::kmeans::KMeansQuantizer::fit(&samples, clusters, 60).unwrap();
        let lin = LinearQuantizer::new(InputRange::new(lo, hi), clusters - 1).unwrap();
        let lin_mse: f64 = samples.iter().map(|&v| {
            let d = (lin.quantized_value(v) - v) as f64; d * d
        }).sum::<f64>() / samples.len() as f64;
        // Lloyd starts from the linear grid, so it can only improve.
        prop_assert!(km.mse(&samples) <= lin_mse * 1.001,
            "kmeans {} vs linear {}", km.mse(&samples), lin_mse);
    }

    #[test]
    fn kmeans_codes_round_trip(v in 0.0f32..3.0) {
        let samples: Vec<f32> = (0..300).map(|i| (i as f32 / 100.0).powi(2) / 3.0).collect();
        let km = reuse_quant::kmeans::KMeansQuantizer::fit(&samples, 8, 40).unwrap();
        let code = km.quantize(v);
        let centroid = km.centroid(code);
        prop_assert_eq!(km.quantize(centroid), code);
    }
}

//! Direct SIMD==scalar equivalence for quantization: the AVX2
//! `quantize_slice_into` kernel must be **bit-exact** against the scalar
//! per-element path — same codes for every input, including NaN, infinities,
//! exact range edges, half-step ties, and values far outside the range. The
//! AVX2 side is invoked explicitly (gated only on hardware support), so this
//! holds regardless of which level the process resolved; on non-AVX2 hosts
//! every test passes vacuously.
//!
//! Code-for-code exactness is what keeps reuse *semantics* (hit rates,
//! changed-index lists, MAC counters) invariant across SIMD levels even
//! though the float kernels only agree to FMA tolerance.

#![cfg(target_arch = "x86_64")]

use proptest::prelude::*;
use reuse_quant::{InputRange, LinearQuantizer};
use reuse_tensor::simd::avx2;

/// The awkward ranges from the unit edge-pin tests: steps that do not
/// subdivide the range evenly in f32, tiny magnitudes, asymmetric spans.
const RANGES: [(f32, f32, usize); 6] = [
    (-1.0, 1.0, 16),
    (0.0, 6.0, 12),
    (0.05, 1.0, 10),
    (-0.3, 0.7, 3),
    (1e-3, 7e-3, 5),
    (-123.4, 567.8, 31),
];

fn assert_codes_equal(q: &LinearQuantizer, xs: &[f32]) -> Result<(), TestCaseError> {
    let mut fast = Vec::new();
    let mut slow = Vec::new();
    q.quantize_slice_into_avx2(xs, &mut fast);
    q.quantize_slice_into_scalar(xs, &mut slow);
    prop_assert_eq!(fast.len(), slow.len());
    for (j, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
        prop_assert!(
            a == b,
            "codes diverge at {j}: x={} avx2={:?} scalar={:?} (range [{}, {}], step {})",
            xs[j],
            a,
            b,
            q.range().min(),
            q.range().max(),
            q.step()
        );
    }
    Ok(())
}

#[test]
fn special_values_quantize_identically() {
    if !avx2::available() {
        return;
    }
    for (lo, hi, clusters) in RANGES {
        let q = LinearQuantizer::new(InputRange::new(lo, hi), clusters).unwrap();
        let step = q.step();
        let mut xs = vec![
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            lo,
            hi,
            lo - 1.0,
            hi + 1.0,
            f32::MIN,
            f32::MAX,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1e30,
            -1e30,
        ];
        // Half-step ties (round-half-away-from-zero territory) and
        // near-tie neighbours on both sides of zero.
        for k in [-7i32, -2, -1, 0, 1, 2, 7] {
            let tie = (k as f32 + 0.5) * step;
            xs.extend([tie, -tie, tie.next_up(), tie.next_down()]);
        }
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        q.quantize_slice_into_avx2(&xs, &mut fast);
        q.quantize_slice_into_scalar(&xs, &mut slow);
        assert_eq!(fast, slow, "range [{lo}, {hi}] x{clusters}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_slices_quantize_identically(
        range_idx in 0usize..6,
        xs in proptest::collection::vec(
            (0u8..8, -700.0f32..700.0, 0u32..=u32::MAX).prop_map(|(sel, v, bits)| {
                match sel {
                    // Mostly in-or-near-range floats, with a steady trickle
                    // of tiny values, NaN, and fully arbitrary bit patterns
                    // (infinities, denormals, negative zero, huge values).
                    0 => f32::NAN,
                    1 => f32::from_bits(bits),
                    2 => v / 700.0,
                    _ => v,
                }
            }),
            0..64,
        ),
    ) {
        if !avx2::available() {
            return Ok(());
        }
        let (lo, hi, clusters) = RANGES[range_idx];
        let q = LinearQuantizer::new(InputRange::new(lo, hi), clusters).unwrap();
        assert_codes_equal(&q, &xs)?;
    }

    #[test]
    fn step_multiples_quantize_identically(
        range_idx in 0usize..6,
        ks in proptest::collection::vec(-40i32..=40, 1..48),
        frac in 0.0f32..1.0,
    ) {
        if !avx2::available() {
            return Ok(());
        }
        let (lo, hi, clusters) = RANGES[range_idx];
        let q = LinearQuantizer::new(InputRange::new(lo, hi), clusters).unwrap();
        // Step multiples plus a shared fractional offset sweep straight
        // through every rounding boundary the kernel has to honour.
        let xs: Vec<f32> = ks.iter().map(|&k| (k as f32 + frac) * q.step()).collect();
        assert_codes_equal(&q, &xs)?;
    }
}

use std::fmt;

/// Errors produced when configuring quantizers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QuantError {
    /// The number of clusters must be at least 2.
    TooFewClusters {
        /// The rejected cluster count.
        clusters: usize,
    },
    /// The profiled range is empty or inverted.
    InvalidRange {
        /// Profiled minimum.
        min: f32,
        /// Profiled maximum.
        max: f32,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::TooFewClusters { clusters } => {
                write!(
                    f,
                    "linear quantization needs at least 2 clusters, got {clusters}"
                )
            }
            QuantError::InvalidRange { min, max } => {
                write!(f, "invalid input range [{min}, {max}]")
            }
        }
    }
}

impl std::error::Error for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_values() {
        let e = QuantError::TooFewClusters { clusters: 1 };
        assert!(e.to_string().contains('1'));
        let e = QuantError::InvalidRange { min: 2.0, max: 1.0 };
        assert!(e.to_string().contains('2'));
    }
}

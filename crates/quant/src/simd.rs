//! AVX2 kernels for the quantize and code-diff hot paths.
//!
//! Unlike the FMA-fused tensor kernels, everything here is **bit-exact**:
//! the vector quantizer reproduces `LinearQuantizer::quantize` — including
//! `f32::round`'s round-half-away-from-zero semantics, the range-edge
//! pinning, and the NaN guard — lane for lane, so quantized codes (and
//! therefore reuse hit rates and changed-input statistics) never depend on
//! the active SIMD level.
//!
//! Round-half-away is emulated on top of the hardware's round-to-nearest-
//! even: ties are detected by comparing `t - round(t)` against `±0.5` and
//! bumped one unit away from zero. The subtraction is exact — for
//! `|t| >= 0.5` the rounded value is within a factor of two of `t`
//! (Sterbenz's lemma), for `|t| < 0.5` the rounded value is zero, and for
//! `|t| >= 2^23` `t` is already integral so no tie can occur.

use core::arch::x86_64::{
    __m256i, _mm256_add_ps, _mm256_and_ps, _mm256_blendv_epi8, _mm256_castps_si256,
    _mm256_castsi256_ps, _mm256_cmp_ps, _mm256_cmpeq_epi32, _mm256_cvttps_epi32, _mm256_div_ps,
    _mm256_loadu_ps, _mm256_loadu_si256, _mm256_max_epi32, _mm256_min_epi32, _mm256_movemask_ps,
    _mm256_or_ps, _mm256_round_ps, _mm256_set1_epi32, _mm256_set1_ps, _mm256_storeu_si256,
    _mm256_sub_ps, _CMP_EQ_OQ, _CMP_GE_OQ, _CMP_NGT_UQ, _MM_FROUND_NO_EXC,
    _MM_FROUND_TO_NEAREST_INT,
};

use crate::{LinearQuantizer, QuantCode};

/// Quantizes `xs` into `out` (already sized to `xs.len()`) with the AVX2
/// kernel. Caller must have checked [`reuse_tensor::simd::avx2::available`].
pub(crate) fn quantize_slice(q: &LinearQuantizer, xs: &[f32], out: &mut [QuantCode]) {
    reuse_tensor::simd::avx2::require();
    assert_eq!(xs.len(), out.len(), "quantize_slice buffer length mismatch");
    // SAFETY: AVX2 availability was just asserted.
    unsafe { quantize_slice_impl(q, xs, out) }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn quantize_slice_impl(q: &LinearQuantizer, xs: &[f32], out: &mut [QuantCode]) {
    let n = xs.len();
    let vstep = _mm256_set1_ps(q.step());
    let vmin = _mm256_set1_ps(q.range().min());
    let vmax = _mm256_set1_ps(q.range().max());
    let vcode_min = _mm256_set1_epi32(q.code_min());
    let vcode_max = _mm256_set1_epi32(q.code_max());
    let sign_mask = _mm256_set1_ps(-0.0);
    let half = _mm256_set1_ps(0.5);
    let one = _mm256_set1_ps(1.0);
    // SAFETY: `QuantCode` is `#[repr(transparent)]` over `i32`.
    let optr = out.as_mut_ptr().cast::<i32>();
    let mut i = 0usize;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds every lane of the unaligned load/store.
        let x = unsafe { _mm256_loadu_ps(xs.as_ptr().add(i)) };
        let t = _mm256_div_ps(x, vstep);
        // Round half away from zero: nearest-even, then bump exact ties.
        let y = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(t);
        let sign = _mm256_and_ps(t, sign_mask);
        let tie = _mm256_cmp_ps::<_CMP_EQ_OQ>(_mm256_sub_ps(t, y), _mm256_or_ps(half, sign));
        let r = _mm256_add_ps(y, _mm256_and_ps(tie, _mm256_or_ps(one, sign)));
        // `r` is integral and bounded by ~`code_max ± 1` for every lane the
        // edge blends below don't overwrite, so the truncating conversion
        // never saturates where its result is used.
        let mut code = _mm256_cvttps_epi32(r);
        code = _mm256_max_epi32(code, vcode_min);
        code = _mm256_min_epi32(code, vcode_max);
        // Edge pinning in the scalar guard order: `x >= max` wins over the
        // rounded code; NaN or `x <= min` maps to the bottom code. The two
        // masks are disjoint (`max > min`; NaN fails the ordered compare).
        let ge_max = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_GE_OQ>(x, vmax));
        code = _mm256_blendv_epi8(code, vcode_max, ge_max);
        let le_min = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_NGT_UQ>(x, vmin));
        code = _mm256_blendv_epi8(code, vcode_min, le_min);
        // SAFETY: bounds as for the load; lane type matches `repr(i32)`.
        unsafe { _mm256_storeu_si256(optr.add(i).cast::<__m256i>(), code) };
        i += 8;
    }
    for j in i..n {
        out[j] = q.quantize(xs[j]);
    }
}

/// Calls `f(i)` for every index where `prev[i] != new[i]`, in ascending
/// order. Eight codes are compared per step; all-equal groups — the common
/// case at steady-state reuse rates — cost one compare + movemask.
pub(crate) fn for_each_changed(prev: &[QuantCode], new: &[QuantCode], f: &mut dyn FnMut(usize)) {
    reuse_tensor::simd::avx2::require();
    assert_eq!(prev.len(), new.len(), "for_each_changed length mismatch");
    // SAFETY: AVX2 availability was just asserted.
    unsafe { for_each_changed_impl(prev, new, f) }
}

#[target_feature(enable = "avx2")]
unsafe fn for_each_changed_impl(prev: &[QuantCode], new: &[QuantCode], f: &mut dyn FnMut(usize)) {
    let n = prev.len();
    // SAFETY: `QuantCode` is `#[repr(transparent)]` over `i32`.
    let pp = prev.as_ptr().cast::<i32>();
    let np = new.as_ptr().cast::<i32>();
    let mut i = 0usize;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds both unaligned loads.
        let (a, b) = unsafe {
            (
                _mm256_loadu_si256(pp.add(i).cast()),
                _mm256_loadu_si256(np.add(i).cast()),
            )
        };
        let eq = _mm256_cmpeq_epi32(a, b);
        let mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32 & 0xff;
        let mut diff = !mask & 0xff;
        while diff != 0 {
            let l = diff.trailing_zeros() as usize;
            f(i + l);
            diff &= diff - 1;
        }
        i += 8;
    }
    for j in i..n {
        if prev[j] != new[j] {
            f(j);
        }
    }
}

//! Uniformly distributed linear quantization (paper Eq. 9).

use crate::{InputRange, QuantError};

/// The integer code (cluster index) of a quantized input.
///
/// The paper's accelerator stores these indices in a dedicated I/O-buffer
/// area and compares them across executions: two inputs are "the same" for
/// the reuse scheme exactly when their codes are equal. Codes fit in one
/// byte for all evaluated cluster counts (≤32), which is what the Table III
/// overhead accounting assumes.
/// `repr(transparent)` over `i32` so code buffers can be reinterpreted as
/// integer lanes by the vectorized quantize/diff kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct QuantCode(pub i32);

impl std::fmt::Display for QuantCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A uniformly distributed linear quantizer over a profiled range
/// (paper Eq. 9): `Qval = round(x / step) · step`, `step = range / C`.
///
/// Inputs outside the profiled range are clamped to it first, modelling the
/// finite centroid table of the hardware's Control Unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearQuantizer {
    range: InputRange,
    clusters: usize,
    step: f32,
    code_min: i32,
    code_max: i32,
}

impl LinearQuantizer {
    /// Creates a quantizer with `clusters` uniformly spaced centroids over
    /// `range`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::TooFewClusters`] for fewer than 2 clusters and
    /// [`QuantError::InvalidRange`] for a degenerate range.
    pub fn new(range: InputRange, clusters: usize) -> Result<Self, QuantError> {
        if clusters < 2 {
            return Err(QuantError::TooFewClusters { clusters });
        }
        let range = range.validated()?;
        let step = range.width() / clusters as f32;
        let code_min = (range.min() / step).round() as i32;
        // Derive the top code from the bottom one rather than rounding
        // `max / step` independently: when `step` subdivides the range
        // unevenly the two roundings can disagree by one, leaving a code
        // that `quantize` could only reach through the clamp (or not at
        // all). Pinning `code_max = code_min + clusters` keeps the code
        // span exactly `clusters` wide for every range.
        let code_max = code_min + clusters as i32;
        Ok(LinearQuantizer {
            range,
            clusters,
            step,
            code_min,
            code_max,
        })
    }

    /// Creates a quantizer over `range` with an explicit `step` instead of
    /// deriving it from a cluster count — the adaptive reuse policy's
    /// step-rescaling entry point. The effective cluster count becomes
    /// `ceil(width / step)` (at least 1), and the code span is pinned to it
    /// exactly as [`Self::new`] pins `code_max = code_min + clusters`, so
    /// the edge-code guarantees of [`Self::quantize`] carry over unchanged.
    ///
    /// `with_step(range, range.width() / c)` produces the same grid as
    /// `new(range, c)` up to f32 rounding of the division the caller
    /// performs; callers that need bit-identity with `new` should call
    /// `new` directly.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidRange`] for a degenerate range and
    /// [`QuantError::TooFewClusters`] when `step` is non-finite,
    /// non-positive, or so large that fewer than one full step fits in the
    /// range (a grid with no interior centroid cannot distinguish inputs).
    pub fn with_step(range: InputRange, step: f32) -> Result<Self, QuantError> {
        let range = range.validated()?;
        if !step.is_finite() || step <= 0.0 {
            return Err(QuantError::TooFewClusters { clusters: 0 });
        }
        let clusters = (range.width() / step).ceil() as usize;
        if clusters < 1 {
            return Err(QuantError::TooFewClusters { clusters });
        }
        let code_min = (range.min() / step).round() as i32;
        let code_max = code_min + clusters as i32;
        Ok(LinearQuantizer {
            range,
            clusters,
            step,
            code_min,
            code_max,
        })
    }

    /// The profiled input range.
    pub fn range(&self) -> InputRange {
        self.range
    }

    /// The number of clusters `C`.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// The quantization step (`range / C`).
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Quantizes a value to its integer code: `round(clamp(x) / step)`.
    ///
    /// The range edges map to the edge codes exactly:
    /// `quantize(range.min()) == code_min` and
    /// `quantize(range.max()) == code_max`, regardless of how `step`
    /// subdivides the range. NaN inputs map to the bottom code.
    pub fn quantize(&self, x: f32) -> QuantCode {
        // Edge pinning before the round: `round(max / step)` can land on
        // `code_max + 1` when the division rounds up, which the old
        // clamp-after-round masked inconsistently.
        if x >= self.range.max() {
            return QuantCode(self.code_max);
        }
        if x.is_nan() || x <= self.range.min() {
            return QuantCode(self.code_min);
        }
        QuantCode(((x / self.step).round() as i32).clamp(self.code_min, self.code_max))
    }

    /// The smallest code this quantizer produces (`quantize(range.min())`).
    pub fn code_min(&self) -> i32 {
        self.code_min
    }

    /// The largest code this quantizer produces (`quantize(range.max())`).
    pub fn code_max(&self) -> i32 {
        self.code_max
    }

    /// The centroid (representable value) of a code: `code · step`.
    pub fn centroid(&self, code: QuantCode) -> f32 {
        code.0 as f32 * self.step
    }

    /// The quantized value of `x` (Eq. 9): centroid of its code.
    pub fn quantized_value(&self, x: f32) -> f32 {
        self.centroid(self.quantize(x))
    }

    /// Quantizes a slice to codes.
    pub fn quantize_slice(&self, xs: &[f32]) -> Vec<QuantCode> {
        let mut out = Vec::new();
        self.quantize_slice_into(xs, &mut out);
        out
    }

    /// Quantizes a slice into a caller-owned buffer, clearing it first.
    /// Allocation-free once `out` has capacity — replay loops quantizing
    /// thousands of frames reuse one scratch buffer instead of allocating
    /// a fresh `Vec` per frame.
    ///
    /// Dispatched on the resolved [`reuse_tensor::simd::level`]. The AVX2
    /// kernel is **bit-exact** against [`Self::quantize`] — codes, and with
    /// them reuse statistics, never depend on the active SIMD level.
    pub fn quantize_slice_into(&self, xs: &[f32], out: &mut Vec<QuantCode>) {
        match reuse_tensor::simd::level() {
            #[cfg(target_arch = "x86_64")]
            reuse_tensor::SimdLevel::Avx2 => {
                out.clear();
                out.resize(xs.len(), QuantCode(0));
                crate::simd::quantize_slice(self, xs, out);
            }
            _ => self.quantize_slice_into_scalar(xs, out),
        }
    }

    /// The scalar body of [`Self::quantize_slice_into`], exposed
    /// (doc-hidden) as the oracle for the SIMD==scalar equivalence suites.
    #[doc(hidden)]
    pub fn quantize_slice_into_scalar(&self, xs: &[f32], out: &mut Vec<QuantCode>) {
        out.clear();
        out.extend(xs.iter().map(|&x| self.quantize(x)));
    }

    /// The AVX2 body of [`Self::quantize_slice_into`], exposed (doc-hidden)
    /// so equivalence suites can pin it against the scalar oracle even when
    /// `REUSE_SIMD=off`. Panics when AVX2+FMA is unavailable.
    #[doc(hidden)]
    #[cfg(target_arch = "x86_64")]
    pub fn quantize_slice_into_avx2(&self, xs: &[f32], out: &mut Vec<QuantCode>) {
        out.clear();
        out.resize(xs.len(), QuantCode(0));
        crate::simd::quantize_slice(self, xs, out);
    }

    /// Quantizes `xs`, diffs the new codes against `prev`, and collects the
    /// changed inputs as `(index, centroid delta)` pairs in ascending index
    /// order — the paper's per-execution compare pass over the I/O-buffer
    /// indices area. `prev` is updated to the new codes, `scratch` holds
    /// them between passes, and `changed` is cleared first; at steady state
    /// the whole pass is allocation-free.
    ///
    /// Both phases are dispatched on the resolved SIMD level and both are
    /// bit-exact: quantization lane-matches [`Self::quantize`] and the
    /// vectorized compare skips eight unchanged codes per step without ever
    /// altering which indices are reported or the delta arithmetic
    /// (`centroid(new) - centroid(old)`, in f32, exactly as the scalar
    /// walk).
    ///
    /// # Panics
    ///
    /// Panics when `xs` and `prev` have different lengths.
    pub fn diff_codes_into(
        &self,
        xs: &[f32],
        prev: &mut [QuantCode],
        scratch: &mut Vec<QuantCode>,
        changed: &mut Vec<(u32, f32)>,
    ) {
        assert_eq!(
            xs.len(),
            prev.len(),
            "diff_codes_into: input/code-buffer length mismatch"
        );
        self.quantize_slice_into(xs, scratch);
        changed.clear();
        {
            let prev_ro: &[QuantCode] = prev;
            let mut record = |i: usize| {
                let delta = self.centroid(scratch[i]) - self.centroid(prev_ro[i]);
                changed.push((i as u32, delta));
            };
            match reuse_tensor::simd::level() {
                #[cfg(target_arch = "x86_64")]
                reuse_tensor::SimdLevel::Avx2 => {
                    crate::simd::for_each_changed(prev_ro, scratch, &mut record);
                }
                _ => {
                    for (i, (p, s)) in prev_ro.iter().zip(scratch.iter()).enumerate() {
                        if p != s {
                            record(i);
                        }
                    }
                }
            }
        }
        for &(i, _) in changed.iter() {
            prev[i as usize] = scratch[i as usize];
        }
    }

    /// Quantized values (centroids) of a slice.
    pub fn quantized_values(&self, xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| self.quantized_value(x)).collect()
    }

    /// Size in bytes of the centroid table this quantizer needs in the
    /// accelerator's Control Unit (one f32 per cluster).
    pub fn centroid_table_bytes(&self) -> usize {
        self.clusters * 4
    }

    /// Maximum absolute quantization error for in-range inputs: half a step.
    pub fn max_error(&self) -> f32 {
        self.step / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q16() -> LinearQuantizer {
        LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap()
    }

    #[test]
    fn step_is_range_over_clusters() {
        let q = q16();
        assert!((q.step() - 2.0 / 16.0).abs() < 1e-7);
        assert_eq!(q.clusters(), 16);
    }

    #[test]
    fn eq9_round_times_step() {
        let q = q16();
        for &x in &[0.0f32, 0.07, -0.3, 0.99, -1.0, 0.51] {
            let expect = (x / q.step()).round() * q.step();
            assert!((q.quantized_value(x) - expect).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn error_bounded_by_half_step() {
        let q = q16();
        for i in -100..=100 {
            let x = i as f32 / 100.0;
            assert!((q.quantized_value(x) - x).abs() <= q.max_error() + 1e-6);
        }
    }

    #[test]
    fn idempotent() {
        let q = q16();
        for i in -20..=20 {
            let x = i as f32 / 7.0;
            let once = q.quantized_value(x);
            assert_eq!(q.quantize(once), q.quantize(x));
            assert_eq!(q.quantized_value(once), once);
        }
    }

    #[test]
    fn out_of_range_clamps_to_edge_codes() {
        let q = q16();
        assert_eq!(q.quantize(100.0), q.quantize(1.0));
        assert_eq!(q.quantize(-100.0), q.quantize(-1.0));
    }

    #[test]
    fn code_equality_tracks_closeness() {
        let q = q16();
        // Two values within the same cluster share a code...
        assert_eq!(q.quantize(0.50), q.quantize(0.51));
        // ...two values a full step apart never do.
        assert_ne!(q.quantize(0.0), q.quantize(q.step() * 1.01));
    }

    #[test]
    fn fewer_clusters_coarser_codes() {
        let q8 = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 8).unwrap();
        let q32 = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 32).unwrap();
        // Values that q32 distinguishes may collide under q8.
        let (a, b) = (0.01f32, 0.07f32);
        assert_eq!(q8.quantize(a), q8.quantize(b));
        assert_ne!(q32.quantize(a), q32.quantize(b));
    }

    #[test]
    fn asymmetric_range() {
        let q = LinearQuantizer::new(InputRange::new(0.0, 6.0), 12).unwrap();
        assert!((q.step() - 0.5).abs() < 1e-7);
        assert_eq!(q.quantize(0.0), QuantCode(0));
        assert_eq!(q.quantize(6.0), QuantCode(12));
        assert!((q.quantized_value(2.74) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn slice_helpers_match_scalar() {
        let q = q16();
        let xs = [0.1f32, -0.9, 0.33];
        let codes = q.quantize_slice(&xs);
        let vals = q.quantized_values(&xs);
        for i in 0..3 {
            assert_eq!(codes[i], q.quantize(xs[i]));
            assert_eq!(vals[i], q.quantized_value(xs[i]));
        }
    }

    #[test]
    fn construction_errors() {
        assert!(LinearQuantizer::new(InputRange::new(-1.0, 1.0), 1).is_err());
        assert!(LinearQuantizer::new(InputRange::new(1.0, 1.0), 16).is_err());
    }

    #[test]
    fn table_bytes() {
        assert_eq!(q16().centroid_table_bytes(), 64);
    }

    #[test]
    fn range_edges_map_to_edge_codes_exactly() {
        // Ranges whose step does not subdivide them evenly in f32: the old
        // independent rounding of `max / step` could disagree with
        // `code_min + clusters` by one here.
        let cases = [
            (-1.0f32, 1.0f32, 16usize),
            (0.0, 6.0, 12),
            (0.05, 1.0, 10),
            (-0.3, 0.7, 3),
            (1e-3, 7e-3, 5),
            (-123.4, 567.8, 31),
        ];
        for (lo, hi, clusters) in cases {
            let q = LinearQuantizer::new(InputRange::new(lo, hi), clusters).unwrap();
            assert_eq!(
                q.quantize(lo),
                QuantCode(q.code_min()),
                "min of [{lo},{hi}]"
            );
            assert_eq!(
                q.quantize(hi),
                QuantCode(q.code_max()),
                "max of [{lo},{hi}]"
            );
            assert_eq!(
                q.code_max() - q.code_min(),
                clusters as i32,
                "code span of [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn with_step_matches_new_for_the_derived_step() {
        // Same grid when the explicit step equals width / clusters: codes
        // agree everywhere, so a scale-1.0 rebuild cannot change reuse
        // behavior.
        let range = InputRange::new(-1.0, 1.0);
        let by_clusters = LinearQuantizer::new(range, 16).unwrap();
        let by_step = LinearQuantizer::with_step(range, range.width() / 16.0).unwrap();
        assert_eq!(by_step.clusters(), 16);
        assert_eq!(by_step.code_min(), by_clusters.code_min());
        assert_eq!(by_step.code_max(), by_clusters.code_max());
        for i in -40..=40 {
            let x = i as f32 / 20.0;
            assert_eq!(by_step.quantize(x), by_clusters.quantize(x), "x={x}");
        }
    }

    #[test]
    fn with_step_coarser_grid_merges_codes_and_pins_edges() {
        let range = InputRange::new(-1.0, 1.0);
        let fine = LinearQuantizer::new(range, 16).unwrap();
        let coarse = LinearQuantizer::with_step(range, fine.step() * 4.0).unwrap();
        assert_eq!(coarse.clusters(), 4);
        // Values that the fine grid distinguishes collide under the coarse
        // one.
        assert_ne!(fine.quantize(0.01), fine.quantize(0.2));
        assert_eq!(coarse.quantize(0.01), coarse.quantize(0.2));
        // Edge pinning survives an uneven step.
        let uneven = LinearQuantizer::with_step(InputRange::new(0.05, 1.0), 0.3).unwrap();
        assert_eq!(uneven.quantize(0.05), QuantCode(uneven.code_min()));
        assert_eq!(uneven.quantize(1.0), QuantCode(uneven.code_max()));
        assert_eq!(
            uneven.code_max() - uneven.code_min(),
            uneven.clusters() as i32
        );
    }

    #[test]
    fn with_step_rejects_degenerate_steps() {
        let range = InputRange::new(-1.0, 1.0);
        assert!(LinearQuantizer::with_step(range, 0.0).is_err());
        assert!(LinearQuantizer::with_step(range, -0.5).is_err());
        assert!(LinearQuantizer::with_step(range, f32::NAN).is_err());
        assert!(LinearQuantizer::with_step(range, f32::INFINITY).is_err());
        assert!(LinearQuantizer::with_step(InputRange::new(1.0, 1.0), 0.1).is_err());
        // A step wider than the range still yields one giant cluster.
        let giant = LinearQuantizer::with_step(range, 10.0).unwrap();
        assert_eq!(giant.clusters(), 1);
        assert_eq!(giant.quantize(-0.99), giant.quantize(0.99));
    }

    #[test]
    fn nan_maps_to_bottom_code() {
        let q = q16();
        assert_eq!(q.quantize(f32::NAN), QuantCode(q.code_min()));
    }
}

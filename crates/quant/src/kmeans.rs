//! 1-D k-means (Lloyd) quantization — the clustered alternative the paper
//! chose *linear* quantization over.
//!
//! Prior computation-reuse work the paper cites clusters *weights* with
//! k-means; the paper instead quantizes *inputs* with uniformly distributed
//! linear quantization, which needs no trained codebook and a trivial
//! hardware index computation (one multiply + round). This module provides
//! the k-means variant so the choice can be evaluated as an ablation: the
//! adaptive centroids fit the data distribution better (lower error at equal
//! cluster counts) at the cost of a calibration fit and a nearest-centroid
//! search per input.

use crate::{QuantCode, QuantError};

/// A quantizer with k-means-fitted centroids.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansQuantizer {
    /// Sorted cluster centroids.
    centroids: Vec<f32>,
    /// Midpoints between adjacent centroids (decision boundaries).
    boundaries: Vec<f32>,
}

impl KMeansQuantizer {
    /// Fits `clusters` centroids to the sample distribution with Lloyd's
    /// algorithm (deterministic: quantile initialization, fixed iteration
    /// cap).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::TooFewClusters`] for fewer than 2 clusters and
    /// [`QuantError::InvalidRange`] when the samples have no spread.
    pub fn fit(samples: &[f32], clusters: usize, iterations: usize) -> Result<Self, QuantError> {
        if clusters < 2 {
            return Err(QuantError::TooFewClusters { clusters });
        }
        let mut sorted: Vec<f32> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(f32::total_cmp);
        let (Some(&lo), Some(&hi)) = (sorted.first(), sorted.last()) else {
            return Err(QuantError::InvalidRange {
                min: f32::NAN,
                max: f32::NAN,
            });
        };
        if hi <= lo {
            return Err(QuantError::InvalidRange { min: lo, max: hi });
        }
        // Uniform-grid initialization — exactly the linear quantizer's
        // centroid set. Lloyd's update monotonically decreases MSE from
        // there, so the fitted quantizer never does worse than linear
        // quantization at the same cluster count.
        let step = (hi - lo) / (clusters - 1) as f32;
        let mut centroids: Vec<f32> = (0..clusters).map(|c| lo + c as f32 * step).collect();
        centroids.dedup();
        // Lloyd iterations over the sorted samples.
        for _ in 0..iterations {
            let boundaries = midpoints(&centroids);
            let mut sums = vec![0.0f64; centroids.len()];
            let mut counts = vec![0u64; centroids.len()];
            let mut cluster = 0usize;
            for &v in &sorted {
                while cluster < boundaries.len() && v > boundaries[cluster] {
                    cluster += 1;
                }
                sums[cluster] += v as f64;
                counts[cluster] += 1;
            }
            let mut moved = false;
            for (i, c) in centroids.iter_mut().enumerate() {
                if counts[i] > 0 {
                    let new = (sums[i] / counts[i] as f64) as f32;
                    if (new - *c).abs() > 1e-7 {
                        moved = true;
                    }
                    *c = new;
                }
            }
            centroids.sort_by(f32::total_cmp);
            centroids.dedup();
            if !moved {
                break;
            }
        }
        let boundaries = midpoints(&centroids);
        Ok(KMeansQuantizer {
            centroids,
            boundaries,
        })
    }

    /// The fitted centroids, ascending.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Number of clusters actually in use (duplicates collapse during
    /// fitting).
    pub fn clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Quantizes a value to its cluster index (binary search over the
    /// decision boundaries).
    pub fn quantize(&self, x: f32) -> QuantCode {
        let idx = self.boundaries.partition_point(|&b| x > b);
        QuantCode(idx as i32)
    }

    /// Centroid of a code.
    ///
    /// # Panics
    ///
    /// Panics if the code did not come from this quantizer.
    pub fn centroid(&self, code: QuantCode) -> f32 {
        self.centroids[code.0 as usize]
    }

    /// The quantized value of `x`.
    pub fn quantized_value(&self, x: f32) -> f32 {
        self.centroid(self.quantize(x))
    }

    /// Mean squared quantization error over a sample set.
    pub fn mse(&self, samples: &[f32]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples
            .iter()
            .map(|&v| {
                let d = (self.quantized_value(v) - v) as f64;
                d * d
            })
            .sum::<f64>()
            / samples.len() as f64
    }
}

fn midpoints(centroids: &[f32]) -> Vec<f32> {
    centroids.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InputRange, LinearQuantizer};

    fn skewed_samples() -> Vec<f32> {
        // Mass concentrated near zero with a long positive tail — the shape
        // of post-ReLU activations.
        (0..2000)
            .map(|i| {
                let u = i as f32 / 2000.0;
                u * u * 4.0
            })
            .collect()
    }

    #[test]
    fn fit_produces_sorted_centroids() {
        let q = KMeansQuantizer::fit(&skewed_samples(), 8, 50).unwrap();
        let c = q.centroids();
        assert!(c.windows(2).all(|w| w[0] < w[1]));
        assert!(q.clusters() <= 8 && q.clusters() >= 2);
    }

    #[test]
    fn quantize_picks_nearest_centroid() {
        let q = KMeansQuantizer::fit(&skewed_samples(), 8, 50).unwrap();
        for &v in &[0.0f32, 0.5, 1.7, 3.9] {
            let chosen = q.quantized_value(v);
            for &c in q.centroids() {
                assert!((chosen - v).abs() <= (c - v).abs() + 1e-6);
            }
        }
    }

    #[test]
    fn idempotent() {
        let q = KMeansQuantizer::fit(&skewed_samples(), 16, 50).unwrap();
        for &v in &[0.1f32, 0.9, 2.5] {
            let once = q.quantized_value(v);
            assert_eq!(q.quantized_value(once), once);
        }
    }

    #[test]
    fn beats_linear_on_skewed_data() {
        // The reason anyone would consider k-means: lower error at equal
        // cluster count when the data is non-uniform.
        let samples = skewed_samples();
        let km = KMeansQuantizer::fit(&samples, 16, 100).unwrap();
        let lin = LinearQuantizer::new(InputRange::new(0.0, 4.0), 16).unwrap();
        let lin_mse: f64 = samples
            .iter()
            .map(|&v| {
                let d = (lin.quantized_value(v) - v) as f64;
                d * d
            })
            .sum::<f64>()
            / samples.len() as f64;
        assert!(
            km.mse(&samples) < lin_mse,
            "kmeans {} vs linear {lin_mse}",
            km.mse(&samples)
        );
    }

    #[test]
    fn degenerate_samples_rejected() {
        assert!(KMeansQuantizer::fit(&[], 8, 10).is_err());
        assert!(KMeansQuantizer::fit(&[1.0; 50], 8, 10).is_err());
        assert!(KMeansQuantizer::fit(&[0.0, 1.0], 1, 10).is_err());
    }

    #[test]
    fn deterministic() {
        let s = skewed_samples();
        let a = KMeansQuantizer::fit(&s, 8, 50).unwrap();
        let b = KMeansQuantizer::fit(&s, 8, 50).unwrap();
        assert_eq!(a, b);
    }
}

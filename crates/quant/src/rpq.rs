//! Random Projection with Quantization (RPQ) signatures.
//!
//! MERCURY-style locality-sensitive hashing for cross-input reuse: a layer
//! input vector is projected onto `bits` fixed random hyperplanes and each
//! projection contributes one sign bit to a short binary signature. Inputs
//! with a small angle between them agree on most hyperplane sides, so
//! near-identical inputs (silence frames, idle video) collapse onto the
//! same signature with high probability while dissimilar inputs spread
//! across the signature space.
//!
//! The planes are generated once from a seed and thereafter immutable, so a
//! [`RpqPlanes`] can be baked into a shared compiled model and hashed
//! against concurrently without synchronization.

/// A fixed set of random hyperplanes hashing `dim`-element vectors to
/// signatures of `bits` sign bits (at most 64, so a signature is one `u64`).
#[derive(Debug, Clone)]
pub struct RpqPlanes {
    dim: usize,
    bits: u32,
    /// `bits` rows of `dim` normal deviates, row-major.
    planes: Vec<f32>,
}

/// Maximum signature width: signatures are packed into a single `u64`.
pub const MAX_SIGNATURE_BITS: u32 = 64;

/// A tiny deterministic generator for the plane coefficients
/// (xorshift64* core, Box-Muller for the normal deviates). Local to this
/// module so the quant crate stays dependency-free.
struct PlaneRng(u64);

impl PlaneRng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate nearby seeds.
        PlaneRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in the open interval (0, 1].
    fn uniform(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// A standard normal deviate (Box-Muller; the sine half is discarded —
    /// plane generation is a one-time setup cost).
    fn normal(&mut self) -> f32 {
        let r = (-2.0 * self.uniform().ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * self.uniform();
        (r * theta.cos()) as f32
    }
}

impl RpqPlanes {
    /// Builds `bits` random hyperplanes over `dim`-element inputs.
    ///
    /// `bits` is clamped to `1..=`[`MAX_SIGNATURE_BITS`]. The same
    /// `(dim, bits, seed)` always yields the same planes, so every process
    /// sharing a model derives identical signatures.
    pub fn new(dim: usize, bits: u32, seed: u64) -> Self {
        let bits = bits.clamp(1, MAX_SIGNATURE_BITS);
        let mut rng = PlaneRng::new(seed ^ (dim as u64).rotate_left(17));
        let planes = (0..bits as usize * dim).map(|_| rng.normal()).collect();
        RpqPlanes { dim, bits, planes }
    }

    /// Input dimensionality the planes were built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Signature width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Bytes held by the plane matrix.
    pub fn storage_bytes(&self) -> usize {
        self.planes.len() * std::mem::size_of::<f32>()
    }

    /// Hashes an input vector: bit `k` of the result is the sign of the
    /// projection onto plane `k` (non-negative → 1). `xs` longer than `dim`
    /// uses only the first `dim` elements; shorter inputs treat the missing
    /// tail as zero, so callers never panic on shape drift.
    pub fn signature(&self, xs: &[f32]) -> u64 {
        let n = self.dim.min(xs.len());
        let mut sig = 0u64;
        for k in 0..self.bits as usize {
            let row = &self.planes[k * self.dim..k * self.dim + n];
            let mut dot = 0.0f32;
            for (w, x) in row.iter().zip(xs) {
                dot += w * x;
            }
            if dot >= 0.0 {
                sig |= 1 << k;
            }
        }
        sig
    }
}

/// Number of differing bits between two signatures.
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dim: usize) -> Vec<f32> {
        (0..dim).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = RpqPlanes::new(64, 16, 42);
        let b = RpqPlanes::new(64, 16, 42);
        let xs = ramp(64);
        assert_eq!(a.signature(&xs), b.signature(&xs));
    }

    #[test]
    fn different_seeds_give_different_planes() {
        let a = RpqPlanes::new(64, 32, 1);
        let b = RpqPlanes::new(64, 32, 2);
        let xs = ramp(64);
        assert_ne!(a.signature(&xs), b.signature(&xs));
    }

    #[test]
    fn bits_clamped_to_u64_width() {
        let p = RpqPlanes::new(8, 200, 7);
        assert_eq!(p.bits(), MAX_SIGNATURE_BITS);
        let p = RpqPlanes::new(8, 0, 7);
        assert_eq!(p.bits(), 1);
    }

    #[test]
    fn unused_high_bits_stay_zero() {
        let p = RpqPlanes::new(32, 12, 3);
        let sig = p.signature(&ramp(32));
        assert_eq!(sig >> 12, 0);
    }

    #[test]
    fn nearby_inputs_share_a_signature() {
        let p = RpqPlanes::new(128, 16, 9);
        let xs = ramp(128);
        let mut ys = xs.clone();
        for y in &mut ys {
            *y += 1e-5;
        }
        assert_eq!(p.signature(&xs), p.signature(&ys));
    }

    #[test]
    fn scaling_preserves_the_signature() {
        // Sign-of-projection hashing is invariant to positive scaling.
        let p = RpqPlanes::new(64, 24, 11);
        let xs = ramp(64);
        let ys: Vec<f32> = xs.iter().map(|x| x * 3.5).collect();
        assert_eq!(p.signature(&xs), p.signature(&ys));
    }

    #[test]
    fn dissimilar_inputs_diverge() {
        let p = RpqPlanes::new(128, 32, 5);
        let xs = ramp(128);
        let ys: Vec<f32> = xs.iter().map(|x| -x + 0.9).collect();
        assert!(hamming(p.signature(&xs), p.signature(&ys)) > 4);
    }

    #[test]
    fn short_input_hashes_like_zero_padded() {
        let p = RpqPlanes::new(16, 8, 13);
        let xs = ramp(12);
        let mut padded = xs.clone();
        padded.resize(16, 0.0);
        assert_eq!(p.signature(&xs), p.signature(&padded));
    }

    #[test]
    fn storage_accounting() {
        let p = RpqPlanes::new(100, 16, 1);
        assert_eq!(p.storage_bytes(), 16 * 100 * 4);
    }
}

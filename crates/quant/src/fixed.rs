//! 8-bit fixed-point quantization mode (paper Section VI-A).
//!
//! The reduced-precision accelerator represents weights and inputs as 8-bit
//! fixed point. From the reuse scheme's point of view this is simply a
//! 256-cluster linear quantizer over a symmetric range — but with 1-byte
//! data everywhere, which the accelerator model charges at a quarter of the
//! 32-bit memory traffic. The paper reports that input similarity *rises*
//! (45% → 52% for Kaldi) when moving the baseline to 8-bit because the value
//! space itself becomes coarser.

use crate::{InputRange, LinearQuantizer, QuantError};

/// Builds the linear quantizer equivalent to an 8-bit fixed-point datapath
/// over a symmetric range `[-max_abs, max_abs]` (255 signed codes).
///
/// # Errors
///
/// Returns [`QuantError::InvalidRange`] when `max_abs` is not positive and
/// finite.
pub fn q8_quantizer(max_abs: f32) -> Result<LinearQuantizer, QuantError> {
    LinearQuantizer::new(InputRange::symmetric(max_abs), 255)
}

/// Quantizes a whole slice of weights to Q8 codes plus a scale, as the
/// reduced-precision weight buffer stores them.
pub fn quantize_weights_q8(weights: &[f32]) -> (Vec<i8>, f32) {
    let max_abs = weights.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let scale = reuse_tensor::fixed::q8_scale(max_abs);
    (
        reuse_tensor::fixed::quantize_slice_q8(weights, scale),
        scale,
    )
}

/// Bytes per stored value in the reduced-precision datapath.
pub const Q8_BYTES_PER_VALUE: usize = 1;

/// Bytes per stored value in the 32-bit floating-point datapath.
pub const F32_BYTES_PER_VALUE: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q8_quantizer_has_255_clusters() {
        let q = q8_quantizer(1.0).unwrap();
        assert_eq!(q.clusters(), 255);
        // Step close to 2/255.
        assert!((q.step() - 2.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn q8_is_coarser_than_f32_but_finer_than_32_clusters() {
        let q8 = q8_quantizer(1.0).unwrap();
        let q32 = LinearQuantizer::new(InputRange::symmetric(1.0), 32).unwrap();
        let (a, b) = (0.500f32, 0.504f32);
        // 32 clusters cannot tell them apart; neither can q8 (step ~0.0078)...
        assert_eq!(q32.quantize(a), q32.quantize(b));
        assert_eq!(q8.quantize(a), q8.quantize(b));
        // ...but q8 separates a full q8-step.
        let c = a + q8.step() * 1.1;
        assert_ne!(q8.quantize(a), q8.quantize(c));
    }

    #[test]
    fn weight_quantization_error_bounded() {
        let w = [0.3f32, -0.7, 0.01, 0.69];
        let (codes, scale) = quantize_weights_q8(&w);
        for (c, orig) in codes.iter().zip(w.iter()) {
            assert!((*c as f32 * scale - orig).abs() <= scale / 2.0 + 1e-6);
        }
    }

    #[test]
    fn invalid_max_abs_rejected() {
        assert!(q8_quantizer(0.0).is_err());
        assert!(q8_quantizer(f32::NAN).is_err());
    }
}

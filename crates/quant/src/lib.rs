//! Linear input quantization for the `reuse-dnn` reproduction.
//!
//! The paper's key enabling mechanism (Section III): 32-bit floating-point
//! inputs are almost never bit-identical across consecutive executions, but
//! after **uniformly distributed linear quantization** (Eq. 9) most of them
//! map to the same cluster centroid, exposing reuse. The quantization step of
//! each layer is derived from the input *range*, profiled offline (the paper
//! profiles the training set; we profile a calibration sequence).
//!
//! * [`InputRange`] — profiled min/max of a layer's inputs.
//! * [`LinearQuantizer`] — Eq. 9: `Qval = round(x / step) · step`, with the
//!   integer `round(x / step)` used as the stored *index* (the paper's
//!   I/O-buffer "indices" area).
//! * [`RangeProfiler`] — accumulates ranges over calibration data.
//! * [`fixed`] — an 8-bit fixed-point quantizer for the reduced-precision
//!   accelerator study (paper Section VI-A).
//! * [`RpqPlanes`] — MERCURY-style random-projection signatures for the
//!   cross-stream signature cache.
//!
//! # Example
//!
//! ```
//! use reuse_quant::{InputRange, LinearQuantizer};
//!
//! let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16)?;
//! let code = q.quantize(0.33);
//! assert_eq!(q.centroid(code), q.quantized_value(0.33));
//! # Ok::<(), reuse_quant::QuantError>(())
//! ```

#![warn(missing_docs)]

mod error;
pub mod fixed;
pub mod kmeans;
mod linear;
mod range;
mod rpq;
#[cfg(target_arch = "x86_64")]
mod simd;

pub use error::QuantError;
pub use linear::{LinearQuantizer, QuantCode};
pub use range::{InputRange, RangeProfiler};
pub use rpq::{hamming, RpqPlanes, MAX_SIGNATURE_BITS};

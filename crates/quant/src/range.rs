//! Input-range profiling.
//!
//! The paper obtains each layer's input range "via profiling using the
//! training dataset" (Section III). [`RangeProfiler`] plays that role here:
//! feed it every input vector of a calibration sequence and ask for the
//! resulting [`InputRange`].

use crate::QuantError;

/// A closed input interval `[min, max]` for one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputRange {
    min: f32,
    max: f32,
}

impl InputRange {
    /// Creates a range; `min` may equal `max` (degenerate constant input).
    pub fn new(min: f32, max: f32) -> Self {
        InputRange { min, max }
    }

    /// A symmetric range `[-m, m]`.
    pub fn symmetric(m: f32) -> Self {
        InputRange {
            min: -m.abs(),
            max: m.abs(),
        }
    }

    /// The lower bound.
    pub fn min(&self) -> f32 {
        self.min
    }

    /// The upper bound.
    pub fn max(&self) -> f32 {
        self.max
    }

    /// The width `max - min`.
    pub fn width(&self) -> f32 {
        self.max - self.min
    }

    /// Validates the range for quantizer construction.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidRange`] when inverted, non-finite or of
    /// zero width.
    pub fn validated(self) -> Result<Self, QuantError> {
        if !self.min.is_finite() || !self.max.is_finite() || self.max <= self.min {
            return Err(QuantError::InvalidRange {
                min: self.min,
                max: self.max,
            });
        }
        Ok(self)
    }

    /// Clamps a value into the range.
    pub fn clamp(&self, v: f32) -> f32 {
        v.clamp(self.min, self.max)
    }
}

/// Accumulates the observed min/max over calibration inputs.
///
/// A fixed-size histogram is maintained alongside the extremes so
/// [`RangeProfiler::percentile_range`] can clip outliers — one extreme
/// calibration value would otherwise stretch the range and waste centroid
/// resolution on values that never recur.
#[derive(Debug, Clone, Default)]
pub struct RangeProfiler {
    min: Option<f32>,
    max: Option<f32>,
    samples: u64,
    /// Coarse histogram over the running [min, max]; rebinned lazily at
    /// query time from the stored raw reservoir.
    reservoir: Vec<f32>,
}

/// Maximum reservoir size for percentile estimation.
const RESERVOIR_CAP: usize = 4096;

impl RangeProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one value.
    pub fn observe(&mut self, v: f32) {
        if !v.is_finite() {
            return;
        }
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
        self.samples += 1;
        // Deterministic systematic reservoir: keep every k-th sample once
        // full, with k growing geometrically.
        if self.reservoir.len() < RESERVOIR_CAP {
            self.reservoir.push(v);
        } else {
            let stride = (self.samples / RESERVOIR_CAP as u64).max(1);
            if self.samples.is_multiple_of(stride) {
                let idx = (self.samples / stride) as usize % RESERVOIR_CAP;
                self.reservoir[idx] = v;
            }
        }
    }

    /// Observes a whole slice.
    pub fn observe_slice(&mut self, vs: &[f32]) {
        for &v in vs {
            self.observe(v);
        }
    }

    /// Number of finite values observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// An outlier-clipped range covering the central `fraction` of the
    /// observed distribution (e.g. `0.999`), estimated from a deterministic
    /// sample reservoir. Values outside the range saturate at the edge
    /// centroids, trading rare large errors for finer resolution where the
    /// mass is.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidRange`] when too little data was
    /// observed or the clipped range is degenerate.
    pub fn percentile_range(&self, fraction: f32) -> Result<InputRange, QuantError> {
        if self.reservoir.len() < 8 {
            return Err(QuantError::InvalidRange {
                min: f32::NAN,
                max: f32::NAN,
            });
        }
        let mut sorted = self.reservoir.clone();
        sorted.sort_by(f32::total_cmp);
        let tail = ((1.0 - fraction.clamp(0.0, 1.0)) / 2.0 * sorted.len() as f32) as usize;
        let lo = sorted[tail.min(sorted.len() - 1)];
        let hi = sorted[(sorted.len() - 1 - tail).max(tail)];
        InputRange::new(lo, hi).validated()
    }

    /// The profiled range, widened by `margin` (relative) on both sides so
    /// the deployed quantizer tolerates mild distribution shift.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidRange`] when nothing (or only a single
    /// constant value) was observed.
    pub fn range(&self, margin: f32) -> Result<InputRange, QuantError> {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) if hi > lo => {
                let pad = (hi - lo) * margin;
                InputRange::new(lo - pad, hi + pad).validated()
            }
            (Some(lo), Some(hi)) => Err(QuantError::InvalidRange { min: lo, max: hi }),
            _ => Err(QuantError::InvalidRange {
                min: f32::NAN,
                max: f32::NAN,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_tracks_extremes() {
        let mut p = RangeProfiler::new();
        p.observe_slice(&[0.5, -1.5, 2.0, 0.0]);
        let r = p.range(0.0).unwrap();
        assert_eq!((r.min(), r.max()), (-1.5, 2.0));
        assert_eq!(p.samples(), 4);
    }

    #[test]
    fn margin_widens_range() {
        let mut p = RangeProfiler::new();
        p.observe_slice(&[0.0, 1.0]);
        let r = p.range(0.1).unwrap();
        assert!((r.min() + 0.1).abs() < 1e-6);
        assert!((r.max() - 1.1).abs() < 1e-6);
    }

    #[test]
    fn empty_profiler_errors() {
        let p = RangeProfiler::new();
        assert!(p.range(0.0).is_err());
    }

    #[test]
    fn constant_input_errors() {
        let mut p = RangeProfiler::new();
        p.observe_slice(&[3.0, 3.0, 3.0]);
        assert!(p.range(0.0).is_err());
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut p = RangeProfiler::new();
        p.observe(f32::NAN);
        p.observe(f32::INFINITY);
        p.observe_slice(&[1.0, 2.0]);
        assert_eq!(p.samples(), 2);
        let r = p.range(0.0).unwrap();
        assert_eq!((r.min(), r.max()), (1.0, 2.0));
    }

    #[test]
    fn clamp_and_width() {
        let r = InputRange::new(-1.0, 3.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.clamp(5.0), 3.0);
        assert_eq!(r.clamp(-5.0), -1.0);
        assert_eq!(r.clamp(0.5), 0.5);
    }

    #[test]
    fn symmetric_takes_abs() {
        let r = InputRange::symmetric(-2.0);
        assert_eq!((r.min(), r.max()), (-2.0, 2.0));
    }

    #[test]
    fn percentile_range_clips_outliers() {
        let mut p = RangeProfiler::new();
        // Tight distribution with two far outliers.
        for i in 0..1000 {
            p.observe((i % 100) as f32 / 100.0);
        }
        p.observe(50.0);
        p.observe(-50.0);
        let full = p.range(0.0).unwrap();
        assert_eq!((full.min(), full.max()), (-50.0, 50.0));
        let clipped = p.percentile_range(0.99).unwrap();
        assert!(clipped.min() > -1.0, "clipped min {}", clipped.min());
        assert!(clipped.max() < 2.0, "clipped max {}", clipped.max());
    }

    #[test]
    fn percentile_range_needs_enough_samples() {
        let mut p = RangeProfiler::new();
        p.observe_slice(&[0.0, 1.0, 2.0]);
        assert!(p.percentile_range(0.99).is_err());
    }

    #[test]
    fn percentile_one_equals_extremes_for_small_sets() {
        let mut p = RangeProfiler::new();
        for i in 0..100 {
            p.observe(i as f32);
        }
        let r = p.percentile_range(1.0).unwrap();
        assert_eq!((r.min(), r.max()), (0.0, 99.0));
    }

    #[test]
    fn inverted_range_invalid() {
        assert!(InputRange::new(1.0, -1.0).validated().is_err());
        assert!(InputRange::new(0.0, 0.0).validated().is_err());
        assert!(InputRange::new(0.0, 1.0).validated().is_ok());
    }
}

//! Cross-validation of the cost models on real measured traces:
//!
//! * The analytical simulator's compute cycles must agree with the
//!   cycle-level pipeline model of paper Fig. 7 within pipeline overheads.
//! * The energy accounting must track the MAC savings the traces record.

use reuse_accel::{pipeline, AcceleratorConfig, SimInput, Simulator};
use reuse_bench::measure_workload;
use reuse_core::TraceKind;
use reuse_workloads::{Scale, WorkloadKind};

/// Converts a measured execution trace to pipeline-layer parameters.
fn to_pipeline_layers(
    trace: &reuse_core::ExecutionTrace,
    reuse_mode: bool,
) -> Vec<pipeline::PipelineLayer> {
    trace
        .layers
        .iter()
        .map(|l| {
            let incremental = reuse_mode && l.mode == TraceKind::Incremental;
            let (n_changed, macs) = if incremental {
                (l.n_changed, l.macs_performed)
            } else {
                (l.n_inputs, l.macs_total)
            };
            // Average fan-out per changed input.
            let fanout = if n_changed == 0 {
                0
            } else {
                macs / n_changed.max(1)
            };
            pipeline::PipelineLayer {
                n_inputs: l.n_inputs,
                n_changed,
                fanout: fanout.max(1),
                quantize: reuse_mode && l.mode != TraceKind::ScratchFp32,
            }
        })
        .collect()
}

#[test]
fn analytical_cycles_agree_with_pipeline_model() {
    let config = AcceleratorConfig::paper();
    let lanes = config.total_multipliers() as u64;
    let sim = Simulator::new(config);
    for kind in [WorkloadKind::Kaldi, WorkloadKind::AutoPilot] {
        let m = measure_workload(kind, Scale::Tiny, 20, 11);
        let input = SimInput {
            name: "xval",
            traces: &m.traces,
            model_bytes: m.model_bytes,
            // Isolate compute: no weight reloading traffic.
            executions_per_sequence: u64::MAX,
            activations_spill: false,
        };
        for reuse_mode in [false, true] {
            let report = if reuse_mode {
                sim.simulate_reuse(&input)
            } else {
                sim.simulate_baseline(&input)
            };
            let pipeline_cycles: u64 = m
                .traces
                .iter()
                .map(|t| pipeline::execution_cycles(&to_pipeline_layers(t, reuse_mode), lanes))
                .sum();
            // The pipeline model is an upper bound (per-input rounding,
            // fill/drain); the analytical model must stay within it and not
            // be wildly below. Tiny layers have large per-input rounding, so
            // the band is loose but still diagnostic.
            assert!(
                report.cycles <= pipeline_cycles,
                "{kind} reuse={reuse_mode}: analytical {} above pipeline {}",
                report.cycles,
                pipeline_cycles
            );
            assert!(
                (report.cycles as f64) > 0.02 * pipeline_cycles as f64,
                "{kind} reuse={reuse_mode}: analytical {} far below pipeline {}",
                report.cycles,
                pipeline_cycles
            );
        }
    }
}

#[test]
fn energy_savings_track_mac_savings() {
    let sim = Simulator::new(AcceleratorConfig::paper());
    let m = measure_workload(WorkloadKind::Kaldi, Scale::Tiny, 24, 12);
    let input = SimInput {
        name: "xval",
        traces: &m.traces,
        model_bytes: m.model_bytes,
        executions_per_sequence: 500,
        activations_spill: false,
    };
    let base = sim.simulate_baseline(&input);
    let reuse = sim.simulate_reuse(&input);
    let mac_ratio = reuse.macs as f64 / base.macs as f64;
    let energy_ratio = reuse.energy_j() / base.energy_j();
    // Energy ratio must lie between the MAC ratio (perfect scaling) and 1
    // (no savings at all): overheads and non-reusable layers sit in between.
    assert!(
        energy_ratio >= mac_ratio - 0.05,
        "energy {energy_ratio} vs macs {mac_ratio}"
    );
    assert!(energy_ratio < 1.0, "reuse must save energy: {energy_ratio}");
}

#[test]
fn speedup_bounded_by_amdahl() {
    // The reuse speedup can never exceed the reciprocal of the performed
    // fraction of MACs (Amdahl over the compute; memory only hurts).
    let sim = Simulator::new(AcceleratorConfig::paper());
    for kind in [WorkloadKind::Kaldi, WorkloadKind::C3d] {
        let m = measure_workload(kind, Scale::Tiny, 12, 13);
        let input = SimInput {
            name: "xval",
            traces: &m.traces,
            model_bytes: m.model_bytes,
            executions_per_sequence: 100,
            activations_spill: m.activations_spill,
        };
        let base = sim.simulate_baseline(&input);
        let reuse = sim.simulate_reuse(&input);
        let amdahl = base.macs as f64 / reuse.macs.max(1) as f64;
        let speedup = reuse.speedup_over(&base);
        assert!(
            speedup <= amdahl * 1.05,
            "{kind}: speedup {speedup} exceeds Amdahl bound {amdahl}"
        );
    }
}

#[test]
fn event_simulator_agrees_with_analytical_on_real_traces() {
    let config = AcceleratorConfig::paper();
    let sim = Simulator::new(config.clone());
    for kind in [WorkloadKind::Kaldi, WorkloadKind::AutoPilot] {
        let m = measure_workload(kind, Scale::Tiny, 16, 21);
        let input = SimInput {
            name: "ev",
            traces: &m.traces,
            model_bytes: m.model_bytes,
            executions_per_sequence: u64::MAX,
            activations_spill: false,
        };
        let analytical = sim.simulate_reuse(&input);
        let event_cycles: u64 = m
            .traces
            .iter()
            .map(|t| {
                let work =
                    reuse_accel::events::work_from_trace(t, &config, m.model_bytes, true, false);
                reuse_accel::events::simulate_execution(&work, &config).cycles
            })
            .sum();
        // The event simulator models per-input stalls the analytical model
        // amortizes; they must land within 3x of each other (tiny layers
        // make per-input rounding harsh) and the analytical model must not
        // exceed the event model's cycle count.
        assert!(
            analytical.cycles <= event_cycles,
            "{kind}: analytical {} > event {}",
            analytical.cycles,
            event_cycles
        );
        assert!(
            event_cycles < analytical.cycles * 12,
            "{kind}: event {} too far above analytical {}",
            event_cycles,
            analytical.cycles
        );
    }
}

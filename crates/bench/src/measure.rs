//! Workload measurement: run a DNN over its synthetic input stream with the
//! reuse engine and collect everything the experiment binaries need.

use reuse_core::{ExecutionTrace, ParallelConfig, ReuseConfig, ReuseEngine};
use reuse_tensor::Tensor;
use reuse_workloads::accuracy::{
    classification_agreement, mean_relative_error, regression_agreement, AgreementReport,
};
use reuse_workloads::{Scale, Workload, WorkloadKind};

/// Per-layer summary extracted from the engine metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSummary {
    /// Layer name (paper naming: fc3, conv2, bilstm1, ...).
    pub name: String,
    /// Scalar inputs per execution.
    pub inputs: usize,
    /// Scalar outputs per execution.
    pub outputs: usize,
    /// Whether the reuse scheme was applied to this layer.
    pub enabled: bool,
    /// Input similarity in `[0, 1]` (0 when disabled).
    pub input_similarity: f64,
    /// Computation reuse in `[0, 1]` (0 when disabled).
    pub computation_reuse: f64,
    /// Quantized-input hit rate from runtime telemetry (0 when disabled).
    /// Agrees with `input_similarity` by construction; kept as a separate
    /// column so exported tables carry the telemetry provenance.
    pub hit_rate: f64,
}

/// Everything measured from one workload run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Which DNN.
    pub kind: WorkloadKind,
    /// Model scale used.
    pub scale: Scale,
    /// Executions performed (timesteps for EESEN).
    pub executions: u64,
    /// Active reuse-policy name resolved by the engine configuration
    /// (`"static"`, `"adaptive"`, or `"tuned"`).
    pub policy: String,
    /// Per-layer summaries for weighted layers, in network order.
    pub layers: Vec<LayerSummary>,
    /// Input similarity over all reuse-enabled layers (Fig. 5).
    pub overall_similarity: f64,
    /// Computation reuse over all reuse-enabled layers (Fig. 5).
    pub overall_reuse: f64,
    /// Output agreement between the quantized+reuse run and the fp32
    /// reference (the accuracy proxy; see DESIGN.md).
    pub agreement: AgreementReport,
    /// Mean relative L2 error of the outputs versus the fp32 reference —
    /// the direct measurement of the degradation the paper's accuracy
    /// columns bound.
    pub mean_relative_error: f64,
    /// Per-execution activity traces for the accelerator simulator.
    pub traces: Vec<ExecutionTrace>,
    /// Model size in bytes (fp32).
    pub model_bytes: u64,
    /// Simulator parameter: executions per input sequence.
    pub executions_per_sequence: u64,
    /// Simulator parameter: whether activations spill to main memory.
    pub activations_spill: bool,
    /// Reuse-state storage bytes (indices + buffered outputs; Table III).
    pub reuse_storage_bytes: u64,
    /// Centroid-table bytes in the control unit.
    pub centroid_table_bytes: u64,
}

/// Default number of executions measured per workload at each scale.
pub fn default_executions(kind: WorkloadKind, scale: Scale) -> usize {
    match (kind, scale) {
        (WorkloadKind::C3d, Scale::Full) => 8,
        (WorkloadKind::C3d, _) => 16,
        (WorkloadKind::AutoPilot, Scale::Full) => 60,
        (_, Scale::Tiny) => 24,
        _ => 80,
    }
}

/// Number of executions to measure, honoring `REUSE_EXECUTIONS`.
pub fn executions_from_env(kind: WorkloadKind, scale: Scale) -> usize {
    std::env::var("REUSE_EXECUTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| default_executions(kind, scale))
}

/// Engine parallelism, honoring `REUSE_THREADS` (`0` = one worker per
/// hardware thread; unset = serial) and `REUSE_INLINE_FLOPS` (per-call FLOP
/// estimate below which kernels stay on the calling thread; unset keeps the
/// default adaptive threshold). Explicit thread counts are still clamped to
/// the host's hardware threads by `ParallelConfig`. All parallel kernels
/// are bit-identical to serial, so these only change wall-clock time —
/// measurements and cached results are unaffected.
pub fn parallel_from_env() -> ParallelConfig {
    let base = match std::env::var("REUSE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(0) => ParallelConfig::auto(),
        Some(n) => ParallelConfig::with_threads(n),
        None => ParallelConfig::serial(),
    };
    match std::env::var("REUSE_INLINE_FLOPS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(flops) => base.inline_flops(flops),
        None => base,
    }
}

/// Runs one workload through the reuse engine and collects a
/// [`Measurement`]. Deterministic for a given `(kind, scale, executions,
/// seed)`.
pub fn measure_workload(
    kind: WorkloadKind,
    scale: Scale,
    executions: usize,
    seed: u64,
) -> Measurement {
    measure_with_config(kind, scale, executions, seed, None)
}

/// Like [`measure_workload`] with an overridden reuse configuration (used
/// by the cluster-sweep and reduced-precision studies).
pub fn measure_with_config(
    kind: WorkloadKind,
    scale: Scale,
    executions: usize,
    seed: u64,
    config_override: Option<ReuseConfig>,
) -> Measurement {
    let workload = Workload::build(kind, scale);
    let config = config_override
        .unwrap_or_else(|| workload.reuse_config().clone())
        .record_trace(true)
        .telemetry(true)
        .parallel(parallel_from_env());
    let mut engine = ReuseEngine::from_network(workload.network(), &config);

    let (agreement, fidelity) = if workload.is_recurrent() {
        // EESEN: split the executions into utterances. One extra sequence
        // covers the calibration pass so `executions` are measured in reuse
        // mode.
        let seq_len = 40.min(executions.max(2));
        let n_seq = executions.div_ceil(seq_len) + 1;
        let seqs = workload.generate_sequences(n_seq, seq_len, seed);
        let mut reference = Vec::new();
        let mut test = Vec::new();
        for seq in &seqs {
            let outs = engine
                .execute_sequence(seq)
                .expect("workload sequences are valid");
            let refs = workload
                .network()
                .forward_sequence(seq)
                .expect("reference pass");
            test.extend(outs);
            reference.extend(refs);
        }
        (
            classification_agreement(&reference, &test),
            mean_relative_error(&reference, &test),
        )
    } else {
        let frames = workload.generate_frames(executions, seed);
        // Back-to-back frames through the pooled, allocation-conscious
        // sequence path; outputs materialize as tensors only afterwards,
        // for the accuracy comparison.
        let mut outs: Vec<Vec<f32>> = Vec::new();
        engine
            .execute_sequence_into(&frames, &mut outs)
            .expect("workload frames are valid");
        let test: Vec<Tensor> = outs
            .iter()
            .map(|o| Tensor::from_slice_1d(o).expect("flat network output"))
            .collect();
        let mut reference = Vec::new();
        for frame in &frames {
            reference.push(
                workload
                    .network()
                    .forward_flat(frame)
                    .expect("reference pass"),
            );
        }
        let agreement = if matches!(kind, WorkloadKind::AutoPilot) {
            // Steering regression: agree within 10% of the observed steering
            // range (the output of an untrained network has no absolute
            // scale; see DESIGN.md).
            let (lo, hi) = reference
                .iter()
                .map(|t| t.as_slice()[0])
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), v| {
                    (lo.min(v), hi.max(v))
                });
            let range = (hi - lo).max(1e-3);
            regression_agreement(&reference, &test, 0.1, range)
        } else {
            classification_agreement(&reference, &test)
        };
        (agreement, mean_relative_error(&reference, &test))
    };

    let metrics = engine.metrics().clone();
    let telemetry = engine
        .telemetry_snapshot()
        .expect("measure_with_config always enables telemetry");
    let layers = workload
        .network()
        .layers()
        .iter()
        .zip(workload.network().layer_input_shapes().iter())
        .filter(|((_, l), _)| l.has_weights())
        .map(|((name, layer), in_shape)| {
            let m = metrics.layer(name);
            let enabled = config.setting_for(name).enabled
                && !engine.auto_disabled_layers().any(|n| n == name);
            let out = layer.output_shape(in_shape).expect("validated").volume();
            LayerSummary {
                name: name.clone(),
                inputs: in_shape.volume(),
                outputs: out,
                enabled,
                input_similarity: if enabled {
                    m.map_or(0.0, |m| m.input_similarity())
                } else {
                    0.0
                },
                computation_reuse: if enabled {
                    m.map_or(0.0, |m| m.computation_reuse())
                } else {
                    0.0
                },
                hit_rate: if enabled {
                    telemetry
                        .layers
                        .iter()
                        .find(|t| &t.name == name)
                        .map_or(0.0, |t| t.hit_rate)
                } else {
                    0.0
                },
            }
        })
        .collect();

    let reuse_storage_bytes = engine.reuse_storage_bytes();
    let centroid_table_bytes = engine.centroid_table_bytes();
    let mut traces = engine.take_traces();
    // Drop the calibration executions: range profiling is an offline step
    // (the paper profiles the training set), so the simulated steady-state
    // workload must not include those full-precision passes. The quantized
    // from-scratch first execution stays — it is a real cost of the scheme.
    let calibration_traces = if workload.is_recurrent() {
        40.min(executions.max(2)) * config.calibration()
    } else {
        config.calibration()
    };
    traces.drain(0..calibration_traces.min(traces.len()));
    Measurement {
        kind,
        scale,
        executions: metrics.executions,
        policy: config.policy_name().to_string(),
        layers,
        overall_similarity: metrics.overall_input_similarity(),
        overall_reuse: metrics.overall_computation_reuse(),
        agreement,
        mean_relative_error: fidelity,
        traces,
        model_bytes: workload.network().model_bytes(),
        executions_per_sequence: workload.executions_per_sequence(),
        activations_spill: workload.activations_spill(),
        reuse_storage_bytes,
        centroid_table_bytes,
    }
}

impl Measurement {
    /// Builds the accelerator-simulator input view of this measurement.
    pub fn sim_input(&self) -> reuse_accel::SimInput<'_> {
        reuse_accel::SimInput {
            name: self.kind.name(),
            traces: &self.traces,
            model_bytes: self.model_bytes,
            executions_per_sequence: self.executions_per_sequence,
            activations_spill: self.activations_spill,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurements_have_sane_shape() {
        for kind in WorkloadKind::ALL {
            let m = measure_workload(kind, Scale::Tiny, 10, 1);
            assert!(m.executions >= 10, "{kind}: {}", m.executions);
            assert!(!m.layers.is_empty());
            assert!(!m.traces.is_empty());
            assert!(m.overall_similarity >= 0.0 && m.overall_similarity <= 1.0);
            assert!(m.overall_reuse >= 0.0 && m.overall_reuse <= 1.0);
            for l in &m.layers {
                // Telemetry hit rate is the same quantity as the offline
                // input similarity, measured on the runtime path.
                assert!(
                    (l.hit_rate - l.input_similarity).abs() < f64::EPSILON,
                    "{kind}/{}: hit_rate {} vs similarity {}",
                    l.name,
                    l.hit_rate,
                    l.input_similarity
                );
            }
            if matches!(kind, WorkloadKind::AutoPilot) {
                // The tiny untrained regressor's output range is noise-
                // dominated; the relative-error fidelity metric is the
                // meaningful check there.
                assert!(
                    m.mean_relative_error < 0.3,
                    "{kind}: relative error {}",
                    m.mean_relative_error
                );
            } else {
                assert!(
                    m.agreement.ratio() > 0.5,
                    "{kind}: agreement {}",
                    m.agreement.ratio()
                );
            }
        }
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = measure_workload(WorkloadKind::Kaldi, Scale::Tiny, 8, 3);
        let b = measure_workload(WorkloadKind::Kaldi, Scale::Tiny, 8, 3);
        assert_eq!(a.overall_similarity, b.overall_similarity);
        assert_eq!(a.traces.len(), b.traces.len());
        assert_eq!(a.agreement, b.agreement);
    }

    #[test]
    fn disabled_layers_reported_disabled() {
        let m = measure_workload(WorkloadKind::Kaldi, Scale::Tiny, 8, 3);
        let fc1 = m.layers.iter().find(|l| l.name == "fc1").unwrap();
        assert!(!fc1.enabled);
        assert_eq!(fc1.computation_reuse, 0.0);
    }
}

//! On-disk cache for measurements.
//!
//! Running the full-scale C3D through the engine takes minutes on a scalar
//! simulator; every figure binary needs the same four measurements. The
//! cache stores one plain-text file per `(workload, scale, executions,
//! seed)` under `target/reuse_cache/`, holding the per-layer summaries and
//! the complete activity traces. The format is a simple line protocol — no
//! extra dependencies needed.

use std::fs;
use std::path::PathBuf;

use reuse_core::{ExecutionTrace, LayerTrace, TraceKind};
use reuse_nn::LayerKind;
use reuse_workloads::accuracy::AgreementReport;
use reuse_workloads::{Scale, WorkloadKind};

use crate::measure::{measure_workload, LayerSummary, Measurement};

/// Cache format version; bump when the line protocol changes.
const VERSION: u32 = 7;

/// Directory holding the cache files.
pub fn cache_dir() -> PathBuf {
    PathBuf::from(std::env::var("REUSE_CACHE_DIR").unwrap_or_else(|_| "target/reuse_cache".into()))
}

fn cache_path(kind: WorkloadKind, scale: Scale, executions: usize, seed: u64) -> PathBuf {
    cache_dir().join(format!(
        "v{VERSION}_{}_{}_{executions}_{seed}.txt",
        kind.name(),
        scale
    ))
}

/// Returns the measurement for the given parameters, computing and caching
/// it if needed. Set `REUSE_NO_CACHE=1` to force recomputation.
pub fn cached_measurement(
    kind: WorkloadKind,
    scale: Scale,
    executions: usize,
    seed: u64,
) -> Measurement {
    let path = cache_path(kind, scale, executions, seed);
    let no_cache = std::env::var("REUSE_NO_CACHE")
        .map(|v| v == "1")
        .unwrap_or(false);
    if !no_cache {
        if let Ok(text) = fs::read_to_string(&path) {
            if let Some(m) = deserialize(&text) {
                return m;
            }
        }
    }
    eprintln!(
        "[measure] running {} at {scale} scale ({executions} executions)...",
        kind.name()
    );
    let m = measure_workload(kind, scale, executions, seed);
    let _ = fs::create_dir_all(cache_dir());
    let _ = fs::write(&path, serialize(&m));
    m
}

fn kind_str(kind: WorkloadKind) -> &'static str {
    kind.name()
}

fn kind_from_str(s: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL.into_iter().find(|k| k.name() == s)
}

fn scale_from_str(s: &str) -> Option<Scale> {
    match s {
        "full" => Some(Scale::Full),
        "small" => Some(Scale::Small),
        "tiny" => Some(Scale::Tiny),
        _ => None,
    }
}

fn layer_kind_str(k: LayerKind) -> &'static str {
    match k {
        LayerKind::Fc => "fc",
        LayerKind::Conv => "conv",
        LayerKind::Pool => "pool",
        LayerKind::Reshape => "reshape",
        LayerKind::Recurrent => "recurrent",
        LayerKind::Passthrough => "passthrough",
    }
}

fn layer_kind_from_str(s: &str) -> Option<LayerKind> {
    match s {
        "fc" => Some(LayerKind::Fc),
        "conv" => Some(LayerKind::Conv),
        "pool" => Some(LayerKind::Pool),
        "reshape" => Some(LayerKind::Reshape),
        "recurrent" => Some(LayerKind::Recurrent),
        "passthrough" => Some(LayerKind::Passthrough),
        _ => None,
    }
}

fn mode_str(m: TraceKind) -> &'static str {
    match m {
        TraceKind::ScratchFp32 => "fp32",
        TraceKind::ScratchQuantized => "scratch",
        TraceKind::Incremental => "incr",
    }
}

fn mode_from_str(s: &str) -> Option<TraceKind> {
    match s {
        "fp32" => Some(TraceKind::ScratchFp32),
        "scratch" => Some(TraceKind::ScratchQuantized),
        "incr" => Some(TraceKind::Incremental),
        _ => None,
    }
}

/// Serializes a measurement to the line protocol.
pub fn serialize(m: &Measurement) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "meta {} {} {} {} {} {} {} {} {} {} {}\n",
        kind_str(m.kind),
        m.scale,
        m.executions,
        m.overall_similarity,
        m.overall_reuse,
        m.agreement.executions,
        m.agreement.agreements,
        m.model_bytes,
        m.executions_per_sequence,
        m.activations_spill as u8,
        m.reuse_storage_bytes,
    ));
    s.push_str(&format!("centroid {}\n", m.centroid_table_bytes));
    s.push_str(&format!("relerr {}\n", m.mean_relative_error));
    s.push_str(&format!("policy {}\n", m.policy));
    for l in &m.layers {
        s.push_str(&format!(
            "layer {} {} {} {} {} {} {}\n",
            l.name,
            l.inputs,
            l.outputs,
            l.enabled as u8,
            l.input_similarity,
            l.computation_reuse,
            l.hit_rate
        ));
    }
    for t in &m.traces {
        s.push_str("exec\n");
        for l in &t.layers {
            s.push_str(&format!(
                "t {} {} {} {} {} {} {} {} {}\n",
                l.name,
                layer_kind_str(l.kind),
                mode_str(l.mode),
                l.n_inputs,
                l.n_changed,
                l.n_outputs,
                l.n_params,
                l.macs_total,
                l.macs_performed
            ));
        }
    }
    s
}

/// Deserializes a measurement; `None` on any malformed line (the caller
/// recomputes).
pub fn deserialize(text: &str) -> Option<Measurement> {
    let mut lines = text.lines();
    let meta = lines.next()?;
    let f: Vec<&str> = meta.split_whitespace().collect();
    if f.len() != 12 || f[0] != "meta" {
        return None;
    }
    let kind = kind_from_str(f[1])?;
    let scale = scale_from_str(f[2])?;
    let mut m = Measurement {
        kind,
        scale,
        executions: f[3].parse().ok()?,
        overall_similarity: f[4].parse().ok()?,
        overall_reuse: f[5].parse().ok()?,
        agreement: AgreementReport {
            executions: f[6].parse().ok()?,
            agreements: f[7].parse().ok()?,
        },
        model_bytes: f[8].parse().ok()?,
        executions_per_sequence: f[9].parse().ok()?,
        activations_spill: f[10] == "1",
        reuse_storage_bytes: f[11].parse().ok()?,
        centroid_table_bytes: 0,
        mean_relative_error: 0.0,
        // Pre-policy cache files carry no policy line; they were all
        // measured under the static resolution.
        policy: "static".to_string(),
        layers: Vec::new(),
        traces: Vec::new(),
    };
    for line in lines {
        let f: Vec<&str> = line.split_whitespace().collect();
        match f.first().copied() {
            Some("centroid") if f.len() == 2 => {
                m.centroid_table_bytes = f[1].parse().ok()?;
            }
            Some("relerr") if f.len() == 2 => {
                m.mean_relative_error = f[1].parse().ok()?;
            }
            Some("policy") if f.len() == 2 => {
                m.policy = f[1].to_string();
            }
            Some("layer") if f.len() == 8 => {
                m.layers.push(LayerSummary {
                    name: f[1].to_string(),
                    inputs: f[2].parse().ok()?,
                    outputs: f[3].parse().ok()?,
                    enabled: f[4] == "1",
                    input_similarity: f[5].parse().ok()?,
                    computation_reuse: f[6].parse().ok()?,
                    hit_rate: f[7].parse().ok()?,
                });
            }
            Some("exec") => m.traces.push(ExecutionTrace::default()),
            Some("t") if f.len() == 10 => {
                let trace = m.traces.last_mut()?;
                trace.layers.push(LayerTrace {
                    name: f[1].to_string(),
                    kind: layer_kind_from_str(f[2])?,
                    mode: mode_from_str(f[3])?,
                    n_inputs: f[4].parse().ok()?,
                    n_changed: f[5].parse().ok()?,
                    n_outputs: f[6].parse().ok()?,
                    n_params: f[7].parse().ok()?,
                    macs_total: f[8].parse().ok()?,
                    macs_performed: f[9].parse().ok()?,
                });
            }
            None => {}
            _ => return None,
        }
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_measurement() {
        let m = measure_workload(WorkloadKind::Kaldi, Scale::Tiny, 6, 2);
        let text = serialize(&m);
        let back = deserialize(&text).expect("round trip");
        assert_eq!(back.kind, m.kind);
        assert_eq!(back.executions, m.executions);
        assert_eq!(back.overall_similarity, m.overall_similarity);
        assert_eq!(back.layers.len(), m.layers.len());
        assert_eq!(back.layers, m.layers);
        assert_eq!(back.traces.len(), m.traces.len());
        assert_eq!(back.traces[2], m.traces[2]);
        assert_eq!(back.agreement, m.agreement);
        assert_eq!(back.centroid_table_bytes, m.centroid_table_bytes);
    }

    #[test]
    fn malformed_text_returns_none() {
        assert!(deserialize("garbage").is_none());
        assert!(deserialize("").is_none());
        let m = measure_workload(WorkloadKind::Kaldi, Scale::Tiny, 4, 2);
        let mut text = serialize(&m);
        text.push_str("unknown line\n");
        assert!(deserialize(&text).is_none());
    }
}

//! Regenerates paper Fig. 5: input similarity and computation reuse.

fn main() {
    print!(
        "{}",
        reuse_bench::experiments::fig5(reuse_workloads::Scale::from_env())
    );
}

//! Regenerates paper Section VI-A: the 8-bit fixed-point accelerator study.

fn main() {
    print!(
        "{}",
        reuse_bench::experiments::reduced_precision(reuse_workloads::Scale::from_env())
    );
}

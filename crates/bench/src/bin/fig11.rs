//! Regenerates paper Fig. 11: energy breakdown per component.

fn main() {
    print!(
        "{}",
        reuse_bench::experiments::fig11(reuse_workloads::Scale::from_env())
    );
}

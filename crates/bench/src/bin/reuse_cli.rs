//! `reuse_cli` — command-line front end for the reuse-dnn workspace.
//!
//! ```text
//! reuse_cli inspect <kaldi|eesen|c3d|autopilot>     layer table + model stats
//! reuse_cli run <workload> [executions]             run the reuse engine, print summary
//! reuse_cli run <workload> [executions] --telemetry print the TelemetrySnapshot as JSON
//! reuse_cli run <workload> [executions] --sessions N multi-session smoke over one model
//! reuse_cli serve [workload] --streams N --frames M StreamServer smoke vs standalone
//! reuse_cli serve [workload] --sig-cache            ... plus signature-cache smoke passes
//! reuse_cli serve-net [workload] --port P --shards N serve over TCP (length-prefixed frames)
//! reuse_cli serve-net [workload] --smoke            loopback round-trip vs standalone
//! reuse_cli simulate <workload> [executions]        accelerator baseline vs reuse
//! reuse_cli tune <workload> [executions]            replay auto-tuner: static vs adaptive,
//!                [--out FILE] [--smoke]             emits a tuned policy file (JSON)
//! reuse_cli ingest <model.onnx> [frames] [--smoke]  lower an ONNX model, replay a jitter
//!                                                   stream, report similarity + fallbacks
//! reuse_cli export <workload> <path>                serialize the model to a file
//! reuse_cli experiments                             list the table/figure binaries
//! ```
//!
//! Scale is controlled by `REUSE_SCALE` (full/small/tiny, default small),
//! like the experiment binaries.
//!
//! Diagnostics and failures go to stderr; stdout carries only the
//! machine-parseable result (tables, summaries, JSON). Every early-exit
//! path has a distinct code so CI can tell failure modes apart:
//! `2` usage, `3` execution failure, `4` session/engine divergence,
//! `5` I/O failure, `6` serve/standalone divergence.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use reuse_accel::{AcceleratorConfig, SimInput, Simulator};
use reuse_bench::measure::executions_from_env;
use reuse_bench::table::{human_bytes, human_joules, human_seconds};
use reuse_core::{
    summary, AdaptivePolicy, CompiledModel, LayerPolicyState, ReuseEngine, ReuseSession,
    TunedLayerPolicy, TunedPolicy, WatchdogStats,
};
use reuse_nn::stats::network_stats;
use reuse_serve::{default_shards, ServerConfig, StreamServer, SubmitResult};
use reuse_serve_net::{NetClient, NetServer, Status};
use reuse_workloads::{Scale, Workload, WorkloadKind};

/// Bad arguments.
const EXIT_USAGE: u8 = 2;
/// An engine/session execution returned an error.
const EXIT_EXEC: u8 = 3;
/// Interleaved sessions diverged from standalone engines.
const EXIT_DIVERGED: u8 = 4;
/// Filesystem I/O failed.
const EXIT_IO: u8 = 5;
/// The serving runtime diverged from standalone sessions.
const EXIT_SERVE_DIVERGED: u8 = 6;

fn parse_workload(name: &str) -> Option<WorkloadKind> {
    match name.to_lowercase().as_str() {
        "kaldi" => Some(WorkloadKind::Kaldi),
        "eesen" => Some(WorkloadKind::Eesen),
        "c3d" => Some(WorkloadKind::C3d),
        "autopilot" => Some(WorkloadKind::AutoPilot),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: reuse_cli <command> [args]\n\n\
         commands:\n\
         \x20 inspect  <workload>               layer table and model statistics\n\
         \x20 run      <workload> [executions]  run the reuse engine, print the reuse summary\n\
         \x20          [--telemetry]            ... and print the TelemetrySnapshot as JSON\n\
         \x20          [--sessions N]           ... interleave N sessions over one shared model\n\
         \x20                                   and check them against standalone engines\n\
         \x20 serve    [workload]               serve N streams through a StreamServer and\n\
         \x20          [--streams N]            check every stream bit-for-bit against a\n\
         \x20          [--frames M]             standalone session (prints the server\n\
         \x20          [--sig-cache]            snapshot JSON; exits {EXIT_SERVE_DIVERGED} on divergence)\n\
         \x20                                   --sig-cache adds two cross-stream cache passes:\n\
         \x20                                   capacity 0 (bit-identity) and full capacity\n\
         \x20 serve-net [workload]              serve the sharded tier over TCP (length-\n\
         \x20          [--port P]               prefixed binary frames; default port 7433)\n\
         \x20          [--shards N]             shard count (default: hardware threads, max 8)\n\
         \x20          [--streams N]            --smoke binds an OS-assigned loopback port,\n\
         \x20          [--frames M]             drives N streams x M frames through a real\n\
         \x20          [--smoke]                client, and checks every output bit-for-bit\n\
         \x20                                   against standalone sessions (exits {EXIT_SERVE_DIVERGED})\n\
         \x20 simulate <workload> [executions]  simulate baseline vs reuse accelerators\n\
         \x20 tune     <workload> [executions]  replay auto-tuner: run static vs adaptive\n\
         \x20          [--out FILE]             sessions over the same stream, print both\n\
         \x20          [--smoke]                operating points, and emit the adaptive\n\
         \x20                                   run's final per-layer state as a tuned\n\
         \x20                                   policy file (stdout, plus --out FILE); the\n\
         \x20                                   file is reparsed and recompiled, exiting\n\
         \x20                                   {EXIT_DIVERGED} on round-trip mismatch (--smoke: short run)\n\
         \x20 ingest   <model.onnx> [frames]    parse + lower an ONNX model, replay a\n\
         \x20          [--smoke]                synthetic-jitter stream, and report per-layer\n\
         \x20                                   similarity, skipped-MAC projection and\n\
         \x20                                   recompute-always fallbacks (--smoke runs the\n\
         \x20                                   built-in fixture checks; exits {EXIT_DIVERGED} on\n\
         \x20                                   divergence, {EXIT_EXEC} on parse/lower failure)\n\
         \x20 export   <workload> <path>        serialize the model to a file\n\
         \x20 experiments                       list the paper-artifact binaries\n\n\
         workloads: kaldi, eesen, c3d, autopilot (REUSE_SCALE=full|small|tiny)"
    );
    ExitCode::from(EXIT_USAGE)
}

/// Runs N [`ReuseSession`]s interleaved over one shared [`CompiledModel`]
/// and checks every stream bit-for-bit against a standalone engine fed the
/// same inputs alone. Streams are offset copies of one generated input
/// stream, so each session sees realistic frame-to-frame similarity while
/// no two sessions see identical inputs at the same step.
fn run_sessions_smoke(
    w: &Workload,
    config: &reuse_core::ReuseConfig,
    executions: usize,
    n: usize,
) -> ExitCode {
    let model = Arc::new(CompiledModel::new(w.network(), config));
    let mut sessions: Vec<ReuseSession> = (0..n).map(|_| model.new_session()).collect();
    let mut engines: Vec<ReuseEngine> = (0..n)
        .map(|_| ReuseEngine::from_network(w.network(), config))
        .collect();
    let mut mismatches = 0usize;
    let mut check = |s: usize, got: &[f32], want: &[f32]| {
        let ok = got.len() == want.len()
            && got
                .iter()
                .zip(want.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !ok {
            eprintln!("session {s}: output diverged from standalone engine");
            mismatches += 1;
        }
    };
    if w.is_recurrent() {
        let seq_len = 40.min(executions.max(2));
        let n_seq = executions.div_ceil(seq_len) + 1;
        let seqs = w.generate_sequences(n_seq + n - 1, seq_len, 42);
        for t in 0..n_seq {
            for s in 0..n {
                let seq = &seqs[s + t];
                let (got, want) = match (
                    sessions[s].execute_sequence(seq),
                    engines[s].execute_sequence(seq),
                ) {
                    (Ok(g), Ok(w)) => (g, w),
                    (g, w) => {
                        eprintln!(
                            "session {s} sequence failed: {:?} vs {:?}",
                            g.err(),
                            w.err()
                        );
                        return ExitCode::from(EXIT_EXEC);
                    }
                };
                for (a, b) in got.iter().zip(want.iter()) {
                    check(s, a.as_slice(), b.as_slice());
                }
            }
        }
    } else {
        let frames = w.generate_frames(executions + n - 1, 42);
        for t in 0..executions {
            for s in 0..n {
                let frame = &frames[s + t];
                let (got, want) = match (sessions[s].execute(frame), engines[s].execute(frame)) {
                    (Ok(g), Ok(w)) => (g, w),
                    (g, w) => {
                        eprintln!("session {s} frame failed: {:?} vs {:?}", g.err(), w.err());
                        return ExitCode::from(EXIT_EXEC);
                    }
                };
                check(s, got.as_slice(), want.as_slice());
            }
        }
    }
    println!(
        "{}: {n} interleaved sessions over one compiled model ({} packed weight bytes shared)",
        w.network().name(),
        model.packed_weight_bytes(),
    );
    for (s, (session, engine)) in sessions.iter().zip(engines.iter()).enumerate() {
        let m = session.metrics();
        println!(
            "  session {s}: input similarity {:5.1}%  computation reuse {:5.1}%",
            m.overall_input_similarity() * 100.0,
            m.overall_computation_reuse() * 100.0,
        );
        if m != engine.metrics() {
            eprintln!("session {s}: metrics diverged from standalone engine");
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} session/engine mismatches");
        return ExitCode::from(EXIT_DIVERGED);
    }
    println!("all sessions bit-identical to standalone engines");
    ExitCode::SUCCESS
}

/// Serves `n` offset streams through a [`StreamServer`] over one shared
/// model and checks every stream's outputs and metrics bit-for-bit against
/// a standalone [`ReuseSession`] fed the same frames alone. With
/// `emit_snapshot` the server snapshot JSON becomes the whole stdout
/// (suppressed when a later pass owns stdout, so `serve` always prints
/// exactly one JSON document); all diagnostics go to stderr.
fn run_serve_smoke(
    w: &Workload,
    config: &reuse_core::ReuseConfig,
    n: usize,
    frames_per_stream: usize,
    emit_snapshot: bool,
) -> u8 {
    let model = Arc::new(CompiledModel::new(w.network(), config));
    let seq_len = if w.is_recurrent() {
        10.min(frames_per_stream.max(2))
    } else {
        0
    };
    // Round each stream up to whole sequences for recurrent models.
    let frames_per_stream = if seq_len > 0 {
        frames_per_stream.div_ceil(seq_len) * seq_len
    } else {
        frames_per_stream
    };
    let server_config = ServerConfig::default()
        .max_sessions(n)
        .queue_capacity((2 * seq_len).max(8))
        .batch_max(4)
        .sequence_len(seq_len);
    let mut server = match StreamServer::new(Arc::clone(&model), server_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot construct server: {e}");
            return EXIT_EXEC;
        }
    };
    // Offset copies of one generated stream: realistic frame-to-frame
    // similarity per stream, no two streams identical at the same step.
    let all: Vec<Vec<f32>> = match frames_per_stream.checked_div(seq_len) {
        Some(n_seq) => w
            .generate_sequences(n_seq + n - 1, seq_len, 42)
            .into_iter()
            .flatten()
            .collect(),
        None => w.generate_frames(frames_per_stream + n - 1, 42),
    };
    let stream_frames = |s: usize| {
        if seq_len > 0 {
            // Stream s starts `s` whole sequences into the pool.
            let start = s * seq_len;
            &all[start..start + frames_per_stream]
        } else {
            &all[s..s + frames_per_stream]
        }
    };

    let mut collected: Vec<Vec<Vec<f32>>> = vec![Vec::new(); n];
    for t in 0..frames_per_stream {
        for (s, outs) in collected.iter_mut().enumerate() {
            let frame = &stream_frames(s)[t];
            loop {
                match server.submit(s as u64, frame) {
                    Ok(SubmitResult::Accepted) => break,
                    Ok(SubmitResult::QueueFull)
                    | Ok(SubmitResult::Shed)
                    | Ok(SubmitResult::DeadlineShed) => {
                        if let Err(e) = server.tick() {
                            eprintln!("tick failed: {e}");
                            return EXIT_EXEC;
                        }
                        server.drain_outputs(s as u64, |out| outs.push(out.to_vec()));
                    }
                    Err(e) => {
                        eprintln!("submit failed: {e}");
                        return EXIT_EXEC;
                    }
                }
            }
        }
        if let Err(e) = server.tick() {
            eprintln!("tick failed: {e}");
            return EXIT_EXEC;
        }
        for (s, outs) in collected.iter_mut().enumerate() {
            server.drain_outputs(s as u64, |out| outs.push(out.to_vec()));
        }
    }
    while server.ready_units() > 0 {
        if let Err(e) = server.tick() {
            eprintln!("tick failed: {e}");
            return EXIT_EXEC;
        }
        for (s, outs) in collected.iter_mut().enumerate() {
            server.drain_outputs(s as u64, |out| outs.push(out.to_vec()));
        }
    }

    let mut mismatches = 0usize;
    for (s, outs) in collected.iter().enumerate() {
        let frames = stream_frames(s);
        if outs.len() != frames.len() {
            eprintln!(
                "stream {s}: served {} outputs for {} frames",
                outs.len(),
                frames.len()
            );
            mismatches += 1;
            continue;
        }
        let mut alone = model.new_session();
        let reference: Vec<Vec<f32>> = if seq_len > 0 {
            let mut r = Vec::new();
            for seq in frames.chunks(seq_len) {
                match alone.execute_sequence(seq) {
                    Ok(outs) => r.extend(outs.into_iter().map(|t| t.into_vec())),
                    Err(e) => {
                        eprintln!("standalone sequence failed: {e}");
                        return EXIT_EXEC;
                    }
                }
            }
            r
        } else {
            let mut r = Vec::new();
            let mut out = Vec::new();
            for frame in frames {
                if let Err(e) = alone.execute_into(frame, &mut out) {
                    eprintln!("standalone frame failed: {e}");
                    return EXIT_EXEC;
                }
                r.push(out.clone());
            }
            r
        };
        for (t, (got, want)) in outs.iter().zip(reference.iter()).enumerate() {
            let ok = got.len() == want.len()
                && got
                    .iter()
                    .zip(want.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !ok {
                eprintln!("stream {s} frame {t}: served output diverged from standalone session");
                mismatches += 1;
            }
        }
        if server.session(s as u64).map(|sess| sess.metrics()) != Some(alone.metrics()) {
            eprintln!("stream {s}: metrics diverged from standalone session");
            mismatches += 1;
        }
    }

    if emit_snapshot {
        // Machine-readable result: the snapshot JSON is the whole stdout.
        print!("{}", server.snapshot().to_json());
    }
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} serve/standalone mismatches");
        return EXIT_SERVE_DIVERGED;
    }
    eprintln!(
        "{}: {n} streams x {frames_per_stream} frames bit-identical to standalone sessions",
        w.network().name()
    );
    0
}

/// Serves `n` offset streams over a model compiled with the cross-stream
/// signature cache at full capacity. With a shared, evolving cache,
/// per-stream outputs legitimately depend on what other streams published,
/// so this pass checks completion and counter plumbing rather than bit
/// identity: every stream must finish all its frames, and on feed-forward
/// workloads the cache must actually be consulted (`lookups > 0`).
fn run_serve_cache_smoke(
    w: &Workload,
    config: &reuse_core::ReuseConfig,
    n: usize,
    frames_per_stream: usize,
) -> u8 {
    if w.is_recurrent() {
        eprintln!(
            "{}: recurrent network — the signature cache compiles out, nothing to smoke",
            w.network().name()
        );
        return 0;
    }
    let model = Arc::new(CompiledModel::new(w.network(), config));
    let server_config = ServerConfig::default()
        .max_sessions(n)
        .queue_capacity(8)
        .batch_max(4);
    let mut server = match StreamServer::new(Arc::clone(&model), server_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot construct server: {e}");
            return EXIT_EXEC;
        }
    };
    let all = w.generate_frames(frames_per_stream + n - 1, 42);
    let mut done = vec![0usize; n];
    for t in 0..frames_per_stream {
        for (s, count) in done.iter_mut().enumerate() {
            let frame = &all[s + t];
            loop {
                match server.submit(s as u64, frame) {
                    Ok(SubmitResult::Accepted) => break,
                    Ok(SubmitResult::QueueFull)
                    | Ok(SubmitResult::Shed)
                    | Ok(SubmitResult::DeadlineShed) => {
                        if let Err(e) = server.tick() {
                            eprintln!("tick failed: {e}");
                            return EXIT_EXEC;
                        }
                        *count += server.drain_outputs(s as u64, |_| {});
                    }
                    Err(e) => {
                        eprintln!("submit failed: {e}");
                        return EXIT_EXEC;
                    }
                }
            }
        }
        if let Err(e) = server.tick() {
            eprintln!("tick failed: {e}");
            return EXIT_EXEC;
        }
        for (s, count) in done.iter_mut().enumerate() {
            *count += server.drain_outputs(s as u64, |_| {});
        }
    }
    while server.ready_units() > 0 {
        if let Err(e) = server.tick() {
            eprintln!("tick failed: {e}");
            return EXIT_EXEC;
        }
        for (s, count) in done.iter_mut().enumerate() {
            *count += server.drain_outputs(s as u64, |_| {});
        }
    }

    let mut failures = 0usize;
    for (s, count) in done.iter().enumerate() {
        if *count != frames_per_stream {
            eprintln!("stream {s}: served {count} outputs for {frames_per_stream} frames");
            failures += 1;
        }
    }
    let snap = server.snapshot();
    let cache_compiled = model.signature_cache().is_some();
    if cache_compiled && snap.signature.lookups == 0 {
        eprintln!("signature cache compiled in but never consulted");
        failures += 1;
    }
    // Machine-readable result: the snapshot JSON is the whole stdout.
    print!("{}", snap.to_json());
    if failures > 0 {
        eprintln!("FAIL: {failures} signature-cache smoke failures");
        return EXIT_SERVE_DIVERGED;
    }
    eprintln!(
        "{}: {n} streams x {frames_per_stream} frames served with the signature cache \
         ({} lookups, {} hits, {} adoptions, {} bailouts, {} inserts)",
        w.network().name(),
        snap.signature.lookups,
        snap.signature.hits,
        snap.signature.adoptions,
        snap.signature.bailouts,
        snap.signature.inserts,
    );
    0
}

/// Serves `n` offset streams through the full network stack — a real
/// [`NetServer`] on an OS-assigned loopback port, driven by a blocking
/// [`NetClient`] — and checks every response payload bit-for-bit against a
/// standalone session fed the same frames. This is the CI smoke behind
/// `reuse_cli serve-net --smoke`: it exercises preamble negotiation, frame
/// framing, shard hashing, worker ticks, and tagged response pairing.
fn run_serve_net_smoke(w: &Workload, shards: usize, n: usize, frames_per_stream: usize) -> u8 {
    if w.is_recurrent() {
        eprintln!(
            "{}: recurrent network — serve-net is per-frame only, nothing to smoke",
            w.network().name()
        );
        return 0;
    }
    let model = Arc::new(CompiledModel::new(w.network(), w.reuse_config()));
    let mut server = match NetServer::bind(
        SocketAddr::from(([127, 0, 0, 1], 0)),
        Arc::clone(&model),
        ServerConfig::default().max_sessions(n),
        shards,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind loopback server: {e}");
            return EXIT_IO;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            return EXIT_IO;
        }
    };
    let sharded = Arc::clone(server.sharded());
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || server.run(&stop2));

    let serve = || -> Result<Vec<Vec<Vec<f32>>>, String> {
        let mut client =
            NetClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
        let all = w.generate_frames(frames_per_stream + n - 1, 42);
        let mut outputs: Vec<Vec<Vec<f32>>> = vec![Vec::new(); n];
        for t in 0..frames_per_stream {
            for (s, outs) in outputs.iter_mut().enumerate() {
                let resp = client
                    .roundtrip(s as u64 + 1, t as u32, &all[s + t])
                    .map_err(|e| format!("stream {s} frame {t}: round-trip failed: {e}"))?;
                if resp.status != Status::Ok {
                    return Err(format!("stream {s} frame {t}: status {:?}", resp.status));
                }
                outs.push(resp.payload);
            }
        }
        Ok(outputs)
    };
    let served = serve();
    stop.store(true, Ordering::SeqCst);
    let run_result = handle.join();
    let outputs = match served {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return EXIT_EXEC;
        }
    };
    match run_result {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            eprintln!("server event loop failed: {e}");
            return EXIT_EXEC;
        }
        Err(_) => {
            eprintln!("server event loop panicked");
            return EXIT_EXEC;
        }
    }

    let all = w.generate_frames(frames_per_stream + n - 1, 42);
    let mut mismatches = 0usize;
    for (s, outs) in outputs.iter().enumerate() {
        let mut alone = model.new_session();
        let mut out = Vec::new();
        for (t, got) in outs.iter().enumerate() {
            if let Err(e) = alone.execute_into(&all[s + t], &mut out) {
                eprintln!("standalone frame failed: {e}");
                return EXIT_EXEC;
            }
            let ok = got.len() == out.len()
                && got
                    .iter()
                    .zip(out.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !ok {
                eprintln!("stream {s} frame {t}: served output diverged from standalone session");
                mismatches += 1;
            }
        }
    }
    // Machine-readable result: the sharded snapshot JSON is the whole stdout.
    print!("{}", sharded.snapshot().to_json());
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} serve-net/standalone mismatches");
        return EXIT_SERVE_DIVERGED;
    }
    eprintln!(
        "{}: {n} streams x {frames_per_stream} frames over TCP ({shards} shards) \
         bit-identical to standalone sessions",
        w.network().name()
    );
    0
}

/// Binds the sharded serving tier to a real port and runs the event loop
/// until the process is killed.
fn run_serve_net_listen(w: &Workload, shards: usize, port: u16) -> u8 {
    let model = Arc::new(CompiledModel::new(w.network(), w.reuse_config()));
    let mut server = match NetServer::bind(
        SocketAddr::from(([0, 0, 0, 0], port)),
        model,
        ServerConfig::default(),
        shards,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind port {port}: {e}");
            return EXIT_IO;
        }
    };
    let addr = server.local_addr().ok();
    eprintln!(
        "serving {} on {} with {shards} shards (kill the process to stop)",
        w.network().name(),
        addr.map_or_else(|| format!("port {port}"), |a| a.to_string()),
    );
    let stop = AtomicBool::new(false);
    match server.run(&stop) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("server event loop failed: {e}");
            EXIT_EXEC
        }
    }
}

/// One policy's replayed operating point: overall computation reuse, the
/// watchdog's accuracy-proxy stats, and the final per-layer policy state.
struct TuneRun {
    reuse: f64,
    similarity: f64,
    watchdog: WatchdogStats,
    states: Vec<LayerPolicyState>,
}

/// Runs one compiled configuration over the given frames in a fresh
/// session and collects its [`TuneRun`].
fn tune_run(
    w: &Workload,
    config: &reuse_core::ReuseConfig,
    frames: &[Vec<f32>],
) -> Result<TuneRun, reuse_core::ReuseError> {
    let model = Arc::new(CompiledModel::try_new(w.network(), config)?);
    let mut session = model.new_session();
    let mut out = Vec::new();
    for frame in frames {
        session.execute_into(frame, &mut out)?;
    }
    Ok(TuneRun {
        reuse: session.metrics().overall_computation_reuse(),
        similarity: session.metrics().overall_input_similarity(),
        watchdog: session.watchdog_stats(),
        states: session.policy_states(),
    })
}

/// Replay-driven auto-tuner: replays the workload's generated stream
/// through a static and an adaptive session (same frames, drift watchdog
/// armed), prints both operating points plus an offline cluster-count
/// replay sweep, and emits the adaptive run's final per-layer state as a
/// tuned policy file. The emitted file is reparsed and recompiled to prove
/// the round trip; stdout carries only the policy JSON.
fn run_tune(w: &Workload, executions: usize, out: Option<&str>, smoke: bool) -> ExitCode {
    if w.is_recurrent() {
        eprintln!(
            "tune: adaptive policies are masked on recurrent networks ({}); nothing to tune",
            w.network().name()
        );
        return ExitCode::from(EXIT_USAGE);
    }
    let executions = if smoke {
        executions.min(48)
    } else {
        executions
    };
    let frames = w.generate_frames(executions, 42);

    // The adaptive controller tunes against the watchdog's accuracy proxy;
    // arm it when the workload config leaves it off. The 0.25 band matches
    // the convergence tests: loose enough that the paper's static grids sit
    // inside it on every feed-forward Table-I workload, tight enough that a
    // runaway grid trips it.
    let mut base = w.reuse_config().clone();
    if base.drift_check_every() == 0 {
        base = base.drift_watchdog(8, 0.25);
    }
    let bound = base.drift_bound();

    // Offline replay sweep (paper §III): input similarity of the recorded
    // raw streams under candidate cluster counts, for context next to the
    // online controller's chosen operating points.
    match reuse_core::replay::InputRecorder::record(w.network(), &frames) {
        Ok(recorder) => {
            let counts = [8usize, 16, 32, 64];
            let sweep = reuse_core::replay::replay_sweep(&recorder, &counts);
            eprintln!("replay sweep (input similarity by cluster count):");
            for (name, row) in recorder.layer_names().iter().zip(&sweep) {
                let cells: Vec<String> = counts
                    .iter()
                    .zip(row)
                    .map(|(c, r)| match r {
                        Some(r) => format!("{c}:{:.3}", r.input_similarity),
                        None => format!("{c}:-"),
                    })
                    .collect();
                eprintln!("  {name:<12} {}", cells.join("  "));
            }
        }
        Err(e) => {
            eprintln!("tune: replay recording failed: {e}");
            return ExitCode::from(EXIT_EXEC);
        }
    }

    let static_run = match tune_run(w, &base, &frames) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tune: static run failed: {e}");
            return ExitCode::from(EXIT_EXEC);
        }
    };
    let adaptive_config = base
        .clone()
        .reuse_policy(Arc::new(AdaptivePolicy::default()));
    let adaptive_run = match tune_run(w, &adaptive_config, &frames) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tune: adaptive run failed: {e}");
            return ExitCode::from(EXIT_EXEC);
        }
    };
    for (label, r) in [("static", &static_run), ("adaptive", &adaptive_run)] {
        eprintln!(
            "{label:<8} similarity {:>5.1}%  computation reuse {:>5.1}%  drift max {:.4} \
             (bound {bound:.4})  {} checks, {} rebaselines",
            r.similarity * 100.0,
            r.reuse * 100.0,
            r.watchdog.max_drift,
            r.watchdog.checks,
            r.watchdog.rebaselines,
        );
    }
    eprintln!("tuned per-layer operating points (from the adaptive run):");
    for s in &adaptive_run.states {
        eprintln!(
            "  {:<12} clusters {:>3}  step_scale {:>5.2}  threshold {:.2}  \
             ({} grows, {} shrinks, {} refreshes)",
            s.name, s.clusters, s.step_scale, s.reuse_threshold, s.grows, s.shrinks, s.refreshes
        );
    }

    let tuned = TunedPolicy {
        network: w.network().name().to_string(),
        layers: adaptive_run
            .states
            .iter()
            .map(|s| TunedLayerPolicy {
                layer: s.name.clone(),
                clusters: s.clusters,
                step_scale: s.step_scale.clamp(1.0, 64.0),
                reuse_threshold: s.reuse_threshold.clamp(1e-6, 1.0),
                adaptive: s.adaptive,
            })
            .collect(),
    };
    let text = tuned.to_json();
    // Round trip: what a later run would load must equal what was tuned.
    let reread = match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("tune: cannot write {path}: {e}");
                return ExitCode::from(EXIT_IO);
            }
            match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("tune: cannot re-read {path}: {e}");
                    return ExitCode::from(EXIT_IO);
                }
            }
        }
        None => text.clone(),
    };
    let reloaded = match TunedPolicy::from_json(&reread) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tune: emitted policy file fails to parse: {e}");
            return ExitCode::from(EXIT_DIVERGED);
        }
    };
    if reloaded != tuned {
        eprintln!("tune: policy file round trip mismatch");
        return ExitCode::from(EXIT_DIVERGED);
    }
    // The reloaded file must compile and serve frames.
    let tuned_config = base.clone().reuse_policy(Arc::new(reloaded));
    match tune_run(w, &tuned_config, &frames[..frames.len().min(16)]) {
        Ok(_) => {}
        Err(e) => {
            eprintln!("tune: reloaded policy failed to execute: {e}");
            return ExitCode::from(EXIT_DIVERGED);
        }
    }
    if let Some(path) = out {
        eprintln!("wrote {path}");
    }
    print!("{text}");
    ExitCode::SUCCESS
}

/// Ingests an ONNX file, runs a synthetic-jitter stream through the reuse
/// engine under the adaptive policy, and reports per-layer measured input
/// similarity plus the skipped-MAC projection. Fallback (recompute-always)
/// layers are called out explicitly.
fn run_ingest(path: &str, frames: usize) -> ExitCode {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let lowered = match reuse_onnx_ingest::ingest(&bytes) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot lower {path}: {e}");
            return ExitCode::from(EXIT_EXEC);
        }
    };
    let net = &lowered.network;
    eprintln!(
        "{}: {} layers, {} params, input {}",
        net.name(),
        net.layers().len(),
        net.param_count(),
        net.input_shape()
    );
    for skipped in &lowered.skipped {
        eprintln!("dropped no-op node {skipped}");
    }
    let config = reuse_core::ReuseConfig::uniform(64)
        .drift_watchdog(8, 0.25)
        .reuse_policy(Arc::new(AdaptivePolicy::default()));
    let mut engine = ReuseEngine::from_network(net, &config);
    let code = if net.is_recurrent() {
        let dim = net.input_shape().volume();
        let seq_len = 32.min(frames.max(2));
        let stream = jitter_stream(frames, dim, 0.04, 42);
        stream
            .chunks(seq_len)
            .try_for_each(|seq| engine.execute_sequence(seq).map(|_| ()))
    } else {
        let dim = net.input_shape().volume();
        jitter_stream(frames, dim, 0.04, 42)
            .iter()
            .try_for_each(|frame| engine.execute(frame).map(|_| ()))
    };
    if let Err(e) = code {
        eprintln!("execution failed: {e}");
        return ExitCode::from(EXIT_EXEC);
    }
    let metrics = engine.metrics();
    let mut macs_total = 0u64;
    let mut macs_skipped = 0u64;
    for (name, layer) in net.layers() {
        match metrics.layer(name) {
            Some(m) => {
                let skipped = m.macs_total.saturating_sub(m.macs_performed);
                macs_total += m.macs_total;
                macs_skipped += skipped;
                println!(
                    "layer {name} kind {:?} similarity {:.4} macs_total {} macs_skipped {}",
                    layer.kind(),
                    m.input_similarity(),
                    m.macs_total,
                    skipped
                );
            }
            None => println!("layer {name} kind {:?} (no reuse slot)", layer.kind()),
        }
    }
    for (layer, op) in &lowered.fallbacks {
        println!("fallback {layer} {op}");
    }
    println!(
        "total frames {frames} similarity {:.4} macs_total {macs_total} macs_skipped {macs_skipped} reuse {:.4}",
        metrics.overall_input_similarity(),
        if macs_total > 0 {
            macs_skipped as f64 / macs_total as f64
        } else {
            0.0
        }
    );
    ExitCode::SUCCESS
}

/// A smooth random walk of frames, the synthetic-jitter stream the ingest
/// report runs over.
fn jitter_stream(len: usize, dim: usize, step: f32, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = reuse_nn::init::Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.5)).collect();
    (0..len)
        .map(|_| {
            for v in &mut frame {
                *v = (*v + rng.uniform(step)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

/// Self-contained ingest smoke for CI: (a) the generated Gemm+Relu fixture
/// must execute bit-identically to its hand-built twin through the engine;
/// (b) a graph with an unsupported op must still serve via a
/// recompute-always passthrough slot charging full MACs and zero reuse.
fn run_ingest_smoke() -> ExitCode {
    use reuse_onnx_ingest::fixture;

    // (a) bit-identity: ingested fixture vs hand-built twin.
    let lowered = match reuse_onnx_ingest::ingest(&fixture::gemm_relu_bytes()) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fixture failed to lower: {e}");
            return ExitCode::from(EXIT_EXEC);
        }
    };
    let twin = fixture::gemm_relu_network();
    let config = reuse_core::ReuseConfig::uniform(64);
    let mut ingested = ReuseEngine::from_network(&lowered.network, &config);
    let mut reference = ReuseEngine::from_network(&twin, &config);
    for frame in jitter_stream(64, fixture::GEMM_IN, 0.05, 42) {
        let (a, b) = match (ingested.execute(&frame), reference.execute(&frame)) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => {
                eprintln!("smoke execution failed: {:?} {:?}", a.err(), b.err());
                return ExitCode::from(EXIT_EXEC);
            }
        };
        let same = a.as_slice().len() == b.as_slice().len()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
        if !same {
            eprintln!("ingested fixture diverged from the hand-built network");
            return ExitCode::from(EXIT_DIVERGED);
        }
    }
    println!("ingest smoke: fixture bit-identical to hand-built network over 64 frames");

    // (b) unsupported op serves through a recompute-always passthrough.
    let lowered = match reuse_onnx_ingest::ingest(&fixture::unsupported_softmax_bytes()) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("softmax graph failed to lower: {e}");
            return ExitCode::from(EXIT_EXEC);
        }
    };
    let Some((pass_name, op)) = lowered.fallbacks.first().cloned() else {
        eprintln!("softmax graph lowered without a fallback slot");
        return ExitCode::from(EXIT_DIVERGED);
    };
    let mut engine = ReuseEngine::from_network(&lowered.network, &config);
    for frame in jitter_stream(48, 8, 0.03, 7) {
        if let Err(e) = engine.execute(&frame) {
            eprintln!("softmax graph execution failed: {e}");
            return ExitCode::from(EXIT_EXEC);
        }
    }
    let metrics = engine.metrics();
    let Some(pass) = metrics.layer(&pass_name) else {
        eprintln!("passthrough layer {pass_name} has no metrics slot");
        return ExitCode::from(EXIT_DIVERGED);
    };
    if pass.macs_total == 0
        || pass.macs_performed != pass.macs_total
        || pass.computation_reuse() != 0.0
    {
        eprintln!(
            "passthrough telemetry wrong: total {} performed {} reuse {}",
            pass.macs_total,
            pass.macs_performed,
            pass.computation_reuse()
        );
        return ExitCode::from(EXIT_DIVERGED);
    }
    println!(
        "ingest smoke: unsupported op {op} served via {pass_name} \
         (full MACs charged, zero reuse)"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry = args.iter().any(|a| a == "--telemetry");
    args.retain(|a| a != "--telemetry");
    let sig_cache = args.iter().any(|a| a == "--sig-cache");
    args.retain(|a| a != "--sig-cache");
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => {
            let Some(p) = args.get(i + 1).cloned() else {
                return usage();
            };
            args.drain(i..=i + 1);
            Some(p)
        }
        None => None,
    };
    let sessions = match args.iter().position(|a| a == "--sessions") {
        Some(i) => {
            let Some(n) = args
                .get(i + 1)
                .and_then(|a| a.parse::<usize>().ok())
                .filter(|n| *n >= 1)
            else {
                return usage();
            };
            args.drain(i..=i + 1);
            Some(n)
        }
        None => None,
    };
    let mut flag_value = |flag: &str| -> Result<Option<usize>, ()> {
        match args.iter().position(|a| a == flag) {
            Some(i) => {
                let Some(v) = args
                    .get(i + 1)
                    .and_then(|a| a.parse::<usize>().ok())
                    .filter(|v| *v >= 1)
                else {
                    return Err(());
                };
                args.drain(i..=i + 1);
                Ok(Some(v))
            }
            None => Ok(None),
        }
    };
    let Ok(streams) = flag_value("--streams") else {
        return usage();
    };
    let Ok(frames) = flag_value("--frames") else {
        return usage();
    };
    let Ok(port) = flag_value("--port") else {
        return usage();
    };
    let Ok(shards) = flag_value("--shards") else {
        return usage();
    };
    let scale = Scale::from_env();
    match args.first().map(String::as_str) {
        Some("inspect") => {
            let Some(kind) = args.get(1).and_then(|a| parse_workload(a)) else {
                return usage();
            };
            let w = Workload::build(kind, scale);
            print!("{}", network_stats(w.network()).to_table());
            println!(
                "reuse config: {} enabled layers, recurrent: {}, activations spill: {}",
                w.network()
                    .layers()
                    .iter()
                    .filter(|(n, l)| l.has_weights() && w.reuse_config().setting_for(n).enabled)
                    .count(),
                w.is_recurrent(),
                w.activations_spill(),
            );
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(kind) = args.get(1).and_then(|a| parse_workload(a)) else {
                return usage();
            };
            let executions: usize = args
                .get(2)
                .and_then(|a| a.parse().ok())
                .unwrap_or_else(|| executions_from_env(kind, scale));
            let w = Workload::build(kind, scale);
            let config = w.reuse_config().clone().telemetry(telemetry);
            if let Some(n) = sessions {
                return run_sessions_smoke(&w, &config, executions, n);
            }
            let mut engine = ReuseEngine::from_network(w.network(), &config);
            if w.is_recurrent() {
                let seq_len = 40.min(executions.max(2));
                for seq in w.generate_sequences(executions.div_ceil(seq_len) + 1, seq_len, 42) {
                    if let Err(e) = engine.execute_sequence(&seq) {
                        eprintln!("execution failed: {e}");
                        return ExitCode::from(EXIT_EXEC);
                    }
                }
            } else {
                for frame in w.generate_frames(executions, 42) {
                    if let Err(e) = engine.execute(&frame) {
                        eprintln!("execution failed: {e}");
                        return ExitCode::from(EXIT_EXEC);
                    }
                }
            }
            if telemetry {
                // Machine-readable: the snapshot JSON is the whole output.
                let snap = engine
                    .telemetry_snapshot()
                    .expect("telemetry was enabled above");
                println!("{}", snap.to_json());
            } else {
                print!("{}", summary::render(&engine));
            }
            ExitCode::SUCCESS
        }
        Some("serve") => {
            let kind = match args.get(1) {
                Some(name) => match parse_workload(name) {
                    Some(kind) => kind,
                    None => return usage(),
                },
                None => WorkloadKind::Kaldi,
            };
            let w = Workload::build(kind, scale);
            let n = streams.unwrap_or(4);
            let frames_per_stream =
                frames.unwrap_or_else(|| executions_from_env(kind, scale).min(64));
            if !sig_cache {
                return ExitCode::from(run_serve_smoke(
                    &w,
                    w.reuse_config(),
                    n,
                    frames_per_stream,
                    true,
                ));
            }
            // Pass 1: cache enabled at capacity 0 must degrade to exactly
            // the per-stream behavior — the bit-identity smoke must pass
            // unchanged.
            eprintln!("sig-cache pass 1/2: capacity 0, bit-identity vs standalone");
            let cap0 = w
                .reuse_config()
                .clone()
                .signature_cache(true)
                .signature_cache_capacity(0);
            // Exactly one snapshot JSON on stdout: pass 2 owns it, except
            // on recurrent workloads where the cache compiles out and pass
            // 2 has nothing to serve.
            let code = run_serve_smoke(&w, &cap0, n, frames_per_stream, w.is_recurrent());
            if code != 0 {
                return ExitCode::from(code);
            }
            // Pass 2: full capacity — completion and counter plumbing.
            eprintln!("sig-cache pass 2/2: full capacity, completion + counters");
            let full = w.reuse_config().clone().signature_cache(true);
            ExitCode::from(run_serve_cache_smoke(&w, &full, n, frames_per_stream))
        }
        Some("serve-net") => {
            let kind = match args.get(1) {
                Some(name) => match parse_workload(name) {
                    Some(kind) => kind,
                    None => return usage(),
                },
                None => WorkloadKind::Kaldi,
            };
            let w = Workload::build(kind, scale);
            let shard_count = shards.unwrap_or_else(default_shards);
            if smoke {
                let n = streams.unwrap_or(4);
                let frames_per_stream =
                    frames.unwrap_or_else(|| executions_from_env(kind, scale).min(64));
                return ExitCode::from(run_serve_net_smoke(&w, shard_count, n, frames_per_stream));
            }
            let Ok(port) = u16::try_from(port.unwrap_or(7433)) else {
                return usage();
            };
            ExitCode::from(run_serve_net_listen(&w, shard_count, port))
        }
        Some("simulate") => {
            let Some(kind) = args.get(1).and_then(|a| parse_workload(a)) else {
                return usage();
            };
            let executions = args
                .get(2)
                .and_then(|a| a.parse().ok())
                .unwrap_or_else(|| executions_from_env(kind, scale));
            let m = reuse_bench::cache::cached_measurement(kind, scale, executions, 42);
            let sim = Simulator::new(AcceleratorConfig::paper());
            let input = SimInput {
                name: m.kind.name(),
                traces: &m.traces,
                model_bytes: m.model_bytes,
                executions_per_sequence: m.executions_per_sequence,
                activations_spill: m.activations_spill,
            };
            let base = sim.simulate_baseline(&input);
            let reuse = sim.simulate_reuse(&input);
            println!(
                "{} ({} executions, model {}):",
                m.kind.name(),
                m.traces.len(),
                human_bytes(m.model_bytes)
            );
            println!(
                "  baseline: {} / {}",
                human_seconds(base.seconds),
                human_joules(base.energy_j())
            );
            println!(
                "  reuse   : {} / {}",
                human_seconds(reuse.seconds),
                human_joules(reuse.energy_j())
            );
            println!(
                "  speedup {:.2}x, energy savings {:.0}%",
                reuse.speedup_over(&base),
                (1.0 - reuse.normalized_energy_to(&base)) * 100.0
            );
            ExitCode::SUCCESS
        }
        Some("tune") => {
            let Some(kind) = args.get(1).and_then(|a| parse_workload(a)) else {
                return usage();
            };
            let executions: usize = args
                .get(2)
                .and_then(|a| a.parse().ok())
                .unwrap_or_else(|| executions_from_env(kind, scale));
            let w = Workload::build(kind, scale);
            run_tune(&w, executions, out_path.as_deref(), smoke)
        }
        Some("export") => {
            let (Some(kind), Some(path)) =
                (args.get(1).and_then(|a| parse_workload(a)), args.get(2))
            else {
                return usage();
            };
            let w = Workload::build(kind, scale);
            let text = reuse_nn::serialize::to_string(w.network());
            match std::fs::write(path, &text) {
                Ok(()) => {
                    println!("wrote {} ({})", path, human_bytes(text.len() as u64));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot write {path}: {e}");
                    ExitCode::from(EXIT_IO)
                }
            }
        }
        Some("ingest") => {
            if smoke {
                return run_ingest_smoke();
            }
            let Some(path) = args.get(1) else {
                return usage();
            };
            let n_frames: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(96);
            run_ingest(path, n_frames)
        }
        Some("experiments") => {
            println!(
                "paper artifacts (cargo run --release -p reuse-bench --bin <name>):\n\
                 \x20 table1, fig4, fig5, fig9, fig10, fig11, table2, table3,\n\
                 \x20 fig12, reduced_precision, ablations, all"
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

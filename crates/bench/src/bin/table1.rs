//! Regenerates paper Table I: per-layer computation reuse and accuracy.

fn main() {
    print!(
        "{}",
        reuse_bench::experiments::table1(reuse_workloads::Scale::from_env())
    );
}

//! Regenerates paper Fig. 10: normalized energy.

fn main() {
    print!(
        "{}",
        reuse_bench::experiments::fig10(reuse_workloads::Scale::from_env())
    );
}

//! Serial-vs-parallel kernel timings at the paper's Table I layer
//! geometries, written to `BENCH_kernels.json`.
//!
//! Measures the from-scratch forward kernels and the incremental reuse
//! correction (at ~10% changed inputs) for a Kaldi FC layer, the AutoPilot
//! CONV2 layer, a C3D-style 3D convolution and the EESEN LSTM cell, each
//! under the serial config and under `REUSE_THREADS` workers (default 4).
//!
//! The parallel kernels partition output elements, so their results are
//! bit-identical to serial — the speedup column is the only thing that
//! varies with the machine. `hardware_threads` is recorded alongside the
//! numbers: on a single-core host the parallel rows legitimately show no
//! gain.
//!
//! Usage: `cargo run --release -p reuse-bench --bin kernel_bench [out.json]`

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use reuse_core::conv::{Conv2dReuseState, Conv3dReuseState};
use reuse_core::fc::FcReuseState;
use reuse_core::lstm::LstmReuseState;
use reuse_nn::{init::Rng64, Activation, Conv2dLayer, Conv3dLayer, FullyConnected, LstmCell};
use reuse_quant::{InputRange, LinearQuantizer};
use reuse_tensor::conv::{Conv2dSpec, Conv3dSpec};
use reuse_tensor::{ParallelConfig, Shape, Tensor};

/// One serial/parallel pair of measurements.
struct Row {
    name: String,
    serial_ns: f64,
    parallel_ns: f64,
}

/// Times `f` until it has run for ~200 ms (at least 5 iterations) and
/// returns ns/iter.
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if iters >= 5 && start.elapsed().as_millis() >= 200 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn quantizer() -> LinearQuantizer {
    LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap()
}

/// Mutates ~`fraction` of the inputs by more than one quantization step.
fn perturb(base: &[f32], fraction: f64, step: f32, rng: &mut Rng64) -> Vec<f32> {
    let mut out = base.to_vec();
    let n = ((base.len() as f64) * fraction) as usize;
    for _ in 0..n {
        let i = (rng.next_u64() % base.len() as u64) as usize;
        out[i] = (out[i] + 3.0 * step).rem_euclid(2.0) - 1.0;
    }
    out
}

fn random_input(len: usize, rng: &mut Rng64) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(0.9)).collect()
}

fn bench_pair(name: &str, parallel: &ParallelConfig, mut f: impl FnMut(&ParallelConfig)) -> Row {
    let serial = ParallelConfig::serial();
    let serial_ns = time_ns(|| f(&serial));
    let parallel_ns = time_ns(|| f(parallel));
    let row = Row {
        name: name.to_string(),
        serial_ns,
        parallel_ns,
    };
    eprintln!(
        "{:<40} serial {:>12.0} ns/iter   parallel {:>12.0} ns/iter   speedup {:.2}x",
        row.name,
        row.serial_ns,
        row.parallel_ns,
        row.serial_ns / row.parallel_ns
    );
    row
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let threads: usize = std::env::var("REUSE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let hardware_threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    // No work floor: these are benchmark-sized layers, always worth splitting.
    let parallel = ParallelConfig::with_threads(threads).min_work_per_thread(1);
    let q = quantizer();
    let mut rows = Vec::new();

    // Kaldi FC3 geometry: 400 inputs x 2000 neurons.
    {
        let layer = FullyConnected::random(400, 2000, Activation::Relu, &mut Rng64::new(1));
        let mut rng = Rng64::new(2);
        let base = random_input(400, &mut rng);
        let input = Tensor::from_slice_1d(&base).unwrap();
        let mut out = Vec::new();
        rows.push(bench_pair("kaldi_fc3_400x2000/forward", &parallel, |cfg| {
            layer
                .forward_linear_into(cfg, black_box(&input), &mut out)
                .unwrap();
            black_box(&out);
        }));

        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        let mut state = FcReuseState::new(&layer);
        let mut i = 0usize;
        rows.push(bench_pair(
            "kaldi_fc3_400x2000/reuse_10pct",
            &parallel,
            |cfg| {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                state
                    .execute_into(cfg, &layer, &q, black_box(input), &mut out)
                    .unwrap();
                black_box(&out);
            },
        ));
    }

    // AutoPilot CONV2 geometry: 24 -> 36 channels, 5x5 stride 2.
    {
        let spec = Conv2dSpec {
            in_channels: 24,
            out_channels: 36,
            kh: 5,
            kw: 5,
            stride: 2,
            pad: 0,
        };
        let layer = Conv2dLayer::random(spec, Activation::Relu, &mut Rng64::new(3));
        let in_shape = Shape::d3(24, 31, 98);
        let mut rng = Rng64::new(4);
        let base = random_input(in_shape.volume(), &mut rng);
        let base_t = Tensor::from_vec(in_shape.clone(), base.clone()).unwrap();
        rows.push(bench_pair(
            "autopilot_conv2_24x31x98/forward",
            &parallel,
            |cfg| {
                black_box(layer.forward_linear_with(cfg, black_box(&base_t)).unwrap());
            },
        ));

        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        let mut out = Vec::new();
        let mut i = 0usize;
        rows.push(bench_pair(
            "autopilot_conv2_24x31x98/reuse_10pct",
            &parallel,
            |cfg| {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                state
                    .execute_into(cfg, &layer, &q, black_box(input), &mut out)
                    .unwrap();
                black_box(&out);
            },
        ));
    }

    // C3D-style 3D convolution (CONV3 channel ratio, reduced spatial size so
    // one iteration stays in the tens of milliseconds).
    {
        let spec = Conv3dSpec {
            in_channels: 32,
            out_channels: 64,
            kd: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let layer = Conv3dLayer::random(spec, Activation::Relu, &mut Rng64::new(5));
        let in_shape = Shape::d4(32, 4, 14, 14);
        let mut rng = Rng64::new(6);
        let base = random_input(in_shape.volume(), &mut rng);
        let base_t = Tensor::from_vec(in_shape.clone(), base.clone()).unwrap();
        rows.push(bench_pair(
            "c3d_conv3_32x4x14x14/forward",
            &parallel,
            |cfg| {
                black_box(layer.forward_linear_with(cfg, black_box(&base_t)).unwrap());
            },
        ));

        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        let mut state = Conv3dReuseState::new(&layer, &in_shape).unwrap();
        let mut out = Vec::new();
        let mut i = 0usize;
        rows.push(bench_pair(
            "c3d_conv3_32x4x14x14/reuse_10pct",
            &parallel,
            |cfg| {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                state
                    .execute_into(cfg, &layer, &q, black_box(input), &mut out)
                    .unwrap();
                black_box(&out);
            },
        ));
    }

    // EESEN LSTM cell geometry: 640 inputs, 320 cell.
    {
        let cell = LstmCell::random(640, 320, &mut Rng64::new(7));
        let mut rng = Rng64::new(8);
        let base = random_input(640, &mut rng);
        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        let mut state = LstmReuseState::new(&cell);
        let mut h_out = Vec::new();
        let mut i = 0usize;
        rows.push(bench_pair(
            "eesen_lstm_640x320/reuse_step_10pct",
            &parallel,
            |cfg| {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                state
                    .step_into(cfg, &cell, &q, &q, black_box(input), &mut h_out)
                    .unwrap();
                black_box(&h_out);
            },
        ));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernel_bench\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(json, "  \"parallel_threads\": {threads},");
    if hardware_threads < threads {
        let _ = writeln!(
            json,
            "  \"note\": \"host exposes {hardware_threads} hardware thread(s); \
             {threads} workers oversubscribe it, so parallel speedups here \
             reflect scheduling overhead, not kernel scaling\","
        );
    }
    json.push_str("  \"kernels\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"serial_ns_per_iter\": {:.0}, \"parallel_ns_per_iter\": {:.0}, \"speedup\": {:.3}}}{}",
            r.name,
            r.serial_ns,
            r.parallel_ns,
            r.serial_ns / r.parallel_ns,
            if k + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    eprintln!(
        "wrote {out_path} ({} kernels, {threads} threads, {hardware_threads} hw)",
        rows.len()
    );
}

//! Serial-vs-parallel kernel timings at the paper's Table I layer
//! geometries, written to `BENCH_kernels.json`.
//!
//! Measures the from-scratch forward kernels and the incremental reuse
//! correction (at ~10% changed inputs) for a Kaldi FC layer, the AutoPilot
//! CONV2 layer, a C3D-style 3D convolution and the EESEN LSTM cell, each
//! under the serial config and under `REUSE_THREADS` workers (default 4).
//!
//! The parallel kernels partition output elements, so their results are
//! bit-identical to serial — the speedup column is the only thing that
//! varies with the machine. `hardware_threads` is recorded alongside the
//! numbers: on a single-core host the parallel rows legitimately show no
//! gain.
//!
//! An engine-level pair is also measured: the same steady-state frames with
//! telemetry off and on, reporting the overhead of the recording path and
//! the per-layer hit rates read back from the telemetry snapshot. Running
//! `kernel_bench --telemetry-smoke` measures only that pair and exits
//! nonzero when the overhead exceeds `REUSE_TELEMETRY_OVERHEAD_PCT`
//! (default 5%) — the CI guard for the zero-cost-when-idle telemetry claim.
//!
//! Usage: `cargo run --release -p reuse-bench --bin kernel_bench [out.json]`

use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use reuse_core::conv::{Conv2dReuseState, Conv3dReuseState};
use reuse_core::fc::FcReuseState;
use reuse_core::lstm::LstmReuseState;
use reuse_core::{ReuseConfig, ReuseEngine};
use reuse_nn::{
    init::Rng64, Activation, Conv2dLayer, Conv3dLayer, FullyConnected, LstmCell, NetworkBuilder,
};
use reuse_quant::{InputRange, LinearQuantizer};
use reuse_tensor::conv::{Conv2dSpec, Conv3dSpec};
use reuse_tensor::{ParallelConfig, Shape, Tensor};

/// One serial/parallel pair of measurements.
struct Row {
    name: String,
    serial_ns: f64,
    parallel_ns: f64,
}

/// Times `f` until it has run for ~200 ms (at least 5 iterations) and
/// returns ns/iter.
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if iters >= 5 && start.elapsed().as_millis() >= 200 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn quantizer() -> LinearQuantizer {
    LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap()
}

/// Mutates ~`fraction` of the inputs by more than one quantization step.
fn perturb(base: &[f32], fraction: f64, step: f32, rng: &mut Rng64) -> Vec<f32> {
    let mut out = base.to_vec();
    let n = ((base.len() as f64) * fraction) as usize;
    for _ in 0..n {
        let i = (rng.next_u64() % base.len() as u64) as usize;
        out[i] = (out[i] + 3.0 * step).rem_euclid(2.0) - 1.0;
    }
    out
}

fn random_input(len: usize, rng: &mut Rng64) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(0.9)).collect()
}

fn bench_pair(name: &str, parallel: &ParallelConfig, mut f: impl FnMut(&ParallelConfig)) -> Row {
    let serial = ParallelConfig::serial();
    let serial_ns = time_ns(|| f(&serial));
    let parallel_ns = time_ns(|| f(parallel));
    let row = Row {
        name: name.to_string(),
        serial_ns,
        parallel_ns,
    };
    eprintln!(
        "{:<40} serial {:>12.0} ns/iter   parallel {:>12.0} ns/iter   speedup {:.2}x",
        row.name,
        row.serial_ns,
        row.parallel_ns,
        row.serial_ns / row.parallel_ns
    );
    row
}

/// Steady-state engine timings with telemetry off vs on, plus the per-layer
/// hit-rate provenance read back from the telemetry engine's snapshot.
struct EngineBench {
    base_ns: f64,
    telemetry_ns: f64,
    layers: Vec<(String, f64)>,
}

impl EngineBench {
    fn overhead_pct(&self) -> f64 {
        (self.telemetry_ns - self.base_ns) / self.base_ns * 100.0
    }
}

/// A deterministic random walk of input frames: enough per-frame change that
/// the incremental path does real correction work every execution.
fn walk_frames(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.8)).collect();
    (0..n)
        .map(|_| {
            for v in frame.iter_mut() {
                *v = (*v + rng.uniform(0.05)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

/// Times steady-state `execute_into` frames on an already-built engine.
/// Measured twice, keeping the minimum, to damp scheduler noise — the
/// telemetry-overhead smoke check compares two of these numbers.
fn time_engine(engine: &mut ReuseEngine, frames: &[Vec<f32>]) -> f64 {
    let mut out = Vec::new();
    for frame in frames.iter().take(3) {
        engine.execute_into(frame, &mut out).unwrap();
    }
    let mut pass = || {
        let mut i = 0usize;
        time_ns(|| {
            engine
                .execute_into(black_box(&frames[i % frames.len()]), &mut out)
                .unwrap();
            i += 1;
            black_box(&out);
        })
    };
    let first = pass();
    pass().min(first)
}

/// Runs the telemetry-off/on engine pair on identical frame streams.
fn bench_engine_pair() -> EngineBench {
    let net = NetworkBuilder::new("telemetry-overhead", 256)
        .fully_connected(512, Activation::Relu)
        .fully_connected(512, Activation::Relu)
        .fully_connected(128, Activation::Identity)
        .build()
        .unwrap();
    let frames = walk_frames(16, 256, 21);

    let mut base = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    let base_ns = time_engine(&mut base, &frames);

    let config = ReuseConfig::uniform(16).telemetry(true);
    let mut tel = ReuseEngine::from_network(&net, &config);
    let telemetry_ns = time_engine(&mut tel, &frames);

    let snap = tel.telemetry_snapshot().expect("telemetry enabled");
    let layers = snap
        .layers
        .iter()
        .map(|l| (l.name.clone(), l.hit_rate))
        .collect();
    let bench = EngineBench {
        base_ns,
        telemetry_ns,
        layers,
    };
    eprintln!(
        "{:<40} base   {:>12.0} ns/frame   telemetry {:>12.0} ns/frame   overhead {:+.2}%",
        "engine_mlp_256/steady_frame",
        bench.base_ns,
        bench.telemetry_ns,
        bench.overhead_pct()
    );
    for (name, rate) in &bench.layers {
        eprintln!("  {name:<12} hit rate {:.3}", rate);
    }
    bench
}

fn smoke_threshold_pct() -> f64 {
    std::env::var("REUSE_TELEMETRY_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0)
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--telemetry-smoke") {
        let bench = bench_engine_pair();
        let threshold = smoke_threshold_pct();
        let overhead = bench.overhead_pct();
        if overhead > threshold {
            eprintln!("telemetry overhead {overhead:.2}% exceeds the {threshold:.2}% budget");
            return ExitCode::FAILURE;
        }
        eprintln!("telemetry overhead {overhead:.2}% within the {threshold:.2}% budget");
        return ExitCode::SUCCESS;
    }
    let out_path = arg.unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let threads: usize = std::env::var("REUSE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let hardware_threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    // No work floor: these are benchmark-sized layers, always worth splitting.
    let parallel = ParallelConfig::with_threads(threads).min_work_per_thread(1);
    let q = quantizer();
    let mut rows = Vec::new();

    // Kaldi FC3 geometry: 400 inputs x 2000 neurons.
    {
        let layer = FullyConnected::random(400, 2000, Activation::Relu, &mut Rng64::new(1));
        let mut rng = Rng64::new(2);
        let base = random_input(400, &mut rng);
        let input = Tensor::from_slice_1d(&base).unwrap();
        let mut out = Vec::new();
        rows.push(bench_pair("kaldi_fc3_400x2000/forward", &parallel, |cfg| {
            layer
                .forward_linear_into(cfg, black_box(&input), &mut out)
                .unwrap();
            black_box(&out);
        }));

        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        let mut state = FcReuseState::new(&layer);
        let mut i = 0usize;
        rows.push(bench_pair(
            "kaldi_fc3_400x2000/reuse_10pct",
            &parallel,
            |cfg| {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                state
                    .execute_into(cfg, &layer, &q, black_box(input), &mut out)
                    .unwrap();
                black_box(&out);
            },
        ));
    }

    // AutoPilot CONV2 geometry: 24 -> 36 channels, 5x5 stride 2.
    {
        let spec = Conv2dSpec {
            in_channels: 24,
            out_channels: 36,
            kh: 5,
            kw: 5,
            stride: 2,
            pad: 0,
        };
        let layer = Conv2dLayer::random(spec, Activation::Relu, &mut Rng64::new(3));
        let in_shape = Shape::d3(24, 31, 98);
        let mut rng = Rng64::new(4);
        let base = random_input(in_shape.volume(), &mut rng);
        let base_t = Tensor::from_vec(in_shape.clone(), base.clone()).unwrap();
        rows.push(bench_pair(
            "autopilot_conv2_24x31x98/forward",
            &parallel,
            |cfg| {
                black_box(layer.forward_linear_with(cfg, black_box(&base_t)).unwrap());
            },
        ));

        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        let mut out = Vec::new();
        let mut i = 0usize;
        rows.push(bench_pair(
            "autopilot_conv2_24x31x98/reuse_10pct",
            &parallel,
            |cfg| {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                state
                    .execute_into(cfg, &layer, &q, black_box(input), &mut out)
                    .unwrap();
                black_box(&out);
            },
        ));
    }

    // C3D-style 3D convolution (CONV3 channel ratio, reduced spatial size so
    // one iteration stays in the tens of milliseconds).
    {
        let spec = Conv3dSpec {
            in_channels: 32,
            out_channels: 64,
            kd: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let layer = Conv3dLayer::random(spec, Activation::Relu, &mut Rng64::new(5));
        let in_shape = Shape::d4(32, 4, 14, 14);
        let mut rng = Rng64::new(6);
        let base = random_input(in_shape.volume(), &mut rng);
        let base_t = Tensor::from_vec(in_shape.clone(), base.clone()).unwrap();
        rows.push(bench_pair(
            "c3d_conv3_32x4x14x14/forward",
            &parallel,
            |cfg| {
                black_box(layer.forward_linear_with(cfg, black_box(&base_t)).unwrap());
            },
        ));

        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        let mut state = Conv3dReuseState::new(&layer, &in_shape).unwrap();
        let mut out = Vec::new();
        let mut i = 0usize;
        rows.push(bench_pair(
            "c3d_conv3_32x4x14x14/reuse_10pct",
            &parallel,
            |cfg| {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                state
                    .execute_into(cfg, &layer, &q, black_box(input), &mut out)
                    .unwrap();
                black_box(&out);
            },
        ));
    }

    // EESEN LSTM cell geometry: 640 inputs, 320 cell.
    {
        let cell = LstmCell::random(640, 320, &mut Rng64::new(7));
        let mut rng = Rng64::new(8);
        let base = random_input(640, &mut rng);
        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        let mut state = LstmReuseState::new(&cell);
        let mut h_out = Vec::new();
        let mut i = 0usize;
        rows.push(bench_pair(
            "eesen_lstm_640x320/reuse_step_10pct",
            &parallel,
            |cfg| {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                state
                    .step_into(cfg, &cell, &q, &q, black_box(input), &mut h_out)
                    .unwrap();
                black_box(&h_out);
            },
        ));
    }

    let engine = bench_engine_pair();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernel_bench\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(json, "  \"parallel_threads\": {threads},");
    let _ = writeln!(json, "  \"engine\": {{");
    let _ = writeln!(json, "    \"base_ns_per_frame\": {:.0},", engine.base_ns);
    let _ = writeln!(
        json,
        "    \"telemetry_ns_per_frame\": {:.0},",
        engine.telemetry_ns
    );
    let _ = writeln!(
        json,
        "    \"telemetry_overhead_pct\": {:.3},",
        engine.overhead_pct()
    );
    json.push_str("    \"layers\": [\n");
    for (k, (name, rate)) in engine.layers.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"name\": \"{name}\", \"hit_rate\": {rate:.6}}}{}",
            if k + 1 < engine.layers.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n  },\n");
    if hardware_threads < threads {
        let _ = writeln!(
            json,
            "  \"note\": \"host exposes {hardware_threads} hardware thread(s); \
             {threads} workers oversubscribe it, so parallel speedups here \
             reflect scheduling overhead, not kernel scaling\","
        );
    }
    json.push_str("  \"kernels\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"serial_ns_per_iter\": {:.0}, \"parallel_ns_per_iter\": {:.0}, \"speedup\": {:.3}}}{}",
            r.name,
            r.serial_ns,
            r.parallel_ns,
            r.serial_ns / r.parallel_ns,
            if k + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    eprintln!(
        "wrote {out_path} ({} kernels, {threads} threads, {hardware_threads} hw)",
        rows.len()
    );
    ExitCode::SUCCESS
}

//! Naive/blocked/parallel kernel timings at the paper's Table I layer
//! geometries, written to `BENCH_kernels.json`.
//!
//! Every kernel is measured three ways on identical inputs:
//!
//! - **naive**: the original serial loop nest (the exactness oracle kept
//!   as `matmul_naive` / `conv*_forward_naive` / `execute_into_naive`);
//! - **blocked**: the cache-blocked, panel-packed kernel on the serial
//!   config, dispatched at the resolved `reuse_tensor::SimdLevel` — the
//!   before/after pair for the blocking + SIMD work;
//! - **parallel**: the blocked kernel under `REUSE_THREADS` workers
//!   (default 4), clamped to the host's hardware threads by
//!   `ParallelConfig` — the JSON records the requested count and, per
//!   kernel row, the resolved (clamped) count. On hosts where the clamp
//!   resolves to one worker the parallel columns are skipped (they would
//!   duplicate the blocked column) and the row says so instead.
//!
//! Outputs are bit-identical across the three under the scalar SIMD level;
//! under AVX2 the blocked/parallel kernels fuse multiply-adds and agree
//! with naive within `reuse_tensor::simd::fma_tolerance` (see DESIGN.md).
//! Only the ns/iter and GFLOP/s columns vary with the machine; the JSON
//! header records the active and detected SIMD level plus the CPU feature
//! flags so numbers are never compared across ISAs by accident. Forward
//! rows use the layer's analytic FLOP count; reuse-correction rows (at
//! ~10% changed inputs) use the MACs the correction actually performed,
//! read from the execution stats.
//!
//! An engine-level pair is also measured: the same steady-state frames with
//! telemetry off and on, reporting the overhead of the recording path and
//! the per-layer hit rates read back from the telemetry snapshot. Running
//! `kernel_bench --telemetry-smoke` measures only that pair and exits
//! nonzero when the overhead exceeds `REUSE_TELEMETRY_OVERHEAD_PCT`
//! (default 5%).
//!
//! Running `kernel_bench --perf-smoke` times the naive-vs-blocked matmul
//! pair and exits nonzero when the blocked kernel misses its floors. The
//! floors follow the active SIMD level: under AVX2 the blocked kernel must
//! reach `REUSE_BLOCKED_MIN_SPEEDUP` × naive (default 2.0) **and**
//! `REUSE_BLOCKED_MIN_GFLOPS` absolute GFLOP/s (default 48.0, i.e. ≥4× the
//! pre-SIMD 11.98 GFLOP/s baseline); without AVX2 the floors auto-relax to
//! the scalar guard (speedup ≥ 1.0, no absolute floor) so non-x86 CI hosts
//! still gate against regressions they can actually measure.
//!
//! `kernel_bench --validate <out.json>` re-reads a benchmark file and exits
//! nonzero when the schema (header keys, SIMD provenance, per-row keys) is
//! missing fields — the CI guard that regenerated files stay parseable.
//!
//! Usage: `cargo run --release -p reuse-bench --bin kernel_bench [out.json]`

use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use reuse_core::conv::{Conv2dReuseState, Conv3dReuseState};
use reuse_core::fc::FcReuseState;
use reuse_core::lstm::LstmReuseState;
use reuse_core::{CompiledModel, ReuseConfig, ReuseSession};
use reuse_nn::{
    init::Rng64, Activation, Conv2dLayer, Conv3dLayer, FullyConnected, LstmCell, NetworkBuilder,
};
use reuse_quant::{InputRange, LinearQuantizer};
use reuse_tensor::conv::{conv2d_forward_naive, conv3d_forward_naive, Conv2dSpec, Conv3dSpec};
use reuse_tensor::{matmul, ParallelConfig, Shape, Tensor};

/// One naive/blocked/parallel triple of measurements. `parallel_ns` is
/// `None` when the thread clamp resolved to one worker — timing it would
/// only duplicate the blocked column.
struct Row {
    name: String,
    /// FLOPs one iteration performs (analytic for forwards, measured MACs
    /// ×2 for reuse corrections).
    flops: u64,
    naive_ns: f64,
    blocked_ns: f64,
    parallel_ns: Option<f64>,
}

impl Row {
    fn blocked_speedup(&self) -> f64 {
        self.naive_ns / self.blocked_ns
    }
    fn parallel_speedup(&self) -> Option<f64> {
        self.parallel_ns.map(|ns| self.naive_ns / ns)
    }
    fn gflops(&self, ns: f64) -> f64 {
        self.flops as f64 / ns
    }
}

/// Times `f` until it has run for ~200 ms (at least 5 iterations) and
/// returns ns/iter.
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if iters >= 5 && start.elapsed().as_millis() >= 200 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn quantizer() -> LinearQuantizer {
    LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap()
}

/// Mutates ~`fraction` of the inputs by more than one quantization step.
fn perturb(base: &[f32], fraction: f64, step: f32, rng: &mut Rng64) -> Vec<f32> {
    let mut out = base.to_vec();
    let n = ((base.len() as f64) * fraction) as usize;
    for _ in 0..n {
        let i = (rng.next_u64() % base.len() as u64) as usize;
        out[i] = (out[i] + 3.0 * step).rem_euclid(2.0) - 1.0;
    }
    out
}

fn random_input(len: usize, rng: &mut Rng64) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(0.9)).collect()
}

/// Measures one kernel three ways. `naive` always runs serially; `blocked`
/// is timed once with the serial config and — unless the clamp resolved to
/// a single worker, where the numbers would be the blocked column again —
/// once with `parallel`.
fn bench_triple(
    name: &str,
    flops: u64,
    parallel: &ParallelConfig,
    mut naive: impl FnMut(),
    mut blocked: impl FnMut(&ParallelConfig),
) -> Row {
    let serial = ParallelConfig::serial();
    let naive_ns = time_ns(&mut naive);
    let blocked_ns = time_ns(|| blocked(&serial));
    let parallel_ns = (parallel.workers_for(usize::MAX) > 1).then(|| time_ns(|| blocked(parallel)));
    let row = Row {
        name: name.to_string(),
        flops,
        naive_ns,
        blocked_ns,
        parallel_ns,
    };
    let parallel_col = match row.parallel_ns {
        Some(ns) => format!(
            "parallel {:>11.0} ns ({:.2}x)",
            ns,
            row.parallel_speedup().unwrap_or(f64::NAN)
        ),
        None => "parallel skipped (1 worker)".to_string(),
    };
    eprintln!(
        "{:<40} naive {:>11.0} ns  blocked {:>11.0} ns ({:.2}x, {:.2} GFLOP/s)  {parallel_col}",
        row.name,
        row.naive_ns,
        row.blocked_ns,
        row.blocked_speedup(),
        row.gflops(row.blocked_ns),
    );
    row
}

/// The naive-vs-blocked matmul pair used by both the full run and the
/// `--perf-smoke` CI gate: C = A·B at Kaldi-FC3-like geometry with enough
/// rows to keep the kernel compute-bound. The blocked side multiplies
/// against a pre-packed `B` (the steady-state shape for weight matrices:
/// pack once, multiply every frame), so the columns compare kernels, not
/// the one-time repack.
fn matmul_pair() -> (Tensor, Tensor, u64) {
    let (m, k, n) = (64usize, 400usize, 2000usize);
    let mut rng = Rng64::new(12);
    let a = Tensor::from_vec(Shape::d2(m, k), random_input(m * k, &mut rng)).unwrap();
    let b = Tensor::from_vec(Shape::d2(k, n), random_input(k * n, &mut rng)).unwrap();
    (a, b, 2 * (m * k * n) as u64)
}

/// Steady-state engine timings with telemetry off vs on, plus the per-layer
/// hit-rate provenance read back from the telemetry engine's snapshot.
struct EngineBench {
    base_ns: f64,
    telemetry_ns: f64,
    /// Active reuse-policy name resolved by the compiled model
    /// (`"static"` unless a policy override is wired in).
    policy: String,
    layers: Vec<(String, f64)>,
}

impl EngineBench {
    fn overhead_pct(&self) -> f64 {
        (self.telemetry_ns - self.base_ns) / self.base_ns * 100.0
    }
}

/// A deterministic random walk of input frames: enough per-frame change that
/// the incremental path does real correction work every execution.
fn walk_frames(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.8)).collect();
    (0..n)
        .map(|_| {
            for v in frame.iter_mut() {
                *v = (*v + rng.uniform(0.05)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

/// Times steady-state `execute_into` frames on an already-calibrated
/// session. Measured twice, keeping the minimum, to damp scheduler noise —
/// the telemetry-overhead smoke check compares two of these numbers.
fn time_session(session: &mut ReuseSession, frames: &[Vec<f32>]) -> f64 {
    let mut out = Vec::new();
    for frame in frames.iter().take(3) {
        session.execute_into(frame, &mut out).unwrap();
    }
    let mut pass = || {
        let mut i = 0usize;
        time_ns(|| {
            session
                .execute_into(black_box(&frames[i % frames.len()]), &mut out)
                .unwrap();
            i += 1;
            black_box(&out);
        })
    };
    let first = pass();
    pass().min(first)
}

/// Runs the telemetry-off/on engine pair on identical frame streams.
fn bench_engine_pair() -> EngineBench {
    let net = NetworkBuilder::new("telemetry-overhead", 256)
        .fully_connected(512, Activation::Relu)
        .fully_connected(512, Activation::Relu)
        .fully_connected(128, Activation::Identity)
        .build()
        .unwrap();
    let frames = walk_frames(16, 256, 21);

    // One compiled model per config (telemetry is a compile-time setting);
    // the timed state is a per-stream session, same as the serving path.
    let base_model = std::sync::Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let mut base = base_model.new_session();
    let base_ns = time_session(&mut base, &frames);

    let config = ReuseConfig::uniform(16).telemetry(true);
    let tel_model = std::sync::Arc::new(CompiledModel::new(&net, &config));
    let mut tel = tel_model.new_session();
    let telemetry_ns = time_session(&mut tel, &frames);

    let snap = tel.telemetry_snapshot().expect("telemetry enabled");
    let layers = snap
        .layers
        .iter()
        .map(|l| (l.name.clone(), l.hit_rate))
        .collect();
    let bench = EngineBench {
        base_ns,
        telemetry_ns,
        policy: tel_model.policy_name().to_string(),
        layers,
    };
    eprintln!(
        "{:<40} base   {:>12.0} ns/frame   telemetry {:>12.0} ns/frame   overhead {:+.2}%",
        "engine_mlp_256/steady_frame",
        bench.base_ns,
        bench.telemetry_ns,
        bench.overhead_pct()
    );
    for (name, rate) in &bench.layers {
        eprintln!("  {name:<12} hit rate {:.3}", rate);
    }
    bench
}

fn smoke_threshold_pct() -> f64 {
    std::env::var("REUSE_TELEMETRY_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0)
}

/// Times naive vs blocked matmul and exits nonzero when the blocked kernel
/// misses the active SIMD level's floors.
///
/// Under AVX2 the blocked kernel must reach `REUSE_BLOCKED_MIN_SPEEDUP` ×
/// naive (default 2.0) and `REUSE_BLOCKED_MIN_GFLOPS` absolute throughput
/// (default 48.0 — ≥4× the pre-SIMD 11.98 GFLOP/s blocked baseline).
/// Without AVX2 the floors auto-relax to the scalar guard: speedup ≥ 1.0
/// (still overridable) and no absolute GFLOP/s floor, since scalar
/// hardware cannot be held to vector throughput.
fn perf_smoke() -> ExitCode {
    let level = reuse_tensor::simd::level();
    let avx2 = level == reuse_tensor::SimdLevel::Avx2;
    let min_speedup: f64 = std::env::var("REUSE_BLOCKED_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if avx2 { 2.0 } else { 1.0 });
    let min_gflops: f64 = std::env::var("REUSE_BLOCKED_MIN_GFLOPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if avx2 { 48.0 } else { 0.0 });
    let (a, b, flops) = matmul_pair();
    let serial = ParallelConfig::serial();
    let naive_ns = time_ns(|| {
        black_box(matmul::matmul_naive(black_box(&a), black_box(&b)).unwrap());
    });
    let (m, n) = (a.shape().dims()[0], b.shape().dims()[1]);
    let packed = reuse_tensor::PackedPanels::pack(&b).unwrap();
    let mut c = vec![0.0f32; m * n];
    let blocked_ns = time_ns(|| {
        c.fill(0.0);
        matmul::matmul_packed_into(&serial, black_box(a.as_slice()), &packed, m, &mut c);
        black_box(&c);
    });
    let speedup = naive_ns / blocked_ns;
    let gflops = flops as f64 / blocked_ns;
    eprintln!(
        "perf smoke [{}]: matmul naive {naive_ns:.0} ns, blocked {blocked_ns:.0} ns, \
         speedup {speedup:.3}x (floor {min_speedup:.3}x), \
         {gflops:.2} GFLOP/s (floor {min_gflops:.2})",
        level.name()
    );
    if !avx2 {
        eprintln!("perf smoke: AVX2 unavailable or disabled; scalar floors in force");
    }
    let mut ok = true;
    if speedup < min_speedup {
        eprintln!("blocked matmul is slower than the {min_speedup:.3}x floor");
        ok = false;
    }
    if gflops < min_gflops {
        eprintln!("blocked matmul throughput is below the {min_gflops:.2} GFLOP/s floor");
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Re-reads a written benchmark file and checks the schema: every header
/// key, the SIMD provenance block, and the per-row keys must be present.
/// Plain substring checks — the writer emits a fixed shape, so this guards
/// against the writer and its consumers drifting apart.
fn validate(path: &str) -> ExitCode {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    const REQUIRED: &[&str] = &[
        "\"bench\": \"kernel_bench\"",
        "\"hardware_threads\":",
        "\"requested_threads\":",
        "\"resolved_threads\":",
        "\"simd\":",
        "\"active\":",
        "\"detected\":",
        "\"avx2\":",
        "\"fma\":",
        "\"bit_exact\":",
        "\"engine\":",
        "\"policy\":",
        "\"base_ns_per_frame\":",
        "\"telemetry_ns_per_frame\":",
        "\"telemetry_overhead_pct\":",
        "\"hit_rate\":",
        "\"kernels\":",
        "\"flops\":",
        "\"naive_ns_per_iter\":",
        "\"blocked_ns_per_iter\":",
        "\"blocked_speedup\":",
        "\"naive_gflops\":",
        "\"blocked_gflops\":",
    ];
    let missing: Vec<&str> = REQUIRED
        .iter()
        .filter(|k| !body.contains(**k))
        .copied()
        .collect();
    // Each kernel row carries either measured parallel columns or the
    // explicit skip marker; every row must have one of the two.
    let rows = body.matches("\"naive_ns_per_iter\":").count();
    let parallel = body.matches("\"parallel_ns_per_iter\":").count()
        + body.matches("\"parallel_skipped\":").count();
    if !missing.is_empty() {
        eprintln!("validate: {path} is missing keys: {missing:?}");
        return ExitCode::FAILURE;
    }
    if rows == 0 || parallel != rows {
        eprintln!(
            "validate: {path} has {rows} kernel rows but {parallel} \
             parallel columns/skip markers"
        );
        return ExitCode::FAILURE;
    }
    eprintln!("validate: {path} ok ({rows} kernel rows)");
    ExitCode::SUCCESS
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--telemetry-smoke") {
        let bench = bench_engine_pair();
        let threshold = smoke_threshold_pct();
        let overhead = bench.overhead_pct();
        if overhead > threshold {
            eprintln!("telemetry overhead {overhead:.2}% exceeds the {threshold:.2}% budget");
            return ExitCode::FAILURE;
        }
        eprintln!("telemetry overhead {overhead:.2}% within the {threshold:.2}% budget");
        return ExitCode::SUCCESS;
    }
    if arg.as_deref() == Some("--perf-smoke") {
        return perf_smoke();
    }
    if arg.as_deref() == Some("--validate") {
        let path = std::env::args()
            .nth(2)
            .unwrap_or_else(|| "BENCH_kernels.json".to_string());
        return validate(&path);
    }
    let out_path = arg.unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let requested_threads: usize = std::env::var("REUSE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let hardware_threads = reuse_tensor::hardware_threads();
    // No work floor and no inline threshold: these are benchmark-sized
    // layers, always worth splitting. The hardware clamp stays in force —
    // `resolved_threads` below is what actually runs.
    let parallel = ParallelConfig::with_threads(requested_threads)
        .min_work_per_thread(1)
        .inline_flops(0);
    let resolved_threads = parallel.workers_for(usize::MAX);
    let q = quantizer();
    let mut rows = Vec::new();

    // Dense matmul at Kaldi-like geometry (the perf-smoke pair); the
    // blocked/parallel columns run against a pre-packed B, the steady-state
    // shape for weight matrices.
    {
        let (a, b, flops) = matmul_pair();
        let (m, n) = (a.shape().dims()[0], b.shape().dims()[1]);
        let packed = reuse_tensor::PackedPanels::pack(&b).unwrap();
        let mut c = vec![0.0f32; m * n];
        rows.push(bench_triple(
            "matmul_64x400x2000",
            flops,
            &parallel,
            || {
                black_box(matmul::matmul_naive(black_box(&a), black_box(&b)).unwrap());
            },
            |cfg| {
                c.fill(0.0);
                matmul::matmul_packed_into(cfg, black_box(a.as_slice()), &packed, m, &mut c);
                black_box(&c);
            },
        ));
    }

    // Kaldi FC3 geometry: 400 inputs x 2000 neurons.
    {
        let layer = FullyConnected::random(400, 2000, Activation::Relu, &mut Rng64::new(1));
        let mut rng = Rng64::new(2);
        let base = random_input(400, &mut rng);
        let input = Tensor::from_slice_1d(&base).unwrap();
        let mut naive_out = Vec::new();
        let mut out = Vec::new();
        let serial = ParallelConfig::serial();
        rows.push(bench_triple(
            "kaldi_fc3_400x2000/forward",
            matmul::fc_flops(400, 2000),
            &parallel,
            || {
                matmul::fc_forward_into(
                    &serial,
                    layer.weights(),
                    black_box(&input),
                    layer.bias(),
                    &mut naive_out,
                )
                .unwrap();
                black_box(&naive_out);
            },
            |cfg| {
                layer
                    .forward_linear_into(cfg, black_box(&input), &mut out)
                    .unwrap();
                black_box(&out);
            },
        ));

        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        // Measure the correction's actual MAC count on one changed frame.
        let correction_flops = {
            let mut probe = FcReuseState::new(&layer);
            probe
                .execute_into(&serial, &layer, &q, &base, &mut out)
                .unwrap();
            let stats = probe
                .execute_into(&serial, &layer, &q, &variant, &mut out)
                .unwrap();
            2 * stats.macs_performed
        };
        let mut naive_state = FcReuseState::new(&layer);
        let mut state = FcReuseState::new(&layer);
        let (mut i, mut j) = (0usize, 0usize);
        rows.push(bench_triple(
            "kaldi_fc3_400x2000/reuse_10pct",
            correction_flops,
            &parallel,
            || {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                naive_state
                    .execute_into_naive(&serial, &layer, &q, black_box(input), &mut naive_out)
                    .unwrap();
                black_box(&naive_out);
            },
            |cfg| {
                let input = if j.is_multiple_of(2) { &variant } else { &base };
                j += 1;
                state
                    .execute_into(cfg, &layer, &q, black_box(input), &mut out)
                    .unwrap();
                black_box(&out);
            },
        ));
    }

    // L2-resident FC geometry: 400 x 400 weights (~640 KiB) fit in L2, so
    // this row shows the compute-bound ceiling of the single-frame forward
    // kernel. The Kaldi FC3 row above streams a ~3.2 MB matrix from L3 and
    // is bandwidth-capped regardless of ISA — compare the two to separate
    // memory-bound from compute-bound headroom (see DESIGN.md roofline).
    {
        let layer = FullyConnected::random(400, 400, Activation::Relu, &mut Rng64::new(9));
        let mut rng = Rng64::new(10);
        let base = random_input(400, &mut rng);
        let input = Tensor::from_slice_1d(&base).unwrap();
        let mut naive_out = Vec::new();
        let mut out = Vec::new();
        let serial = ParallelConfig::serial();
        rows.push(bench_triple(
            "fc_l2_400x400/forward",
            matmul::fc_flops(400, 400),
            &parallel,
            || {
                matmul::fc_forward_into(
                    &serial,
                    layer.weights(),
                    black_box(&input),
                    layer.bias(),
                    &mut naive_out,
                )
                .unwrap();
                black_box(&naive_out);
            },
            |cfg| {
                layer
                    .forward_linear_into(cfg, black_box(&input), &mut out)
                    .unwrap();
                black_box(&out);
            },
        ));
    }

    // AutoPilot CONV2 geometry: 24 -> 36 channels, 5x5 stride 2.
    {
        let spec = Conv2dSpec {
            in_channels: 24,
            out_channels: 36,
            kh: 5,
            kw: 5,
            stride: 2,
            pad: 0,
        };
        let layer = Conv2dLayer::random(spec, Activation::Relu, &mut Rng64::new(3));
        let in_shape = Shape::d3(24, 31, 98);
        let mut rng = Rng64::new(4);
        let base = random_input(in_shape.volume(), &mut rng);
        let base_t = Tensor::from_vec(in_shape.clone(), base.clone()).unwrap();
        let serial = ParallelConfig::serial();
        rows.push(bench_triple(
            "autopilot_conv2_24x31x98/forward",
            spec.flops(31, 98),
            &parallel,
            || {
                black_box(
                    conv2d_forward_naive(&spec, black_box(&base_t), layer.weights(), layer.bias())
                        .unwrap(),
                );
            },
            |cfg| {
                black_box(layer.forward_linear_with(cfg, black_box(&base_t)).unwrap());
            },
        ));

        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        let mut naive_out = Vec::new();
        let mut out = Vec::new();
        let correction_flops = {
            let mut probe = Conv2dReuseState::new(&layer, &in_shape).unwrap();
            probe
                .execute_into(&serial, &layer, &q, &base, &mut out)
                .unwrap();
            let stats = probe
                .execute_into(&serial, &layer, &q, &variant, &mut out)
                .unwrap();
            2 * stats.macs_performed
        };
        let mut naive_state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        let (mut i, mut j) = (0usize, 0usize);
        rows.push(bench_triple(
            "autopilot_conv2_24x31x98/reuse_10pct",
            correction_flops,
            &parallel,
            || {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                naive_state
                    .execute_into_naive(&serial, &layer, &q, black_box(input), &mut naive_out)
                    .unwrap();
                black_box(&naive_out);
            },
            |cfg| {
                let input = if j.is_multiple_of(2) { &variant } else { &base };
                j += 1;
                state
                    .execute_into(cfg, &layer, &q, black_box(input), &mut out)
                    .unwrap();
                black_box(&out);
            },
        ));
    }

    // C3D-style 3D convolution (CONV3 channel ratio, reduced spatial size so
    // one iteration stays in the tens of milliseconds).
    {
        let spec = Conv3dSpec {
            in_channels: 32,
            out_channels: 64,
            kd: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let layer = Conv3dLayer::random(spec, Activation::Relu, &mut Rng64::new(5));
        let in_shape = Shape::d4(32, 4, 14, 14);
        let mut rng = Rng64::new(6);
        let base = random_input(in_shape.volume(), &mut rng);
        let base_t = Tensor::from_vec(in_shape.clone(), base.clone()).unwrap();
        let serial = ParallelConfig::serial();
        rows.push(bench_triple(
            "c3d_conv3_32x4x14x14/forward",
            spec.flops(4, 14, 14),
            &parallel,
            || {
                black_box(
                    conv3d_forward_naive(&spec, black_box(&base_t), layer.weights(), layer.bias())
                        .unwrap(),
                );
            },
            |cfg| {
                black_box(layer.forward_linear_with(cfg, black_box(&base_t)).unwrap());
            },
        ));

        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        let mut naive_out = Vec::new();
        let mut out = Vec::new();
        let correction_flops = {
            let mut probe = Conv3dReuseState::new(&layer, &in_shape).unwrap();
            probe
                .execute_into(&serial, &layer, &q, &base, &mut out)
                .unwrap();
            let stats = probe
                .execute_into(&serial, &layer, &q, &variant, &mut out)
                .unwrap();
            2 * stats.macs_performed
        };
        let mut naive_state = Conv3dReuseState::new(&layer, &in_shape).unwrap();
        let mut state = Conv3dReuseState::new(&layer, &in_shape).unwrap();
        let (mut i, mut j) = (0usize, 0usize);
        rows.push(bench_triple(
            "c3d_conv3_32x4x14x14/reuse_10pct",
            correction_flops,
            &parallel,
            || {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                naive_state
                    .execute_into_naive(&serial, &layer, &q, black_box(input), &mut naive_out)
                    .unwrap();
                black_box(&naive_out);
            },
            |cfg| {
                let input = if j.is_multiple_of(2) { &variant } else { &base };
                j += 1;
                state
                    .execute_into(cfg, &layer, &q, black_box(input), &mut out)
                    .unwrap();
                black_box(&out);
            },
        ));
    }

    // EESEN LSTM cell geometry: 640 inputs, 320 cell.
    {
        let cell = LstmCell::random(640, 320, &mut Rng64::new(7));
        let mut rng = Rng64::new(8);
        let base = random_input(640, &mut rng);
        let variant = perturb(&base, 0.1, q.step(), &mut rng);
        let serial = ParallelConfig::serial();
        let mut naive_h = Vec::new();
        let mut h_out = Vec::new();
        let correction_flops = {
            let mut probe = LstmReuseState::new(&cell);
            probe
                .step_into(&serial, &cell, &q, &q, &base, &mut h_out)
                .unwrap();
            let stats = probe
                .step_into(&serial, &cell, &q, &q, &variant, &mut h_out)
                .unwrap();
            2 * stats.macs_performed
        };
        let mut naive_state = LstmReuseState::new(&cell);
        let mut state = LstmReuseState::new(&cell);
        let (mut i, mut j) = (0usize, 0usize);
        rows.push(bench_triple(
            "eesen_lstm_640x320/reuse_step_10pct",
            correction_flops,
            &parallel,
            || {
                let input = if i.is_multiple_of(2) { &variant } else { &base };
                i += 1;
                naive_state
                    .step_into_naive(&serial, &cell, &q, &q, black_box(input), &mut naive_h)
                    .unwrap();
                black_box(&naive_h);
            },
            |cfg| {
                let input = if j.is_multiple_of(2) { &variant } else { &base };
                j += 1;
                state
                    .step_into(cfg, &cell, &q, &q, black_box(input), &mut h_out)
                    .unwrap();
                black_box(&h_out);
            },
        ));
    }

    let engine = bench_engine_pair();

    let active = reuse_tensor::simd::level();
    #[cfg(target_arch = "x86_64")]
    let (has_avx2, has_fma) = (
        std::arch::is_x86_feature_detected!("avx2"),
        std::arch::is_x86_feature_detected!("fma"),
    );
    #[cfg(not(target_arch = "x86_64"))]
    let (has_avx2, has_fma) = (false, false);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernel_bench\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(json, "  \"requested_threads\": {requested_threads},");
    let _ = writeln!(json, "  \"resolved_threads\": {resolved_threads},");
    // ISA provenance: throughput numbers are only comparable between runs
    // that resolved the same SIMD level on the same feature set.
    let _ = writeln!(json, "  \"simd\": {{");
    let _ = writeln!(json, "    \"active\": \"{}\",", active.name());
    let _ = writeln!(
        json,
        "    \"detected\": \"{}\",",
        reuse_tensor::simd::detected().name()
    );
    let _ = writeln!(json, "    \"arch\": \"{}\",", std::env::consts::ARCH);
    let _ = writeln!(json, "    \"avx2\": {has_avx2},");
    let _ = writeln!(json, "    \"fma\": {has_fma},");
    let _ = writeln!(
        json,
        "    \"bit_exact\": {}",
        reuse_tensor::simd::is_bit_exact()
    );
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"engine\": {{");
    let _ = writeln!(json, "    \"base_ns_per_frame\": {:.0},", engine.base_ns);
    let _ = writeln!(
        json,
        "    \"telemetry_ns_per_frame\": {:.0},",
        engine.telemetry_ns
    );
    let _ = writeln!(
        json,
        "    \"telemetry_overhead_pct\": {:.3},",
        engine.overhead_pct()
    );
    let _ = writeln!(json, "    \"policy\": \"{}\",", engine.policy);
    json.push_str("    \"layers\": [\n");
    for (k, (name, rate)) in engine.layers.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"name\": \"{name}\", \"hit_rate\": {rate:.6}}}{}",
            if k + 1 < engine.layers.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n  },\n");
    if hardware_threads < requested_threads {
        let skipped = if resolved_threads <= 1 {
            "; parallel columns are skipped (one worker would duplicate the blocked column)"
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "  \"note\": \"host exposes {hardware_threads} hardware thread(s); the \
             requested {requested_threads} workers were clamped to \
             {resolved_threads}{skipped}\","
        );
    }
    json.push_str("  \"kernels\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let parallel_cols = match r.parallel_ns {
            Some(ns) => format!(
                "\"parallel_ns_per_iter\": {:.0}, \"parallel_speedup\": {:.3}, \
                 \"parallel_gflops\": {:.3}",
                ns,
                r.parallel_speedup().unwrap_or(f64::NAN),
                r.gflops(ns)
            ),
            None => format!(
                "\"parallel_skipped\": \"thread clamp resolved to 1 worker; \
                 column would duplicate blocked ({requested_threads} requested, \
                 {hardware_threads} hw)\""
            ),
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"flops\": {}, \
             \"resolved_threads\": {resolved_threads}, \
             \"naive_ns_per_iter\": {:.0}, \"blocked_ns_per_iter\": {:.0}, \
             \"blocked_speedup\": {:.3}, \"naive_gflops\": {:.3}, \
             \"blocked_gflops\": {:.3}, {parallel_cols}}}{}",
            r.name,
            r.flops,
            r.naive_ns,
            r.blocked_ns,
            r.blocked_speedup(),
            r.gflops(r.naive_ns),
            r.gflops(r.blocked_ns),
            if k + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    eprintln!(
        "wrote {out_path} ({} kernels, {requested_threads} threads requested, \
         {resolved_threads} resolved, {hardware_threads} hw)",
        rows.len()
    );
    ExitCode::SUCCESS
}

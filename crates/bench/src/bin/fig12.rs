//! Regenerates paper Fig. 12: comparison against CPU and GPU.

fn main() {
    print!(
        "{}",
        reuse_bench::experiments::fig12(reuse_workloads::Scale::from_env())
    );
}

//! Runs every experiment in DESIGN.md's index and prints the full report.

use reuse_bench::experiments as exp;
use reuse_workloads::Scale;

fn main() {
    let scale = Scale::from_env();
    let sep = "=".repeat(78);
    for section in [
        exp::table1(scale),
        exp::fig4(scale, 200),
        exp::fig5(scale),
        exp::fig9(scale),
        exp::fig10(scale),
        exp::fig11(scale),
        exp::table2(),
        exp::table3(scale),
        exp::fig12(scale),
        exp::reduced_precision(scale),
    ] {
        println!("{sep}");
        println!("{section}");
    }
}

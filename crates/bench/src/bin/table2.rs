//! Regenerates paper Table II: accelerator parameters.

fn main() {
    print!("{}", reuse_bench::experiments::table2());
}

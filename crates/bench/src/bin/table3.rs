//! Regenerates paper Table III: memory overheads of the reuse scheme.

fn main() {
    print!(
        "{}",
        reuse_bench::experiments::table3(reuse_workloads::Scale::from_env())
    );
}

//! Serving-throughput benchmark: a [`StreamServer`] multiplexing 1/8/64/256
//! streams over one shared [`CompiledModel`], written to `BENCH_serve.json`.
//!
//! Each configuration serves N offset copies of a generated input stream
//! (same per-stream frame-to-frame similarity, no two streams identical at
//! the same step). Streams are warmed past calibration first, then the
//! steady-state submit → tick → drain cycle is timed; the aggregate
//! frames/sec and the submit-to-completion latency quantiles from the
//! server's own histogram are reported per stream count. Every repeat runs
//! the same cycle on fresh frames and the **max** frames/sec is kept —
//! single-core hosts schedule-jitter the slower repeats, and the question
//! here is runtime capability, not host noise.
//!
//! Per-frame kernel work is identical at every stream count, so aggregate
//! throughput measures how well the dispatch loop amortizes its per-tick
//! overhead: more streams per tick means fewer ticks per frame, and
//! frames/sec must not *drop* as streams grow from 1 to 8.
//!
//! A second, **churn** scenario measures the cross-stream signature cache:
//! a bounded session pool cycles through generations of short-lived
//! streams whose frames are tiny jitters of one shared base walk (think
//! many near-identical dashcam/ASR clients connecting and disconnecting).
//! With the cache off every new stream pays its full cold start
//! (calibration plus a from-scratch frame); with the cache on,
//! cold-starting streams adopt baselines published by earlier generations
//! and pay only the correction. The same churn runs with the cache off and
//! on, and the aggregate fps pair plus the cache counters land in the
//! `churn` section of the JSON.
//!
//! `serve_bench --perf-smoke` times only the 1- and 8-stream Kaldi pair and
//! exits nonzero when 8-stream aggregate throughput falls below
//! `REUSE_SERVE_MIN_SCALING` × 1-stream throughput (default 0.9, tunable
//! for noisy hosts like `REUSE_BLOCKED_MIN_SPEEDUP`) or below the absolute
//! `REUSE_SERVE_MIN_FPS` floor (default 1.0 frames/sec).
//!
//! `serve_bench --validate [file]` checks an existing `BENCH_serve.json`
//! for every required key (schema drift guard for CI), including the churn
//! section, and enforces the optional `REUSE_SERVE_MIN_CACHE_SPEEDUP`
//! floor on the recorded cache speedup.
//!
//! Usage: `cargo run --release -p reuse-bench --bin serve_bench [out.json]`
//! (`REUSE_SCALE` selects the model scale, as everywhere else.)

use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use reuse_core::CompiledModel;
use reuse_serve::{ServerConfig, StreamServer, SubmitResult};
use reuse_workloads::{Scale, Workload, WorkloadKind};

/// Frames submitted per stream between ticks: large enough that a tick's
/// fixed costs spread over real work, small enough to keep queues short.
const BURST: usize = 4;

/// Timed repeats per configuration (max frames/sec wins).
const REPEATS: usize = 3;

/// One stream-count configuration's measurement.
struct ServeRow {
    workload: &'static str,
    streams: usize,
    frames_per_stream: usize,
    fps: f64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

/// Serves `n` streams of `measure` steady frames each (after warm-up) and
/// returns the best-of-[`REPEATS`] aggregate throughput plus the latency
/// quantiles across all timed frames.
fn bench_streams(w: &Workload, model: &Arc<CompiledModel>, n: usize, measure: usize) -> ServeRow {
    let mut server = StreamServer::new(
        Arc::clone(model),
        ServerConfig::default()
            .max_sessions(n)
            .queue_capacity(2 * BURST)
            .batch_max(BURST),
    )
    .expect("feed-forward serve config");
    // Warm-up (calibration + state init + pool priming) and the timed
    // repeats all consume fresh frames from one long walk per stream.
    let warm = 3usize;
    let total = warm + REPEATS * measure;
    let all = w.generate_frames(total + n - 1, 42);
    let mut sink = 0f32;

    let cycle = |server: &mut StreamServer, from: usize, count: usize, sink: &mut f32| {
        let mut t = from;
        let end = from + count;
        while t < end {
            let burst = BURST.min(end - t);
            for b in 0..burst {
                for s in 0..n {
                    match server.submit(s as u64, &all[s + t + b]).unwrap() {
                        SubmitResult::Accepted => {}
                        r => panic!("steady submit rejected: {r:?}"),
                    }
                }
            }
            server.tick().unwrap();
            for s in 0..n {
                server.drain_outputs(s as u64, |out| *sink += out[0]);
            }
            t += burst;
        }
    };

    cycle(&mut server, 0, warm, &mut sink);
    server.latency().clear();
    let mut best_fps = 0f64;
    for r in 0..REPEATS {
        let start = Instant::now();
        cycle(&mut server, warm + r * measure, measure, &mut sink);
        let secs = start.elapsed().as_secs_f64();
        best_fps = best_fps.max((n * measure) as f64 / secs);
    }
    black_box(sink);
    assert_eq!(server.frames_completed() as usize, total * n);
    ServeRow {
        workload: "",
        streams: n,
        frames_per_stream: measure,
        fps: best_fps,
        p50_ns: server.latency().quantile_ns(0.50),
        p99_ns: server.latency().quantile_ns(0.99),
        max_ns: server.latency().max_ns(),
    }
}

/// Steady frames per stream: fewer at high stream counts so every
/// configuration does comparable total work.
fn frames_for(n: usize) -> usize {
    (512 / n).clamp(8, 512).div_ceil(BURST) * BURST
}

fn bench_workload(kind: WorkloadKind, scale: Scale, stream_counts: &[usize]) -> Vec<ServeRow> {
    let w = Workload::build(kind, scale);
    let model = Arc::new(CompiledModel::new(w.network(), w.reuse_config()));
    stream_counts
        .iter()
        .map(|&n| {
            let mut row = bench_streams(&w, &model, n, frames_for(n));
            row.workload = kind.name();
            eprintln!(
                "{:<10} {:>4} streams  {:>10.0} frames/s  p50 {:>9} ns  p99 {:>9} ns  max {:>9} ns",
                row.workload, row.streams, row.fps, row.p50_ns, row.p99_ns, row.max_ns
            );
            row
        })
        .collect()
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Churn-scenario shape: a pool of [`CHURN_POOL`] live sessions cycles
/// through [`CHURN_GENERATIONS`] generations of short-lived streams, each
/// serving [`CHURN_LIFETIME`] frames before being LRU-evicted by the next
/// generation.
const CHURN_POOL: usize = 8;
const CHURN_GENERATIONS: usize = 96;
const CHURN_LIFETIME: usize = 2;

/// The churn measurement for one model (cache off or on).
struct ChurnRow {
    fps: f64,
    signature: reuse_core::SignatureStats,
}

/// Runs the generational churn against one model: every stream serves
/// [`CHURN_LIFETIME`] jittered copies of the same base walk, stream ids
/// grow monotonically so each generation LRU-evicts the previous one, and
/// the per-stream cache counters are harvested before eviction destroys
/// them. Best-of-[`REPEATS`] aggregate fps; counters from the last repeat.
fn bench_churn(w: &Workload, model: &Arc<CompiledModel>) -> ChurnRow {
    let base = w.generate_frames(CHURN_LIFETIME, 42);
    let mut scratch = vec![0f32; base[0].len()];
    let mut best_fps = 0f64;
    let mut signature = reuse_core::SignatureStats::default();
    for _ in 0..REPEATS {
        let mut server = StreamServer::new(
            Arc::clone(model),
            ServerConfig::default()
                .max_sessions(CHURN_POOL)
                .queue_capacity(CHURN_LIFETIME.max(2 * BURST))
                .batch_max(CHURN_LIFETIME),
        )
        .expect("feed-forward serve config");
        let mut acc = reuse_core::SignatureStats::default();
        let mut sink = 0f32;
        let start = Instant::now();
        for gen in 0..CHURN_GENERATIONS {
            for s in 0..CHURN_POOL {
                let id = (gen * CHURN_POOL + s) as u64;
                // Per-stream jitter: a tiny constant offset (≤ ~1e-3), so
                // streams are near-identical but never bit-equal.
                let eps = (id.wrapping_mul(2_654_435_761) % 997) as f32 * 1e-6;
                for frame in &base {
                    for (dst, src) in scratch.iter_mut().zip(frame.iter()) {
                        *dst = src + eps;
                    }
                    match server.submit(id, &scratch).unwrap() {
                        SubmitResult::Accepted => {}
                        r => panic!("churn submit rejected: {r:?}"),
                    }
                }
            }
            while server.ready_units() > 0 {
                server.tick().unwrap();
            }
            for s in 0..CHURN_POOL {
                let id = (gen * CHURN_POOL + s) as u64;
                server.drain_outputs(id, |out| sink += out[0]);
                if let Some(sess) = server.session(id) {
                    let st = sess.signature_stats();
                    acc.lookups += st.lookups;
                    acc.hits += st.hits;
                    acc.adoptions += st.adoptions;
                    acc.bailouts += st.bailouts;
                    acc.inserts += st.inserts;
                }
            }
        }
        let secs = start.elapsed().as_secs_f64();
        black_box(sink);
        let served = (CHURN_GENERATIONS * CHURN_POOL * CHURN_LIFETIME) as f64;
        best_fps = best_fps.max(served / secs);
        signature = acc;
    }
    ChurnRow {
        fps: best_fps,
        signature,
    }
}

/// Runs the churn scenario with the signature cache off and on over the
/// same workload and returns `(off, on)`.
fn bench_churn_pair(kind: WorkloadKind, scale: Scale) -> (ChurnRow, ChurnRow) {
    let w = Workload::build(kind, scale);
    let off_model = Arc::new(CompiledModel::new(w.network(), w.reuse_config()));
    let on_config = w.reuse_config().clone().signature_cache(true);
    let on_model = Arc::new(CompiledModel::new(w.network(), &on_config));
    let off = bench_churn(&w, &off_model);
    let on = bench_churn(&w, &on_model);
    eprintln!(
        "{:<10} churn: {} gens x {} streams x {} frames  cache-off {:>8.0} frames/s  \
         cache-on {:>8.0} frames/s  speedup {:.2}x  ({} adoptions, {} bailouts)",
        kind.name(),
        CHURN_GENERATIONS,
        CHURN_POOL,
        CHURN_LIFETIME,
        off.fps,
        on.fps,
        on.fps / off.fps,
        on.signature.adoptions,
        on.signature.bailouts,
    );
    (off, on)
}

/// Schema check for an existing `BENCH_serve.json`: every required key
/// must be present (CI guard against silent drift), and the recorded
/// churn speedup must clear the `REUSE_SERVE_MIN_CACHE_SPEEDUP` floor
/// (default 1.0, i.e. presence-only).
fn validate(path: &str) -> ExitCode {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    const REQUIRED: &[&str] = &[
        "\"bench\": \"serve_bench\"",
        "\"scale\":",
        "\"burst\":",
        "\"repeats\":",
        "\"configs\":",
        "\"workload\":",
        "\"streams\":",
        "\"frames_per_stream\":",
        "\"frames_per_sec\":",
        "\"latency_p50_ns\":",
        "\"latency_p99_ns\":",
        "\"latency_max_ns\":",
        "\"churn\":",
        "\"pool\":",
        "\"generations\":",
        "\"cache_off_fps\":",
        "\"cache_on_fps\":",
        "\"speedup\":",
        "\"signature_cache\":",
        "\"lookups\":",
        "\"hits\":",
        "\"adoptions\":",
        "\"bailouts\":",
        "\"inserts\":",
    ];
    let missing: Vec<&str> = REQUIRED
        .iter()
        .filter(|k| !body.contains(**k))
        .copied()
        .collect();
    if !missing.is_empty() {
        eprintln!("validate: {path} is missing keys: {missing:?}");
        return ExitCode::FAILURE;
    }
    if body.matches("\"frames_per_sec\":").count() == 0 {
        eprintln!("validate: {path} has no throughput rows");
        return ExitCode::FAILURE;
    }
    let speedup = body
        .split("\"speedup\": ")
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| c == ',' || c == '}' || c.is_whitespace())
                .next()
                .and_then(|v| v.parse::<f64>().ok())
        })
        .unwrap_or(f64::NAN);
    let floor = env_f64("REUSE_SERVE_MIN_CACHE_SPEEDUP", 1.0);
    if speedup.is_nan() || speedup < floor {
        eprintln!("validate: churn speedup {speedup} is below the {floor:.2}x floor");
        return ExitCode::FAILURE;
    }
    eprintln!("validate: {path} ok (churn speedup {speedup:.2}x)");
    ExitCode::SUCCESS
}

/// Times the 1-vs-8-stream Kaldi pair and enforces the scaling and
/// absolute-throughput floors.
fn perf_smoke(scale: Scale) -> ExitCode {
    let min_scaling = env_f64("REUSE_SERVE_MIN_SCALING", 0.9);
    let min_fps = env_f64("REUSE_SERVE_MIN_FPS", 1.0);
    let rows = bench_workload(WorkloadKind::Kaldi, scale, &[1, 8]);
    let (one, eight) = (&rows[0], &rows[1]);
    let scaling = eight.fps / one.fps;
    eprintln!(
        "serve smoke: 1-stream {:.0} frames/s, 8-stream {:.0} frames/s, \
         scaling {scaling:.3}x (floor {min_scaling:.3}x), fps floor {min_fps:.1}",
        one.fps, eight.fps
    );
    if eight.fps < min_fps {
        eprintln!("8-stream throughput is below the {min_fps:.1} frames/s floor");
        return ExitCode::FAILURE;
    }
    if scaling < min_scaling {
        eprintln!(
            "8-stream aggregate throughput lost more than the {min_scaling:.3}x floor allows"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let scale = Scale::from_env();
    if arg.as_deref() == Some("--perf-smoke") {
        return perf_smoke(scale);
    }
    if arg.as_deref() == Some("--validate") {
        let path = std::env::args()
            .nth(2)
            .unwrap_or_else(|| "BENCH_serve.json".to_string());
        return validate(&path);
    }
    let out_path = arg.unwrap_or_else(|| "BENCH_serve.json".to_string());

    // Kaldi covers the full 1→256 sweep (cheap frames stress the dispatch
    // loop hardest); AutoPilot adds a conv workload at the low counts.
    let mut rows = bench_workload(WorkloadKind::Kaldi, scale, &[1, 8, 64, 256]);
    rows.extend(bench_workload(WorkloadKind::AutoPilot, scale, &[1, 8]));
    let (churn_off, churn_on) = bench_churn_pair(WorkloadKind::Kaldi, scale);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_bench\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"burst\": {BURST},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    json.push_str("  \"configs\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"streams\": {}, \"frames_per_stream\": {}, \
             \"frames_per_sec\": {:.1}, \"latency_p50_ns\": {}, \"latency_p99_ns\": {}, \
             \"latency_max_ns\": {}}}{}",
            r.workload,
            r.streams,
            r.frames_per_stream,
            r.fps,
            r.p50_ns,
            r.p99_ns,
            r.max_ns,
            if k + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"churn\": {{\"workload\": \"{}\", \"pool\": {CHURN_POOL}, \
         \"generations\": {CHURN_GENERATIONS}, \"frames_per_stream\": {CHURN_LIFETIME}, \
         \"cache_off_fps\": {:.1}, \"cache_on_fps\": {:.1}, \"speedup\": {:.3}, \
         \"signature_cache\": {{\"lookups\": {}, \"hits\": {}, \"adoptions\": {}, \
         \"bailouts\": {}, \"inserts\": {}}}}}",
        WorkloadKind::Kaldi.name(),
        churn_off.fps,
        churn_on.fps,
        churn_on.fps / churn_off.fps,
        churn_on.signature.lookups,
        churn_on.signature.hits,
        churn_on.signature.adoptions,
        churn_on.signature.bailouts,
        churn_on.signature.inserts,
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path} ({} configurations)", rows.len());
    ExitCode::SUCCESS
}

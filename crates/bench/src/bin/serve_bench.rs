//! Serving-throughput benchmark: a [`StreamServer`] multiplexing 1/8/64/256
//! streams over one shared [`CompiledModel`], written to `BENCH_serve.json`.
//!
//! Each configuration serves N offset copies of a generated input stream
//! (same per-stream frame-to-frame similarity, no two streams identical at
//! the same step). Streams are warmed past calibration first, then the
//! steady-state submit → tick → drain cycle is timed; the aggregate
//! frames/sec and the submit-to-completion latency quantiles from the
//! server's own histogram are reported per stream count. Every repeat runs
//! the same cycle on fresh frames and the per-config row reports the
//! **min/median/max** frames/sec across repeats — `frames_per_sec` stays
//! the max (runtime capability; single-core hosts schedule-jitter the
//! slower repeats) while the min/median spread quantifies host noise.
//!
//! Per-frame kernel work is identical at every stream count, so aggregate
//! throughput measures how well the dispatch loop amortizes its per-tick
//! overhead: more streams per tick means fewer ticks per frame, and
//! frames/sec must not *drop* as streams grow from 1 to 8.
//!
//! A second, **churn** scenario measures the cross-stream signature cache:
//! a bounded session pool cycles through generations of short-lived
//! streams whose frames are tiny jitters of one shared base walk (think
//! many near-identical dashcam/ASR clients connecting and disconnecting).
//! With the cache off every new stream pays its full cold start
//! (calibration plus a from-scratch frame); with the cache on,
//! cold-starting streams adopt baselines published by earlier generations
//! and pay only the correction. The same churn runs with the cache off and
//! on, and the aggregate fps pair plus the cache counters land in the
//! `churn` section of the JSON.
//!
//! A third, **sharded** scenario drives the same closed-loop cycle through
//! a [`ShardedServer`] with [`default_shards`] shards and background
//! [`ShardWorkers`] threads — the multi-core serving path. Its rows land
//! in the `sharded` section, and the 64-stream row's throughput is the
//! measured capacity that anchors the open-loop sweep.
//!
//! The **open-loop** sweep submits frames at fixed offered arrival rates
//! (fractions of measured capacity) without waiting for completions — the
//! tail-latency methodology for serving systems: closed-loop drivers hide
//! queueing delay because a slow frame stalls its own submitter. Each
//! point reports achieved frames/sec, p50/p99/p999 submit-to-completion
//! latency, and the queue-full / shed / deadline-shed / expired counts.
//! The overload point (>1× capacity) submits with a deadline so the
//! projected-miss admission path sheds at ingress instead of letting the
//! queue collapse. Points land in the `open_loop` section.
//!
//! `serve_bench --perf-smoke` times only the 1- and 8-stream Kaldi pair and
//! exits nonzero when 8-stream aggregate throughput falls below
//! `REUSE_SERVE_MIN_SCALING` × 1-stream throughput (default 0.9, tunable
//! for noisy hosts like `REUSE_BLOCKED_MIN_SPEEDUP`) or below the absolute
//! `REUSE_SERVE_MIN_FPS` floor (default 1.0 frames/sec).
//!
//! `serve_bench --open-loop --perf-smoke` times the sharded 1-vs-64-stream
//! Kaldi pair with worker threads and enforces the host-aware
//! `REUSE_SERVE_MIN_SHARD_SCALING` floor (default `min(2.5, 0.9 ×
//! hardware_threads)` — a 1-core CI host cannot scale, a many-core host
//! must), then runs one open-loop point at half capacity and enforces the
//! `REUSE_SERVE_MAX_P99_NS` tail floor (default 50 ms).
//!
//! `serve_bench --validate [file]` checks an existing `BENCH_serve.json`
//! for every required key (schema drift guard for CI), including the
//! churn, sharded, and open-loop sections and the per-config fps spread,
//! and enforces the optional `REUSE_SERVE_MIN_CACHE_SPEEDUP` floor on the
//! recorded cache speedup.
//!
//! Usage: `cargo run --release -p reuse-bench --bin serve_bench [out.json]`
//! (`REUSE_SCALE` selects the model scale, as everywhere else.)

use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use reuse_core::CompiledModel;
use reuse_serve::{
    default_shards, ServerConfig, ServerSnapshot, ShardWorkers, ShardedServer, StreamServer,
    SubmitOptions, SubmitResult,
};
use reuse_workloads::{Scale, Workload, WorkloadKind};

/// Frames submitted per stream between ticks: large enough that a tick's
/// fixed costs spread over real work, small enough to keep queues short.
const BURST: usize = 4;

/// Timed repeats per configuration (max frames/sec wins; min/median
/// recorded alongside).
const REPEATS: usize = 3;

/// Min/median/max aggregate throughput across the timed repeats.
#[derive(Clone, Copy)]
struct FpsSpread {
    min: f64,
    median: f64,
    max: f64,
}

impl FpsSpread {
    fn from_repeats(mut fps: Vec<f64>) -> FpsSpread {
        assert!(!fps.is_empty());
        fps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        FpsSpread {
            min: fps[0],
            median: fps[fps.len() / 2],
            max: fps[fps.len() - 1],
        }
    }
}

/// One stream-count configuration's measurement.
struct ServeRow {
    workload: &'static str,
    streams: usize,
    frames_per_stream: usize,
    fps: FpsSpread,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

/// Serves `n` streams of `measure` steady frames each (after warm-up) and
/// returns the [`FpsSpread`] over [`REPEATS`] aggregate-throughput runs
/// plus the latency quantiles across all timed frames.
fn bench_streams(w: &Workload, model: &Arc<CompiledModel>, n: usize, measure: usize) -> ServeRow {
    let mut server = StreamServer::new(
        Arc::clone(model),
        ServerConfig::default()
            .max_sessions(n)
            .queue_capacity(2 * BURST)
            .batch_max(BURST),
    )
    .expect("feed-forward serve config");
    // Warm-up (calibration + state init + pool priming) and the timed
    // repeats all consume fresh frames from one long walk per stream.
    let warm = 3usize;
    let total = warm + REPEATS * measure;
    let all = w.generate_frames(total + n - 1, 42);
    let mut sink = 0f32;

    let cycle = |server: &mut StreamServer, from: usize, count: usize, sink: &mut f32| {
        let mut t = from;
        let end = from + count;
        while t < end {
            let burst = BURST.min(end - t);
            for b in 0..burst {
                for s in 0..n {
                    match server.submit(s as u64, &all[s + t + b]).unwrap() {
                        SubmitResult::Accepted => {}
                        r => panic!("steady submit rejected: {r:?}"),
                    }
                }
            }
            server.tick().unwrap();
            for s in 0..n {
                server.drain_outputs(s as u64, |out| *sink += out[0]);
            }
            t += burst;
        }
    };

    cycle(&mut server, 0, warm, &mut sink);
    server.latency().clear();
    let mut fps = Vec::with_capacity(REPEATS);
    for r in 0..REPEATS {
        let start = Instant::now();
        cycle(&mut server, warm + r * measure, measure, &mut sink);
        let secs = start.elapsed().as_secs_f64();
        fps.push((n * measure) as f64 / secs);
    }
    black_box(sink);
    assert_eq!(server.frames_completed() as usize, total * n);
    ServeRow {
        workload: "",
        streams: n,
        frames_per_stream: measure,
        fps: FpsSpread::from_repeats(fps),
        p50_ns: server.latency().quantile_ns(0.50),
        p99_ns: server.latency().quantile_ns(0.99),
        max_ns: server.latency().max_ns(),
    }
}

/// Steady frames per stream: fewer at high stream counts so every
/// configuration does comparable total work.
fn frames_for(n: usize) -> usize {
    (512 / n).clamp(8, 512).div_ceil(BURST) * BURST
}

fn bench_workload(kind: WorkloadKind, scale: Scale, stream_counts: &[usize]) -> Vec<ServeRow> {
    let w = Workload::build(kind, scale);
    let model = Arc::new(CompiledModel::new(w.network(), w.reuse_config()));
    stream_counts
        .iter()
        .map(|&n| {
            let mut row = bench_streams(&w, &model, n, frames_for(n));
            row.workload = kind.name();
            eprintln!(
                "{:<10} {:>4} streams  {:>10.0} frames/s (min {:>10.0} med {:>10.0})  \
                 p50 {:>9} ns  p99 {:>9} ns  max {:>9} ns",
                row.workload,
                row.streams,
                row.fps.max,
                row.fps.min,
                row.fps.median,
                row.p50_ns,
                row.p99_ns,
                row.max_ns
            );
            row
        })
        .collect()
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One sharded closed-loop configuration's measurement (worker-driven).
struct ShardRow {
    streams: usize,
    shards: usize,
    frames_per_stream: usize,
    fps: FpsSpread,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
}

/// Drains every stream's outputs into `sink` (anti-DCE) and returns how
/// many completions were observed.
fn drain_all(server: &ShardedServer, n: usize, sink: &mut f32) -> usize {
    let mut got = 0usize;
    for s in 0..n {
        got += server.drain_outputs(s as u64, |out| *sink += out[0]);
    }
    got
}

/// Spins (yielding) until the sharded server has completed `target`
/// lifetime frames, draining outputs as they appear.
fn wait_completed(server: &ShardedServer, n: usize, target: u64, sink: &mut f32) {
    let give_up = Instant::now() + Duration::from_secs(60);
    while server.frames_completed() < target {
        drain_all(server, n, sink);
        assert!(
            Instant::now() < give_up,
            "sharded bench stalled: {}/{} frames completed",
            server.frames_completed(),
            target
        );
        std::thread::yield_now();
    }
    drain_all(server, n, sink);
}

/// Closed-loop throughput through a worker-driven [`ShardedServer`]: the
/// driver thread submits bursts (retrying queue-full) while per-shard
/// worker threads execute, so multi-core hosts overlap frame execution
/// across shards. Returns the repeat spread plus merged latency quantiles.
fn bench_sharded(
    w: &Workload,
    model: &Arc<CompiledModel>,
    n: usize,
    shards: usize,
    measure: usize,
) -> ShardRow {
    let server = Arc::new(
        ShardedServer::new(
            Arc::clone(model),
            ServerConfig::default()
                .max_sessions(n)
                .queue_capacity(2 * BURST)
                .batch_max(BURST),
            shards,
        )
        .expect("feed-forward serve config"),
    );
    let mut workers = ShardWorkers::start(Arc::clone(&server));
    let warm = 3usize;
    let total = warm + REPEATS * measure;
    let all = w.generate_frames(total + n - 1, 42);
    let mut sink = 0f32;

    let cycle = |from: usize, count: usize, sink: &mut f32| {
        let mut t = from;
        let end = from + count;
        while t < end {
            let burst = BURST.min(end - t);
            for b in 0..burst {
                for s in 0..n {
                    loop {
                        match server.submit(s as u64, &all[s + t + b]).unwrap() {
                            SubmitResult::Accepted => break,
                            SubmitResult::QueueFull => {
                                drain_all(&server, n, sink);
                                std::thread::yield_now();
                            }
                            r => panic!("sharded steady submit rejected: {r:?}"),
                        }
                    }
                }
            }
            drain_all(&server, n, sink);
            t += burst;
        }
    };

    cycle(0, warm, &mut sink);
    wait_completed(&server, n, (warm * n) as u64, &mut sink);
    server.clear_latency();
    let mut fps = Vec::with_capacity(REPEATS);
    for r in 0..REPEATS {
        let start = Instant::now();
        cycle(warm + r * measure, measure, &mut sink);
        wait_completed(
            &server,
            n,
            ((warm + (r + 1) * measure) * n) as u64,
            &mut sink,
        );
        let secs = start.elapsed().as_secs_f64();
        fps.push((n * measure) as f64 / secs);
    }
    black_box(sink);
    let latency = server.merged_latency();
    let row = ShardRow {
        streams: n,
        shards,
        frames_per_stream: measure,
        fps: FpsSpread::from_repeats(fps),
        p50_ns: latency.p50_ns(),
        p99_ns: latency.p99_ns(),
        p999_ns: latency.p999_ns(),
        max_ns: latency.max_ns(),
    };
    workers.stop();
    let errors = workers.take_errors();
    assert!(errors.is_empty(), "shard workers reported: {errors:?}");
    row
}

/// One open-loop offered-load point's measurement.
struct OpenRow {
    load_factor: f64,
    offered_fps: f64,
    achieved_fps: f64,
    deadline_us: u32,
    offered: u64,
    completed: u64,
    queue_full: u64,
    shed: u64,
    deadline_shed: u64,
    expired: u64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
}

/// Sleeps (coarsely) then yields (finely) until `due` past `start`.
fn pace_until(start: Instant, due: Duration) {
    loop {
        let now = start.elapsed();
        if now >= due {
            return;
        }
        let slack = due - now;
        if slack > Duration::from_micros(400) {
            std::thread::sleep(slack - Duration::from_micros(200));
        } else {
            // Yield instead of spinning so shard workers get the core on
            // single-core hosts.
            std::thread::yield_now();
        }
    }
}

/// One open-loop point's offered load: rate, frame budget, and the
/// per-frame deadline (0 = none).
struct OpenLoopSpec {
    load_factor: f64,
    offered_fps: f64,
    frames: usize,
    deadline_us: u32,
}

/// Submits frames at a fixed offered arrival rate across `n` streams of a
/// worker-driven [`ShardedServer`] without waiting for completions, then
/// drains the pipe and reports achieved throughput, tail latency, and the
/// rejection/shed/expiry counters. `spec.deadline_us > 0` attaches a
/// deadline to every frame (exercising projected-miss ingress shedding
/// under overload).
fn open_loop_point(
    w: &Workload,
    model: &Arc<CompiledModel>,
    n: usize,
    shards: usize,
    spec: OpenLoopSpec,
) -> OpenRow {
    let OpenLoopSpec {
        load_factor,
        offered_fps,
        frames: frames_total,
        deadline_us,
    } = spec;
    let server = Arc::new(
        ShardedServer::new(
            Arc::clone(model),
            ServerConfig::default()
                .max_sessions(n)
                .queue_capacity(4 * BURST)
                .batch_max(BURST),
            shards,
        )
        .expect("feed-forward serve config"),
    );
    let mut workers = ShardWorkers::start(Arc::clone(&server));
    let warm = 3usize;
    let steps = frames_total.div_ceil(n);
    let all = w.generate_frames(warm + steps + n - 1, 42);
    let mut sink = 0f32;

    // Closed-loop warm-up: calibrate every stream and seed each shard's
    // service-time EWMA so deadline projection is live from the first
    // timed frame.
    for t in 0..warm {
        for s in 0..n {
            loop {
                match server.submit(s as u64, &all[s + t]).unwrap() {
                    SubmitResult::Accepted => break,
                    SubmitResult::QueueFull => {
                        drain_all(&server, n, &mut sink);
                        std::thread::yield_now();
                    }
                    r => panic!("warm-up submit rejected: {r:?}"),
                }
            }
        }
    }
    wait_completed(&server, n, (warm * n) as u64, &mut sink);
    server.clear_latency();
    let base = server.snapshot();

    let interval = Duration::from_secs_f64(1.0 / offered_fps);
    let start = Instant::now();
    let mut offered = 0u64;
    let mut expired_seen = 0u64;
    'submit: for t in 0..steps {
        for s in 0..n {
            if offered as usize >= frames_total {
                break 'submit;
            }
            pace_until(start, interval.mul_f64(offered as f64));
            let mut opts = SubmitOptions::default().tagged(offered);
            if deadline_us > 0 {
                opts = opts.with_deadline(Duration::from_micros(u64::from(deadline_us)));
            }
            // Rejections (queue-full, shed, deadline-shed) are the point of
            // an open-loop driver: count them via the server's counters and
            // keep submitting at the offered rate.
            let _ = server
                .submit_with(s as u64, &all[s + warm + t], opts)
                .unwrap();
            offered += 1;
            if offered.is_multiple_of(64) {
                drain_all(&server, n, &mut sink);
                for s2 in 0..n {
                    expired_seen += server.drain_expired(s2 as u64, |_| {}) as u64;
                }
            }
        }
    }
    // Let the pipe drain: everything accepted either completes or expires.
    let give_up = Instant::now() + Duration::from_secs(60);
    while server.pending() > 0 && Instant::now() < give_up {
        drain_all(&server, n, &mut sink);
        std::thread::yield_now();
    }
    let elapsed = start.elapsed().as_secs_f64();
    drain_all(&server, n, &mut sink);
    for s in 0..n {
        expired_seen += server.drain_expired(s as u64, |_| {}) as u64;
    }
    black_box(sink);
    black_box(expired_seen);

    let snap = server.snapshot();
    let accepted = snap.frames_submitted() - base.frames_submitted();
    let completed = snap.frames_completed() - base.frames_completed();
    let queue_full = snap.rejected_queue_full() - base.rejected_queue_full();
    let shed = snap.shed() - base.shed();
    let deadline_shed = snap.deadline_shed() - base.deadline_shed();
    let expired = snap.expired() - base.expired();
    assert_eq!(
        offered,
        accepted + queue_full + shed + deadline_shed,
        "open-loop admission accounting must balance"
    );
    assert_eq!(
        accepted,
        completed + expired,
        "open-loop completion accounting must balance after drain"
    );
    let latency = server.merged_latency();
    let row = OpenRow {
        load_factor,
        offered_fps,
        achieved_fps: completed as f64 / elapsed,
        deadline_us,
        offered,
        completed,
        queue_full,
        shed,
        deadline_shed,
        expired,
        p50_ns: latency.p50_ns(),
        p99_ns: latency.p99_ns(),
        p999_ns: latency.p999_ns(),
        max_ns: latency.max_ns(),
    };
    workers.stop();
    let errors = workers.take_errors();
    assert!(errors.is_empty(), "shard workers reported: {errors:?}");
    row
}

/// Frames to offer at one open-loop point: about half a second of load,
/// bounded so slow scales stay quick and fast scales stay finite.
fn open_loop_frames(offered_fps: f64) -> usize {
    ((offered_fps * 0.5) as usize).clamp(200, 4000)
}

/// Runs the sharded closed-loop rows plus the open-loop sweep anchored at
/// the top row's measured capacity. Returns `(shard_rows, open_rows)`.
fn bench_sharded_and_open_loop(
    kind: WorkloadKind,
    scale: Scale,
) -> (Vec<ShardRow>, Vec<OpenRow>, usize) {
    let w = Workload::build(kind, scale);
    let model = Arc::new(CompiledModel::new(w.network(), w.reuse_config()));
    let shards = default_shards();
    let shard_rows: Vec<ShardRow> = [1usize, 64]
        .iter()
        .map(|&n| {
            let row = bench_sharded(&w, &model, n, shards, frames_for(n));
            eprintln!(
                "{:<10} {:>4} streams x {} shards  {:>10.0} frames/s (min {:>10.0} med {:>10.0})  \
                 p99 {:>9} ns  p999 {:>9} ns",
                kind.name(),
                row.streams,
                row.shards,
                row.fps.max,
                row.fps.min,
                row.fps.median,
                row.p99_ns,
                row.p999_ns
            );
            row
        })
        .collect();
    let capacity = shard_rows[1].fps.max;
    // Two under-capacity points map the latency/load curve; the overload
    // point exercises projected-miss shedding with a deadline derived from
    // the 0.9-load tail (4× its p99) — tight enough that an overloaded
    // queue projects past it, loose enough that a healthy queue never does.
    let factors = [0.5f64, 0.9, 1.4];
    let mut open_rows: Vec<OpenRow> = Vec::with_capacity(factors.len());
    for &factor in &factors {
        let deadline_us = if factor > 1.0 {
            let p99_at_09 = open_rows.last().map_or(0, |r| r.p99_ns);
            (((p99_at_09 * 4) / 1_000) as u32).clamp(500, 50_000)
        } else {
            0
        };
        let offered = capacity * factor;
        let row = open_loop_point(
            &w,
            &model,
            64,
            shards,
            OpenLoopSpec {
                load_factor: factor,
                offered_fps: offered,
                frames: open_loop_frames(offered),
                deadline_us,
            },
        );
        eprintln!(
            "{:<10} open-loop {:>4.2}x load  offered {:>10.0} fps  achieved {:>10.0} fps  \
             p99 {:>9} ns  p999 {:>9} ns  qfull {} shed {} dshed {} expired {}",
            kind.name(),
            row.load_factor,
            row.offered_fps,
            row.achieved_fps,
            row.p99_ns,
            row.p999_ns,
            row.queue_full,
            row.shed,
            row.deadline_shed,
            row.expired
        );
        open_rows.push(row);
    }
    (shard_rows, open_rows, shards)
}

/// Churn-scenario shape: a pool of [`CHURN_POOL`] live sessions cycles
/// through [`CHURN_GENERATIONS`] generations of short-lived streams, each
/// serving [`CHURN_LIFETIME`] frames before being LRU-evicted by the next
/// generation.
const CHURN_POOL: usize = 8;
const CHURN_GENERATIONS: usize = 96;
const CHURN_LIFETIME: usize = 2;

/// The churn measurement for one model (cache off or on).
struct ChurnRow {
    fps: f64,
    signature: reuse_core::SignatureStats,
}

/// Runs the generational churn against one model: every stream serves
/// [`CHURN_LIFETIME`] jittered copies of the same base walk, stream ids
/// grow monotonically so each generation LRU-evicts the previous one, and
/// the per-stream cache counters are harvested before eviction destroys
/// them. Best-of-[`REPEATS`] aggregate fps; counters from the last repeat.
fn bench_churn(w: &Workload, model: &Arc<CompiledModel>) -> ChurnRow {
    let base = w.generate_frames(CHURN_LIFETIME, 42);
    let mut scratch = vec![0f32; base[0].len()];
    let mut best_fps = 0f64;
    let mut signature = reuse_core::SignatureStats::default();
    for _ in 0..REPEATS {
        let mut server = StreamServer::new(
            Arc::clone(model),
            ServerConfig::default()
                .max_sessions(CHURN_POOL)
                .queue_capacity(CHURN_LIFETIME.max(2 * BURST))
                .batch_max(CHURN_LIFETIME),
        )
        .expect("feed-forward serve config");
        let mut acc = reuse_core::SignatureStats::default();
        let mut sink = 0f32;
        let start = Instant::now();
        for gen in 0..CHURN_GENERATIONS {
            for s in 0..CHURN_POOL {
                let id = (gen * CHURN_POOL + s) as u64;
                // Per-stream jitter: a tiny constant offset (≤ ~1e-3), so
                // streams are near-identical but never bit-equal.
                let eps = (id.wrapping_mul(2_654_435_761) % 997) as f32 * 1e-6;
                for frame in &base {
                    for (dst, src) in scratch.iter_mut().zip(frame.iter()) {
                        *dst = src + eps;
                    }
                    match server.submit(id, &scratch).unwrap() {
                        SubmitResult::Accepted => {}
                        r => panic!("churn submit rejected: {r:?}"),
                    }
                }
            }
            while server.ready_units() > 0 {
                server.tick().unwrap();
            }
            for s in 0..CHURN_POOL {
                let id = (gen * CHURN_POOL + s) as u64;
                server.drain_outputs(id, |out| sink += out[0]);
                if let Some(sess) = server.session(id) {
                    let st = sess.signature_stats();
                    acc.lookups += st.lookups;
                    acc.hits += st.hits;
                    acc.adoptions += st.adoptions;
                    acc.bailouts += st.bailouts;
                    acc.inserts += st.inserts;
                }
            }
        }
        let secs = start.elapsed().as_secs_f64();
        black_box(sink);
        let served = (CHURN_GENERATIONS * CHURN_POOL * CHURN_LIFETIME) as f64;
        best_fps = best_fps.max(served / secs);
        signature = acc;
    }
    ChurnRow {
        fps: best_fps,
        signature,
    }
}

/// Runs the churn scenario with the signature cache off and on over the
/// same workload and returns `(off, on)`.
fn bench_churn_pair(kind: WorkloadKind, scale: Scale) -> (ChurnRow, ChurnRow) {
    let w = Workload::build(kind, scale);
    let off_model = Arc::new(CompiledModel::new(w.network(), w.reuse_config()));
    let on_config = w.reuse_config().clone().signature_cache(true);
    let on_model = Arc::new(CompiledModel::new(w.network(), &on_config));
    let off = bench_churn(&w, &off_model);
    let on = bench_churn(&w, &on_model);
    eprintln!(
        "{:<10} churn: {} gens x {} streams x {} frames  cache-off {:>8.0} frames/s  \
         cache-on {:>8.0} frames/s  speedup {:.2}x  ({} adoptions, {} bailouts)",
        kind.name(),
        CHURN_GENERATIONS,
        CHURN_POOL,
        CHURN_LIFETIME,
        off.fps,
        on.fps,
        on.fps / off.fps,
        on.signature.adoptions,
        on.signature.bailouts,
    );
    (off, on)
}

/// Schema check for an existing `BENCH_serve.json`: every required key
/// must be present (CI guard against silent drift), and the recorded
/// churn speedup must clear the `REUSE_SERVE_MIN_CACHE_SPEEDUP` floor
/// (default 1.0, i.e. presence-only).
/// Empty-histogram contract check: an idle shard (no frames ever
/// submitted) must report an all-zero latency block through the merged
/// sharded snapshot, every per-shard snapshot, and the snapshot JSON.
fn validate_idle_shard() -> Result<(), String> {
    let w = Workload::build(WorkloadKind::Kaldi, Scale::Tiny);
    let model = Arc::new(CompiledModel::new(w.network(), w.reuse_config()));
    let server = ShardedServer::new(model, ServerConfig::default(), 2)
        .map_err(|e| format!("idle shard construction failed: {e}"))?;
    let snap = server.snapshot();
    if snap.latency_count != 0
        || snap.p50_ns != 0
        || snap.p99_ns != 0
        || snap.p999_ns != 0
        || snap.max_ns != 0
    {
        return Err(format!(
            "idle sharded snapshot not all-zero: count {} p50 {} p99 {} p999 {} max {}",
            snap.latency_count, snap.p50_ns, snap.p99_ns, snap.p999_ns, snap.max_ns
        ));
    }
    for (i, shard) in snap.shards.iter().enumerate() {
        let zero_block = "\"latency_ns\": {\"count\": 0, \"p50\": 0, \"p99\": 0, \"p999\": 0, \
                          \"max\": 0}";
        if shard.latency_count != 0 || !shard.to_json().contains(zero_block) {
            return Err(format!("idle shard {i} latency block is not all-zero"));
        }
    }
    Ok(())
}

fn validate(path: &str) -> ExitCode {
    if let Err(e) = validate_idle_shard() {
        eprintln!("validate: {e}");
        return ExitCode::FAILURE;
    }
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    const REQUIRED: &[&str] = &[
        "\"bench\": \"serve_bench\"",
        "\"scale\":",
        "\"burst\":",
        "\"repeats\":",
        "\"policy\":",
        "\"policy_layers\":",
        "\"step_scale\":",
        "\"configs\":",
        "\"workload\":",
        "\"streams\":",
        "\"frames_per_stream\":",
        "\"frames_per_sec\":",
        "\"frames_per_sec_min\":",
        "\"frames_per_sec_median\":",
        "\"latency_p50_ns\":",
        "\"latency_p99_ns\":",
        "\"latency_max_ns\":",
        "\"sharded\":",
        "\"shards\":",
        "\"latency_p999_ns\":",
        "\"open_loop\":",
        "\"points\":",
        "\"load_factor\":",
        "\"offered_fps\":",
        "\"achieved_fps\":",
        "\"deadline_us\":",
        "\"offered_frames\":",
        "\"completed\":",
        "\"queue_full\":",
        "\"shed\":",
        "\"deadline_shed\":",
        "\"expired\":",
        "\"churn\":",
        "\"pool\":",
        "\"generations\":",
        "\"cache_off_fps\":",
        "\"cache_on_fps\":",
        "\"speedup\":",
        "\"signature_cache\":",
        "\"lookups\":",
        "\"hits\":",
        "\"adoptions\":",
        "\"bailouts\":",
        "\"inserts\":",
    ];
    let missing: Vec<&str> = REQUIRED
        .iter()
        .filter(|k| !body.contains(**k))
        .copied()
        .collect();
    if !missing.is_empty() {
        eprintln!("validate: {path} is missing keys: {missing:?}");
        return ExitCode::FAILURE;
    }
    if body.matches("\"frames_per_sec\":").count() == 0 {
        eprintln!("validate: {path} has no throughput rows");
        return ExitCode::FAILURE;
    }
    if body.matches("\"load_factor\":").count() < 2 {
        eprintln!("validate: {path} has fewer than two open-loop load points");
        return ExitCode::FAILURE;
    }
    let speedup = body
        .split("\"speedup\": ")
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| c == ',' || c == '}' || c.is_whitespace())
                .next()
                .and_then(|v| v.parse::<f64>().ok())
        })
        .unwrap_or(f64::NAN);
    let floor = env_f64("REUSE_SERVE_MIN_CACHE_SPEEDUP", 1.0);
    if speedup.is_nan() || speedup < floor {
        eprintln!("validate: churn speedup {speedup} is below the {floor:.2}x floor");
        return ExitCode::FAILURE;
    }
    eprintln!("validate: {path} ok (churn speedup {speedup:.2}x)");
    ExitCode::SUCCESS
}

/// Times the 1-vs-8-stream Kaldi pair and enforces the scaling and
/// absolute-throughput floors.
fn perf_smoke(scale: Scale) -> ExitCode {
    let min_scaling = env_f64("REUSE_SERVE_MIN_SCALING", 0.9);
    let min_fps = env_f64("REUSE_SERVE_MIN_FPS", 1.0);
    let rows = bench_workload(WorkloadKind::Kaldi, scale, &[1, 8]);
    let (one, eight) = (&rows[0], &rows[1]);
    let scaling = eight.fps.max / one.fps.max;
    eprintln!(
        "serve smoke: 1-stream {:.0} frames/s, 8-stream {:.0} frames/s, \
         scaling {scaling:.3}x (floor {min_scaling:.3}x), fps floor {min_fps:.1}",
        one.fps.max, eight.fps.max
    );
    if eight.fps.max < min_fps {
        eprintln!("8-stream throughput is below the {min_fps:.1} frames/s floor");
        return ExitCode::FAILURE;
    }
    if scaling < min_scaling {
        eprintln!(
            "8-stream aggregate throughput lost more than the {min_scaling:.3}x floor allows"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Times the sharded 1-vs-64-stream Kaldi pair with worker threads, then
/// one open-loop point at half capacity, and enforces the host-aware
/// shard-scaling floor plus the p99 tail floor.
fn perf_smoke_open_loop(scale: Scale) -> ExitCode {
    let threads = reuse_tensor::hardware_threads() as f64;
    // A 1-core CI host cannot overlap shard execution — the floor degrades
    // to "don't lose throughput"; a many-core host must actually scale.
    let min_scaling = env_f64("REUSE_SERVE_MIN_SHARD_SCALING", (0.9 * threads).min(2.5));
    let max_p99_ns = env_f64("REUSE_SERVE_MAX_P99_NS", 50_000_000.0);
    let w = Workload::build(WorkloadKind::Kaldi, scale);
    let model = Arc::new(CompiledModel::new(w.network(), w.reuse_config()));
    let shards = default_shards();
    let one = bench_sharded(&w, &model, 1, shards, frames_for(1));
    let many = bench_sharded(&w, &model, 64, shards, frames_for(64));
    let scaling = many.fps.max / one.fps.max;
    eprintln!(
        "shard smoke ({} shards, {} threads): 1-stream {:.0} frames/s, 64-stream {:.0} frames/s, \
         scaling {scaling:.3}x (floor {min_scaling:.3}x)",
        shards, threads as usize, one.fps.max, many.fps.max
    );
    if scaling < min_scaling {
        eprintln!("64-stream sharded throughput is below the {min_scaling:.3}x scaling floor");
        return ExitCode::FAILURE;
    }
    let offered = many.fps.max * 0.5;
    let point = open_loop_point(
        &w,
        &model,
        64,
        shards,
        OpenLoopSpec {
            load_factor: 0.5,
            offered_fps: offered,
            frames: open_loop_frames(offered).min(1200),
            deadline_us: 0,
        },
    );
    eprintln!(
        "open-loop smoke: offered {:.0} fps, achieved {:.0} fps, p99 {} ns (ceiling {:.0} ns)",
        point.offered_fps, point.achieved_fps, point.p99_ns, max_p99_ns
    );
    if point.p99_ns as f64 > max_p99_ns {
        eprintln!("open-loop p99 at half capacity exceeds the {max_p99_ns:.0} ns ceiling");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Serves a short two-stream burst and returns the server's snapshot, so
/// the JSON header can mirror the `policy`/`policy_layers` block that
/// [`ServerSnapshot::to_json`] reports in production — live step sizes and
/// controller counters, not just the compiled spec.
fn policy_probe(kind: WorkloadKind, scale: Scale) -> ServerSnapshot {
    let w = Workload::build(kind, scale);
    let model = Arc::new(CompiledModel::new(w.network(), w.reuse_config()));
    let mut server = StreamServer::new(model, ServerConfig::default().max_sessions(2))
        .expect("feed-forward serve config");
    let frames = w.generate_frames(9, 7);
    let mut sink = 0f32;
    for frame in &frames {
        for s in 0..2u64 {
            match server.submit(s, frame).unwrap() {
                SubmitResult::Accepted => {}
                r => panic!("policy probe submit rejected: {r:?}"),
            }
        }
        server.tick().unwrap();
        for s in 0..2u64 {
            server.drain_outputs(s, |out| sink += out[0]);
        }
    }
    black_box(sink);
    server.snapshot()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut open_loop = false;
    let mut smoke = false;
    let mut validate_mode = false;
    let mut positional: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--open-loop" => open_loop = true,
            "--perf-smoke" => smoke = true,
            "--validate" => validate_mode = true,
            flag if flag.starts_with("--") => {
                eprintln!(
                    "unknown flag {flag}\nusage: serve_bench [--open-loop] [--perf-smoke] \
                     [--validate [file]] [out.json]"
                );
                return ExitCode::FAILURE;
            }
            _ => positional.push(a.clone()),
        }
    }
    let scale = Scale::from_env();
    if validate_mode {
        let path = positional
            .first()
            .cloned()
            .unwrap_or_else(|| "BENCH_serve.json".to_string());
        return validate(&path);
    }
    if smoke {
        return if open_loop {
            perf_smoke_open_loop(scale)
        } else {
            perf_smoke(scale)
        };
    }
    let out_path = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    // Kaldi covers the full 1→256 sweep (cheap frames stress the dispatch
    // loop hardest); AutoPilot adds a conv workload at the low counts.
    let mut rows = bench_workload(WorkloadKind::Kaldi, scale, &[1, 8, 64, 256]);
    rows.extend(bench_workload(WorkloadKind::AutoPilot, scale, &[1, 8]));
    let (shard_rows, open_rows, shards) = bench_sharded_and_open_loop(WorkloadKind::Kaldi, scale);
    let (churn_off, churn_on) = bench_churn_pair(WorkloadKind::Kaldi, scale);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_bench\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"burst\": {BURST},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    // Policy provenance: which reuse policy served these rows, and the
    // per-layer operating point a live server reports for it.
    let probe = policy_probe(WorkloadKind::Kaldi, scale);
    let _ = writeln!(json, "  \"policy\": \"{}\",", probe.policy);
    json.push_str("  \"policy_layers\": [\n");
    for (k, p) in probe.policy_layers.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {}{}",
            p.to_json(),
            if k + 1 < probe.policy_layers.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"configs\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"streams\": {}, \"frames_per_stream\": {}, \
             \"frames_per_sec\": {:.1}, \"frames_per_sec_min\": {:.1}, \
             \"frames_per_sec_median\": {:.1}, \"latency_p50_ns\": {}, \"latency_p99_ns\": {}, \
             \"latency_max_ns\": {}}}{}",
            r.workload,
            r.streams,
            r.frames_per_stream,
            r.fps.max,
            r.fps.min,
            r.fps.median,
            r.p50_ns,
            r.p99_ns,
            r.max_ns,
            if k + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"sharded\": {{\"workload\": \"{}\", \"shards\": {shards}, \"configs\": [",
        WorkloadKind::Kaldi.name()
    );
    for (k, r) in shard_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"streams\": {}, \"frames_per_stream\": {}, \"frames_per_sec\": {:.1}, \
             \"frames_per_sec_min\": {:.1}, \"frames_per_sec_median\": {:.1}, \
             \"latency_p50_ns\": {}, \"latency_p99_ns\": {}, \"latency_p999_ns\": {}, \
             \"latency_max_ns\": {}}}{}",
            r.streams,
            r.frames_per_stream,
            r.fps.max,
            r.fps.min,
            r.fps.median,
            r.p50_ns,
            r.p99_ns,
            r.p999_ns,
            r.max_ns,
            if k + 1 < shard_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]},\n");
    let _ = writeln!(
        json,
        "  \"open_loop\": {{\"workload\": \"{}\", \"streams\": 64, \"shards\": {shards}, \
         \"points\": [",
        WorkloadKind::Kaldi.name()
    );
    for (k, r) in open_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"load_factor\": {:.2}, \"offered_fps\": {:.1}, \"achieved_fps\": {:.1}, \
             \"deadline_us\": {}, \"offered_frames\": {}, \"completed\": {}, \
             \"queue_full\": {}, \"shed\": {}, \"deadline_shed\": {}, \"expired\": {}, \
             \"latency_p50_ns\": {}, \"latency_p99_ns\": {}, \"latency_p999_ns\": {}, \
             \"latency_max_ns\": {}}}{}",
            r.load_factor,
            r.offered_fps,
            r.achieved_fps,
            r.deadline_us,
            r.offered,
            r.completed,
            r.queue_full,
            r.shed,
            r.deadline_shed,
            r.expired,
            r.p50_ns,
            r.p99_ns,
            r.p999_ns,
            r.max_ns,
            if k + 1 < open_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]},\n");
    let _ = writeln!(
        json,
        "  \"churn\": {{\"workload\": \"{}\", \"pool\": {CHURN_POOL}, \
         \"generations\": {CHURN_GENERATIONS}, \"frames_per_stream\": {CHURN_LIFETIME}, \
         \"cache_off_fps\": {:.1}, \"cache_on_fps\": {:.1}, \"speedup\": {:.3}, \
         \"signature_cache\": {{\"lookups\": {}, \"hits\": {}, \"adoptions\": {}, \
         \"bailouts\": {}, \"inserts\": {}}}}}",
        WorkloadKind::Kaldi.name(),
        churn_off.fps,
        churn_on.fps,
        churn_on.fps / churn_off.fps,
        churn_on.signature.lookups,
        churn_on.signature.hits,
        churn_on.signature.adoptions,
        churn_on.signature.bailouts,
        churn_on.signature.inserts,
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    eprintln!(
        "wrote {out_path} ({} configurations, {} sharded rows, {} open-loop points)",
        rows.len(),
        shard_rows.len(),
        open_rows.len()
    );
    ExitCode::SUCCESS
}

//! Serving-throughput benchmark: a [`StreamServer`] multiplexing 1/8/64/256
//! streams over one shared [`CompiledModel`], written to `BENCH_serve.json`.
//!
//! Each configuration serves N offset copies of a generated input stream
//! (same per-stream frame-to-frame similarity, no two streams identical at
//! the same step). Streams are warmed past calibration first, then the
//! steady-state submit → tick → drain cycle is timed; the aggregate
//! frames/sec and the submit-to-completion latency quantiles from the
//! server's own histogram are reported per stream count. Every repeat runs
//! the same cycle on fresh frames and the **max** frames/sec is kept —
//! single-core hosts schedule-jitter the slower repeats, and the question
//! here is runtime capability, not host noise.
//!
//! Per-frame kernel work is identical at every stream count, so aggregate
//! throughput measures how well the dispatch loop amortizes its per-tick
//! overhead: more streams per tick means fewer ticks per frame, and
//! frames/sec must not *drop* as streams grow from 1 to 8.
//!
//! `serve_bench --perf-smoke` times only the 1- and 8-stream Kaldi pair and
//! exits nonzero when 8-stream aggregate throughput falls below
//! `REUSE_SERVE_MIN_SCALING` × 1-stream throughput (default 0.9, tunable
//! for noisy hosts like `REUSE_BLOCKED_MIN_SPEEDUP`) or below the absolute
//! `REUSE_SERVE_MIN_FPS` floor (default 1.0 frames/sec).
//!
//! Usage: `cargo run --release -p reuse-bench --bin serve_bench [out.json]`
//! (`REUSE_SCALE` selects the model scale, as everywhere else.)

use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use reuse_core::CompiledModel;
use reuse_serve::{ServerConfig, StreamServer, SubmitResult};
use reuse_workloads::{Scale, Workload, WorkloadKind};

/// Frames submitted per stream between ticks: large enough that a tick's
/// fixed costs spread over real work, small enough to keep queues short.
const BURST: usize = 4;

/// Timed repeats per configuration (max frames/sec wins).
const REPEATS: usize = 3;

/// One stream-count configuration's measurement.
struct ServeRow {
    workload: &'static str,
    streams: usize,
    frames_per_stream: usize,
    fps: f64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

/// Serves `n` streams of `measure` steady frames each (after warm-up) and
/// returns the best-of-[`REPEATS`] aggregate throughput plus the latency
/// quantiles across all timed frames.
fn bench_streams(w: &Workload, model: &Arc<CompiledModel>, n: usize, measure: usize) -> ServeRow {
    let mut server = StreamServer::new(
        Arc::clone(model),
        ServerConfig::default()
            .max_sessions(n)
            .queue_capacity(2 * BURST)
            .batch_max(BURST),
    )
    .expect("feed-forward serve config");
    // Warm-up (calibration + state init + pool priming) and the timed
    // repeats all consume fresh frames from one long walk per stream.
    let warm = 3usize;
    let total = warm + REPEATS * measure;
    let all = w.generate_frames(total + n - 1, 42);
    let mut sink = 0f32;

    let cycle = |server: &mut StreamServer, from: usize, count: usize, sink: &mut f32| {
        let mut t = from;
        let end = from + count;
        while t < end {
            let burst = BURST.min(end - t);
            for b in 0..burst {
                for s in 0..n {
                    match server.submit(s as u64, &all[s + t + b]).unwrap() {
                        SubmitResult::Accepted => {}
                        r => panic!("steady submit rejected: {r:?}"),
                    }
                }
            }
            server.tick().unwrap();
            for s in 0..n {
                server.drain_outputs(s as u64, |out| *sink += out[0]);
            }
            t += burst;
        }
    };

    cycle(&mut server, 0, warm, &mut sink);
    server.latency().clear();
    let mut best_fps = 0f64;
    for r in 0..REPEATS {
        let start = Instant::now();
        cycle(&mut server, warm + r * measure, measure, &mut sink);
        let secs = start.elapsed().as_secs_f64();
        best_fps = best_fps.max((n * measure) as f64 / secs);
    }
    black_box(sink);
    assert_eq!(server.frames_completed() as usize, total * n);
    ServeRow {
        workload: "",
        streams: n,
        frames_per_stream: measure,
        fps: best_fps,
        p50_ns: server.latency().quantile_ns(0.50),
        p99_ns: server.latency().quantile_ns(0.99),
        max_ns: server.latency().max_ns(),
    }
}

/// Steady frames per stream: fewer at high stream counts so every
/// configuration does comparable total work.
fn frames_for(n: usize) -> usize {
    (512 / n).clamp(8, 512).div_ceil(BURST) * BURST
}

fn bench_workload(kind: WorkloadKind, scale: Scale, stream_counts: &[usize]) -> Vec<ServeRow> {
    let w = Workload::build(kind, scale);
    let model = Arc::new(CompiledModel::new(w.network(), w.reuse_config()));
    stream_counts
        .iter()
        .map(|&n| {
            let mut row = bench_streams(&w, &model, n, frames_for(n));
            row.workload = kind.name();
            eprintln!(
                "{:<10} {:>4} streams  {:>10.0} frames/s  p50 {:>9} ns  p99 {:>9} ns  max {:>9} ns",
                row.workload, row.streams, row.fps, row.p50_ns, row.p99_ns, row.max_ns
            );
            row
        })
        .collect()
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Times the 1-vs-8-stream Kaldi pair and enforces the scaling and
/// absolute-throughput floors.
fn perf_smoke(scale: Scale) -> ExitCode {
    let min_scaling = env_f64("REUSE_SERVE_MIN_SCALING", 0.9);
    let min_fps = env_f64("REUSE_SERVE_MIN_FPS", 1.0);
    let rows = bench_workload(WorkloadKind::Kaldi, scale, &[1, 8]);
    let (one, eight) = (&rows[0], &rows[1]);
    let scaling = eight.fps / one.fps;
    eprintln!(
        "serve smoke: 1-stream {:.0} frames/s, 8-stream {:.0} frames/s, \
         scaling {scaling:.3}x (floor {min_scaling:.3}x), fps floor {min_fps:.1}",
        one.fps, eight.fps
    );
    if eight.fps < min_fps {
        eprintln!("8-stream throughput is below the {min_fps:.1} frames/s floor");
        return ExitCode::FAILURE;
    }
    if scaling < min_scaling {
        eprintln!(
            "8-stream aggregate throughput lost more than the {min_scaling:.3}x floor allows"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let scale = Scale::from_env();
    if arg.as_deref() == Some("--perf-smoke") {
        return perf_smoke(scale);
    }
    let out_path = arg.unwrap_or_else(|| "BENCH_serve.json".to_string());

    // Kaldi covers the full 1→256 sweep (cheap frames stress the dispatch
    // loop hardest); AutoPilot adds a conv workload at the low counts.
    let mut rows = bench_workload(WorkloadKind::Kaldi, scale, &[1, 8, 64, 256]);
    rows.extend(bench_workload(WorkloadKind::AutoPilot, scale, &[1, 8]));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_bench\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"burst\": {BURST},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    json.push_str("  \"configs\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"streams\": {}, \"frames_per_stream\": {}, \
             \"frames_per_sec\": {:.1}, \"latency_p50_ns\": {}, \"latency_p99_ns\": {}, \
             \"latency_max_ns\": {}}}{}",
            r.workload,
            r.streams,
            r.frames_per_stream,
            r.fps,
            r.p50_ns,
            r.p99_ns,
            r.max_ns,
            if k + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path} ({} configurations)", rows.len());
    ExitCode::SUCCESS
}

//! Ablation studies: cluster count (paper Section III), tile count,
//! calibration length, and the overhead floor on uncorrelated inputs.

use reuse_bench::ablations;
use reuse_workloads::{Scale, WorkloadKind};

fn main() {
    let scale = Scale::from_env();
    let sep = "=".repeat(78);
    for kind in [WorkloadKind::Kaldi, WorkloadKind::AutoPilot] {
        println!("{sep}");
        println!("{}", ablations::cluster_sweep(kind, scale));
    }
    println!("{sep}");
    println!("{}", ablations::tile_sweep(WorkloadKind::AutoPilot, scale));
    println!("{sep}");
    println!(
        "{}",
        ablations::calibration_sweep(WorkloadKind::Kaldi, scale)
    );
    println!("{sep}");
    println!(
        "{}",
        ablations::replay_cluster_sweep(WorkloadKind::Kaldi, scale)
    );
    println!("{sep}");
    println!("{}", ablations::block_size_ablation());
    println!("{sep}");
    println!("{}", ablations::quantizer_comparison(scale));
    println!("{sep}");
    println!("{}", ablations::drift_study(scale));
    println!("{sep}");
    println!("{}", ablations::overhead_stress(scale));
}

//! Regenerates paper Fig. 9: speedups over the baseline accelerator.

fn main() {
    print!(
        "{}",
        reuse_bench::experiments::fig9(reuse_workloads::Scale::from_env())
    );
}

//! Regenerates paper Fig. 4: relative input differences, Kaldi FC5/FC6.

fn main() {
    let scale = reuse_workloads::Scale::from_env();
    let frames = std::env::var("REUSE_EXECUTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    print!("{}", reuse_bench::experiments::fig4(scale, frames));
}

//! Small plain-text table/bar rendering helpers shared by the experiment
//! binaries.

/// Renders a horizontal ASCII bar of `value` within `[0, max]`, `width`
/// characters wide.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Formats a fraction as a percentage with no decimals (`0.63` → `"63%"`).
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct2(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats bytes as a human-readable quantity (KB/MB).
pub fn human_bytes(b: u64) -> String {
    if b >= 10 << 20 {
        format!("{:.0} MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.0} KB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Formats seconds with an appropriate unit.
pub fn human_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} us", s * 1e6)
    }
}

/// Formats joules with an appropriate unit.
pub fn human_joules(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.2} J")
    } else if j >= 1e-3 {
        format!("{:.2} mJ", j * 1e3)
    } else if j >= 1e-6 {
        format!("{:.2} uJ", j * 1e6)
    } else {
        format!("{:.2} nJ", j * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.5, 1.0, 10), "#####.....");
        assert_eq!(bar(0.0, 1.0, 4), "....");
        assert_eq!(bar(2.0, 1.0, 4), "####"); // clamped
        assert_eq!(bar(1.0, 0.0, 4), "");
    }

    #[test]
    fn formats() {
        assert_eq!(pct(0.634), "63%");
        assert_eq!(pct2(0.0047), "0.47%");
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(66 * 1024), "66 KB");
        assert_eq!(human_bytes(18 << 20), "18 MB");
        assert_eq!(human_seconds(0.0021), "2.10 ms");
        assert_eq!(human_joules(1.5e-3), "1.50 mJ");
        assert_eq!(human_joules(0.5e-3), "500.00 uJ");
    }
}

//! Experiment harness for the `reuse-dnn` reproduction.
//!
//! One binary per paper table/figure (see DESIGN.md's experiment index):
//!
//! | binary              | paper artifact |
//! |---------------------|----------------|
//! | `table1`            | Table I — per-layer computation reuse + accuracy proxy |
//! | `fig4`              | Fig. 4 — relative input difference over a Kaldi utterance |
//! | `fig5`              | Fig. 5 — input similarity & computation reuse per DNN |
//! | `fig9`              | Fig. 9 — accelerator speedup per DNN |
//! | `fig10`             | Fig. 10 — normalized energy per DNN |
//! | `fig11`             | Fig. 11 — energy breakdown per component |
//! | `table2`            | Table II — accelerator parameters |
//! | `table3`            | Table III — memory overheads |
//! | `fig12`             | Fig. 12 — comparison with CPU (i7-7700K) and GPU (GTX 1080) |
//! | `reduced_precision` | Section VI-A — 8-bit fixed-point accelerator |
//!
//! All binaries share [`measure`]: it runs each workload through the reuse
//! engine once and caches the per-layer metrics and activity traces on
//! disk, so regenerating every figure costs one engine run per workload.
//! Set `REUSE_SCALE=full|small|tiny` to choose the model scale and
//! `REUSE_EXECUTIONS=N` to override the number of DNN executions measured.

pub mod ablations;
pub mod cache;
pub mod csv;
pub mod experiments;
pub mod measure;
pub mod table;

pub use measure::{measure_workload, parallel_from_env, LayerSummary, Measurement};

//! The per-table/figure experiments, as functions returning report text so
//! both the individual binaries and the `all` binary can render them.

use reuse_accel::{area, memory, AcceleratorConfig, ReferencePlatform, SimReport, Simulator};
use reuse_core::ReuseConfig;
use reuse_workloads::{Scale, Workload, WorkloadKind};

use crate::cache::cached_measurement;
use crate::measure::{executions_from_env, measure_with_config, Measurement};
use crate::table::{bar, human_bytes, human_joules, human_seconds, pct, pct2};

/// The default seed shared by every experiment run.
pub const SEED: u64 = 42;

/// Collects (from cache if possible) the measurements of all four DNNs.
pub fn all_measurements(scale: Scale) -> Vec<Measurement> {
    WorkloadKind::ALL
        .into_iter()
        .map(|kind| cached_measurement(kind, scale, executions_from_env(kind, scale), SEED))
        .collect()
}

/// Simulates baseline and reuse accelerators for one measurement.
pub fn simulate(m: &Measurement) -> (SimReport, SimReport) {
    let sim = Simulator::new(AcceleratorConfig::paper());
    let input = m.sim_input();
    (sim.simulate_baseline(&input), sim.simulate_reuse(&input))
}

fn geo_mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

/// Table I: per-layer computation reuse plus the accuracy proxy.
pub fn table1(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "TABLE I — DNNs and per-layer computation reuse (scale: {scale})\n\
         accuracy proxy: output agreement with the fp32 network / mean relative output error\n\n"
    ));
    for m in all_measurements(scale) {
        out.push_str(&format!(
            "{} — model {}, {} executions; agreement {} (rel. err {})\n",
            m.kind.name(),
            human_bytes(m.model_bytes),
            m.executions,
            pct2(m.agreement.ratio()),
            pct2(m.mean_relative_error),
        ));
        out.push_str(&format!(
            "  {:<10} {:>10} {:>10} {:>9} {:>12} {:>10}\n",
            "layer", "in dim", "out dim", "enabled", "comp. reuse", "hit rate"
        ));
        for l in &m.layers {
            let (reuse, hit) = if l.enabled {
                (pct(l.computation_reuse), pct(l.hit_rate))
            } else {
                ("-".to_string(), "-".to_string())
            };
            out.push_str(&format!(
                "  {:<10} {:>10} {:>10} {:>9} {:>12} {:>10}\n",
                l.name, l.inputs, l.outputs, l.enabled, reuse, hit
            ));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------

/// Fig. 4: relative difference between consecutive input vectors of the
/// last two Kaldi FC layers over one synthetic utterance.
pub fn fig4(scale: Scale, executions: usize) -> String {
    let workload = Workload::build(WorkloadKind::Kaldi, scale);
    let config = workload
        .reuse_config()
        .clone()
        .record_relative_difference(true);
    let mut engine = reuse_core::ReuseEngine::from_network(workload.network(), &config);
    let frames = workload.generate_frames(executions, SEED);
    for f in &frames {
        engine.execute(f).expect("kaldi frames are valid");
    }
    // The last two FC layers (paper plots FC5 and FC6).
    let mut out = String::new();
    out.push_str(&format!(
        "FIGURE 4 — relative difference of consecutive inputs, Kaldi FC5/FC6\n\
         (Euclidean distance to previous input / previous input magnitude; {executions} frames)\n\n"
    ));
    for layer in ["fc5", "fc6"] {
        let rd = engine.layer_relative_differences(layer).unwrap_or(&[]);
        let mean = if rd.is_empty() {
            0.0
        } else {
            rd.iter().sum::<f32>() / rd.len() as f32
        };
        out.push_str(&format!(
            "{} (mean {:.1}%):\n",
            layer.to_uppercase(),
            mean * 100.0
        ));
        for (t, chunk) in rd.chunks(rd.len().div_ceil(20).max(1)).enumerate() {
            let v = chunk.iter().sum::<f32>() / chunk.len() as f32;
            out.push_str(&format!(
                "  frame {:>4}  {:>5.1}%  |{}\n",
                t * rd.len().div_ceil(20).max(1),
                v * 100.0,
                bar(v as f64, 0.5, 40)
            ));
        }
        out.push('\n');
    }
    out.push_str("paper shape: values fluctuate roughly between 5% and 25%\n");
    out
}

// ---------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------

/// Fig. 5: input similarity and computation reuse per DNN plus the average.
pub fn fig5(scale: Scale) -> String {
    let measurements = all_measurements(scale);
    if let Some(path) = crate::csv::maybe_export_layers(&measurements, "fig5_layers.csv") {
        eprintln!("[csv] wrote {}", path.display());
    }
    let mut out = String::new();
    out.push_str(&format!(
        "FIGURE 5 — input similarity and computation reuse (scale: {scale})\n\n"
    ));
    out.push_str(&format!(
        "{:<12} {:>11} {:>13}\n",
        "DNN", "similarity", "comp. reuse"
    ));
    let mut sims = Vec::new();
    let mut reuses = Vec::new();
    for m in &measurements {
        out.push_str(&format!(
            "{:<12} {:>11} {:>13}   sim |{}|\n",
            m.kind.name(),
            pct(m.overall_similarity),
            pct(m.overall_reuse),
            bar(m.overall_similarity, 1.0, 30),
        ));
        sims.push(m.overall_similarity);
        reuses.push(m.overall_reuse);
    }
    let avg_sim = sims.iter().sum::<f64>() / sims.len() as f64;
    let avg_reuse = reuses.iter().sum::<f64>() / reuses.len() as f64;
    out.push_str(&format!(
        "{:<12} {:>11} {:>13}\n\npaper: 61% average similarity, 66% average reuse\n",
        "AVERAGE",
        pct(avg_sim),
        pct(avg_reuse)
    ));
    out
}

// ---------------------------------------------------------------------
// Figures 9 & 10
// ---------------------------------------------------------------------

/// Fig. 9: speedup of the reuse accelerator over the baseline accelerator.
pub fn fig9(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "FIGURE 9 — speedup over the baseline accelerator (scale: {scale})\n\n"
    ));
    let mut speedups = Vec::new();
    for m in all_measurements(scale) {
        let (base, reuse) = simulate(&m);
        let s = reuse.speedup_over(&base);
        speedups.push(s);
        out.push_str(&format!(
            "{:<12} {:>6.2}x  |{}|  ({} -> {})\n",
            m.kind.name(),
            s,
            bar(s, 6.0, 30),
            human_seconds(base.seconds),
            human_seconds(reuse.seconds),
        ));
    }
    out.push_str(&format!(
        "{:<12} {:>6.2}x (geometric mean)\n\npaper: 1.9x (Kaldi) to 5.2x (AutoPilot), 3.5x average\n",
        "AVERAGE",
        geo_mean(speedups.into_iter())
    ));
    out
}

/// Fig. 10: energy of the reuse accelerator normalized to the baseline.
pub fn fig10(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "FIGURE 10 — normalized energy (baseline accelerator = 1.0; scale: {scale})\n\n"
    ));
    let mut ratios = Vec::new();
    for m in all_measurements(scale) {
        let (base, reuse) = simulate(&m);
        let r = reuse.normalized_energy_to(&base);
        ratios.push(r);
        out.push_str(&format!(
            "{:<12} {:>5.2}  |{}|  ({} -> {})\n",
            m.kind.name(),
            r,
            bar(r, 1.0, 30),
            human_joules(base.energy_j()),
            human_joules(reuse.energy_j()),
        ));
    }
    let avg = geo_mean(ratios.into_iter());
    out.push_str(&format!(
        "{:<12} {:>5.2} (geometric mean) => {} energy savings\n\npaper: 63% average savings (C3D 77%, AutoPilot 76%)\n",
        "AVERAGE",
        avg,
        pct(1.0 - avg)
    ));
    // The paper's combined headline: 9.5x energy-delay (2.7x energy x 3.5x
    // delay).
    let mut ed = Vec::new();
    for m in all_measurements(scale) {
        let (base, reuse) = simulate(&m);
        ed.push(base.energy_delay() / reuse.energy_delay());
    }
    out.push_str(&format!(
        "energy-delay improvement: {:.1}x geometric mean (paper: 9.5x)\n",
        geo_mean(ed.into_iter())
    ));
    out
}

// ---------------------------------------------------------------------
// Figure 11
// ---------------------------------------------------------------------

/// Fig. 11: energy breakdown per hardware component, aggregated over the
/// four DNNs, baseline vs reuse.
pub fn fig11(scale: Scale) -> String {
    let mut base_total = reuse_accel::EnergyBreakdown::default();
    let mut reuse_total = reuse_accel::EnergyBreakdown::default();
    for m in all_measurements(scale) {
        let (base, reuse) = simulate(&m);
        base_total.accumulate(&base.energy);
        reuse_total.accumulate(&reuse.energy);
    }
    let mut out = String::new();
    out.push_str(&format!(
        "FIGURE 11 — energy breakdown by component (all four DNNs; scale: {scale})\n\n"
    ));
    out.push_str(&format!(
        "{:<18} {:>14} {:>8} {:>14} {:>8}\n",
        "component", "baseline", "(share)", "reuse", "(share)"
    ));
    for c in reuse_accel::COMPONENTS {
        out.push_str(&format!(
            "{:<18} {:>14} {:>8} {:>14} {:>8}\n",
            c.label(),
            human_joules(base_total.component(c)),
            pct(base_total.fraction(c)),
            human_joules(reuse_total.component(c)),
            pct(reuse_total.fraction(c)),
        ));
    }
    out.push_str(&format!(
        "{:<18} {:>14} {:>8} {:>14} {:>8}\n\npaper shape: eDRAM dominates both bars; every component shrinks with reuse\n",
        "TOTAL",
        human_joules(base_total.total()),
        "100%",
        human_joules(reuse_total.total()),
        pct(reuse_total.total() / base_total.total()),
    ));
    out
}

// ---------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------

/// Table II: the accelerator configuration.
pub fn table2() -> String {
    let c = AcceleratorConfig::paper();
    let a_base = area::baseline_area(&c);
    let a_reuse = area::reuse_area(&c);
    format!(
        "TABLE II — accelerator parameters\n\n\
         technology              32 nm (energy/area constants, see accel::energy)\n\
         frequency               {:.0} MHz\n\
         tiles                   {}\n\
         32-bit multipliers      {}\n\
         32-bit adders           {}\n\
         weights buffer (eDRAM)  {}\n\
         I/O buffer              {} (baseline) / {} (reuse)\n\
         main memory             LPDDR4, {:.0} GB/s\n\
         die area                {:.1} mm^2 (baseline) / {:.1} mm^2 (reuse, paper: 52 -> 53)\n",
        c.frequency_hz / 1e6,
        c.tiles,
        c.total_multipliers(),
        c.total_adders(),
        human_bytes(c.weights_buffer_bytes),
        human_bytes(c.io_buffer_baseline_bytes),
        human_bytes(c.io_buffer_reuse_bytes),
        c.dram_bandwidth_bytes_per_sec / 1e9,
        a_base.total(),
        a_reuse.total(),
    )
}

// ---------------------------------------------------------------------
// Table III
// ---------------------------------------------------------------------

/// Table III: I/O-buffer and main-memory overheads of the reuse scheme.
pub fn table3(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "TABLE III — memory overheads of the reuse scheme (scale: {scale})\n\n"
    ));
    out.push_str(&format!(
        "{:<12} {:>16} {:>14} {:>18} {:>14}\n",
        "DNN", "I/O base", "I/O reuse", "main mem base", "main mem reuse"
    ));
    for kind in WorkloadKind::ALL {
        let w = Workload::build(kind, scale);
        let config = w.reuse_config();
        let r = memory::storage_report(w.network(), |name| config.setting_for(name).enabled);
        out.push_str(&format!(
            "{:<12} {:>16} {:>14} {:>18} {:>14}\n",
            kind.name(),
            human_bytes(r.io_baseline_bytes),
            human_bytes(r.io_reuse_bytes),
            human_bytes(r.main_baseline_bytes),
            human_bytes(r.main_reuse_bytes),
        ));
    }
    out.push_str(
        "\npaper (full scale): Kaldi 27->66 KB, C3D 1152->1280 KB, AutoPilot 160->176 KB,\n\
         EESEN 8->13 KB on-chip; main memory grows ~10% for the CNNs only\n",
    );
    out
}

// ---------------------------------------------------------------------
// Figure 12
// ---------------------------------------------------------------------

/// Fig. 12: speedup and energy reduction of GPU and the reuse accelerator,
/// both relative to the CPU.
pub fn fig12(scale: Scale) -> String {
    let cpu = ReferencePlatform::cpu_i7_7700k();
    let gpu = ReferencePlatform::gtx_1080();
    let mut out = String::new();
    out.push_str(&format!(
        "FIGURE 12 — comparison with {} (baseline) and {} (scale: {scale})\n\n",
        cpu.name, gpu.name
    ));
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}\n",
        "DNN", "GPU speedup", "Acc speedup", "GPU energy red.", "Acc energy red."
    ));
    let mut acc_e = Vec::new();
    let mut gpu_e = Vec::new();
    for m in all_measurements(scale) {
        let (_, reuse) = simulate(&m);
        let cpu_s = cpu.seconds_for(&m.traces);
        let gpu_s = gpu.seconds_for(&m.traces);
        let cpu_j = cpu.energy_for(&m.traces);
        let gpu_j = gpu.energy_for(&m.traces);
        let acc_speed = cpu_s / reuse.seconds;
        let gpu_speed = cpu_s / gpu_s;
        let acc_energy = cpu_j / reuse.energy_j();
        let gpu_energy = cpu_j / gpu_j;
        acc_e.push(acc_energy);
        gpu_e.push(gpu_energy);
        out.push_str(&format!(
            "{:<12} {:>11.2}x {:>11.2}x {:>13.1}x {:>13.1}x\n",
            m.kind.name(),
            gpu_speed,
            acc_speed,
            gpu_energy,
            acc_energy
        ));
    }
    out.push_str(&format!(
        "\naverage energy reduction vs CPU: GPU {:.1}x, Acc+Reuse {:.1}x\n\
         paper: accelerator 213x vs CPU and 115x vs GPU on average;\n\
         GPU wins raw speed only on C3D\n",
        geo_mean(gpu_e.iter().copied()),
        geo_mean(acc_e.iter().copied()),
    ));
    out
}

// ---------------------------------------------------------------------
// Section VI-A
// ---------------------------------------------------------------------

/// Section VI-A: the reduced-precision (8-bit fixed-point) accelerator,
/// evaluated on Kaldi.
pub fn reduced_precision(scale: Scale) -> String {
    let kind = WorkloadKind::Kaldi;
    let executions = executions_from_env(kind, scale);
    // "Strict" similarity of the fp32 baseline: quantize with so many
    // clusters that only genuinely identical values collide (ReLU zeros and
    // saturated activations).
    let strict = ReuseConfig::uniform(1 << 20)
        .disable_layer("fc1")
        .disable_layer("fc2");
    let m_fp32 = measure_with_config(kind, scale, executions, SEED, Some(strict));
    // Similarity of the raw 8-bit datapath: 255 value levels.
    let q8 = ReuseConfig::uniform(255)
        .disable_layer("fc1")
        .disable_layer("fc2");
    let m_q8 = measure_with_config(kind, scale, executions, SEED, Some(q8));
    // The reuse scheme itself (16 clusters), simulated on the 8-bit
    // accelerator.
    let m_reuse = cached_measurement(kind, scale, executions, SEED);
    let sim = Simulator::new(AcceleratorConfig::paper_fixed8());
    let input = m_reuse.sim_input();
    let base = sim.simulate_baseline(&input);
    let reuse = sim.simulate_reuse(&input);
    format!(
        "SECTION VI-A — reduced-precision (8-bit fixed-point) accelerator, Kaldi (scale: {scale})\n\n\
         input similarity, fp32 value space (strict equality) : {}\n\
         input similarity, 8-bit value space                  : {}\n\
         computation reuse with 16-cluster quantization       : {}\n\
         speedup on the 8-bit accelerator                     : {:.2}x\n\
         energy savings on the 8-bit accelerator              : {}\n\
         output agreement (accuracy proxy)                    : {}\n\n\
         paper: similarity 45% -> 52%, reuse 58%, 1.8x speedup, 45% energy savings,\n\
         accuracy loss well below 1%\n",
        pct(m_fp32.overall_similarity),
        pct(m_q8.overall_similarity),
        pct(m_reuse.overall_reuse),
        reuse.speedup_over(&base),
        pct(1.0 - reuse.normalized_energy_to(&base)),
        pct2(m_reuse.agreement.ratio()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_table_ii_numbers() {
        let t = table2();
        assert!(t.contains("500 MHz"));
        assert!(t.contains("128"));
        assert!(t.contains("36 MB"));
    }

    #[test]
    fn table3_covers_all_dnns() {
        let t = table3(Scale::Tiny);
        for kind in WorkloadKind::ALL {
            assert!(t.contains(kind.name()), "{t}");
        }
    }

    #[test]
    fn fig4_reports_both_layers() {
        let t = fig4(Scale::Tiny, 30);
        assert!(t.contains("FC5"));
        assert!(t.contains("FC6"));
    }

    #[test]
    fn geo_mean_of_equal_values() {
        assert!((geo_mean([2.0, 2.0, 2.0].into_iter()) - 2.0).abs() < 1e-12);
        assert_eq!(geo_mean(std::iter::empty()), 1.0);
    }
}

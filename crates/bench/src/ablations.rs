//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! * [`cluster_sweep`] — the paper's Section III analysis: similarity vs
//!   accuracy across 8/12/16/32 quantization clusters.
//! * [`tile_sweep`] — sensitivity of the reuse speedup to tile count
//!   (Section IV-E's multi-tile organization).
//! * [`calibration_sweep`] — how many profiling executions the quantizer
//!   ranges need before similarity stabilizes.
//! * [`replay_cluster_sweep`] — the same sweep per layer via offline
//!   replay of recorded input streams (no network re-execution).
//! * [`block_size_ablation`] — the Fig. 8 CNN staging tradeoff behind the
//!   paper's 16×16×1 block choice.
//! * [`quantizer_comparison`] — linear vs k-means input quantization.
//! * [`drift_study`] — numerical drift of the repeatedly-corrected
//!   buffered outputs over one sequence.
//! * [`overhead_stress`] — the paper's "small overheads" claim: what the
//!   reuse accelerator costs when there is *no* similarity to exploit.

use reuse_accel::{AcceleratorConfig, Simulator};
use reuse_workloads::{Scale, Workload, WorkloadKind};

use crate::experiments::SEED;
use crate::measure::{executions_from_env, measure_with_config};
use crate::table::{pct, pct2};

/// Section III cluster sweep: for one workload, measure similarity, reuse
/// and the accuracy proxy at several cluster counts.
pub fn cluster_sweep(kind: WorkloadKind, scale: Scale) -> String {
    let executions = executions_from_env(kind, scale);
    let mut out = String::new();
    out.push_str(&format!(
        "ABLATION — quantization clusters, {} (scale: {scale})\n\
         paper Section III: fewer clusters => more similarity but more error;\n\
         16 suits Kaldi/EESEN, 32 suits the CNNs\n\n",
        kind.name()
    ));
    out.push_str(&format!(
        "{:>9} {:>12} {:>12} {:>12} {:>10}\n",
        "clusters", "similarity", "comp.reuse", "agreement", "rel.err"
    ));
    let base_config = Workload::build(kind, scale).reuse_config().clone();
    for clusters in [8usize, 12, 16, 32, 64] {
        let config = base_config.clone().with_default_clusters(clusters);
        let m = measure_with_config(kind, scale, executions, SEED, Some(config));
        out.push_str(&format!(
            "{:>9} {:>12} {:>12} {:>12} {:>10}\n",
            clusters,
            pct(m.overall_similarity),
            pct(m.overall_reuse),
            pct2(m.agreement.ratio()),
            pct2(m.mean_relative_error),
        ));
    }
    out
}

/// Tile-count sweep: reuse speedup with 1/2/4/8 tiles.
pub fn tile_sweep(kind: WorkloadKind, scale: Scale) -> String {
    let m = crate::cache::cached_measurement(kind, scale, executions_from_env(kind, scale), SEED);
    let results = reuse_accel::sweep::ConfigSweep::new()
        .tiles(&[1, 2, 4, 8])
        .run(&m.sim_input());
    let mut out = String::new();
    out.push_str(&format!(
        "ABLATION — tile count, {} (scale: {scale})\n\
         more tiles shorten both baseline and reuse runs; the *speedup* of the\n\
         reuse scheme is organization-independent until memory binds\n\
         workload reuse rate (MACs avoided in the measured traces): {}\n\n",
        kind.name(),
        pct(results.first().map_or(0.0, |r| r.reuse_rate)),
    ));
    out.push_str(&format!(
        "{:>8} {:>7} {:>14} {:>14} {:>9}\n",
        "point", "lanes", "baseline", "reuse", "speedup"
    ));
    for (r, tiles) in results.iter().zip([1usize, 2, 4, 8]) {
        out.push_str(&format!(
            "{:>8} {:>7} {:>14} {:>14} {:>8.2}x\n",
            r.label,
            tiles * 32,
            crate::table::human_seconds(r.baseline.seconds),
            crate::table::human_seconds(r.reuse.seconds),
            r.speedup(),
        ));
    }
    out
}

/// Calibration-length sweep: similarity as a function of how many
/// executions profile the input ranges.
pub fn calibration_sweep(kind: WorkloadKind, scale: Scale) -> String {
    let executions = executions_from_env(kind, scale);
    let base_config = Workload::build(kind, scale).reuse_config().clone();
    let mut out = String::new();
    out.push_str(&format!(
        "ABLATION — calibration executions, {} (scale: {scale})\n\
         ranges profiled from more data widen slightly and stabilize the\n\
         quantizer; the paper profiles the whole training set offline\n\n",
        kind.name()
    ));
    out.push_str(&format!(
        "{:>12} {:>12} {:>12} {:>10}\n",
        "calibration", "similarity", "comp.reuse", "rel.err"
    ));
    for calib in [1usize, 4, 16] {
        let config = base_config.clone().calibration_executions(calib);
        let m = measure_with_config(kind, scale, executions, SEED, Some(config));
        out.push_str(&format!(
            "{:>12} {:>12} {:>12} {:>10}\n",
            calib,
            pct(m.overall_similarity),
            pct(m.overall_reuse),
            pct2(m.mean_relative_error),
        ));
    }
    out
}

/// Per-layer cluster sweep via offline replay (paper Section III's
/// methodology): record each layer's raw input stream once, then evaluate
/// every cluster count against the recording — no network re-execution.
pub fn replay_cluster_sweep(kind: WorkloadKind, scale: Scale) -> String {
    use reuse_core::replay::{replay_sweep, InputRecorder};
    let workload = Workload::build(kind, scale);
    if workload.is_recurrent() {
        return format!(
            "replay sweep: {} is recurrent; streams are per-timestep — skipped\n",
            kind.name()
        );
    }
    let frames = workload.generate_frames(40, SEED);
    let recorder =
        InputRecorder::record(workload.network(), &frames).expect("workload frames are valid");
    let clusters = [8usize, 16, 32, 64];
    let sweep = replay_sweep(&recorder, &clusters);
    let mut out = String::new();
    out.push_str(&format!(
        "ABLATION — per-layer similarity vs clusters via offline replay, {} (scale: {scale})\n\n\
         {:<12}",
        kind.name(),
        "layer"
    ));
    for c in clusters {
        out.push_str(&format!(" {c:>7}"));
    }
    out.push('\n');
    for (name, row) in recorder.layer_names().iter().zip(sweep.iter()) {
        out.push_str(&format!("{name:<12}"));
        for cell in row {
            match cell {
                Some(r) => out.push_str(&format!(" {:>6.1}%", r.input_similarity * 100.0)),
                None => out.push_str(&format!(" {:>7}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str("\nfewer clusters => more similarity, uniformly across layers (Section III)\n");
    out
}

/// Block-size sweep for the CNN staging schedule (paper Section V: 16×16×1
/// blocks are "a good trade-off between on-chip storage requirements and
/// memory bandwidth usage").
pub fn block_size_ablation() -> String {
    use reuse_accel::blocking::{block_size_sweep, BlockedConv};
    // The largest C3D staging case: CONV2, 64 -> 128 maps at 16x56x56.
    let layer = BlockedConv {
        in_channels: 64,
        out_channels: 128,
        h: 56,
        w: 56,
        k: 3,
        block: 16,
    };
    let mut out = String::new();
    out.push_str(
        "ABLATION — CNN block size (C3D CONV2 geometry, paper Section V)\n\
         smaller blocks need less I/O buffer but re-transfer halo pixels;\n\
         the paper picks 16x16x1\n\n",
    );
    out.push_str(&format!(
        "{:>7} {:>16} {:>18}\n",
        "block", "staging (I/O+idx)", "DRAM per exec"
    ));
    for (block, staging, dram) in block_size_sweep(&layer, &[4, 8, 16, 32, 56]) {
        out.push_str(&format!(
            "{:>7} {:>16} {:>18}\n",
            format!("{block}x{block}"),
            crate::table::human_bytes(staging),
            crate::table::human_bytes(dram),
        ));
    }
    out
}

/// Linear vs k-means input quantization (the design choice of Section III:
/// the paper uses *uniformly distributed linear* quantization; clustered
/// centroids fit the data better but need a trained codebook and a
/// nearest-centroid search in hardware).
pub fn quantizer_comparison(scale: Scale) -> String {
    use reuse_quant::kmeans::KMeansQuantizer;
    use reuse_quant::{LinearQuantizer, RangeProfiler};

    // Calibrate both quantizers on the inputs of Kaldi's FC3 layer.
    let workload = Workload::build(WorkloadKind::Kaldi, scale);
    let frames = workload.generate_frames(40, SEED);
    // Collect the layer-3 inputs by running the fp32 network partially.
    let net = workload.network();
    let mut samples: Vec<f32> = Vec::new();
    for frame in &frames {
        let mut cur = reuse_tensor::Tensor::from_vec(net.input_shape().clone(), frame.clone())
            .expect("frame sized");
        for i in 0..3 {
            cur = net.apply_layer(i, cur).expect("prefix layers run");
        }
        samples.extend_from_slice(cur.as_slice());
    }
    let mut out = String::new();
    out.push_str(&format!(
        "ABLATION — linear vs k-means input quantization (Kaldi FC3 inputs, scale: {scale})\n\n\
         {:>9} {:>14} {:>14} {:>8}\n",
        "clusters", "linear MSE", "k-means MSE", "ratio"
    ));
    let mut profiler = RangeProfiler::new();
    profiler.observe_slice(&samples);
    let range = profiler.range(0.0).expect("varied samples");
    for clusters in [8usize, 16, 32] {
        let lin = LinearQuantizer::new(range, clusters).expect("valid range");
        let lin_mse: f64 = samples
            .iter()
            .map(|&v| {
                let d = (lin.quantized_value(v) - v) as f64;
                d * d
            })
            .sum::<f64>()
            / samples.len() as f64;
        let km = KMeansQuantizer::fit(&samples, clusters, 50).expect("varied samples");
        let km_mse = km.mse(&samples);
        out.push_str(&format!(
            "{:>9} {:>14.3e} {:>14.3e} {:>8.2}\n",
            clusters,
            lin_mse,
            km_mse,
            lin_mse / km_mse.max(1e-30),
        ));
    }
    out.push_str(
        "\nk-means fits the activation distribution better at equal cluster count,\n\
         but linear quantization needs no codebook fit and indexes with one\n\
         multiply+round — the hardware tradeoff behind the paper's choice\n",
    );
    out
}

/// Worst-case overheads: feed the engine uncorrelated frames so nothing can
/// be reused, then compare the reuse accelerator against the baseline. The
/// paper argues the overheads (quantize, compare, index traffic) are small
/// enough that even low similarity wins; this shows the floor.
pub fn overhead_stress(scale: Scale) -> String {
    use reuse_core::{ReuseConfig, ReuseEngine};
    use reuse_nn::init::Rng64;

    let workload = Workload::build(WorkloadKind::Kaldi, scale);
    let config = ReuseConfig::uniform(1 << 14) // so fine nothing ever matches
        .disable_layer("fc1")
        .disable_layer("fc2")
        .record_trace(true);
    let mut engine = ReuseEngine::from_network(workload.network(), &config);
    let mut rng = Rng64::new(99);
    let dim = workload.network().input_shape().volume();
    for _ in 0..24 {
        // Independent random frames: zero temporal correlation.
        let frame: Vec<f32> = (0..dim).map(|_| rng.uniform(1.0)).collect();
        engine.execute(&frame).expect("kaldi frames are valid");
    }
    let similarity = engine.metrics().overall_input_similarity();
    let traces = engine.take_traces();
    let steady = &traces[2..]; // drop calibration + scratch
    let sim = Simulator::new(AcceleratorConfig::paper());
    let input = reuse_accel::SimInput {
        name: "kaldi-uncorrelated",
        traces: steady,
        model_bytes: workload.network().model_bytes(),
        executions_per_sequence: 500,
        activations_spill: false,
    };
    let base = sim.simulate_baseline(&input);
    let reuse = sim.simulate_reuse(&input);
    format!(
        "ABLATION — overhead floor on uncorrelated inputs (Kaldi, scale: {scale})\n\n\
         input similarity          : {}\n\
         reuse/baseline time       : {:.3}\n\
         reuse/baseline energy     : {:.3}\n\n\
         the reuse accelerator approaches parity when nothing matches — the\n\
         quantize/compare/index overheads stay in the low percents (paper\n\
         Section I: \"only a small degree of input similarity is required\")\n",
        pct(similarity),
        reuse.seconds / base.seconds,
        reuse.energy_j() / base.energy_j(),
    )
}

/// Numerical-drift study: the incremental corrections accumulate f32
/// rounding error relative to from-scratch recomputation; the hardware
/// bounds it by resetting state between sequences (paper Section IV-A).
pub fn drift_study(scale: Scale) -> String {
    use reuse_core::drift::measure_fc_drift;
    use reuse_nn::Layer;
    use reuse_quant::{InputRange, LinearQuantizer};

    let workload = Workload::build(WorkloadKind::Kaldi, scale);
    // Drive the first reuse-enabled FC layer (fc3) with its real input
    // stream (recorded from the fp32 network).
    let frames = workload.generate_frames(500, SEED);
    let recorder = reuse_core::replay::InputRecorder::record(workload.network(), &frames)
        .expect("kaldi frames are valid");
    let stream: Vec<Vec<f32>> = recorder.stream("fc3").expect("fc3 recorded").to_vec();
    let Some(Layer::FullyConnected(fc3)) = workload
        .network()
        .layers()
        .iter()
        .find(|(n, _)| n == "fc3")
        .map(|(_, l)| l)
    else {
        unreachable!("kaldi has fc3")
    };
    let lo = stream
        .iter()
        .flatten()
        .cloned()
        .fold(f32::INFINITY, f32::min);
    let hi = stream
        .iter()
        .flatten()
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max);
    let q = LinearQuantizer::new(InputRange::new(lo, hi), 16).expect("varied stream");
    let report = measure_fc_drift(fc3, &q, &stream, 50).expect("drift run");
    let mut out = String::new();
    out.push_str(&format!(
        "ABLATION — numerical drift of buffered outputs (Kaldi FC3, scale: {scale})\n\
         incremental corrections vs from-scratch recomputation over one\n\
         500-execution sequence (a ~5 s utterance)\n\n\
         {:>10} {:>14}\n",
        "execution", "max |error|"
    ));
    for (i, err) in report.max_abs_error.iter().enumerate() {
        out.push_str(&format!("{:>10} {:>14.2e}\n", (i + 1) * 50, err));
    }
    out.push_str(&format!(
        "\nfinal relative error: {:.2e} (quantization step: {:.3})\n\
         drift stays orders of magnitude below the quantization error, so the\n\
         per-sequence state reset is sufficient — no mid-sequence refresh needed\n",
        report.final_relative_error,
        q.step(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_floor_is_small() {
        let report = overhead_stress(Scale::Tiny);
        assert!(report.contains("similarity"));
        // Extract the time ratio and check it is close to 1.
        let line = report.lines().find(|l| l.contains("time")).unwrap();
        let ratio: f64 = line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!(ratio < 1.10, "overhead ratio {ratio}");
        assert!(ratio > 0.90, "uncorrelated inputs cannot speed up: {ratio}");
    }

    #[test]
    fn tile_sweep_reports_all_tile_counts() {
        let t = tile_sweep(WorkloadKind::Kaldi, Scale::Tiny);
        for tiles in ["1", "2", "4", "8"] {
            assert!(t.lines().any(|l| l.trim_start().starts_with(tiles)), "{t}");
        }
    }
}

//! CSV export of experiment data, for plotting outside the terminal.
//!
//! Every figure binary prints human-readable tables; setting
//! `REUSE_CSV_DIR=<dir>` additionally writes machine-readable CSV files so
//! the paper's figures can be regenerated with any plotting tool.

use std::fs;
use std::path::{Path, PathBuf};

use crate::measure::Measurement;

/// The CSV output directory from `REUSE_CSV_DIR`, if set.
pub fn csv_dir() -> Option<PathBuf> {
    std::env::var("REUSE_CSV_DIR").ok().map(PathBuf::from)
}

/// Escapes a CSV field (quotes fields containing separators).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders rows to CSV text with a header.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = header
        .iter()
        .map(|h| field(h))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Writes a CSV file into `dir`, creating it if needed.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, render(header, rows))?;
    Ok(path)
}

/// Per-layer rows of one measurement (the Table I / Fig. 5 data).
pub fn layer_rows(m: &Measurement) -> Vec<Vec<String>> {
    m.layers
        .iter()
        .map(|l| {
            vec![
                m.kind.name().to_string(),
                l.name.clone(),
                l.inputs.to_string(),
                l.outputs.to_string(),
                l.enabled.to_string(),
                format!("{:.6}", l.input_similarity),
                format!("{:.6}", l.computation_reuse),
                format!("{:.6}", l.hit_rate),
                m.policy.clone(),
            ]
        })
        .collect()
}

/// Header matching [`layer_rows`].
pub const LAYER_HEADER: [&str; 9] = [
    "dnn",
    "layer",
    "inputs",
    "outputs",
    "enabled",
    "input_similarity",
    "computation_reuse",
    "hit_rate",
    "policy",
];

/// If `REUSE_CSV_DIR` is set, writes the per-layer data of the given
/// measurements and returns the written path.
pub fn maybe_export_layers(measurements: &[Measurement], name: &str) -> Option<PathBuf> {
    let dir = csv_dir()?;
    let rows: Vec<Vec<String>> = measurements.iter().flat_map(layer_rows).collect();
    write(&dir, name, &LAYER_HEADER, &rows).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_workload;
    use reuse_workloads::{Scale, WorkloadKind};

    #[test]
    fn render_escapes_fields() {
        let text = render(
            &["a", "b"],
            &[
                vec!["plain".into(), "has,comma".into()],
                vec!["has\"quote".into(), "x".into()],
            ],
        );
        assert_eq!(text, "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n");
    }

    #[test]
    fn layer_rows_cover_all_layers() {
        let m = measure_workload(WorkloadKind::Kaldi, Scale::Tiny, 6, 2);
        let rows = layer_rows(&m);
        assert_eq!(rows.len(), m.layers.len());
        assert!(rows.iter().all(|r| r.len() == LAYER_HEADER.len()));
        assert_eq!(rows[0][0], "Kaldi");
    }

    #[test]
    fn write_creates_file() {
        let dir = std::env::temp_dir().join("reuse-dnn-csv-test");
        let path = write(&dir, "t.csv", &["x"], &[vec!["1".into()]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x\n1\n");
        std::fs::remove_file(path).ok();
    }
}

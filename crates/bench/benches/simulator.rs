//! Criterion benchmarks of the higher layers: the reuse engine driving a
//! whole network, and the trace-driven accelerator simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use reuse_accel::{AcceleratorConfig, SimInput, Simulator};
use reuse_bench::measure_workload;
use reuse_core::ReuseEngine;
use reuse_workloads::{Scale, Workload, WorkloadKind};

fn bench_engine_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    for kind in [WorkloadKind::Kaldi, WorkloadKind::AutoPilot] {
        let workload = Workload::build(kind, Scale::Tiny);
        let frames = workload.generate_frames(64, 1);
        group.bench_function(format!("{}_tiny_execute", kind.name()), |b| {
            let mut engine = ReuseEngine::from_network(workload.network(), workload.reuse_config());
            // Warm through calibration + scratch.
            engine.execute(&frames[0]).unwrap();
            engine.execute(&frames[1]).unwrap();
            let mut i = 2;
            b.iter(|| {
                let f = &frames[i % frames.len()];
                i += 1;
                engine.execute(std::hint::black_box(f)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_engine_vs_scratch(c: &mut Criterion) {
    // The end-to-end software win: executing the next frame incrementally
    // versus running the full network.
    let workload = Workload::build(WorkloadKind::Kaldi, Scale::Small);
    let frames = workload.generate_frames(32, 2);
    let mut group = c.benchmark_group("kaldi_small_end_to_end");
    group.sample_size(20);
    group.bench_function("fp32_from_scratch", |b| {
        b.iter(|| {
            workload
                .network()
                .forward_flat(std::hint::black_box(&frames[5]))
                .unwrap()
        })
    });
    group.bench_function("reuse_incremental", |b| {
        let mut engine = ReuseEngine::from_network(workload.network(), workload.reuse_config());
        for f in frames.iter().take(4) {
            engine.execute(f).unwrap();
        }
        let mut i = 4;
        b.iter(|| {
            let f = &frames[i % frames.len()];
            i += 1;
            engine.execute(std::hint::black_box(f)).unwrap()
        })
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let m = measure_workload(WorkloadKind::AutoPilot, Scale::Tiny, 24, 3);
    let sim = Simulator::new(AcceleratorConfig::paper());
    let input = SimInput {
        name: "autopilot-tiny",
        traces: &m.traces,
        model_bytes: m.model_bytes,
        executions_per_sequence: m.executions_per_sequence,
        activations_spill: m.activations_spill,
    };
    c.bench_function("simulate_24_executions", |b| {
        b.iter(|| {
            let base = sim.simulate_baseline(std::hint::black_box(&input));
            let reuse = sim.simulate_reuse(std::hint::black_box(&input));
            (base.cycles, reuse.cycles)
        })
    });
}

fn bench_cache_round_trip(c: &mut Criterion) {
    let m = measure_workload(WorkloadKind::Kaldi, Scale::Tiny, 16, 4);
    let text = reuse_bench::cache::serialize(&m);
    c.bench_function("trace_serialize", |b| {
        b.iter(|| reuse_bench::cache::serialize(std::hint::black_box(&m)))
    });
    c.bench_function("trace_deserialize", |b| {
        b.iter(|| reuse_bench::cache::deserialize(std::hint::black_box(&text)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_engine_execution,
    bench_engine_vs_scratch,
    bench_simulator,
    bench_cache_round_trip
);
criterion_main!(benches);

//! Criterion micro-benchmarks of the kernels the paper's results rest on:
//! from-scratch vs incremental FC, convolution and LSTM execution at
//! several change fractions, plus quantization throughput.
//!
//! The headline claim — incremental execution time scales with the number
//! of *changed* inputs, not the layer size — is directly visible in the
//! `fc_reuse/changed_*` and `conv_reuse/changed_*` series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reuse_core::conv::Conv2dReuseState;
use reuse_core::fc::FcReuseState;
use reuse_core::lstm::LstmReuseState;
use reuse_nn::{init::Rng64, Activation, Conv2dLayer, FullyConnected, LstmCell};
use reuse_quant::{InputRange, LinearQuantizer};
use reuse_tensor::conv::Conv2dSpec;
use reuse_tensor::{Shape, Tensor};

fn quantizer() -> LinearQuantizer {
    LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap()
}

/// Mutates `fraction` of the inputs by more than one quantization step.
fn perturb(base: &[f32], fraction: f64, step: f32, rng: &mut Rng64) -> Vec<f32> {
    let mut out = base.to_vec();
    let n = ((base.len() as f64) * fraction) as usize;
    for _ in 0..n {
        let i = (rng.next_u64() % base.len() as u64) as usize;
        out[i] = (out[i] + 3.0 * step).rem_euclid(2.0) - 1.0;
    }
    out
}

fn bench_fc(c: &mut Criterion) {
    // Kaldi FC3 geometry: 400 inputs x 2000 neurons.
    let layer = FullyConnected::random(400, 2000, Activation::Relu, &mut Rng64::new(1));
    let q = quantizer();
    let mut rng = Rng64::new(2);
    let base: Vec<f32> = (0..400).map(|_| rng.uniform(0.9)).collect();

    let mut group = c.benchmark_group("fc_400x2000");
    group.bench_function("scratch", |b| {
        let input = Tensor::from_slice_1d(&base).unwrap();
        b.iter(|| layer.forward_linear(std::hint::black_box(&input)).unwrap())
    });
    for fraction in [0.0, 0.1, 0.35, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("reuse_changed", format!("{:.0}%", fraction * 100.0)),
            &fraction,
            |b, &fraction| {
                let mut state = FcReuseState::new(&layer);
                state.execute(&layer, &q, &base).unwrap();
                let variants: Vec<Vec<f32>> = (0..8)
                    .map(|_| perturb(&base, fraction, q.step(), &mut rng))
                    .collect();
                let mut i = 0;
                b.iter(|| {
                    // Alternate back to base so the change fraction stays
                    // stable from iteration to iteration.
                    let input = if i % 2 == 0 {
                        &variants[(i / 2) % 8]
                    } else {
                        &base
                    };
                    i += 1;
                    state
                        .execute(&layer, &q, std::hint::black_box(input))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    // AutoPilot CONV2 geometry: 24 -> 36 channels, 5x5 stride 2.
    let spec = Conv2dSpec {
        in_channels: 24,
        out_channels: 36,
        kh: 5,
        kw: 5,
        stride: 2,
        pad: 0,
    };
    let layer = Conv2dLayer::random(spec, Activation::Relu, &mut Rng64::new(3));
    let in_shape = Shape::d3(24, 31, 98);
    let q = quantizer();
    let mut rng = Rng64::new(4);
    let base: Vec<f32> = (0..in_shape.volume()).map(|_| rng.uniform(0.9)).collect();
    let base_t = Tensor::from_vec(in_shape.clone(), base.clone()).unwrap();

    let mut group = c.benchmark_group("conv_24x31x98");
    group.sample_size(20);
    group.bench_function("scratch", |b| {
        b.iter(|| layer.forward_linear(std::hint::black_box(&base_t)).unwrap())
    });
    for fraction in [0.0, 0.1, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("reuse_changed", format!("{:.0}%", fraction * 100.0)),
            &fraction,
            |b, &fraction| {
                let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
                state.execute(&layer, &q, &base_t).unwrap();
                let variant = Tensor::from_vec(
                    in_shape.clone(),
                    perturb(&base, fraction, q.step(), &mut rng),
                )
                .unwrap();
                let mut i = 0;
                b.iter(|| {
                    let input = if i % 2 == 0 { &variant } else { &base_t };
                    i += 1;
                    state
                        .execute(&layer, &q, std::hint::black_box(input))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_lstm(c: &mut Criterion) {
    // EESEN cell geometry: 640 inputs, 320 cell.
    let cell = LstmCell::random(640, 320, &mut Rng64::new(5));
    let q = quantizer();
    let mut rng = Rng64::new(6);
    let base: Vec<f32> = (0..640).map(|_| rng.uniform(0.9)).collect();

    let mut group = c.benchmark_group("lstm_640x320");
    group.sample_size(30);
    group.bench_function("scratch_step", |b| {
        let state = reuse_nn::LstmState::zeros(320);
        b.iter(|| cell.step(std::hint::black_box(&base), &state).unwrap())
    });
    group.bench_function("reuse_step_stable_input", |b| {
        let mut state = LstmReuseState::new(&cell);
        state.step(&cell, &q, &q, &base).unwrap();
        b.iter(|| {
            state
                .step(&cell, &q, &q, std::hint::black_box(&base))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let q = quantizer();
    let mut rng = Rng64::new(7);
    let values: Vec<f32> = (0..8192).map(|_| rng.uniform(1.2)).collect();
    c.bench_function("quantize_8192_inputs", |b| {
        b.iter(|| q.quantize_slice(std::hint::black_box(&values)))
    });
}

criterion_group!(
    benches,
    bench_fc,
    bench_conv,
    bench_lstm,
    bench_quantization
);
criterion_main!(benches);

//! Bit-exactness of the parallel runtime at the reuse layer: every
//! incremental-correction kernel and the whole engine must produce outputs
//! bit-identical to the serial path for any thread count, because workers
//! partition *outputs* and each output keeps its serial accumulation order
//! (DESIGN.md, "Threading model & determinism").

use proptest::prelude::*;
use reuse_core::conv::{Conv2dReuseState, Conv3dReuseState};
use reuse_core::fc::FcReuseState;
use reuse_core::lstm::LstmReuseState;
use reuse_core::{ParallelConfig, ReuseConfig, ReuseEngine};
use reuse_nn::{
    init::Rng64, Activation, Conv2dLayer, Conv3dLayer, FullyConnected, LstmCell, NetworkBuilder,
};
use reuse_quant::{InputRange, LinearQuantizer};
use reuse_tensor::conv::{Conv2dSpec, Conv3dSpec};
use reuse_tensor::Shape;

fn quantizer(clusters: usize) -> LinearQuantizer {
    LinearQuantizer::new(InputRange::new(-1.0, 1.0), clusters).unwrap()
}

fn cfg(threads: usize) -> ParallelConfig {
    // Force real splits regardless of host size or call cost: no work
    // floor, no inline-FLOP threshold, clamp bypassed.
    ParallelConfig::with_threads(threads)
        .min_work_per_thread(1)
        .inline_flops(0)
        .oversubscribed()
}

/// A drifting input stream: each frame perturbs a few positions of the last.
fn drifting_frames(len: usize, n_frames: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut cur: Vec<f32> = (0..len).map(|_| rng.uniform(0.9)).collect();
    let mut frames = vec![cur.clone()];
    for _ in 1..n_frames {
        for _ in 0..(len / 4).max(1) {
            let i = (rng.next_u64() % len as u64) as usize;
            cur[i] = (cur[i] + rng.uniform(0.5)).clamp(-1.0, 1.0);
        }
        frames.push(cur.clone());
    }
    frames
}

fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "element {i} differs: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fc_state_parallel_matches_serial(threads in 2usize..7, seed in 0u64..500) {
        let layer = FullyConnected::random(24, 37, Activation::Relu, &mut Rng64::new(seed + 1));
        let q = quantizer(16);
        let mut serial = FcReuseState::new(&layer);
        let mut parallel = FcReuseState::new(&layer);
        for frame in drifting_frames(24, 6, seed) {
            let (a, _) = serial.execute(&layer, &q, &frame).unwrap();
            let (b, _) = parallel.execute_with(&cfg(threads), &layer, &q, &frame).unwrap();
            assert_bits_eq(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn conv2d_state_parallel_matches_serial(threads in 2usize..7, seed in 0u64..500) {
        let spec = Conv2dSpec { in_channels: 2, out_channels: 5, kh: 3, kw: 3, stride: 1, pad: 1 };
        let layer = Conv2dLayer::random(spec, Activation::Relu, &mut Rng64::new(seed + 2));
        let in_shape = Shape::d3(2, 6, 7);
        let q = quantizer(16);
        let mut serial = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        let mut parallel = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        for frame in drifting_frames(in_shape.volume(), 5, seed) {
            let mut a = Vec::new();
            let mut b = Vec::new();
            serial.execute_into(&ParallelConfig::serial(), &layer, &q, &frame, &mut a).unwrap();
            parallel.execute_into(&cfg(threads), &layer, &q, &frame, &mut b).unwrap();
            assert_bits_eq(&a, &b);
        }
    }

    #[test]
    fn conv3d_state_parallel_matches_serial(threads in 2usize..7, seed in 0u64..500) {
        let spec = Conv3dSpec { in_channels: 2, out_channels: 3, kd: 2, kh: 2, kw: 2, stride: 1, pad: 1 };
        let layer = Conv3dLayer::random(spec, Activation::Relu, &mut Rng64::new(seed + 3));
        let in_shape = Shape::d4(2, 3, 4, 5);
        let q = quantizer(16);
        let mut serial = Conv3dReuseState::new(&layer, &in_shape).unwrap();
        let mut parallel = Conv3dReuseState::new(&layer, &in_shape).unwrap();
        for frame in drifting_frames(in_shape.volume(), 5, seed) {
            let mut a = Vec::new();
            let mut b = Vec::new();
            serial.execute_into(&ParallelConfig::serial(), &layer, &q, &frame, &mut a).unwrap();
            parallel.execute_into(&cfg(threads), &layer, &q, &frame, &mut b).unwrap();
            assert_bits_eq(&a, &b);
        }
    }

    #[test]
    fn lstm_state_parallel_matches_serial(threads in 2usize..7, seed in 0u64..500) {
        let cell = LstmCell::random(14, 9, &mut Rng64::new(seed + 4));
        let q = quantizer(16);
        let mut serial = LstmReuseState::new(&cell);
        let mut parallel = LstmReuseState::new(&cell);
        for frame in drifting_frames(14, 6, seed) {
            let (a, _) = serial.step(&cell, &q, &q, &frame).unwrap();
            let (b, _) = parallel.step_with(&cfg(threads), &cell, &q, &q, &frame).unwrap();
            assert_bits_eq(&a, &b);
        }
    }

    #[test]
    fn engine_parallel_matches_serial_bitwise(threads in 2usize..6, seed in 0u64..200) {
        let net = NetworkBuilder::new("p", 16)
            .fully_connected(33, Activation::Relu)
            .fully_connected(7, Activation::Identity)
            .build()
            .unwrap();
        let base = ReuseConfig::uniform(16);
        let mut serial = ReuseEngine::from_network(&net, &base);
        let mut parallel = ReuseEngine::from_network(&net, &base.clone().parallel(cfg(threads)));
        for frame in drifting_frames(16, 8, seed) {
            let a = serial.execute(&frame).unwrap();
            let b = parallel.execute(&frame).unwrap();
            assert_bits_eq(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn cnn_engine_parallel_matches_serial_bitwise(threads in 2usize..6, seed in 0u64..200) {
        // Mixed pipeline: reuse conv + full-precision pool/flatten fallback
        // + reuse FC, so both engine paths (pooled and tensor) are covered.
        let net = NetworkBuilder::with_input_shape("cnn", Shape::d3(1, 6, 6))
            .conv2d(3, 3, 1, 1, Activation::Relu)
            .pool2d(2)
            .flatten()
            .fully_connected(5, Activation::Identity)
            .build()
            .unwrap();
        let base = ReuseConfig::uniform(16);
        let mut serial = ReuseEngine::from_network(&net, &base);
        let mut parallel = ReuseEngine::from_network(&net, &base.clone().parallel(cfg(threads)));
        for frame in drifting_frames(36, 6, seed) {
            let a = serial.execute(&frame).unwrap();
            let b = parallel.execute(&frame).unwrap();
            assert_bits_eq(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn recurrent_sequence_parallel_matches_serial_bitwise(threads in 2usize..6, seed in 0u64..200) {
        let net = NetworkBuilder::new("r", 10)
            .bilstm(6)
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap();
        let base = ReuseConfig::uniform(16);
        let mut serial = ReuseEngine::from_network(&net, &base);
        let mut parallel = ReuseEngine::from_network(&net, &base.clone().parallel(cfg(threads)));
        let frames = drifting_frames(10, 5, seed);
        for _ in 0..3 {
            let a = serial.execute_sequence(&frames).unwrap();
            let b = parallel.execute_sequence(&frames).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                assert_bits_eq(x.as_slice(), y.as_slice());
            }
        }
    }
}

/// With reuse disabled everywhere the engine runs full precision through the
/// pooled pipeline, so `execute_sequence` must equal `reference_forward`
/// bit-for-bit (the only configuration where exact equality is meaningful —
/// quantized runs approximate by design).
#[test]
fn full_precision_sequence_matches_reference_forward_exactly() {
    let net = NetworkBuilder::new("fp", 12)
        .fully_connected(20, Activation::Relu)
        .fully_connected(6, Activation::Identity)
        .build()
        .unwrap();
    let config = ReuseConfig::uniform(16)
        .disable_layer("fc1")
        .disable_layer("fc2")
        .parallel(cfg(4));
    let mut engine = ReuseEngine::from_network(&net, &config);
    let frames = drifting_frames(12, 6, 77);
    let outs = engine.execute_sequence(&frames).unwrap();
    for (frame, out) in frames.iter().zip(outs.iter()) {
        let reference = engine.reference_forward(frame).unwrap();
        assert_bits_eq(reference.as_slice(), out.as_slice());
    }
}

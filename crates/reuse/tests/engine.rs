//! End-to-end tests of the reuse engine against from-scratch oracles.

use reuse_core::{ReuseConfig, ReuseEngine, TraceKind};
use reuse_nn::{init::Rng64, Activation, Network, NetworkBuilder};
use reuse_tensor::Shape;

/// A smooth random walk of frames, mimicking consecutive audio windows.
fn walk(len: usize, dim: usize, step: f32, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.5)).collect();
    (0..len)
        .map(|_| {
            for v in &mut frame {
                *v = (*v + rng.uniform(step)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

fn mlp() -> Network {
    NetworkBuilder::new("mlp", 12)
        .seed(5)
        .fully_connected(24, Activation::Relu)
        .fully_connected(16, Activation::Relu)
        .fully_connected(4, Activation::Identity)
        .build()
        .unwrap()
}

fn cnn() -> Network {
    NetworkBuilder::with_input_shape("cnn", Shape::d3(2, 8, 8))
        .seed(6)
        .conv2d(4, 3, 1, 1, Activation::Relu)
        .pool2d(2)
        .conv2d(8, 3, 1, 0, Activation::Relu)
        .flatten()
        .fully_connected(5, Activation::Identity)
        .build()
        .unwrap()
}

fn rnn() -> Network {
    NetworkBuilder::new("rnn", 10)
        .seed(7)
        .bilstm(6)
        .bilstm(6)
        .fully_connected(3, Activation::Identity)
        .build()
        .unwrap()
}

#[test]
fn mlp_outputs_close_to_fp32_reference() {
    let net = mlp();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(32));
    let frames = walk(60, 12, 0.08, 1);
    for frame in &frames {
        let out = engine.execute(frame).unwrap();
        let reference = net.forward_flat(frame).unwrap();
        // Quantization-bounded error: inputs deviate by at most half a step
        // per layer; with 32 clusters the output error stays small relative
        // to typical magnitudes.
        let denom = reference.max_abs().max(1.0);
        for (a, b) in out.as_slice().iter().zip(reference.as_slice().iter()) {
            assert!((a - b).abs() / denom < 0.35, "reuse {a} vs fp32 {b}");
        }
    }
    assert!(engine.is_calibrated());
    let m = engine.metrics();
    assert!(m.overall_input_similarity() > 0.0);
    assert!(m.overall_computation_reuse() > 0.0);
}

#[test]
fn mlp_matches_quantized_scratch_oracle() {
    // The tight invariant: the incremental path must equal a from-scratch
    // execution on the *same quantized inputs* (layer by layer).
    let net = mlp();
    let config = ReuseConfig::uniform(16);
    let mut engine = ReuseEngine::from_network(&net, &config);
    let frames = walk(50, 12, 0.1, 2);
    // Calibrate, then for each execution rebuild the oracle manually with
    // the engine's own quantizers.
    for (t, frame) in frames.iter().enumerate() {
        let out = engine.execute(frame).unwrap();
        if t == 0 {
            continue; // calibration execution, fp32
        }
        // Oracle: apply each layer from scratch, quantizing its input with
        // the engine's quantizer for that layer.
        let mut cur = frame.clone();
        for (name, layer) in net.layers() {
            match layer {
                reuse_nn::Layer::FullyConnected(fc) => {
                    let q = engine.quantizer_for(name).expect("quantizer built");
                    let qin = q.quantized_values(&cur);
                    let t_in = reuse_tensor::Tensor::from_slice_1d(&qin).unwrap();
                    let lin = fc.forward_linear(&t_in).unwrap();
                    cur = fc.activation().apply(&lin).into_vec();
                }
                _ => unreachable!("mlp has only fc layers"),
            }
        }
        for (a, b) in out.as_slice().iter().zip(cur.iter()) {
            assert!((a - b).abs() < 1e-3, "t={t}: incremental {a} vs oracle {b}");
        }
    }
}

#[test]
fn identical_frames_reach_full_similarity() {
    let net = mlp();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    let frame = walk(1, 12, 0.0, 3).pop().unwrap();
    for _ in 0..10 {
        engine.execute(&frame).unwrap();
    }
    let m = engine.metrics();
    assert!(
        m.overall_input_similarity() > 0.999,
        "similarity {}",
        m.overall_input_similarity()
    );
    assert!(m.overall_computation_reuse() > 0.999);
}

#[test]
fn smoother_sequences_have_higher_reuse() {
    let net = mlp();
    let mut smooth = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    let mut jumpy = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    for frame in walk(60, 12, 0.02, 4) {
        smooth.execute(&frame).unwrap();
    }
    for frame in walk(60, 12, 0.6, 4) {
        jumpy.execute(&frame).unwrap();
    }
    let (s, j) = (
        smooth.metrics().overall_computation_reuse(),
        jumpy.metrics().overall_computation_reuse(),
    );
    assert!(s > j, "smooth {s} <= jumpy {j}");
}

#[test]
fn cnn_outputs_track_reference_and_record_trace() {
    let net = cnn();
    let config = ReuseConfig::uniform(32).record_trace(true);
    let mut engine = ReuseEngine::from_network(&net, &config);
    let frames = walk(20, 2 * 8 * 8, 0.05, 5);
    for frame in &frames {
        let out = engine.execute(frame).unwrap();
        let reference = net
            .forward(&reuse_tensor::Tensor::from_vec(Shape::d3(2, 8, 8), frame.clone()).unwrap())
            .unwrap();
        let denom = reference.max_abs().max(1.0);
        for (a, b) in out.as_slice().iter().zip(reference.as_slice().iter()) {
            assert!((a - b).abs() / denom < 0.4, "{a} vs {b}");
        }
    }
    let traces = engine.take_traces();
    assert_eq!(traces.len(), frames.len());
    // Trace 0: calibration (fp32 scratch); trace 1: quantized scratch;
    // later: incremental.
    assert!(traces[0]
        .layers
        .iter()
        .all(|l| l.mode == TraceKind::ScratchFp32));
    assert!(traces[1]
        .layers
        .iter()
        .all(|l| l.mode == TraceKind::ScratchQuantized));
    assert!(traces[5]
        .layers
        .iter()
        .all(|l| l.mode == TraceKind::Incremental));
    // Conservation: performed <= total, and totals equal the scratch cost.
    for tr in &traces {
        for l in &tr.layers {
            assert!(l.macs_performed <= l.macs_total);
            assert!(l.n_changed <= l.n_inputs);
        }
        assert_eq!(tr.macs_total(), traces[0].macs_total());
    }
    // The incremental executions must do less work than scratch.
    assert!(traces[5].macs_performed() < traces[5].macs_total());
}

#[test]
fn disabled_layers_run_fp32_and_are_not_metered() {
    let net = cnn();
    let config = ReuseConfig::uniform(32)
        .disable_layer("conv1")
        .record_trace(true);
    let mut engine = ReuseEngine::from_network(&net, &config);
    for frame in walk(10, 2 * 8 * 8, 0.05, 6) {
        engine.execute(&frame).unwrap();
    }
    let m = engine.metrics();
    let conv1 = m.layer("conv1").unwrap();
    assert_eq!(conv1.reuse_executions, 0);
    assert!(m.layer("conv2").unwrap().reuse_executions > 0);
    let traces = engine.take_traces();
    for tr in traces.iter().skip(2) {
        let conv1_tr = tr.layers.iter().find(|l| l.name == "conv1").unwrap();
        assert_eq!(conv1_tr.mode, TraceKind::ScratchFp32);
        let conv2_tr = tr.layers.iter().find(|l| l.name == "conv2").unwrap();
        assert_eq!(conv2_tr.mode, TraceKind::Incremental);
    }
}

#[test]
fn rnn_sequence_runs_and_reuses() {
    let net = rnn();
    let config = ReuseConfig::uniform(16)
        .disable_layer("fc1")
        .record_trace(true);
    let mut engine = ReuseEngine::from_network(&net, &config);
    let seq1 = walk(30, 10, 0.05, 7);
    let out_cal = engine.execute_sequence(&seq1).unwrap();
    assert_eq!(out_cal.len(), 30);
    assert!(!engine.is_calibrated());
    let seq2 = walk(30, 10, 0.05, 8);
    let out = engine.execute_sequence(&seq2).unwrap();
    assert_eq!(out.len(), 30);
    assert!(engine.is_calibrated());
    let m = engine.metrics();
    let l1 = m.layer("bilstm1").unwrap();
    assert!(l1.reuse_executions > 0);
    assert!(
        l1.input_similarity() > 0.0,
        "similarity {}",
        l1.input_similarity()
    );
    // Output layer disabled: not metered.
    assert_eq!(m.layer("fc1").unwrap().reuse_executions, 0);
    // Outputs stay close to the fp32 reference.
    let reference = net.forward_sequence(&seq2).unwrap();
    for (o, r) in out.iter().zip(reference.iter()) {
        let denom = r.max_abs().max(1.0);
        for (a, b) in o.as_slice().iter().zip(r.as_slice().iter()) {
            assert!((a - b).abs() / denom < 0.5, "{a} vs {b}");
        }
    }
    // Traces: one per timestep, covering both sequences.
    let traces = engine.take_traces();
    assert_eq!(traces.len(), 60);
}

#[test]
fn rnn_resets_state_between_sequences() {
    let net = rnn();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16).record_trace(true));
    let seq = walk(10, 10, 0.05, 9);
    engine.execute_sequence(&seq).unwrap(); // calibration
    engine.execute_sequence(&seq).unwrap();
    engine.take_traces();
    engine.execute_sequence(&seq).unwrap();
    let traces = engine.take_traces();
    // First timestep of the new sequence is from scratch again.
    assert!(traces[0]
        .layers
        .iter()
        .filter(|l| l.name.starts_with("bilstm"))
        .all(|l| l.mode == TraceKind::ScratchQuantized));
}

#[test]
fn feed_forward_sequence_api_maps_execute() {
    let net = mlp();
    let mut a = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    let mut b = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    let frames = walk(10, 12, 0.1, 10);
    let outs_seq = a.execute_sequence(&frames).unwrap();
    let outs_one: Vec<_> = frames.iter().map(|f| b.execute(f).unwrap()).collect();
    for (x, y) in outs_seq.iter().zip(outs_one.iter()) {
        assert_eq!(x.as_slice(), y.as_slice());
    }
}

#[test]
fn wrong_api_is_rejected() {
    let mut e = ReuseEngine::from_network(&rnn(), &ReuseConfig::uniform(16));
    assert!(e.execute(&[0.0; 10]).is_err());
    let mut e2 = ReuseEngine::from_network(&mlp(), &ReuseConfig::uniform(16));
    assert!(e2.execute_sequence(&[]).is_err());
    assert!(e2.execute(&[0.0; 5]).is_err());
}

#[test]
fn relative_difference_series_recorded() {
    let net = mlp();
    let config = ReuseConfig::uniform(16).record_relative_difference(true);
    let mut engine = ReuseEngine::from_network(&net, &config);
    for frame in walk(20, 12, 0.05, 11) {
        engine.execute(&frame).unwrap();
    }
    let rd = engine.layer_relative_differences("fc2").unwrap();
    // 20 executions; the calibration one has no reuse pass, the first reuse
    // execution has no predecessor input recorded.
    assert!(rd.len() >= 17, "recorded {} points", rd.len());
    assert!(rd.iter().all(|&v| v >= 0.0 && v.is_finite()));
    // Small steps should give small relative differences.
    let mean: f32 = rd.iter().sum::<f32>() / rd.len() as f32;
    assert!(mean < 0.5, "mean relative difference {mean}");
}

#[test]
fn storage_accounting_matches_hand_computation() {
    let net = mlp();
    let engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    // fc1: 12 idx + 24*4 out; fc2: 24 idx + 16*4; fc3: 16 idx + 4*4.
    let expect = (12 + 96) + (24 + 64) + (16 + 16);
    assert_eq!(engine.reuse_storage_bytes(), expect as u64);
}

#[test]
fn centroid_tables_counted_after_calibration() {
    let net = mlp();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    assert_eq!(engine.centroid_table_bytes(), 0);
    for frame in walk(3, 12, 0.1, 12) {
        engine.execute(&frame).unwrap();
    }
    // 3 fc layers x 16 clusters x 4 bytes.
    assert_eq!(engine.centroid_table_bytes(), 3 * 64);
}

#[test]
fn constant_input_layer_is_auto_disabled() {
    // An input dimension that never varies gives a degenerate range for the
    // first layer only if ALL inputs are constant; build such a net.
    let net = mlp();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    let frame = vec![0.5f32; 12];
    // All calibration inputs identical -> zero-width range -> auto-disable
    // of at least the first layer.
    for _ in 0..5 {
        engine.execute(&frame).unwrap();
    }
    assert!(engine.is_calibrated());
    // The first layer sees a zero-width range (constant frame) and must be
    // auto-disabled; deeper layers see per-neuron variation and stay on.
    assert!(engine.auto_disabled_layers().any(|n| n == "fc1"));
    // Execution still works: disabled layers run fp32, the rest quantized,
    // so outputs stay within quantization error of the reference and are
    // perfectly repeatable.
    let out1 = engine.execute(&frame).unwrap();
    let out2 = engine.execute(&frame).unwrap();
    assert_eq!(out1.as_slice(), out2.as_slice());
    let reference = net.forward_flat(&frame).unwrap();
    let denom = reference.max_abs().max(1.0);
    for (a, b) in out1.as_slice().iter().zip(reference.as_slice().iter()) {
        assert!((a - b).abs() / denom < 0.35, "{a} vs {b}");
    }
}

#[test]
fn reset_state_forces_scratch_next_execution() {
    let net = mlp();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16).record_trace(true));
    let frames = walk(5, 12, 0.1, 13);
    for f in &frames {
        engine.execute(f).unwrap();
    }
    engine.take_traces();
    engine.reset_state();
    engine.execute(&frames[0]).unwrap();
    let traces = engine.take_traces();
    assert!(traces[0]
        .layers
        .iter()
        .all(|l| l.mode == TraceKind::ScratchQuantized));
}

#[test]
fn unidirectional_lstm_reuses_across_timesteps() {
    let net = NetworkBuilder::new("uni-rnn", 8)
        .seed(21)
        .lstm(5)
        .lstm(4)
        .fully_connected(3, Activation::Identity)
        .build()
        .unwrap();
    assert!(net.is_recurrent());
    let config = ReuseConfig::uniform(16)
        .disable_layer("fc1")
        .record_trace(true);
    let mut engine = ReuseEngine::from_network(&net, &config);
    let seq1 = walk(25, 8, 0.05, 31);
    engine.execute_sequence(&seq1).unwrap(); // calibration
    let seq2 = walk(25, 8, 0.05, 32);
    let outs = engine.execute_sequence(&seq2).unwrap();
    assert_eq!(outs.len(), 25);
    let m = engine.metrics();
    for layer in ["lstm1", "lstm2"] {
        let lm = m.layer(layer).unwrap();
        assert!(lm.reuse_executions > 0, "{layer} not metered");
        assert!(lm.input_similarity() > 0.0, "{layer} similarity zero");
    }
    // Outputs track the fp32 reference.
    let reference = net.forward_sequence(&seq2).unwrap();
    for (o, r) in outs.iter().zip(reference.iter()) {
        let denom = r.max_abs().max(1.0);
        for (a, b) in o.as_slice().iter().zip(r.as_slice().iter()) {
            assert!((a - b).abs() / denom < 0.5, "{a} vs {b}");
        }
    }
    // Traces recorded per timestep, first step from scratch.
    let traces = engine.take_traces();
    assert_eq!(traces.len(), 50);
    let first_reuse_seq = &traces[25];
    assert!(first_reuse_seq
        .layers
        .iter()
        .filter(|l| l.name.starts_with("lstm"))
        .all(|l| l.mode == TraceKind::ScratchQuantized));
}

#[test]
fn unidirectional_lstm_matches_quantized_oracle() {
    use reuse_core::lstm::quantized_scratch_sequence;
    let net = NetworkBuilder::new("uni", 6)
        .seed(22)
        .lstm(4)
        .build()
        .unwrap();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    let cal = walk(20, 6, 0.08, 33);
    engine.execute_sequence(&cal).unwrap();
    let seq = walk(20, 6, 0.08, 34);
    let outs = engine.execute_sequence(&seq).unwrap();
    // Oracle: quantized scratch with the engine's own quantizers.
    let reuse_nn::Layer::Lstm(cell) = &net.layers()[0].1 else {
        panic!("lstm expected")
    };
    let qx = *engine.quantizer_for("lstm1").unwrap();
    // The h quantizer is internal; the public oracle check uses the same
    // quantizer for both when ranges coincide, so compare loosely.
    let oracle = quantized_scratch_sequence(cell, &qx, &qx, &seq).unwrap();
    for (o, exp) in outs.iter().zip(oracle.iter()) {
        for (a, b) in o.as_slice().iter().zip(exp.iter()) {
            assert!((a - b).abs() < 0.2, "{a} vs {b}");
        }
    }
}

#[test]
fn conv3d_network_through_engine_matches_reference() {
    let net = NetworkBuilder::with_input_shape("c3", Shape::d4(1, 4, 6, 6))
        .seed(41)
        .conv3d(2, 3, 1, 1, Activation::Relu)
        .pool3d(2, 2, false)
        .flatten()
        .fully_connected(3, Activation::Identity)
        .build()
        .unwrap();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(32));
    let frames = walk(12, 4 * 36, 0.05, 40);
    for frame in &frames {
        let out = engine.execute(frame).unwrap();
        let reference = net.forward_flat(frame).unwrap();
        let denom = reference.max_abs().max(1.0);
        for (a, b) in out.as_slice().iter().zip(reference.as_slice().iter()) {
            assert!((a - b).abs() / denom < 0.4, "{a} vs {b}");
        }
    }
    assert!(engine.metrics().layer("conv1").unwrap().reuse_executions > 0);
}

#[test]
fn quantizer_for_is_none_before_calibration() {
    let net = mlp();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    assert!(engine.quantizer_for("fc1").is_none());
    assert!(!engine.is_calibrated());
    let frames = walk(3, 12, 0.1, 41);
    for f in &frames {
        engine.execute(f).unwrap();
    }
    assert!(engine.quantizer_for("fc1").is_some());
    assert!(engine.quantizer_for("nonexistent").is_none());
}

#[test]
fn executions_counter_tracks_timesteps_for_rnn() {
    let net = rnn();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    let seq = walk(7, 10, 0.1, 42);
    engine.execute_sequence(&seq).unwrap();
    assert_eq!(engine.executions(), 7);
    engine.execute_sequence(&seq).unwrap();
    assert_eq!(engine.executions(), 14);
}

#[test]
fn engine_metrics_weighted_by_layer_size() {
    // A layer with 10x the inputs dominates overall similarity.
    let net = NetworkBuilder::new("weighted", 100)
        .seed(43)
        .fully_connected(200, Activation::Relu)
        .fully_connected(4, Activation::Identity)
        .build()
        .unwrap();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    for frame in walk(20, 100, 0.05, 44) {
        engine.execute(&frame).unwrap();
    }
    let m = engine.metrics();
    let fc2 = m.layer("fc2").unwrap();
    let overall = m.overall_input_similarity();
    let fc1 = m.layer("fc1").unwrap();
    // fc2 sees 200 inputs vs fc1's 100: overall must sit between them,
    // closer to fc2.
    let lo = fc1.input_similarity().min(fc2.input_similarity());
    let hi = fc1.input_similarity().max(fc2.input_similarity());
    assert!(overall >= lo - 1e-9 && overall <= hi + 1e-9);
    assert!(
        (overall - fc2.input_similarity()).abs() <= (overall - fc1.input_similarity()).abs() + 0.05
    );
}

#[test]
fn passthrough_layer_serves_with_full_macs_and_zero_reuse() {
    // An ingested graph with an op the reuse scheme cannot correct
    // (softmax) still serves through a recompute-always passthrough slot,
    // charging full MACs and recording zero reuse on that layer.
    let net = NetworkBuilder::new("with-pass", 12)
        .seed(11)
        .fully_connected(16, Activation::Relu)
        .passthrough(reuse_nn::PassthroughOp::Softmax)
        .fully_connected(4, Activation::Identity)
        .build()
        .unwrap();
    assert_eq!(net.layers()[1].0, "pass1");
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(64));
    for frame in walk(40, 12, 0.02, 12) {
        let out = engine.execute(&frame).unwrap();
        let reference = net.forward_flat(&frame).unwrap();
        for (a, b) in out.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 0.15, "reuse {a} vs reference {b}");
        }
    }
    let m = engine.metrics();
    let pass = m.layer("pass1").expect("passthrough layer has a slot");
    assert!(pass.reuse_executions > 0);
    assert!(pass.macs_total > 0, "passthrough cost must be charged");
    assert_eq!(
        pass.macs_performed, pass.macs_total,
        "recompute-always: no MACs may be skipped"
    );
    assert_eq!(pass.computation_reuse(), 0.0);
    assert_eq!(pass.input_similarity(), 0.0);
    // The weighted layers around it still reuse normally.
    assert!(m.layer("fc1").unwrap().input_similarity() > 0.0);
}

#[test]
fn passthrough_survives_watchdog_rebaseline() {
    // A zero drift bound forces a re-baseline on every check; the
    // passthrough slot has no baseline to adopt and must recompute
    // exactly through the re-baseline path.
    let net = NetworkBuilder::new("pass-watchdog", 10)
        .seed(13)
        .fully_connected(12, Activation::Relu)
        .passthrough(reuse_nn::PassthroughOp::Softmax)
        .fully_connected(3, Activation::Identity)
        .build()
        .unwrap();
    let config = ReuseConfig::uniform(32).drift_watchdog(4, 0.0);
    let mut engine = ReuseEngine::from_network(&net, &config);
    let frames = walk(24, 10, 0.05, 14);
    let mut last = None;
    for frame in &frames {
        last = Some((engine.execute(frame).unwrap(), frame.clone()));
    }
    // Zero bound means every watchdog check re-baselines; with checks every
    // 4 frames the stream keeps getting snapped back onto the exact
    // baseline, so the final output sits at full-precision accuracy (the
    // serial re-baseline path and the SIMD reference differ only in
    // floating-point rounding).
    let (out, frame) = last.unwrap();
    let reference = net.forward_flat(&frame).unwrap();
    for (a, b) in out.as_slice().iter().zip(reference.as_slice()) {
        assert!((a - b).abs() < 1e-2, "rebaselined {a} vs reference {b}");
    }
}

//! Session isolation: many [`ReuseSession`]s over one shared
//! [`CompiledModel`] must behave exactly like standalone engines — no
//! cross-stream contamination, bit-identical outputs, equal metrics.

use std::sync::Arc;

use proptest::prelude::*;
use reuse_core::{CompiledModel, ReuseConfig, ReuseEngine, ReuseSession};
use reuse_nn::{init::Rng64, Activation, Network, NetworkBuilder};
use reuse_tensor::Shape;

/// A smooth random walk of frames, mimicking consecutive audio windows.
fn walk(len: usize, dim: usize, step: f32, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.5)).collect();
    (0..len)
        .map(|_| {
            for v in &mut frame {
                *v = (*v + rng.uniform(step)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

fn mlp() -> Network {
    NetworkBuilder::new("mlp", 12)
        .seed(5)
        .fully_connected(24, Activation::Relu)
        .fully_connected(16, Activation::Relu)
        .fully_connected(4, Activation::Identity)
        .build()
        .unwrap()
}

fn cnn() -> Network {
    NetworkBuilder::with_input_shape("cnn", Shape::d3(2, 8, 8))
        .seed(6)
        .conv2d(4, 3, 1, 1, Activation::Relu)
        .pool2d(2)
        .flatten()
        .fully_connected(5, Activation::Identity)
        .build()
        .unwrap()
}

fn rnn() -> Network {
    NetworkBuilder::new("rnn", 10)
        .seed(7)
        .lstm(8)
        .bilstm(6)
        .fully_connected(3, Activation::Identity)
        .build()
        .unwrap()
}

fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
    }
}

/// Interleaves N sessions over one model, frame by frame, and checks each
/// stream against a standalone engine fed the same frames alone.
fn check_interleaved_frames(net: &Network, config: &ReuseConfig, streams: &[Vec<Vec<f32>>]) {
    let model = Arc::new(CompiledModel::new(net, config));
    let mut sessions: Vec<ReuseSession> = streams.iter().map(|_| model.new_session()).collect();
    let mut engines: Vec<ReuseEngine> = streams
        .iter()
        .map(|_| ReuseEngine::from_network(net, config))
        .collect();
    let n_frames = streams.iter().map(Vec::len).min().unwrap_or(0);
    // Round-robin: session s sees only stream s, but the executions of all
    // sessions are interleaved in time over the shared model.
    for t in 0..n_frames {
        for (s, stream) in streams.iter().enumerate() {
            let out = sessions[s].execute(&stream[t]).unwrap();
            let alone = engines[s].execute(&stream[t]).unwrap();
            assert_bits_eq(out.as_slice(), alone.as_slice());
        }
    }
    for (session, engine) in sessions.iter().zip(engines.iter()) {
        assert_eq!(session.metrics(), engine.metrics(), "per-stream metrics");
        assert_eq!(session.executions(), engine.executions());
        assert_eq!(
            session.reuse_storage_bytes(),
            engine.reuse_storage_bytes(),
            "per-session storage accounting"
        );
    }
}

#[test]
fn two_interleaved_mlp_sessions_match_standalone_engines() {
    let net = mlp();
    let streams = vec![walk(40, 12, 0.08, 11), walk(40, 12, 0.15, 99)];
    check_interleaved_frames(&net, &ReuseConfig::uniform(32), &streams);
}

#[test]
fn interleaved_cnn_sessions_share_packed_weights_bit_identically() {
    let net = cnn();
    let streams = vec![
        walk(25, 2 * 8 * 8, 0.05, 3),
        walk(25, 2 * 8 * 8, 0.2, 4),
        walk(25, 2 * 8 * 8, 0.1, 5),
    ];
    check_interleaved_frames(&net, &ReuseConfig::uniform(16), &streams);
}

#[test]
fn interleaved_recurrent_sessions_match_standalone_engines() {
    let net = rnn();
    let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let mut a = model.new_session();
    let mut b = model.new_session();
    let mut ea = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    let mut eb = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
    let seqs_a: Vec<_> = (0..4).map(|i| walk(12, 10, 0.06, 20 + i)).collect();
    let seqs_b: Vec<_> = (0..4).map(|i| walk(12, 10, 0.18, 50 + i)).collect();
    for (sa, sb) in seqs_a.iter().zip(seqs_b.iter()) {
        let outs_a = a.execute_sequence(sa).unwrap();
        let outs_b = b.execute_sequence(sb).unwrap();
        let alone_a = ea.execute_sequence(sa).unwrap();
        let alone_b = eb.execute_sequence(sb).unwrap();
        for (x, y) in outs_a.iter().zip(alone_a.iter()) {
            assert_bits_eq(x.as_slice(), y.as_slice());
        }
        for (x, y) in outs_b.iter().zip(alone_b.iter()) {
            assert_bits_eq(x.as_slice(), y.as_slice());
        }
    }
    assert_eq!(a.metrics(), ea.metrics());
    assert_eq!(b.metrics(), eb.metrics());
}

/// `CompiledModel` is `Sync`: scoped threads each run their own session
/// against the same `Arc` and still match standalone engines bit for bit.
#[test]
fn sessions_on_threads_share_one_model() {
    let net = mlp();
    let config = ReuseConfig::uniform(32);
    let model = Arc::new(CompiledModel::new(&net, &config));
    let streams: Vec<Vec<Vec<f32>>> = (0..4).map(|s| walk(30, 12, 0.1, 200 + s)).collect();
    let results: Vec<Vec<Vec<f32>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let model = Arc::clone(&model);
                scope.spawn(move || {
                    let mut session = model.new_session();
                    stream
                        .iter()
                        .map(|f| session.execute(f).unwrap().into_vec())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (stream, outs) in streams.iter().zip(results.iter()) {
        let mut engine = ReuseEngine::from_network(&net, &config);
        for (frame, out) in stream.iter().zip(outs.iter()) {
            let alone = engine.execute(frame).unwrap();
            assert_bits_eq(out, alone.as_slice());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized streams: interleaving two sessions never changes any
    /// output bit or metric counter relative to isolated engines.
    #[test]
    fn interleaved_sessions_isolated_under_random_streams(
        seed_a in 0u64..1000,
        seed_b in 1000u64..2000,
        step_a in 1u32..30,
        step_b in 1u32..30,
        clusters in 4usize..33,
    ) {
        let net = mlp();
        let config = ReuseConfig::uniform(clusters);
        let streams = [
            walk(20, 12, step_a as f32 / 100.0, seed_a),
            walk(20, 12, step_b as f32 / 100.0, seed_b),
        ];
        let model = Arc::new(CompiledModel::new(&net, &config));
        let mut sessions: Vec<ReuseSession> =
            streams.iter().map(|_| model.new_session()).collect();
        let mut engines: Vec<ReuseEngine> = streams
            .iter()
            .map(|_| ReuseEngine::from_network(&net, &config))
            .collect();
        for t in 0..20 {
            for (s, stream) in streams.iter().enumerate() {
                let out = sessions[s].execute(&stream[t]).unwrap();
                let alone = engines[s].execute(&stream[t]).unwrap();
                for (x, y) in out.as_slice().iter().zip(alone.as_slice().iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
        for (session, engine) in sessions.iter().zip(engines.iter()) {
            prop_assert_eq!(session.metrics(), engine.metrics());
        }
    }
}

//! Property-based tests: the incremental path must always agree with a
//! from-scratch execution on the same quantized inputs (paper Eq. 10).

use proptest::prelude::*;
use reuse_core::conv::Conv2dReuseState;
use reuse_core::fc::FcReuseState;
use reuse_core::lstm::{quantized_scratch_sequence, LstmReuseState};
use reuse_nn::{init::Rng64, Activation, Conv2dLayer, FullyConnected, LstmCell};
use reuse_quant::{InputRange, LinearQuantizer};
use reuse_tensor::conv::Conv2dSpec;
use reuse_tensor::{Shape, Tensor};

fn frames(n_frames: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(
        proptest::collection::vec((-100i32..=100).prop_map(|v| v as f32 / 100.0), dim),
        1..=n_frames,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fc_incremental_equals_scratch(xs in frames(8, 6), clusters in 4usize..33) {
        let layer = FullyConnected::random(6, 5, Activation::Identity, &mut Rng64::new(17));
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), clusters).unwrap();
        let mut state = FcReuseState::new(&layer);
        for x in &xs {
            let (out, stats) = state.execute(&layer, &q, x).unwrap();
            let qx = q.quantized_values(x);
            let expect = layer
                .forward_linear(&Tensor::from_slice_1d(&qx).unwrap())
                .unwrap();
            for (a, b) in out.as_slice().iter().zip(expect.as_slice().iter()) {
                prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
            prop_assert!(stats.macs_performed <= stats.macs_total);
            prop_assert!(stats.n_changed <= stats.n_inputs);
        }
    }

    #[test]
    fn fc_macs_equal_changed_times_outputs(xs in frames(6, 4)) {
        let layer = FullyConnected::random(4, 7, Activation::Identity, &mut Rng64::new(18));
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let mut state = FcReuseState::new(&layer);
        for (t, x) in xs.iter().enumerate() {
            let (_, stats) = state.execute(&layer, &q, x).unwrap();
            if t > 0 {
                prop_assert_eq!(stats.macs_performed, stats.n_changed * 7);
            }
        }
    }

    #[test]
    fn conv_incremental_equals_scratch(
        xs in frames(4, 2 * 5 * 5),
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let spec = Conv2dSpec { in_channels: 2, out_channels: 3, kh: 3, kw: 3, stride, pad };
        let layer = Conv2dLayer::random(spec, Activation::Identity, &mut Rng64::new(19));
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let in_shape = Shape::d3(2, 5, 5);
        let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        for x in &xs {
            let input = Tensor::from_vec(in_shape.clone(), x.clone()).unwrap();
            let (out, stats) = state.execute(&layer, &q, &input).unwrap();
            let qx = q.quantized_values(x);
            let qin = Tensor::from_vec(in_shape.clone(), qx).unwrap();
            let expect = layer.forward_linear(&qin).unwrap();
            for (a, b) in out.as_slice().iter().zip(expect.as_slice().iter()) {
                prop_assert!((a - b).abs() < 1e-3, "stride {stride} pad {pad}: {a} vs {b}");
            }
            prop_assert!(stats.macs_performed <= stats.macs_total);
        }
    }

    #[test]
    fn lstm_incremental_equals_scratch(xs in frames(10, 4)) {
        let cell = LstmCell::random(4, 3, &mut Rng64::new(20));
        let xq = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let hq = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let oracle = quantized_scratch_sequence(&cell, &xq, &hq, &xs).unwrap();
        let mut state = LstmReuseState::new(&cell);
        for (t, x) in xs.iter().enumerate() {
            let (h, stats) = state.step(&cell, &xq, &hq, x).unwrap();
            for (a, b) in h.iter().zip(oracle[t].iter()) {
                prop_assert!((a - b).abs() < 1e-3, "t {t}: {a} vs {b}");
            }
            prop_assert!(stats.macs_performed <= stats.macs_total);
            // MAC granularity: every changed input touches all 4 gates.
            prop_assert_eq!(stats.macs_performed % (4 * 3), 0);
        }
    }

    #[test]
    fn unchanged_codes_cost_nothing(x in proptest::collection::vec(-1.0f32..1.0, 6)) {
        let layer = FullyConnected::random(6, 5, Activation::Identity, &mut Rng64::new(21));
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let mut state = FcReuseState::new(&layer);
        state.execute(&layer, &q, &x).unwrap();
        // Re-present the centroids themselves: codes cannot change.
        let centroids = q.quantized_values(&x);
        let (_, stats) = state.execute(&layer, &q, &centroids).unwrap();
        prop_assert_eq!(stats.n_changed, 0);
        prop_assert_eq!(stats.macs_performed, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The blocked correction paths must match the pre-blocking scattered
    // walks — bit for bit under the scalar SIMD level, within the FMA
    // tolerance of `reuse_tensor::simd` under AVX2 (the blocked path fuses
    // its multiply-adds, the naive oracle never does) — and, where the
    // quantize/diff pass is the only code-affecting input, report identical
    // activity counters: blocking reorders which outputs are walked
    // together, never which MACs are performed or skipped.

    #[test]
    fn fc_batched_corrections_match_naive(
        xs in frames(6, 11),
        n_out in 1usize..40,
    ) {
        let layer = FullyConnected::random(11, n_out, Activation::Identity, &mut Rng64::new(23));
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let cfg = reuse_tensor::ParallelConfig::serial();
        let mut blocked = FcReuseState::new(&layer);
        let mut naive = FcReuseState::new(&layer);
        let (mut out_b, mut out_n) = (Vec::new(), Vec::new());
        // Initial forward (11+1 terms) plus up to 11 deltas per frame.
        let tol = reuse_tensor::simd::fma_tolerance(12 + 11 * xs.len(), 10.0);
        for x in &xs {
            let sb = blocked.execute_into(&cfg, &layer, &q, x, &mut out_b).unwrap();
            let sn = naive.execute_into_naive(&cfg, &layer, &q, x, &mut out_n).unwrap();
            let mismatch = reuse_tensor::simd::kernel_mismatch(&out_b, &out_n, tol);
            prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap());
            // Quantize/diff is bit-exact at every level, so the two paths
            // see identical delta lists and identical counters.
            prop_assert_eq!(sb.macs_performed, sn.macs_performed);
            prop_assert_eq!(sb.n_changed, sn.n_changed);
        }
    }

    #[test]
    fn conv_blocked_corrections_match_naive_bitwise(
        xs in frames(4, 3 * 6 * 7),
        out_c in 1usize..7,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let spec = Conv2dSpec { in_channels: 3, out_channels: out_c, kh: 3, kw: 3, stride, pad };
        let layer = Conv2dLayer::random(spec, Activation::Identity, &mut Rng64::new(29));
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let cfg = reuse_tensor::ParallelConfig::serial();
        let in_shape = Shape::d3(3, 6, 7);
        let mut blocked = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        let mut naive = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        let (mut out_b, mut out_n) = (Vec::new(), Vec::new());
        for x in &xs {
            let sb = blocked.execute_into(&cfg, &layer, &q, x, &mut out_b).unwrap();
            let sn = naive.execute_into_naive(&cfg, &layer, &q, x, &mut out_n).unwrap();
            let bb: Vec<u32> = out_b.iter().map(|v| v.to_bits()).collect();
            let nb: Vec<u32> = out_n.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bb, nb);
            prop_assert_eq!(sb.macs_performed, sn.macs_performed);
            prop_assert_eq!(sb.n_changed, sn.n_changed);
        }
    }

    #[test]
    fn lstm_batched_corrections_match_naive(xs in frames(8, 9)) {
        let cell = LstmCell::random(9, 5, &mut Rng64::new(31));
        let xq = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let hq = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let cfg = reuse_tensor::ParallelConfig::serial();
        let bit_exact = reuse_tensor::simd::is_bit_exact();
        let mut blocked = LstmReuseState::new(&cell);
        let mut naive = LstmReuseState::new(&cell);
        let (mut h_b, mut h_n) = (Vec::new(), Vec::new());
        // (9 + 5 + 1) pre-activation terms per gate, recurrent over the
        // whole sequence; the gate nonlinearities contract, never expand.
        let tol = reuse_tensor::simd::fma_tolerance(15 * xs.len(), 30.0);
        for x in &xs {
            let sb = blocked.step_into(&cfg, &cell, &xq, &hq, x, &mut h_b).unwrap();
            let sn = naive.step_into_naive(&cfg, &cell, &xq, &hq, x, &mut h_n).unwrap();
            let mismatch = reuse_tensor::simd::kernel_mismatch(&h_b, &h_n, tol);
            prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap());
            // Under AVX2 the recurrent h inputs can differ by ULPs between
            // the two paths, which may flip a quantization boundary and
            // change the delta lists — counters are only guaranteed equal
            // under the bit-exact (scalar) contract.
            if bit_exact {
                prop_assert_eq!(sb.macs_performed, sn.macs_performed);
                prop_assert_eq!(sb.n_changed, sn.n_changed);
            }
        }
    }
}

//! Drift-watchdog behaviour: detection, re-baselining, bit-identity of the
//! re-baselined output, escalation to auto-disable, and the consistency of
//! telemetry with the engine's offline metrics.

use proptest::prelude::*;
use reuse_core::{ReuseConfig, ReuseEngine};
use reuse_nn::{init::Rng64, Activation, Network, NetworkBuilder};

fn mlp(seed: u64) -> Network {
    let _ = seed; // NetworkBuilder seeds internally from the name.
    NetworkBuilder::new("watchdog-mlp", 24)
        .fully_connected(48, Activation::Relu)
        .fully_connected(32, Activation::Relu)
        .fully_connected(8, Activation::Identity)
        .build()
        .unwrap()
}

fn drifting_frames(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.8)).collect();
    (0..n)
        .map(|_| {
            for v in frame.iter_mut() {
                *v = (*v + rng.uniform(0.15)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

/// A deliberately coarse quantizer (2 clusters) makes incremental outputs
/// deviate far beyond a tight bound, so a watchdog checking every frame must
/// fire, re-baseline, and leave that frame's output bit-identical to the
/// full-precision reference.
#[test]
fn coarse_quantizer_trips_watchdog_and_rebaselines_bit_identically() {
    let net = mlp(0);
    let config = ReuseConfig::uniform(2)
        .telemetry(true)
        .drift_watchdog(1, 1e-4);
    let mut engine = ReuseEngine::from_network(&net, &config);
    let frames = drifting_frames(12, 24, 42);
    for frame in &frames {
        let out = engine.execute(frame).unwrap();
        let stats = engine.watchdog_stats();
        if stats.rebaselines > 0 {
            // A re-baselined frame's output IS the reference output.
            let reference = engine.reference_forward(frame).unwrap();
            assert_eq!(
                out.as_slice(),
                reference.as_slice(),
                "post-rebaseline output must be bit-identical to reference_forward"
            );
        }
    }
    let stats = engine.watchdog_stats();
    assert!(stats.checks >= 10, "checked {} frames", stats.checks);
    assert!(
        stats.rebaselines > 0,
        "2-cluster quantization over drifting frames must exceed a 1e-4 bound"
    );
    assert!(stats.max_drift > 1e-4);
    let snap = engine.telemetry_snapshot().unwrap();
    assert!(
        snap.layers.iter().any(|l| l.rebaselines > 0),
        "per-layer rebaseline provenance missing from snapshot"
    );
}

/// With a fine quantizer and a loose bound the watchdog checks but never
/// fires, and reuse statistics keep accumulating normally.
#[test]
fn fine_quantizer_never_trips_watchdog() {
    let net = mlp(0);
    let config = ReuseConfig::uniform(32).drift_watchdog(2, 0.5);
    let mut engine = ReuseEngine::from_network(&net, &config);
    for frame in &drifting_frames(10, 24, 7) {
        engine.execute(frame).unwrap();
    }
    let stats = engine.watchdog_stats();
    assert!(stats.checks >= 4);
    assert_eq!(stats.rebaselines, 0, "drift {}", stats.max_drift);
    assert!(stats.max_drift < 0.5);
    assert!(engine.metrics().overall_input_similarity() > 0.0);
}

/// The escalation path: repeated strikes auto-disable the drifting layers,
/// after which they run in full precision and the engine output tracks the
/// reference exactly.
#[test]
fn repeated_strikes_escalate_to_auto_disable() {
    let net = mlp(0);
    let config = ReuseConfig::uniform(2)
        .drift_watchdog(1, 1e-5)
        .drift_escalate_after(2);
    let mut engine = ReuseEngine::from_network(&net, &config);
    let frames = drifting_frames(30, 24, 3);
    for frame in &frames {
        engine.execute(frame).unwrap();
    }
    let disabled = engine.auto_disabled_layers().count();
    assert!(
        disabled > 0,
        "a 1e-5 bound with 2 clusters must accumulate strikes: {:?}",
        engine.watchdog_stats()
    );
    // Once every layer is disabled, execution is full-precision end to end.
    if disabled == 3 {
        let last = frames.last().unwrap();
        let out = engine.execute(last).unwrap();
        let reference = engine.reference_forward(last).unwrap();
        assert_eq!(out.as_slice(), reference.as_slice());
    }
}

/// Telemetry must agree exactly with the offline metrics: lifetime hit rate
/// per layer == `LayerMetrics::input_similarity` on the same run.
#[test]
fn telemetry_hit_rates_match_offline_metrics_exactly() {
    let net = mlp(0);
    let config = ReuseConfig::uniform(16).telemetry(true);
    let mut engine = ReuseEngine::from_network(&net, &config);
    for frame in &drifting_frames(20, 24, 5) {
        engine.execute(frame).unwrap();
    }
    let snap = engine.telemetry_snapshot().unwrap();
    assert_eq!(snap.layers.len(), engine.metrics().layers.len());
    for layer in &snap.layers {
        let m = engine.metrics().layer(&layer.name).unwrap();
        assert!(
            (layer.hit_rate - m.input_similarity()).abs() < f64::EPSILON,
            "{}: telemetry {} vs metrics {}",
            layer.name,
            layer.hit_rate,
            m.input_similarity()
        );
        assert_eq!(layer.reuse_executions, m.reuse_executions);
        assert_eq!(
            layer.macs_skipped_total,
            m.macs_total - m.macs_performed,
            "{}",
            layer.name
        );
    }
    // The JSON export round-trips the same hit rates.
    let json = snap.to_json();
    assert!(json.contains("\"network\": \"watchdog-mlp\""));
    for layer in &snap.layers {
        assert!(json.contains(&format!("\"name\": \"{}\"", layer.name)));
    }
    // Pool provenance: steady-state frames hit the recycled buffers.
    assert!(snap.pool.hits > snap.pool.misses);
}

/// `reset_state` clears accumulated statistics (metrics, relative
/// differences, telemetry, watchdog counters) but keeps quantizers, so the
/// next execution is quantized-from-scratch with fresh numbers.
#[test]
fn reset_state_clears_statistics_but_keeps_quantizers() {
    let net = mlp(0);
    let config = ReuseConfig::uniform(16)
        .telemetry(true)
        .record_relative_difference(true)
        .drift_watchdog(1, 0.0); // fires every check: drift is never < 0
    let mut engine = ReuseEngine::from_network(&net, &config);
    for frame in &drifting_frames(8, 24, 13) {
        engine.execute(frame).unwrap();
    }
    assert!(engine.metrics().executions > 0);
    assert!(engine.watchdog_stats().checks > 0);
    assert!(engine
        .layer_relative_differences("fc1")
        .is_some_and(|r| !r.is_empty()));

    engine.reset_state();

    assert!(engine.is_calibrated(), "quantizers survive reset_state");
    assert!(engine.quantizer_for("fc1").is_some());
    assert_eq!(engine.metrics().executions, 0);
    for m in &engine.metrics().layers {
        assert_eq!(m.reuse_executions, 0);
        assert_eq!(m.inputs_total, 0);
        assert!(m.relative_differences.is_empty());
    }
    let stats = engine.watchdog_stats();
    assert_eq!(stats.checks, 0);
    assert_eq!(stats.rebaselines, 0);
    let tel = engine.telemetry().unwrap();
    assert_eq!(tel.frames, 0);
    assert!(tel.layers.iter().all(|l| l.hit_rate.is_empty()));
    let snap = engine.telemetry_snapshot().unwrap();
    assert!(snap.layers.iter().all(|l| l.rebaselines == 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for any drifting input sequence, a watchdog armed with a
    /// coarse quantizer and a tight bound re-baselines at least once, and
    /// every frame where a check fired ends bit-identical to the reference
    /// (either drift was within bound after an earlier re-baseline, or the
    /// frame was re-baselined now). Checked on the final frame.
    #[test]
    fn watchdog_rebaseline_restores_reference_output(
        seed in 0u64..500,
        clusters in 2usize..4,
    ) {
        let net = mlp(0);
        let config = ReuseConfig::uniform(clusters).drift_watchdog(1, 1e-6);
        let mut engine = ReuseEngine::from_network(&net, &config);
        let frames = drifting_frames(8, 24, seed);
        let mut last_out = None;
        for frame in &frames {
            last_out = Some(engine.execute(frame).unwrap());
        }
        let stats = engine.watchdog_stats();
        prop_assert!(stats.checks >= 6);
        prop_assert!(stats.rebaselines > 0, "max drift {}", stats.max_drift);
        // The final frame was checked (cadence 1). A 1e-6 bound is below
        // f32 noise for this net, so it must have been re-baselined, making
        // its output exactly the reference.
        let reference = engine.reference_forward(frames.last().unwrap()).unwrap();
        let last_out = last_out.unwrap();
        prop_assert_eq!(last_out.as_slice(), reference.as_slice());
    }
}

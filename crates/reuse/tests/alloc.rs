//! Zero-allocation contract of the steady-state hot path.
//!
//! A counting global allocator wraps the system allocator; once the engine
//! reaches steady state (calibrated, buffered state initialized, pool
//! primed), `execute_into` with the serial config must not allocate at all:
//! intermediates come from the engine's recycling pool and per-layer scratch
//! (changed lists, quantized codes, buffered outputs) is reused in place.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use reuse_core::{ReuseConfig, ReuseEngine};
use reuse_nn::{init::Rng64, Activation, NetworkBuilder};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_execute_into_is_allocation_free() {
    let net = NetworkBuilder::new("steady", 32)
        .fully_connected(64, Activation::Relu)
        .fully_connected(48, Activation::Relu)
        .fully_connected(10, Activation::Identity)
        .build()
        .unwrap();
    let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));

    let mut rng = Rng64::new(9);
    let mut frame: Vec<f32> = (0..32).map(|_| rng.uniform(0.9)).collect();
    let mut out = Vec::new();

    // Calibration, state-initializing first reuse execution, and one steady
    // frame to prime the buffer pool and `out`'s capacity.
    for _ in 0..3 {
        engine.execute_into(&frame, &mut out).unwrap();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        // Drift a few inputs in place so the incremental path does real
        // correction work, not just the all-reused fast case.
        for _ in 0..8 {
            let i = (rng.next_u64() % 32) as usize;
            frame[i] = (frame[i] + rng.uniform(0.5)).clamp(-1.0, 1.0);
        }
        engine.execute_into(&frame, &mut out).unwrap();
        assert_eq!(out.len(), 10);
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "steady-state frames allocated {allocations} times"
    );
}

#[test]
fn steady_state_with_telemetry_is_allocation_free() {
    // Telemetry rings are preallocated at engine construction; recording
    // into them (and the span timing around each layer) must not allocate.
    // The drift watchdog is left unarmed: its check frames recompute the
    // reference output and are documented as off the zero-alloc contract.
    let net = NetworkBuilder::new("steady-tel", 32)
        .fully_connected(64, Activation::Relu)
        .fully_connected(48, Activation::Relu)
        .fully_connected(10, Activation::Identity)
        .build()
        .unwrap();
    let config = ReuseConfig::uniform(16).telemetry(true).telemetry_window(8);
    let mut engine = ReuseEngine::from_network(&net, &config);

    let mut rng = Rng64::new(11);
    let mut frame: Vec<f32> = (0..32).map(|_| rng.uniform(0.9)).collect();
    let mut out = Vec::new();
    for _ in 0..3 {
        engine.execute_into(&frame, &mut out).unwrap();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        for _ in 0..8 {
            let i = (rng.next_u64() % 32) as usize;
            frame[i] = (frame[i] + rng.uniform(0.5)).clamp(-1.0, 1.0);
        }
        engine.execute_into(&frame, &mut out).unwrap();
        assert_eq!(out.len(), 10);
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "telemetry-on steady-state frames allocated {allocations} times"
    );

    // The frames above were recorded: more than the window, so the rings are
    // full and the lifetime counters kept counting. Of the 13 executions,
    // one was calibration, so 12 were reuse-phase frames; the first of those
    // initialized state from scratch, leaving 11 recorded executions.
    let tel = engine.telemetry().unwrap();
    assert_eq!(tel.frames, 12);
    for layer in &tel.layers {
        assert_eq!(layer.hit_rate.len(), 8, "ring full at window capacity");
        assert!(layer.reuse_executions >= 11);
    }
}

#[test]
fn session_steady_state_execute_into_is_allocation_free() {
    // The buffer pool lives in the per-stream session: two sessions sharing
    // one compiled model each reach a zero-alloc steady state independently,
    // even with their frames interleaved.
    use std::sync::Arc;

    use reuse_core::CompiledModel;

    let net = NetworkBuilder::new("steady-sessions", 32)
        .fully_connected(64, Activation::Relu)
        .fully_connected(48, Activation::Relu)
        .fully_connected(10, Activation::Identity)
        .build()
        .unwrap();
    let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let mut a = model.new_session();
    let mut b = model.new_session();

    let mut rng = Rng64::new(23);
    let mut frame_a: Vec<f32> = (0..32).map(|_| rng.uniform(0.9)).collect();
    let mut frame_b: Vec<f32> = (0..32).map(|_| rng.uniform(0.9)).collect();
    let mut out_a = Vec::new();
    let mut out_b = Vec::new();

    // Calibration, state-initializing first reuse execution, and one steady
    // frame to prime each session's pool and the output capacities.
    for _ in 0..3 {
        a.execute_into(&frame_a, &mut out_a).unwrap();
        b.execute_into(&frame_b, &mut out_b).unwrap();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        for _ in 0..8 {
            let i = (rng.next_u64() % 32) as usize;
            frame_a[i] = (frame_a[i] + rng.uniform(0.5)).clamp(-1.0, 1.0);
            let j = (rng.next_u64() % 32) as usize;
            frame_b[j] = (frame_b[j] + rng.uniform(0.5)).clamp(-1.0, 1.0);
        }
        a.execute_into(&frame_a, &mut out_a).unwrap();
        b.execute_into(&frame_b, &mut out_b).unwrap();
        // Bench hot loops poll these per frame; they must stay
        // allocation-free (borrowed names / `Copy` stats, regression guard
        // against the old per-call `Vec<String>`).
        assert_eq!(a.auto_disabled_layers().count(), 0);
        let _stats = a.watchdog_stats();
        let _pool = b.pool_stats();
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "interleaved session steady-state frames allocated {allocations} times"
    );
}

#[test]
fn conv_state_steady_frames_are_allocation_free() {
    // The blocked conv correction path builds its weight transpose lazily on
    // the first incremental frame; after that, pass 1 writes the precomputed
    // delta list into capacity reserved at construction and pass 2 walks
    // buffers in place, so steady-state frames must not allocate.
    use reuse_core::conv::Conv2dReuseState;
    use reuse_nn::Conv2dLayer;
    use reuse_quant::{InputRange, LinearQuantizer};
    use reuse_tensor::conv::Conv2dSpec;
    use reuse_tensor::{ParallelConfig, Shape};

    let spec = Conv2dSpec {
        in_channels: 3,
        out_channels: 8,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };
    let layer = Conv2dLayer::random(spec, Activation::Identity, &mut Rng64::new(5));
    let quantizer = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 32).unwrap();
    let in_shape = Shape::d3(3, 12, 12);
    let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();

    let mut rng = Rng64::new(17);
    let mut frame: Vec<f32> = (0..in_shape.volume()).map(|_| rng.uniform(0.9)).collect();
    let mut out = Vec::new();
    let config = ParallelConfig::serial();

    // From-scratch init, then one incremental frame to build the lazy
    // transpose and size `out`.
    for _ in 0..2 {
        state
            .execute_into(&config, &layer, &quantizer, &frame, &mut out)
            .unwrap();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        for _ in 0..16 {
            let i = (rng.next_u64() % frame.len() as u64) as usize;
            frame[i] = (frame[i] + rng.uniform(0.5)).clamp(-1.0, 1.0);
        }
        let stats = state
            .execute_into(&config, &layer, &quantizer, &frame, &mut out)
            .unwrap();
        assert!(stats.n_changed > 0, "drifted frame must correct something");
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "steady-state conv frames allocated {allocations} times"
    );
}

//! Cross-stream signature cache integration: capacity-0 degrades to
//! per-stream behavior bit for bit, similar streams adopt each other's
//! baselines, and the bailout guard keeps dissimilar hits from ever
//! corrupting outputs.

use std::sync::Arc;

use reuse_core::{CompiledModel, ReuseConfig, ReuseSession};
use reuse_nn::{init::Rng64, Activation, Network, NetworkBuilder};

/// A smooth random walk of frames, mimicking consecutive audio windows.
fn walk(len: usize, dim: usize, step: f32, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.5)).collect();
    (0..len)
        .map(|_| {
            for v in &mut frame {
                *v = (*v + rng.uniform(step)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

fn mlp() -> Network {
    NetworkBuilder::new("mlp", 12)
        .seed(5)
        .fully_connected(24, Activation::Relu)
        .fully_connected(16, Activation::Relu)
        .fully_connected(4, Activation::Identity)
        .build()
        .unwrap()
}

fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
    }
}

fn run(session: &mut ReuseSession, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
    frames
        .iter()
        .map(|f| session.execute(f).unwrap().as_slice().to_vec())
        .collect()
}

/// Capacity 0 keeps the lookup plumbing alive but can never hit or
/// insert, so outputs must be bit-identical to a cache-off model.
#[test]
fn capacity_zero_is_bit_identical_to_cache_off() {
    let net = mlp();
    let frames = walk(20, 12, 0.08, 31);

    let off = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let on = Arc::new(CompiledModel::new(
        &net,
        &ReuseConfig::uniform(16)
            .signature_cache(true)
            .signature_cache_capacity(0),
    ));
    assert!(on.signature_cache().is_some());

    let mut s_off = off.new_session();
    let mut s_on = on.new_session();
    let outs_off = run(&mut s_off, &frames);
    let outs_on = run(&mut s_on, &frames);
    for (a, b) in outs_off.iter().zip(outs_on.iter()) {
        assert_bits_eq(a, b);
    }
    assert_eq!(s_off.metrics(), s_on.metrics(), "reuse metrics unchanged");

    let stats = s_on.signature_stats();
    assert!(stats.lookups > 0, "cold-start lookups still happen");
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.adoptions, 0);
    assert_eq!(stats.inserts, 0, "capacity 0 rejects inserts");
    assert!(on.signature_cache().unwrap().is_empty());
}

/// A second stream with the same frames adopts the first stream's
/// published baseline instead of running its cold-start from scratch.
#[test]
fn similar_stream_adopts_cached_baseline() {
    let net = mlp();
    let frames = walk(10, 12, 0.05, 7);
    let model = Arc::new(CompiledModel::new(
        &net,
        &ReuseConfig::uniform(16).signature_cache(true),
    ));

    let mut producer = model.new_session();
    let baseline_outs = run(&mut producer, &frames);
    let p = producer.signature_stats();
    assert!(p.lookups > 0);
    assert_eq!(p.hits, 0, "empty cache cannot hit");
    assert!(p.inserts > 0, "cold-start from-scratch frames publish");
    assert!(!model.signature_cache().unwrap().is_empty());

    let mut consumer = model.new_session();
    let adopted_outs = run(&mut consumer, &frames);
    let c = consumer.signature_stats();
    assert!(c.hits > 0, "identical frames must hit the cache");
    assert!(c.adoptions > 0, "in-tolerance hits adopt the baseline");
    assert_eq!(c.bailouts, 0, "identical inputs change no codes");

    // Adoption corrects against the producer's buffered linear outputs:
    // numerically close to the from-scratch path, not bit-identical.
    for (a, b) in baseline_outs.iter().zip(adopted_outs.iter()) {
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 0.05, "adopted output drifted: {x} vs {y}");
        }
    }
}

/// With the bailout fraction at 0 any changed code aborts adoption, so
/// hits degrade to from-scratch and outputs stay bit-identical to a
/// cache-off model.
#[test]
fn zero_tolerance_bailout_preserves_bit_identity() {
    let net = mlp();
    let frames = walk(10, 12, 0.05, 7);
    // Same walk, with the cold-start frame nudged just enough to move a
    // few quantized codes while (deterministically) keeping the same
    // 16-bit signature.
    let mut nudged = frames.clone();
    for v in &mut nudged[1] {
        *v += 0.004;
    }

    let strict = Arc::new(CompiledModel::new(
        &net,
        &ReuseConfig::uniform(16)
            .signature_cache(true)
            .signature_bailout_fraction(0.0),
    ));
    let off = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));

    let mut producer = strict.new_session();
    run(&mut producer, &frames);

    let mut consumer = strict.new_session();
    let outs = run(&mut consumer, &nudged);
    let c = consumer.signature_stats();
    assert!(c.hits > 0, "nudge must stay inside the signature");
    assert!(c.bailouts > 0, "changed codes must trip the zero tolerance");
    assert_eq!(c.adoptions, 0);

    let mut alone = off.new_session();
    let alone_outs = run(&mut alone, &nudged);
    for (a, b) in outs.iter().zip(alone_outs.iter()) {
        assert_bits_eq(a, b);
    }
}

//! The policy layer's two load-bearing guarantees (see `DESIGN.md`):
//!
//! 1. **Static bit-identity** — configuring [`StaticPolicy`] explicitly
//!    (or a [`TunedPolicy`] whose entries resolve to the static knobs)
//!    changes no output bit and no metric counter relative to the
//!    unconfigured legacy path, at every SIMD level (`scripts/ci.sh` runs
//!    this suite under both `REUSE_SIMD=off` and `REUSE_SIMD=avx2`).
//! 2. **Adaptive convergence** — on a drifting but similar stream the
//!    controller coarsens the grid and raises skipped MACs while the
//!    watchdog's accuracy proxy stays in band; on an adversarial stream it
//!    backs off to, at worst, exactly the static grid.

use std::sync::Arc;

use proptest::prelude::*;
use reuse_core::{
    AdaptivePolicy, CompiledModel, ReuseConfig, ReuseEngine, ReusePolicy, ReuseSession,
    StaticPolicy, TunedLayerPolicy, TunedPolicy,
};
use reuse_nn::{init::Rng64, Activation, Network, NetworkBuilder};
use reuse_tensor::Shape;

/// A smooth random walk of frames, mimicking consecutive sensor windows.
fn walk(len: usize, dim: usize, step: f32, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.5)).collect();
    (0..len)
        .map(|_| {
            for v in &mut frame {
                *v = (*v + rng.uniform(step)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

fn mlp() -> Network {
    NetworkBuilder::new("mlp", 12)
        .seed(5)
        .fully_connected(24, Activation::Relu)
        .fully_connected(16, Activation::Relu)
        .fully_connected(4, Activation::Identity)
        .build()
        .unwrap()
}

fn cnn() -> Network {
    NetworkBuilder::with_input_shape("cnn", Shape::d3(2, 8, 8))
        .seed(6)
        .conv2d(4, 3, 1, 1, Activation::Relu)
        .pool2d(2)
        .flatten()
        .fully_connected(5, Activation::Identity)
        .build()
        .unwrap()
}

fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
    }
}

/// A tuned policy whose every entry resolves to exactly the static knobs
/// for `config` — the "policy file that changes nothing" case.
fn static_equivalent_tuned(net: &Network, config: &ReuseConfig) -> TunedPolicy {
    TunedPolicy {
        network: net.name().to_string(),
        layers: net
            .layers()
            .iter()
            .map(|(name, _)| TunedLayerPolicy {
                layer: name.clone(),
                clusters: config.setting_for(name).clusters,
                step_scale: 1.0,
                reuse_threshold: 1.0,
                adaptive: false,
            })
            .collect(),
    }
}

/// Runs the same stream through the legacy (no policy) path and through
/// `policy`, asserting bit-identical outputs and equal metric counters.
fn check_policy_is_noop(net: &Network, base: &ReuseConfig, policy: Arc<dyn ReusePolicy>) {
    let with_policy = base.clone().reuse_policy(policy);
    let dim = net.input_shape().volume();
    let stream = walk(40, dim, 0.1, 77);
    let mut legacy = ReuseEngine::from_network(net, base);
    let model = Arc::new(CompiledModel::new(net, &with_policy));
    let mut session: ReuseSession = model.new_session();
    for frame in &stream {
        let a = legacy.execute(frame).unwrap();
        let b = session.execute(frame).unwrap();
        assert_bits_eq(a.as_slice(), b.as_slice());
    }
    assert_eq!(legacy.metrics(), session.metrics());
    assert_eq!(
        legacy.session().watchdog_stats(),
        session.watchdog_stats(),
        "watchdog path must be untouched by a static policy"
    );
    // The resolved state is visible but inert: scale pinned to 1.0, no
    // controller activity.
    for st in session.policy_states() {
        assert!(!st.adaptive);
        assert_eq!(st.step_scale.to_bits(), 1.0f32.to_bits());
        assert_eq!(st.observations + st.grows + st.shrinks + st.refreshes, 0);
    }
}

#[test]
fn explicit_static_policy_is_bit_identical_on_mlp_and_cnn() {
    for net in [mlp(), cnn()] {
        // Plain config, and one with the watchdog + signature knobs armed
        // so every policy-consuming code path runs.
        for base in [
            ReuseConfig::uniform(16),
            ReuseConfig::uniform(16)
                .drift_watchdog(4, 1e-2)
                .drift_escalate_after(2)
                .telemetry(true),
        ] {
            check_policy_is_noop(&net, &base, Arc::new(StaticPolicy));
        }
    }
}

#[test]
fn static_equivalent_tuned_policy_is_bit_identical() {
    for net in [mlp(), cnn()] {
        let base = ReuseConfig::uniform(16).drift_watchdog(5, 1e-2);
        let tuned = static_equivalent_tuned(&net, &base);
        // The file round-trips and still changes nothing.
        let reloaded = TunedPolicy::from_json(&tuned.to_json()).unwrap();
        assert_eq!(reloaded, tuned);
        check_policy_is_noop(&net, &base, Arc::new(reloaded));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form of the bit-identity guarantee: random streams,
    /// cluster counts and watchdog cadences never surface a divergence
    /// between the unconfigured path and an explicit [`StaticPolicy`].
    #[test]
    fn static_policy_bit_identity_under_random_streams(
        seed in 0u64..1000,
        step in 1u32..30,
        clusters in 4usize..33,
        check_every in 0u64..6,
    ) {
        let net = mlp();
        let base = ReuseConfig::uniform(clusters).drift_watchdog(check_every, 5e-3);
        let with_policy = base.clone().reuse_policy(Arc::new(StaticPolicy));
        let stream = walk(24, 12, step as f32 / 100.0, seed);
        let mut legacy = ReuseEngine::from_network(&net, &base);
        let model = Arc::new(CompiledModel::new(&net, &with_policy));
        let mut session = model.new_session();
        for frame in &stream {
            let a = legacy.execute(frame).unwrap();
            let b = session.execute(frame).unwrap();
            for (x, y) in a.as_slice().iter().zip(b.as_slice().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        prop_assert_eq!(legacy.metrics(), session.metrics());
        prop_assert_eq!(legacy.session().watchdog_stats(), session.watchdog_stats());
    }
}

/// Drives `session` and a static baseline over the same stream, returning
/// `(static_reuse, adaptive_reuse)` overall computation-reuse fractions.
fn run_pair(
    net: &Network,
    base: &ReuseConfig,
    adaptive_cfg: &ReuseConfig,
    stream: &[Vec<f32>],
) -> (f64, f64, ReuseSession) {
    let mut st = ReuseEngine::from_network(net, base);
    let model = Arc::new(CompiledModel::new(net, adaptive_cfg));
    let mut ad = model.new_session();
    for frame in stream {
        st.execute(frame).unwrap();
        ad.execute(frame).unwrap();
    }
    (
        st.metrics().overall_computation_reuse(),
        ad.metrics().overall_computation_reuse(),
        ad,
    )
}

/// On a similar-but-drifting stream the controller must coarsen the grid
/// (raising skipped MACs above the static baseline) while the watchdog's
/// accuracy proxy stays in band — zero drift violations.
#[test]
fn adaptive_policy_raises_reuse_on_similar_streams_without_tripping_the_watchdog() {
    let net = mlp();
    let base = ReuseConfig::uniform(64).drift_watchdog(4, 0.25);
    let adaptive = base
        .clone()
        .reuse_policy(Arc::new(AdaptivePolicy::default()));
    // Fine base grid + smooth walk: moderate similarity at scale 1.0, so
    // the controller has room (and reason) to coarsen.
    let stream = walk(160, 12, 0.04, 42);
    let (static_reuse, adaptive_reuse, session) = run_pair(&net, &base, &adaptive, &stream);
    assert!(
        adaptive_reuse > static_reuse,
        "adaptive must skip more MACs: static {static_reuse:.4} vs adaptive {adaptive_reuse:.4}"
    );
    let wd = session.watchdog_stats();
    assert!(wd.checks > 0, "watchdog must have observed the run");
    assert_eq!(wd.rebaselines, 0, "accuracy proxy left its band");
    assert!(wd.max_drift <= 0.25, "drift {} out of band", wd.max_drift);
    let states = session.policy_states();
    assert!(
        states.iter().any(|s| s.step_scale > 1.0),
        "no layer coarsened: {states:?}"
    );
    assert!(states.iter().all(|s| s.adaptive));
    assert!(states.iter().map(|s| s.grows).sum::<u64>() > 0);
}

/// An adversarial stream — a calm prefix that lures the controller into
/// coarsening, then chaotic frames — must walk the scale back down; the
/// session ends at-worst-static, not stuck coarse and inaccurate.
#[test]
fn adaptive_policy_backs_off_to_static_on_adversarial_streams() {
    let net = mlp();
    let base = ReuseConfig::uniform(64).drift_watchdog(2, 0.02);
    let adaptive = base
        .clone()
        .reuse_policy(Arc::new(AdaptivePolicy::default()));
    let mut stream = walk(80, 12, 0.03, 9);
    // Chaos phase: frames jump across the whole input range.
    stream.extend(walk(120, 12, 1.5, 1009));
    let model = Arc::new(CompiledModel::new(&net, &adaptive));
    let mut session = model.new_session();
    for frame in &stream {
        session.execute(frame).unwrap();
    }
    let states = session.policy_states();
    assert!(
        states.iter().map(|s| s.grows).sum::<u64>() > 0,
        "calm prefix should have coarsened at least one layer: {states:?}"
    );
    assert!(
        states.iter().map(|s| s.shrinks).sum::<u64>() > 0,
        "chaos phase should have walked the scale back down: {states:?}"
    );
    for s in &states {
        assert!(
            s.step_scale <= 1.0 + 1e-6,
            "layer {} still coarse after backoff: scale {}",
            s.name,
            s.step_scale
        );
    }
    // The tightened threshold makes chaotic frames refresh instead of
    // paying per-input corrections on a stale baseline.
    assert!(
        states.iter().map(|s| s.refreshes).sum::<u64>() > 0,
        "chaotic frames above the refresh threshold must refresh: {states:?}"
    );
}

/// Telemetry snapshots expose the controllers' live state so operators can
/// see what the policy chose.
#[test]
fn telemetry_snapshot_carries_policy_state() {
    let net = mlp();
    let config = ReuseConfig::uniform(32)
        .drift_watchdog(4, 0.25)
        .telemetry(true)
        .reuse_policy(Arc::new(AdaptivePolicy::default()));
    let model = Arc::new(CompiledModel::new(&net, &config));
    let mut session = model.new_session();
    for frame in &walk(60, 12, 0.05, 64) {
        session.execute(frame).unwrap();
    }
    let snap = session.telemetry_snapshot().expect("telemetry enabled");
    assert_eq!(snap.policy, "adaptive");
    assert_eq!(snap.policy_layers.len(), 3);
    let json = snap.to_json();
    assert!(json.contains("\"policy\": \"adaptive\""));
    assert!(json.contains("\"policy_layers\": ["));
    assert!(json.contains("\"reuse_threshold\""));
}

/// `reset_state` returns the controllers (and the grid) to the initial
/// operating point: a reset adaptive session replays a stream exactly as a
/// fresh one does.
#[test]
fn reset_state_restores_the_initial_operating_point() {
    let net = mlp();
    let config = ReuseConfig::uniform(64)
        .drift_watchdog(4, 0.25)
        .reuse_policy(Arc::new(AdaptivePolicy::default()));
    let stream = walk(100, 12, 0.05, 31);
    let model = Arc::new(CompiledModel::new(&net, &config));
    let mut session = model.new_session();
    for frame in &stream {
        session.execute(frame).unwrap();
    }
    assert!(session.policy_states().iter().any(|s| s.step_scale > 1.0));
    session.reset_state();
    for s in session.policy_states() {
        assert_eq!(s.step_scale.to_bits(), 1.0f32.to_bits());
        assert_eq!(s.observations + s.grows + s.shrinks + s.refreshes, 0);
    }
    // Replay: same stream, same decisions — the reset left no residue
    // (calibration is kept, so compare against a second reset run).
    for frame in &stream {
        session.execute(frame).unwrap();
    }
    let first = session.policy_states();
    session.reset_state();
    for frame in &stream {
        session.execute(frame).unwrap();
    }
    let second = session.policy_states();
    assert_eq!(first, second);
}

//! The uniform per-layer reuse interface.
//!
//! Every reuse-enabled layer family (fully-connected, conv2d/3d, LSTM,
//! BiLSTM) exposes the same small surface to the execution engine through
//! [`ReuseLayer`]: correct buffered outputs for one frame, adopt a fresh
//! baseline after a watchdog re-baseline, reset between sequences, and
//! report per-stream storage. The engine walks a plan of trait objects
//! built once per session — no per-kind `match` remains on the execute
//! path. Immutable inputs (network layer, packed weights, quantizers) come
//! in through [`StepCtx`], borrowed from the shared
//! [`CompiledModel`](crate::CompiledModel); everything behind `&mut self`
//! is per-stream session state.

use reuse_nn::{Layer, LayerKind};
use reuse_quant::LinearQuantizer;
use reuse_tensor::ParallelConfig;

use crate::conv::{Conv2dReuseState, Conv3dReuseState, ConvExecStats};
use crate::fc::{FcExecStats, FcReuseState};
use crate::lstm::{LstmExecStats, LstmReuseState};
use crate::model::CompiledWeights;
use crate::trace::TraceKind;
use crate::ReuseError;

/// `Instant::now()` only when spans are being recorded, so the disabled
/// path pays a single branch.
pub(crate) fn span_start(timed: bool) -> Option<std::time::Instant> {
    timed.then(std::time::Instant::now)
}

pub(crate) fn span_elapsed_ns(start: Option<std::time::Instant>) -> u64 {
    start.map_or(0, |t| t.elapsed().as_nanos() as u64)
}

/// Everything a [`ReuseLayer`] step needs that is *not* per-stream state:
/// the network layer, the model's packed weights for it, and the session's
/// quantizers. Borrowed per call — the layer object itself stores only
/// mutable stream state.
#[derive(Debug)]
pub struct StepCtx<'a> {
    /// Thread-pool configuration for the correction kernels.
    pub parallel: &'a ParallelConfig,
    /// The network layer this state corrects for.
    pub layer: &'a Layer,
    /// Packed/blocked weights shared by every session of the model.
    pub weights: &'a CompiledWeights,
    /// Quantizer for the layer's feed-forward inputs. `None` only for
    /// passthrough slots, which recompute without quantizing.
    pub quantizer_x: Option<&'a LinearQuantizer>,
    /// Quantizer for the recurrent inputs (LSTM/BiLSTM only).
    pub quantizer_h: Option<&'a LinearQuantizer>,
}

/// Normalized per-execution stats shared by all layer families.
#[derive(Debug, Clone, Copy)]
pub struct ExecStats {
    /// Inputs inspected this execution (x plus h for recurrent cells).
    pub n_inputs: u64,
    /// Inputs whose quantized index changed since the previous execution.
    pub n_changed: u64,
    /// MACs a from-scratch execution would perform.
    pub macs_total: u64,
    /// MACs actually performed (corrections only).
    pub macs_performed: u64,
    /// Whether this execution initialized state from scratch.
    pub from_scratch: bool,
}

impl From<FcExecStats> for ExecStats {
    fn from(s: FcExecStats) -> Self {
        ExecStats {
            n_inputs: s.n_inputs,
            n_changed: s.n_changed,
            macs_total: s.macs_total,
            macs_performed: s.macs_performed,
            from_scratch: s.from_scratch,
        }
    }
}

impl From<ConvExecStats> for ExecStats {
    fn from(s: ConvExecStats) -> Self {
        ExecStats {
            n_inputs: s.n_inputs,
            n_changed: s.n_changed,
            macs_total: s.macs_total,
            macs_performed: s.macs_performed,
            from_scratch: s.from_scratch,
        }
    }
}

impl From<LstmExecStats> for ExecStats {
    fn from(s: LstmExecStats) -> Self {
        ExecStats {
            n_inputs: s.n_inputs,
            n_changed: s.n_changed,
            macs_total: s.macs_total,
            macs_performed: s.macs_performed,
            from_scratch: s.from_scratch,
        }
    }
}

impl ExecStats {
    /// Sums the counters of two executions (e.g. the two directions of a
    /// BiLSTM timestep).
    pub fn merge(self, other: ExecStats) -> ExecStats {
        ExecStats {
            n_inputs: self.n_inputs + other.n_inputs,
            n_changed: self.n_changed + other.n_changed,
            macs_total: self.macs_total + other.macs_total,
            macs_performed: self.macs_performed + other.macs_performed,
            from_scratch: self.from_scratch || other.from_scratch,
        }
    }

    /// The trace mode this execution ran in.
    pub fn mode(&self, enabled: bool) -> TraceKind {
        if !enabled {
            TraceKind::ScratchFp32
        } else if self.from_scratch {
            TraceKind::ScratchQuantized
        } else {
            TraceKind::Incremental
        }
    }
}

fn wrong_layer(expected: &'static str) -> ReuseError {
    ReuseError::WrongApi {
        context: format!("reuse state dispatched against a non-{expected} layer"),
    }
}

/// The input quantizer, which every reuse-correcting (non-passthrough)
/// state requires.
fn require_qx<'a>(ctx: &StepCtx<'a>) -> Result<&'a LinearQuantizer, ReuseError> {
    ctx.quantizer_x.ok_or_else(|| ReuseError::WrongApi {
        context: "reuse correction stepped without an input quantizer".into(),
    })
}

/// Infallible variant for `adopt_baseline`, whose signature cannot error:
/// the watchdog only re-baselines quantizing slots.
fn expect_qx<'a>(ctx: &StepCtx<'a>) -> &'a LinearQuantizer {
    ctx.quantizer_x
        .expect("frame-wise reuse layers carry an input quantizer")
}

/// One reuse-enabled layer's per-stream state behind a uniform interface.
///
/// Implementations hold only mutable stream state (previous quantized
/// indices, buffered linear outputs, LSTM cell/hidden baselines); the
/// immutable half — weights, packs, quantizers — arrives through
/// [`StepCtx`] so one [`CompiledModel`](crate::CompiledModel) can serve
/// many sessions.
pub trait ReuseLayer: std::fmt::Debug + Send {
    /// The layer family this state corrects for.
    fn kind(&self) -> LayerKind;

    /// Corrects the buffered outputs for one frame and writes the layer's
    /// *post-step* values into `out` (linear pre-activations for
    /// frame-wise layers, the hidden state for recurrent cells).
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] on shape mismatches or when the state is
    /// stepped against the wrong layer kind.
    fn correct(
        &mut self,
        ctx: &StepCtx<'_>,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ExecStats, ReuseError>;

    /// One full execution: [`Self::correct`] plus the layer's activation
    /// (recurrent cells apply their nonlinearities inside `correct`, where
    /// [`Layer::activation`] is `None`).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::correct`] errors.
    fn step(
        &mut self,
        ctx: &StepCtx<'_>,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ExecStats, ReuseError> {
        let stats = self.correct(ctx, input, out)?;
        if let Some(act) = ctx.layer.activation() {
            act.apply_in_place(out);
        }
        Ok(stats)
    }

    /// Runs a whole sequence through this layer, one [`Self::step`] per
    /// timestep, appending one entry per timestep to `out`/`stats`/`spans`
    /// (expected empty on entry). BiLSTM overrides this with its
    /// forward-then-backward schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step`] errors.
    fn step_sequence(
        &mut self,
        ctx: &StepCtx<'_>,
        xs: &[Vec<f32>],
        timed: bool,
        out: &mut Vec<Vec<f32>>,
        stats: &mut Vec<ExecStats>,
        spans: &mut Vec<u64>,
    ) -> Result<(), ReuseError> {
        for x in xs {
            let span = span_start(timed);
            let mut h = Vec::new();
            let s = self.step(ctx, x, &mut h)?;
            spans.push(span_elapsed_ns(span));
            out.push(h);
            stats.push(s);
        }
        Ok(())
    }

    /// Re-baselines the buffered state onto exact full-precision values:
    /// codes become the quantization of `input`, buffered outputs become
    /// `linear` (the serial linear forward on `input`). Only meaningful for
    /// frame-wise layers — the drift watchdog never runs on recurrent
    /// networks.
    fn adopt_baseline(&mut self, ctx: &StepCtx<'_>, input: &[f32], linear: &[f32]);

    /// The buffered linear outputs (empty for recurrent cells, whose
    /// baseline is the gate pre-activation buffer the watchdog never
    /// inspects).
    fn buffered_linear(&self) -> &[f32];

    /// Whether a baseline (codes + buffered outputs) is in place, i.e. the
    /// next [`Self::step`] will correct incrementally instead of running
    /// from scratch. Recurrent cells report `true`: the cross-stream
    /// signature cache (the only caller) never adopts into them.
    fn is_initialized(&self) -> bool {
        true
    }

    /// Drops buffered state; the next execution recomputes from scratch
    /// (the between-sequence power-gate reset).
    fn reset(&mut self, layer: &Layer);

    /// Extra I/O-buffer/main-memory bytes this stream's state needs:
    /// indices plus buffered outputs (Table III accounting). Per session —
    /// shared packed weights are accounted on the model.
    fn storage_bytes(&self, layer: &Layer) -> u64;
}

impl ReuseLayer for FcReuseState {
    fn kind(&self) -> LayerKind {
        LayerKind::Fc
    }

    fn correct(
        &mut self,
        ctx: &StepCtx<'_>,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ExecStats, ReuseError> {
        let Layer::FullyConnected(fc) = ctx.layer else {
            return Err(wrong_layer("fully-connected"));
        };
        Ok(self
            .execute_into(ctx.parallel, fc, require_qx(ctx)?, input, out)?
            .into())
    }

    fn adopt_baseline(&mut self, ctx: &StepCtx<'_>, input: &[f32], linear: &[f32]) {
        FcReuseState::adopt_baseline(self, expect_qx(ctx), input, linear);
    }

    fn buffered_linear(&self) -> &[f32] {
        FcReuseState::buffered_linear(self)
    }

    fn is_initialized(&self) -> bool {
        FcReuseState::is_initialized(self)
    }

    fn reset(&mut self, _layer: &Layer) {
        FcReuseState::reset(self);
    }

    fn storage_bytes(&self, layer: &Layer) -> u64 {
        match layer {
            Layer::FullyConnected(fc) => FcReuseState::storage_bytes(self, fc),
            _ => 0,
        }
    }
}

impl ReuseLayer for Conv2dReuseState {
    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn correct(
        &mut self,
        ctx: &StepCtx<'_>,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ExecStats, ReuseError> {
        let (Layer::Conv2d(c), CompiledWeights::Conv2d(pack)) = (ctx.layer, ctx.weights) else {
            return Err(wrong_layer("conv2d"));
        };
        Ok(self
            .execute_into_packed(ctx.parallel, c, pack, require_qx(ctx)?, input, out)?
            .into())
    }

    fn adopt_baseline(&mut self, ctx: &StepCtx<'_>, input: &[f32], linear: &[f32]) {
        Conv2dReuseState::adopt_baseline(self, expect_qx(ctx), input, linear);
    }

    fn buffered_linear(&self) -> &[f32] {
        Conv2dReuseState::buffered_linear(self)
    }

    fn is_initialized(&self) -> bool {
        Conv2dReuseState::is_initialized(self)
    }

    fn reset(&mut self, _layer: &Layer) {
        Conv2dReuseState::reset(self);
    }

    fn storage_bytes(&self, _layer: &Layer) -> u64 {
        Conv2dReuseState::storage_bytes(self)
    }
}

impl ReuseLayer for Conv3dReuseState {
    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn correct(
        &mut self,
        ctx: &StepCtx<'_>,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ExecStats, ReuseError> {
        let (Layer::Conv3d(c), CompiledWeights::Conv3d(pack)) = (ctx.layer, ctx.weights) else {
            return Err(wrong_layer("conv3d"));
        };
        Ok(self
            .execute_into_packed(ctx.parallel, c, pack, require_qx(ctx)?, input, out)?
            .into())
    }

    fn adopt_baseline(&mut self, ctx: &StepCtx<'_>, input: &[f32], linear: &[f32]) {
        Conv3dReuseState::adopt_baseline(self, expect_qx(ctx), input, linear);
    }

    fn buffered_linear(&self) -> &[f32] {
        Conv3dReuseState::buffered_linear(self)
    }

    fn is_initialized(&self) -> bool {
        Conv3dReuseState::is_initialized(self)
    }

    fn reset(&mut self, _layer: &Layer) {
        Conv3dReuseState::reset(self);
    }

    fn storage_bytes(&self, _layer: &Layer) -> u64 {
        Conv3dReuseState::storage_bytes(self)
    }
}

impl ReuseLayer for LstmReuseState {
    fn kind(&self) -> LayerKind {
        LayerKind::Recurrent
    }

    /// One full LSTM timestep — the cell nonlinearities are inherent to the
    /// step, so `correct` returns the hidden state and the default
    /// [`ReuseLayer::step`] adds nothing ([`Layer::activation`] is `None`
    /// for recurrent layers).
    fn correct(
        &mut self,
        ctx: &StepCtx<'_>,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ExecStats, ReuseError> {
        let (Layer::Lstm(cell), CompiledWeights::Lstm(pack)) = (ctx.layer, ctx.weights) else {
            return Err(wrong_layer("lstm"));
        };
        let qh = ctx.quantizer_h.ok_or_else(|| ReuseError::WrongApi {
            context: "lstm step without a hidden-state quantizer".into(),
        })?;
        Ok(self
            .step_into_packed(ctx.parallel, cell, pack, require_qx(ctx)?, qh, input, out)?
            .into())
    }

    fn adopt_baseline(&mut self, _ctx: &StepCtx<'_>, _input: &[f32], _linear: &[f32]) {
        debug_assert!(
            false,
            "the drift watchdog never re-baselines recurrent layers"
        );
    }

    fn buffered_linear(&self) -> &[f32] {
        &[]
    }

    fn reset(&mut self, layer: &Layer) {
        if let Layer::Lstm(cell) = layer {
            LstmReuseState::reset(self, cell);
        }
    }

    fn storage_bytes(&self, layer: &Layer) -> u64 {
        match layer {
            Layer::Lstm(cell) => LstmReuseState::storage_bytes(self, cell),
            _ => 0,
        }
    }
}

/// Per-stream state for one BiLSTM layer: an independent [`LstmReuseState`]
/// per direction, scheduled forward-then-backward over each sequence.
#[derive(Debug)]
pub struct BiLstmReuseState {
    fwd: LstmReuseState,
    bwd: LstmReuseState,
}

impl BiLstmReuseState {
    /// Creates both directional states with empty gate packs (corrections
    /// go through the model's shared [`CompiledWeights::BiLstm`]).
    pub fn new(layer: &reuse_nn::BiLstmLayer) -> Self {
        BiLstmReuseState {
            fwd: LstmReuseState::new_shared(layer.forward_cell()),
            bwd: LstmReuseState::new_shared(layer.backward_cell()),
        }
    }
}

impl ReuseLayer for BiLstmReuseState {
    fn kind(&self) -> LayerKind {
        LayerKind::Recurrent
    }

    /// BiLSTM has no single-frame step — the backward direction needs the
    /// whole sequence. Use [`ReuseLayer::step_sequence`].
    fn correct(
        &mut self,
        _ctx: &StepCtx<'_>,
        _input: &[f32],
        _out: &mut Vec<f32>,
    ) -> Result<ExecStats, ReuseError> {
        Err(ReuseError::WrongApi {
            context: "bilstm layers run per sequence: use step_sequence".into(),
        })
    }

    /// Forward pass over ascending timesteps, backward pass over descending
    /// timesteps, `out[t] = [h_fwd | h_bwd]`; per-timestep stats are the two
    /// directions merged and spans summed.
    fn step_sequence(
        &mut self,
        ctx: &StepCtx<'_>,
        xs: &[Vec<f32>],
        timed: bool,
        out: &mut Vec<Vec<f32>>,
        stats: &mut Vec<ExecStats>,
        spans: &mut Vec<u64>,
    ) -> Result<(), ReuseError> {
        let (Layer::BiLstm(layer), CompiledWeights::BiLstm { fwd, bwd }) = (ctx.layer, ctx.weights)
        else {
            return Err(wrong_layer("bilstm"));
        };
        let qh = ctx.quantizer_h.ok_or_else(|| ReuseError::WrongApi {
            context: "bilstm step without a hidden-state quantizer".into(),
        })?;
        let qx = require_qx(ctx)?;
        let d = layer.cell_dim();
        let n = xs.len();
        out.clear();
        out.resize(n, Vec::new());
        spans.clear();
        spans.resize(n, 0);
        let mut fwd_stats: Vec<ExecStats> = Vec::with_capacity(n);
        let mut h = Vec::new();
        for (t, x) in xs.iter().enumerate() {
            let span = span_start(timed);
            let s = self.fwd.step_into_packed(
                ctx.parallel,
                layer.forward_cell(),
                fwd,
                qx,
                qh,
                x,
                &mut h,
            )?;
            spans[t] += span_elapsed_ns(span);
            out[t].resize(2 * d, 0.0);
            out[t][..d].copy_from_slice(&h);
            fwd_stats.push(s.into());
        }
        let mut bwd_stats: Vec<Option<ExecStats>> = vec![None; n];
        for (t, x) in xs.iter().enumerate().rev() {
            let span = span_start(timed);
            let s = self.bwd.step_into_packed(
                ctx.parallel,
                layer.backward_cell(),
                bwd,
                qx,
                qh,
                x,
                &mut h,
            )?;
            spans[t] += span_elapsed_ns(span);
            out[t][d..].copy_from_slice(&h);
            bwd_stats[t] = Some(s.into());
        }
        stats.clear();
        for t in 0..n {
            stats.push(fwd_stats[t].merge(bwd_stats[t].expect("filled for every t")));
        }
        Ok(())
    }

    fn adopt_baseline(&mut self, _ctx: &StepCtx<'_>, _input: &[f32], _linear: &[f32]) {
        debug_assert!(
            false,
            "the drift watchdog never re-baselines recurrent layers"
        );
    }

    fn buffered_linear(&self) -> &[f32] {
        &[]
    }

    fn reset(&mut self, layer: &Layer) {
        if let Layer::BiLstm(l) = layer {
            self.fwd.reset(l.forward_cell());
            self.bwd.reset(l.backward_cell());
        }
    }

    fn storage_bytes(&self, layer: &Layer) -> u64 {
        match layer {
            Layer::BiLstm(l) => {
                self.fwd.storage_bytes(l.forward_cell()) + self.bwd.storage_bytes(l.backward_cell())
            }
            _ => 0,
        }
    }
}

/// Per-stream "state" for a recompute-always passthrough slot. There is no
/// buffered baseline: every `correct` runs the op from scratch and charges
/// its full MAC-equivalent cost, with every input counted as changed —
/// honest accounting for ingested ops the reuse scheme cannot correct
/// incrementally. `is_initialized` stays `true` so the cross-stream
/// signature cache never attempts an adoption, and `from_scratch` stays
/// `false` so every execution lands in metrics and telemetry as a fully
/// recomputed incremental step.
#[derive(Debug)]
pub struct PassthroughReuseState {
    in_shape: reuse_tensor::Shape,
    /// MAC-equivalents of one from-scratch execution, precomputed.
    macs: u64,
}

impl PassthroughReuseState {
    fn new(layer: &Layer, in_shape: &reuse_tensor::Shape) -> Self {
        PassthroughReuseState {
            in_shape: in_shape.clone(),
            macs: layer.flops(in_shape) / 2,
        }
    }
}

impl ReuseLayer for PassthroughReuseState {
    fn kind(&self) -> LayerKind {
        LayerKind::Passthrough
    }

    fn correct(
        &mut self,
        ctx: &StepCtx<'_>,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ExecStats, ReuseError> {
        let Layer::Passthrough(p) = ctx.layer else {
            return Err(wrong_layer("passthrough"));
        };
        p.forward_into(input, &self.in_shape, out)?;
        Ok(ExecStats {
            n_inputs: input.len() as u64,
            n_changed: input.len() as u64,
            macs_total: self.macs,
            macs_performed: self.macs,
            from_scratch: false,
        })
    }

    fn adopt_baseline(&mut self, _ctx: &StepCtx<'_>, _input: &[f32], _linear: &[f32]) {
        debug_assert!(false, "passthrough slots hold no baseline to adopt");
    }

    fn buffered_linear(&self) -> &[f32] {
        &[]
    }

    fn reset(&mut self, _layer: &Layer) {}

    fn storage_bytes(&self, _layer: &Layer) -> u64 {
        0
    }
}

/// Builds the per-stream state object for one weighted layer. Construction
/// is the only place layer kinds are matched — from here on the engine
/// dispatches through the trait.
///
/// # Panics
///
/// Panics if a convolutional layer's state cannot be sized — impossible for
/// networks built through `NetworkBuilder`, whose shapes are validated.
pub(crate) fn build_state(
    layer: &Layer,
    in_shape: &reuse_tensor::Shape,
) -> Option<Box<dyn ReuseLayer>> {
    match layer {
        Layer::FullyConnected(fc) => Some(Box::new(FcReuseState::new(fc))),
        Layer::Conv2d(c) => Some(Box::new(
            Conv2dReuseState::new(c, in_shape).expect("validated at network build"),
        )),
        Layer::Conv3d(c) => Some(Box::new(
            Conv3dReuseState::new(c, in_shape).expect("validated at network build"),
        )),
        Layer::Lstm(cell) => Some(Box::new(LstmReuseState::new_shared(cell))),
        Layer::BiLstm(l) => Some(Box::new(BiLstmReuseState::new(l))),
        Layer::Passthrough(_) => Some(Box::new(PassthroughReuseState::new(layer, in_shape))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_stats_merge_adds_counts() {
        let a = ExecStats {
            n_inputs: 10,
            n_changed: 2,
            macs_total: 100,
            macs_performed: 20,
            from_scratch: false,
        };
        let b = ExecStats {
            n_inputs: 5,
            n_changed: 5,
            macs_total: 50,
            macs_performed: 50,
            from_scratch: true,
        };
        let m = a.merge(b);
        assert_eq!(m.n_inputs, 15);
        assert_eq!(m.n_changed, 7);
        assert_eq!(m.macs_total, 150);
        assert_eq!(m.macs_performed, 70);
        assert!(m.from_scratch);
        assert_eq!(m.mode(true), TraceKind::ScratchQuantized);
        assert_eq!(a.mode(true), TraceKind::Incremental);
        assert_eq!(a.mode(false), TraceKind::ScratchFp32);
    }
}

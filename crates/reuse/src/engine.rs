//! The reuse engine: a thin compatibility facade over the shared-model /
//! per-stream split ([`CompiledModel`] + [`ReuseSession`]).
//!
//! Historically this module held the whole engine; it is now a facade that
//! compiles the model and owns exactly one session, preserving the
//! original single-stream API. New code that shares one model across
//! streams should build a [`CompiledModel`] and call
//! [`CompiledModel::new_session`] directly.

use std::sync::Arc;

use reuse_quant::LinearQuantizer;
use reuse_tensor::Tensor;

use crate::metrics::EngineMetrics;
use crate::model::CompiledModel;
use crate::session::ReuseSession;
use crate::telemetry::{EngineTelemetry, PoolStats, TelemetrySnapshot, WatchdogStats};
use crate::trace::ExecutionTrace;
use crate::{ReuseConfig, ReuseError};

/// Runs a [`Network`](reuse_nn::Network) over a temporal sequence with the
/// paper's computation reuse scheme.
///
/// Lifecycle:
///
/// 1. The first `calibration_executions` executions (sequences, for
///    recurrent networks) run in full precision while input ranges are
///    profiled per layer — the paper's offline profiling pass.
/// 2. The next execution builds the linear quantizers and runs from scratch
///    on quantized inputs, initializing the buffered state (the paper's
///    "first execution", Fig. 7).
/// 3. Every further execution quantizes inputs, skips unchanged ones and
///    corrects the buffered outputs (Eq. 10).
///
/// Since the model/session split, `ReuseEngine` is [`CompiledModel`] + one
/// owned [`ReuseSession`]: single-stream callers keep this API, multi-stream
/// callers share an `Arc<CompiledModel>` across sessions. See the
/// crate-level example for basic usage.
#[derive(Debug)]
pub struct ReuseEngine {
    session: ReuseSession,
}

impl ReuseEngine {
    /// Creates an engine for a network (cloned) under a reuse configuration:
    /// compiles the model and opens one session on it.
    ///
    /// # Panics
    ///
    /// Panics if a convolutional layer's state cannot be sized — impossible
    /// for networks built through `NetworkBuilder`, whose shapes are
    /// validated.
    pub fn from_network(network: &reuse_nn::Network, config: &ReuseConfig) -> Self {
        let model = Arc::new(CompiledModel::new(network, config));
        ReuseEngine {
            session: model.new_session(),
        }
    }

    /// The shared compiled model behind this engine.
    pub fn model(&self) -> &Arc<CompiledModel> {
        self.session.model()
    }

    /// The engine's single owned session.
    pub fn session(&self) -> &ReuseSession {
        &self.session
    }

    /// Mutable access to the owned session.
    pub fn session_mut(&mut self) -> &mut ReuseSession {
        &mut self.session
    }

    /// The wrapped network.
    pub fn network(&self) -> &reuse_nn::Network {
        self.session.network()
    }

    /// Accumulated reuse metrics.
    pub fn metrics(&self) -> &EngineMetrics {
        self.session.metrics()
    }

    /// Total executions so far (calibration included; timesteps for
    /// recurrent networks).
    pub fn executions(&self) -> u64 {
        self.session.executions()
    }

    /// Whether quantizers have been built (calibration finished).
    pub fn is_calibrated(&self) -> bool {
        self.session.is_calibrated()
    }

    /// Layers whose profiled range was degenerate, forcing full-precision
    /// execution. Borrowed names — no allocation, safe to call per frame.
    pub fn auto_disabled_layers(&self) -> impl Iterator<Item = &str> + '_ {
        self.session.auto_disabled_layers()
    }

    /// Takes the recorded execution traces (empties the internal buffer).
    pub fn take_traces(&mut self) -> Vec<ExecutionTrace> {
        self.session.take_traces()
    }

    /// Drift-watchdog counters (zeroed when the watchdog is not armed).
    pub fn watchdog_stats(&self) -> WatchdogStats {
        self.session.watchdog_stats()
    }

    /// Buffer-pool hit/miss counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.session.pool_stats()
    }

    /// Live per-layer telemetry, when enabled via
    /// [`ReuseConfig::telemetry`].
    pub fn telemetry(&self) -> Option<&EngineTelemetry> {
        self.session.telemetry()
    }

    /// Builds an owned, serializable snapshot of the current telemetry.
    /// Returns `None` unless telemetry was enabled in the config. This
    /// allocates — call it from reporting paths, not per frame.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.session.telemetry_snapshot()
    }

    /// The quantizer used for a layer's (feed-forward) inputs, if built.
    pub fn quantizer_for(&self, name: &str) -> Option<&LinearQuantizer> {
        self.session.quantizer_for(name)
    }

    /// The Fig. 4 relative-difference series recorded for a layer (requires
    /// [`ReuseConfig::record_relative_difference`]).
    pub fn layer_relative_differences(&self, name: &str) -> Option<&[f32]> {
        self.session.layer_relative_differences(name)
    }

    /// Extra I/O-buffer/main-memory bytes the reuse scheme needs: indices
    /// plus buffered outputs for every enabled layer (Table III accounting).
    pub fn reuse_storage_bytes(&self) -> u64 {
        self.session.reuse_storage_bytes()
    }

    /// Bytes of centroid tables stored in the control unit (paper reports
    /// 1.25 KB for its configuration).
    pub fn centroid_table_bytes(&self) -> u64 {
        self.session.centroid_table_bytes()
    }

    /// Drops all buffered layer state; the next execution recomputes from
    /// scratch. Models the accelerator being power-gated between sequences.
    /// See [`ReuseSession::reset_state`] for what is cleared and what is
    /// kept.
    pub fn reset_state(&mut self) {
        self.session.reset_state()
    }

    /// Full-precision from-scratch output for the same frame — the accuracy
    /// oracle used by the workloads' accuracy proxy.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn reference_forward(&self, frame: &[f32]) -> Result<Tensor, ReuseError> {
        self.session.reference_forward(frame)
    }

    /// Executes the network on one frame (feed-forward networks only).
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::WrongApi`] for recurrent networks; otherwise
    /// propagates shape/quantizer errors.
    pub fn execute(&mut self, frame: &[f32]) -> Result<Tensor, ReuseError> {
        self.session.execute(frame)
    }

    /// Allocation-free variant of [`Self::execute`]: clears `out` and writes
    /// the flat network output into it, reusing its capacity across calls.
    /// See [`ReuseSession::execute_into`] for the zero-allocation contract.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::WrongApi`] for recurrent networks; otherwise
    /// propagates shape/quantizer errors.
    pub fn execute_into(&mut self, frame: &[f32], out: &mut Vec<f32>) -> Result<(), ReuseError> {
        self.session.execute_into(frame, out)
    }

    /// Executes a whole temporal sequence. For feed-forward networks the
    /// frames are executed back-to-back (state carries across frames). For
    /// recurrent networks the sequence is the paper's execution unit: each
    /// layer runs over all timesteps before the next layer, with reuse
    /// between consecutive timesteps, and all state resets at the start.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::Nn`] on shape mismatches or an empty sequence.
    pub fn execute_sequence(&mut self, frames: &[Vec<f32>]) -> Result<Vec<Tensor>, ReuseError> {
        self.session.execute_sequence(frames)
    }

    /// Allocation-conscious sequence runner for feed-forward networks:
    /// executes the frames back-to-back through [`Self::execute_into`],
    /// reusing the inner `Vec`s of `outs` across calls instead of
    /// allocating a fresh `Tensor` per frame.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::WrongApi`] for recurrent networks and
    /// [`ReuseError::Nn`] on an empty sequence; otherwise propagates
    /// shape/quantizer errors.
    pub fn execute_sequence_into(
        &mut self,
        frames: &[Vec<f32>],
        outs: &mut Vec<Vec<f32>>,
    ) -> Result<(), ReuseError> {
        self.session.execute_sequence_into(frames, outs)
    }
}

//! The reuse engine: runs a network over a temporal sequence, quantizing
//! layer inputs, buffering per-layer state and reusing results across
//! consecutive executions (paper Section IV).

use reuse_nn::{Layer, LayerKind, Network};
use reuse_quant::{LinearQuantizer, RangeProfiler};
use reuse_tensor::Tensor;

use crate::conv::{Conv2dReuseState, Conv3dReuseState, ConvExecStats};
use crate::drift::max_abs_diff;
use crate::fc::{FcExecStats, FcReuseState};
use crate::lstm::{LstmExecStats, LstmReuseState};
use crate::metrics::{relative_difference, EngineMetrics, LayerMetrics};
use crate::telemetry::{
    EngineTelemetry, LayerTelemetrySnapshot, PoolStats, TelemetrySnapshot, WatchdogStats,
};
use crate::trace::{ExecutionTrace, LayerTrace, TraceKind};
use crate::{LayerSetting, ReuseConfig, ReuseError};

/// `Instant::now()` only when spans are being recorded, so the disabled
/// path pays a single branch.
fn span_start(timed: bool) -> Option<std::time::Instant> {
    timed.then(std::time::Instant::now)
}

fn span_elapsed_ns(start: Option<std::time::Instant>) -> u64 {
    start.map_or(0, |t| t.elapsed().as_nanos() as u64)
}

/// A recycling arena of `f32` buffers for the engine's per-frame
/// intermediates.
///
/// Every buffer taken during a frame is given back before the frame ends, so
/// after the first reuse-phase execution the pool holds one buffer per
/// pipeline stage and steady-state frames allocate nothing. Once `steady` is
/// armed, a pool miss (which would allocate) trips a debug assertion — the
/// zero-allocation contract of [`ReuseEngine::execute_into`].
#[derive(Debug)]
struct BufferPool {
    free: Vec<Vec<f32>>,
    steady: bool,
    max_free: usize,
    /// Hit/miss counters, exported through [`TelemetrySnapshot`].
    stats: PoolStats,
}

impl BufferPool {
    fn new(max_free: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            steady: false,
            max_free,
            stats: PoolStats::default(),
        }
    }

    /// Takes a cleared buffer with at least `cap` capacity (best fit), or
    /// allocates one on a miss. Only buffers with `capacity >= cap` are
    /// candidates — a smaller recycled buffer must never be handed out, or
    /// the caller's `extend_from_slice` would silently reallocate and defeat
    /// the zero-alloc invariant while the pool reported a hit.
    fn take(&mut self, cap: usize) -> Vec<f32> {
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.free.iter().enumerate() {
            let c = b.capacity();
            if c >= cap && best.is_none_or(|(_, bc)| c < bc) {
                best = Some((i, c));
            }
        }
        let buf = match best {
            Some((i, _)) => {
                self.stats.hits += 1;
                let mut b = self.free.swap_remove(i);
                b.clear();
                b
            }
            None => {
                self.stats.misses += 1;
                debug_assert!(
                    !self.steady,
                    "steady-state buffer-pool miss: a frame allocated (needed capacity {cap})"
                );
                Vec::with_capacity(cap)
            }
        };
        debug_assert!(
            buf.capacity() >= cap,
            "pool handed out an undersized buffer"
        );
        buf
    }

    /// Returns a buffer to the pool for reuse by later frames. Pipelines
    /// with full-precision fallback layers route buffers through the tensor
    /// API (losing them to the pool), so cap the free list to stop foreign
    /// replacement buffers from accumulating.
    fn give(&mut self, buf: Vec<f32>) {
        if self.free.len() < self.max_free {
            self.free.push(buf);
        }
    }
}

/// Buffered reuse machinery for one weighted layer.
#[derive(Debug)]
struct LayerSlot {
    /// Index into the network's layer list.
    layer_index: usize,
    name: String,
    kind: LayerKind,
    setting: LayerSetting,
    /// Set when the profiled range was degenerate and reuse was auto-disabled.
    auto_disabled: bool,
    profiler_x: RangeProfiler,
    profiler_h: RangeProfiler,
    quantizer_x: Option<LinearQuantizer>,
    quantizer_h: Option<LinearQuantizer>,
    state: SlotState,
    /// Index into `EngineMetrics::layers`.
    metrics_index: usize,
    /// Previous raw input (for the Fig. 4 relative-difference series).
    prev_raw_input: Option<Vec<f32>>,
    /// Times the drift watchdog re-baselined this layer's buffered outputs.
    rebaselines: u64,
    /// Re-baselines where this layer's own buffered outputs had drifted
    /// beyond the bound (feeds the auto-disable escalation).
    drift_strikes: u64,
}

#[derive(Debug)]
enum SlotState {
    Fc(FcReuseState),
    Conv2d(Conv2dReuseState),
    Conv3d(Conv3dReuseState),
    Lstm(LstmReuseState),
    BiLstm {
        fwd: Box<LstmReuseState>,
        bwd: Box<LstmReuseState>,
    },
}

/// Normalized per-execution stats shared by all layer families.
#[derive(Debug, Clone, Copy)]
struct ExecStats {
    n_inputs: u64,
    n_changed: u64,
    macs_total: u64,
    macs_performed: u64,
    from_scratch: bool,
}

impl From<FcExecStats> for ExecStats {
    fn from(s: FcExecStats) -> Self {
        ExecStats {
            n_inputs: s.n_inputs,
            n_changed: s.n_changed,
            macs_total: s.macs_total,
            macs_performed: s.macs_performed,
            from_scratch: s.from_scratch,
        }
    }
}

impl From<ConvExecStats> for ExecStats {
    fn from(s: ConvExecStats) -> Self {
        ExecStats {
            n_inputs: s.n_inputs,
            n_changed: s.n_changed,
            macs_total: s.macs_total,
            macs_performed: s.macs_performed,
            from_scratch: s.from_scratch,
        }
    }
}

impl From<LstmExecStats> for ExecStats {
    fn from(s: LstmExecStats) -> Self {
        ExecStats {
            n_inputs: s.n_inputs,
            n_changed: s.n_changed,
            macs_total: s.macs_total,
            macs_performed: s.macs_performed,
            from_scratch: s.from_scratch,
        }
    }
}

impl ExecStats {
    fn merge(self, other: ExecStats) -> ExecStats {
        ExecStats {
            n_inputs: self.n_inputs + other.n_inputs,
            n_changed: self.n_changed + other.n_changed,
            macs_total: self.macs_total + other.macs_total,
            macs_performed: self.macs_performed + other.macs_performed,
            from_scratch: self.from_scratch || other.from_scratch,
        }
    }

    fn mode(&self, enabled: bool) -> TraceKind {
        if !enabled {
            TraceKind::ScratchFp32
        } else if self.from_scratch {
            TraceKind::ScratchQuantized
        } else {
            TraceKind::Incremental
        }
    }
}

/// Runs a [`Network`] over a temporal sequence with the paper's computation
/// reuse scheme.
///
/// Lifecycle:
///
/// 1. The first `calibration_executions` executions (sequences, for
///    recurrent networks) run in full precision while input ranges are
///    profiled per layer — the paper's offline profiling pass.
/// 2. The next execution builds the linear quantizers and runs from scratch
///    on quantized inputs, initializing the buffered state (the paper's
///    "first execution", Fig. 7).
/// 3. Every further execution quantizes inputs, skips unchanged ones and
///    corrects the buffered outputs (Eq. 10).
///
/// See the crate-level example for basic usage.
#[derive(Debug)]
pub struct ReuseEngine {
    network: Network,
    config: ReuseConfig,
    /// Slot per weighted layer, ordered by layer index.
    slots: Vec<LayerSlot>,
    /// Map from layer index to slot position (usize::MAX = no slot).
    slot_of_layer: Vec<usize>,
    metrics: EngineMetrics,
    traces: Vec<ExecutionTrace>,
    calibrated: bool,
    executions_seen: u64,
    calibration_units_seen: u64,
    /// Output volume of every layer, precomputed so the hot path never
    /// re-derives shapes.
    layer_out_volumes: Vec<usize>,
    /// Recycled per-frame intermediate buffers (zero-alloc steady state).
    pool: BufferPool,
    /// Per-layer ring-buffer counters, preallocated when enabled in config.
    telemetry: Option<EngineTelemetry>,
    /// Drift-watchdog counters (maintained even without telemetry).
    watchdog: WatchdogStats,
    /// Reuse-phase feed-forward frames seen (drives the watchdog cadence).
    reuse_frames: u64,
}

impl ReuseEngine {
    /// Creates an engine for a network (cloned) under a reuse configuration.
    ///
    /// # Panics
    ///
    /// Panics if a convolutional layer's state cannot be sized — impossible
    /// for networks built through `NetworkBuilder`, whose shapes are
    /// validated.
    pub fn from_network(network: &Network, config: &ReuseConfig) -> Self {
        let network = network.clone();
        let mut slots = Vec::new();
        let mut slot_of_layer = vec![usize::MAX; network.layers().len()];
        let mut metrics = EngineMetrics::default();
        for (i, ((name, layer), in_shape)) in network
            .layers()
            .iter()
            .zip(network.layer_input_shapes().iter())
            .enumerate()
        {
            if !layer.has_weights() {
                continue;
            }
            let setting = config.setting_for(name);
            let state = match layer {
                Layer::FullyConnected(fc) => SlotState::Fc(FcReuseState::new(fc)),
                Layer::Conv2d(c) => SlotState::Conv2d(
                    Conv2dReuseState::new(c, in_shape).expect("validated at network build"),
                ),
                Layer::Conv3d(c) => SlotState::Conv3d(
                    Conv3dReuseState::new(c, in_shape).expect("validated at network build"),
                ),
                Layer::Lstm(cell) => SlotState::Lstm(LstmReuseState::new(cell)),
                Layer::BiLstm(l) => SlotState::BiLstm {
                    fwd: Box::new(LstmReuseState::new(l.forward_cell())),
                    bwd: Box::new(LstmReuseState::new(l.backward_cell())),
                },
                _ => continue,
            };
            let metrics_index = metrics.layers.len();
            metrics.layers.push(LayerMetrics::new(name));
            slot_of_layer[i] = slots.len();
            slots.push(LayerSlot {
                layer_index: i,
                name: name.clone(),
                kind: layer.kind(),
                setting,
                auto_disabled: false,
                profiler_x: RangeProfiler::new(),
                profiler_h: RangeProfiler::new(),
                quantizer_x: None,
                quantizer_h: None,
                state,
                metrics_index,
                prev_raw_input: None,
                rebaselines: 0,
                drift_strikes: 0,
            });
        }
        let layer_out_volumes: Vec<usize> = network
            .layers()
            .iter()
            .zip(network.layer_input_shapes().iter())
            .map(|((_, layer), in_shape)| {
                layer
                    .output_shape(in_shape)
                    .expect("validated at network build")
                    .volume()
            })
            .collect();
        let telemetry = config
            .records_telemetry()
            .then(|| EngineTelemetry::new(slots.iter().map(|s| s.name.as_str()), config.window()));
        ReuseEngine {
            network,
            config: config.clone(),
            slots,
            slot_of_layer,
            metrics,
            traces: Vec::new(),
            calibrated: false,
            executions_seen: 0,
            calibration_units_seen: 0,
            pool: BufferPool::new(layer_out_volumes.len() + 2),
            layer_out_volumes,
            telemetry,
            watchdog: WatchdogStats::default(),
            reuse_frames: 0,
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Accumulated reuse metrics.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Total executions so far (calibration included; timesteps for
    /// recurrent networks).
    pub fn executions(&self) -> u64 {
        self.executions_seen
    }

    /// Whether quantizers have been built (calibration finished).
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Layers whose profiled range was degenerate, forcing full-precision
    /// execution.
    pub fn auto_disabled_layers(&self) -> Vec<String> {
        self.slots
            .iter()
            .filter(|s| s.auto_disabled)
            .map(|s| s.name.clone())
            .collect()
    }

    /// Takes the recorded execution traces (empties the internal buffer).
    pub fn take_traces(&mut self) -> Vec<ExecutionTrace> {
        std::mem::take(&mut self.traces)
    }

    /// Drift-watchdog counters (zeroed when the watchdog is not armed).
    pub fn watchdog_stats(&self) -> WatchdogStats {
        self.watchdog
    }

    /// Buffer-pool hit/miss counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats
    }

    /// Live per-layer telemetry, when enabled via
    /// [`ReuseConfig::telemetry`].
    pub fn telemetry(&self) -> Option<&EngineTelemetry> {
        self.telemetry.as_ref()
    }

    /// Builds an owned, serializable snapshot of the current telemetry.
    /// Returns `None` unless telemetry was enabled in the config. This
    /// allocates — call it from reporting paths, not per frame.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        let tel = self.telemetry.as_ref()?;
        let layers = self
            .slots
            .iter()
            .map(|slot| {
                let lt = &tel.layers[slot.metrics_index];
                LayerTelemetrySnapshot {
                    name: slot.name.clone(),
                    reuse_executions: lt.reuse_executions,
                    hit_rate: lt.lifetime_hit_rate(),
                    hit_rate_window: lt.hit_rate.mean(),
                    corrections_total: lt.corrections_total,
                    macs_skipped_total: lt.macs_skipped_total,
                    span_ns_window: lt.span_ns.mean(),
                    rebaselines: slot.rebaselines,
                    auto_disabled: slot.auto_disabled,
                }
            })
            .collect();
        Some(TelemetrySnapshot {
            network: self.network.name().to_string(),
            frames: tel.frames,
            window: tel.window(),
            pool: self.pool.stats,
            watchdog: self.watchdog,
            drift_check_every: self.config.drift_check_every(),
            drift_bound: self.config.drift_bound(),
            layers,
        })
    }

    /// The quantizer used for a layer's (feed-forward) inputs, if built.
    pub fn quantizer_for(&self, name: &str) -> Option<&LinearQuantizer> {
        self.slots
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| s.quantizer_x.as_ref())
    }

    /// The Fig. 4 relative-difference series recorded for a layer (requires
    /// [`ReuseConfig::record_relative_difference`]).
    pub fn layer_relative_differences(&self, name: &str) -> Option<&[f32]> {
        let slot = self.slots.iter().find(|s| s.name == name)?;
        Some(&self.metrics.layers[slot.metrics_index].relative_differences)
    }

    /// Extra I/O-buffer/main-memory bytes the reuse scheme needs: indices
    /// plus buffered outputs for every enabled layer (Table III accounting).
    pub fn reuse_storage_bytes(&self) -> u64 {
        let mut total = 0u64;
        for slot in self.slots.iter().filter(|s| self.slot_enabled(s)) {
            let (_, layer) = &self.network.layers()[slot.layer_index];
            total += match (&slot.state, layer) {
                (SlotState::Fc(st), Layer::FullyConnected(fc)) => st.storage_bytes(fc),
                (SlotState::Conv2d(st), _) => st.storage_bytes(),
                (SlotState::Conv3d(st), _) => st.storage_bytes(),
                (SlotState::Lstm(st), Layer::Lstm(cell)) => st.storage_bytes(cell),
                (SlotState::BiLstm { fwd, bwd }, Layer::BiLstm(l)) => {
                    fwd.storage_bytes(l.forward_cell()) + bwd.storage_bytes(l.backward_cell())
                }
                _ => 0,
            };
        }
        total
    }

    /// Bytes of centroid tables stored in the control unit (paper reports
    /// 1.25 KB for its configuration).
    pub fn centroid_table_bytes(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| self.slot_enabled(s))
            .map(|s| {
                s.quantizer_x.map_or(0, |q| q.centroid_table_bytes() as u64)
                    + s.quantizer_h.map_or(0, |q| q.centroid_table_bytes() as u64)
            })
            .sum()
    }

    /// Drops buffered layer state only — metrics, telemetry and calibration
    /// are untouched. This is the between-sequence power-gate reset
    /// (statistics keep accumulating across a recurrent workload's
    /// sequences, paper Fig. 5).
    fn reset_buffers(&mut self) {
        for slot in &mut self.slots {
            let (_, layer) = &self.network.layers()[slot.layer_index];
            match (&mut slot.state, layer) {
                (SlotState::Fc(st), _) => st.reset(),
                (SlotState::Conv2d(st), _) => st.reset(),
                (SlotState::Conv3d(st), _) => st.reset(),
                (SlotState::Lstm(st), Layer::Lstm(cell)) => st.reset(cell),
                (SlotState::BiLstm { fwd, bwd }, Layer::BiLstm(l)) => {
                    fwd.reset(l.forward_cell());
                    bwd.reset(l.backward_cell());
                }
                _ => {}
            }
            slot.prev_raw_input = None;
        }
    }

    /// Drops all buffered layer state; the next execution recomputes from
    /// scratch. Models the accelerator being power-gated between sequences.
    ///
    /// Accumulated statistics are cleared along with the buffers:
    /// [`EngineMetrics`], the per-layer relative-difference series, pending
    /// traces, telemetry rings and watchdog counters all restart from zero —
    /// a reset engine must not report the previous sequence's numbers. If
    /// calibration had not finished, it is re-armed from the beginning
    /// (profiled ranges are discarded). Built quantizers and auto-disable
    /// decisions are kept.
    pub fn reset_state(&mut self) {
        self.reset_buffers();
        self.metrics.reset();
        self.traces.clear();
        if let Some(tel) = self.telemetry.as_mut() {
            tel.reset();
        }
        self.watchdog = WatchdogStats::default();
        self.reuse_frames = 0;
        for slot in &mut self.slots {
            slot.rebaselines = 0;
            slot.drift_strikes = 0;
        }
        if !self.calibrated {
            // A partial calibration must not mix pre- and post-reset frames:
            // discard the profiled ranges and start over.
            self.calibration_units_seen = 0;
            for slot in &mut self.slots {
                slot.profiler_x = RangeProfiler::new();
                slot.profiler_h = RangeProfiler::new();
            }
        }
    }

    /// Full-precision from-scratch output for the same frame — the accuracy
    /// oracle used by the workloads' accuracy proxy.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn reference_forward(&self, frame: &[f32]) -> Result<Tensor, ReuseError> {
        Ok(self.network.forward_flat(frame)?)
    }

    fn slot_enabled(&self, slot: &LayerSlot) -> bool {
        slot.setting.enabled && !slot.auto_disabled
    }

    /// Executes the network on one frame (feed-forward networks only).
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::WrongApi`] for recurrent networks; otherwise
    /// propagates shape/quantizer errors.
    pub fn execute(&mut self, frame: &[f32]) -> Result<Tensor, ReuseError> {
        if self.network.is_recurrent() {
            return Err(ReuseError::WrongApi {
                context: "recurrent network: use execute_sequence".into(),
            });
        }
        if !self.calibrated && self.calibration_units_seen < self.config.calibration() as u64 {
            let out = self.calibration_execute(frame)?;
            self.calibration_units_seen += 1;
            return Ok(out);
        }
        if !self.calibrated {
            self.build_quantizers();
        }
        let mut out = Vec::new();
        self.reuse_execute_into(frame, &mut out)?;
        Ok(Tensor::from_vec(self.network.output_shape().clone(), out)?)
    }

    /// Allocation-free variant of [`Self::execute`]: clears `out` and writes
    /// the flat network output into it, reusing its capacity across calls.
    ///
    /// Once the buffered state is initialized (second reuse-phase frame
    /// onward) and with the default serial [`ParallelConfig`], a call
    /// performs **zero heap allocations**: per-frame intermediates come from
    /// an internal recycling pool and the per-layer scratch (changed lists,
    /// quantized codes, buffered outputs) is reused in place. Calibration
    /// frames, the state-initializing first execution, tracing and the
    /// relative-difference recorder still allocate.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::WrongApi`] for recurrent networks; otherwise
    /// propagates shape/quantizer errors.
    pub fn execute_into(&mut self, frame: &[f32], out: &mut Vec<f32>) -> Result<(), ReuseError> {
        if self.network.is_recurrent() {
            return Err(ReuseError::WrongApi {
                context: "recurrent network: use execute_sequence".into(),
            });
        }
        if !self.calibrated && self.calibration_units_seen < self.config.calibration() as u64 {
            let t = self.calibration_execute(frame)?;
            self.calibration_units_seen += 1;
            out.clear();
            out.extend_from_slice(t.as_slice());
            return Ok(());
        }
        if !self.calibrated {
            self.build_quantizers();
        }
        self.reuse_execute_into(frame, out)
    }

    /// Executes a whole temporal sequence. For feed-forward networks the
    /// frames are executed back-to-back (state carries across frames). For
    /// recurrent networks the sequence is the paper's execution unit: each
    /// layer runs over all timesteps before the next layer, with reuse
    /// between consecutive timesteps, and all state resets at the start.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::Nn`] on shape mismatches or an empty sequence.
    pub fn execute_sequence(&mut self, frames: &[Vec<f32>]) -> Result<Vec<Tensor>, ReuseError> {
        if frames.is_empty() {
            return Err(ReuseError::Nn(reuse_nn::NnError::EmptySequence));
        }
        if !self.network.is_recurrent() {
            return frames.iter().map(|f| self.execute(f)).collect();
        }
        if !self.calibrated && self.calibration_units_seen < self.config.calibration() as u64 {
            let out = self.calibration_sequence(frames)?;
            self.calibration_units_seen += 1;
            return Ok(out);
        }
        if !self.calibrated {
            self.build_quantizers();
        }
        self.reuse_sequence(frames)
    }

    // ---------------------------------------------------------------------
    // Calibration phase
    // ---------------------------------------------------------------------

    fn calibration_execute(&mut self, frame: &[f32]) -> Result<Tensor, ReuseError> {
        let input_shape = self.network.input_shape().clone();
        if frame.len() != input_shape.volume() {
            return Err(ReuseError::Nn(reuse_nn::NnError::InputShape {
                expected: input_shape.volume(),
                actual: frame.len(),
            }));
        }
        let mut cur = Tensor::from_vec(input_shape, frame.to_vec())?;
        let mut trace = ExecutionTrace::default();
        for i in 0..self.network.layers().len() {
            cur = self.reshape_to_layer(cur, i)?;
            let slot_pos = self.slot_of_layer[i];
            if slot_pos != usize::MAX {
                let enabled = {
                    let slot = &self.slots[slot_pos];
                    self.slot_enabled(slot)
                };
                if enabled {
                    self.slots[slot_pos]
                        .profiler_x
                        .observe_slice(cur.as_slice());
                }
                if self.config.records_trace() {
                    trace
                        .layers
                        .push(self.scratch_trace_entry(i, cur.len() as u64));
                }
            }
            cur = self.network.apply_layer(i, cur)?;
        }
        if self.config.records_trace() {
            self.traces.push(trace);
        }
        self.executions_seen += 1;
        self.metrics.executions += 1;
        Ok(cur)
    }

    fn calibration_sequence(&mut self, frames: &[Vec<f32>]) -> Result<Vec<Tensor>, ReuseError> {
        let input_shape = self.network.input_shape().clone();
        let mut seq: Vec<Tensor> = frames
            .iter()
            .map(|f| Tensor::from_vec(input_shape.clone(), f.clone()).map_err(ReuseError::from))
            .collect::<Result<_, _>>()?;
        let n_layers = self.network.layers().len();
        let mut traces: Vec<ExecutionTrace> = vec![ExecutionTrace::default(); frames.len()];
        for i in 0..n_layers {
            let slot_pos = self.slot_of_layer[i];
            let is_recurrent_layer = matches!(
                self.network.layers()[i].1,
                Layer::Lstm(_) | Layer::BiLstm(_)
            );
            if slot_pos != usize::MAX {
                let enabled = self.slot_enabled(&self.slots[slot_pos]);
                if enabled {
                    for t in &seq {
                        self.slots[slot_pos].profiler_x.observe_slice(t.as_slice());
                    }
                }
                if self.config.records_trace() {
                    for (t, frame) in seq.iter().enumerate() {
                        traces[t]
                            .layers
                            .push(self.scratch_trace_entry(i, frame.len() as u64));
                    }
                }
            }
            if let Layer::Lstm(cell) = &self.network.layers()[i].1 {
                // Unidirectional cell: step manually so the recurrent
                // inputs (h) can be profiled too.
                let xs: Vec<Vec<f32>> = seq.iter().map(|t| t.as_slice().to_vec()).collect();
                let mut h_values: Vec<f32> = Vec::new();
                let mut state = reuse_nn::LstmState::zeros(cell.cell_dim());
                let mut out = Vec::with_capacity(xs.len());
                for x in &xs {
                    h_values.extend_from_slice(&state.h);
                    state = cell.step(x, &state)?;
                    out.push(state.h.clone());
                }
                if slot_pos != usize::MAX && self.slot_enabled(&self.slots[slot_pos]) {
                    self.slots[slot_pos].profiler_h.observe_slice(&h_values);
                }
                seq = out
                    .into_iter()
                    .map(|o| Tensor::from_slice_1d(&o).map_err(ReuseError::from))
                    .collect::<Result<_, _>>()?;
            } else if is_recurrent_layer {
                // Step the cells manually so the recurrent inputs (h) can be
                // profiled too.
                let Layer::BiLstm(layer) = &self.network.layers()[i].1 else {
                    unreachable!()
                };
                let d = layer.cell_dim();
                let xs: Vec<Vec<f32>> = seq.iter().map(|t| t.as_slice().to_vec()).collect();
                let mut out = vec![vec![0.0f32; 2 * d]; xs.len()];
                let mut h_values: Vec<f32> = Vec::new();
                let mut state = reuse_nn::LstmState::zeros(d);
                for (t, x) in xs.iter().enumerate() {
                    h_values.extend_from_slice(&state.h);
                    state = layer.forward_cell().step(x, &state)?;
                    out[t][..d].copy_from_slice(&state.h);
                }
                let mut state = reuse_nn::LstmState::zeros(d);
                for (t, x) in xs.iter().enumerate().rev() {
                    h_values.extend_from_slice(&state.h);
                    state = layer.backward_cell().step(x, &state)?;
                    out[t][d..].copy_from_slice(&state.h);
                }
                if slot_pos != usize::MAX && self.slot_enabled(&self.slots[slot_pos]) {
                    self.slots[slot_pos].profiler_h.observe_slice(&h_values);
                }
                seq = out
                    .into_iter()
                    .map(|o| Tensor::from_slice_1d(&o).map_err(ReuseError::from))
                    .collect::<Result<_, _>>()?;
            } else {
                seq = seq
                    .into_iter()
                    .map(|t| -> Result<Tensor, ReuseError> {
                        let t = self.reshape_to_layer(t, i)?;
                        Ok(self.network.apply_layer(i, t)?)
                    })
                    .collect::<Result<_, _>>()?;
            }
        }
        if self.config.records_trace() {
            self.traces.extend(traces);
        }
        self.executions_seen += frames.len() as u64;
        self.metrics.executions += frames.len() as u64;
        Ok(seq)
    }

    fn scratch_trace_entry(&self, layer_index: usize, input_len: u64) -> LayerTrace {
        let (name, layer) = &self.network.layers()[layer_index];
        let in_shape = &self.network.layer_input_shapes()[layer_index];
        let macs = layer.flops(in_shape) / 2;
        LayerTrace {
            name: name.clone(),
            kind: layer.kind(),
            mode: TraceKind::ScratchFp32,
            n_inputs: input_len,
            n_changed: input_len,
            n_outputs: self.layer_out_volumes[layer_index] as u64,
            n_params: layer.param_count(),
            macs_total: macs,
            macs_performed: macs,
        }
    }

    fn build_quantizers(&mut self) {
        let margin = self.config.margin();
        for slot in &mut self.slots {
            if !slot.setting.enabled {
                continue;
            }
            match slot.profiler_x.range(margin) {
                Ok(range) => match LinearQuantizer::new(range, slot.setting.clusters) {
                    Ok(q) => slot.quantizer_x = Some(q),
                    Err(_) => slot.auto_disabled = true,
                },
                Err(_) => slot.auto_disabled = true,
            }
            if matches!(slot.state, SlotState::Lstm(_) | SlotState::BiLstm { .. })
                && !slot.auto_disabled
            {
                match slot.profiler_h.range(margin) {
                    Ok(range) => match LinearQuantizer::new(range, slot.setting.clusters) {
                        Ok(q) => slot.quantizer_h = Some(q),
                        Err(_) => slot.auto_disabled = true,
                    },
                    Err(_) => slot.auto_disabled = true,
                }
            }
        }
        self.calibrated = true;
    }

    // ---------------------------------------------------------------------
    // Reuse phase
    // ---------------------------------------------------------------------

    fn reshape_to_layer(&self, cur: Tensor, layer_index: usize) -> Result<Tensor, ReuseError> {
        let expected = &self.network.layer_input_shapes()[layer_index];
        if cur.shape() == expected {
            Ok(cur)
        } else {
            Ok(cur.reshape(expected.clone())?)
        }
    }

    fn record_layer_execution(
        &mut self,
        slot_pos: usize,
        raw_input: Option<&[f32]>,
        stats: ExecStats,
        n_outputs: u64,
        span_ns: u64,
        trace: Option<&mut ExecutionTrace>,
    ) {
        let record_rd = self.config.records_relative_difference();
        let slot = &mut self.slots[slot_pos];
        let m = &mut self.metrics.layers[slot.metrics_index];
        if !stats.from_scratch {
            m.record(
                stats.n_inputs,
                stats.n_inputs - stats.n_changed,
                stats.macs_total,
                stats.macs_performed,
            );
            // Same indexing and same inputs as the metrics record above, so
            // a telemetry snapshot's lifetime hit rate equals the metric's
            // input similarity exactly. Ring pushes never allocate.
            if let Some(tel) = self.telemetry.as_mut() {
                tel.layers[slot.metrics_index].record(
                    stats.n_inputs,
                    stats.n_changed,
                    stats.macs_total,
                    stats.macs_performed,
                    span_ns,
                );
            }
        }
        if record_rd {
            if let Some(raw) = raw_input {
                if let Some(prev) = &slot.prev_raw_input {
                    if prev.len() == raw.len() {
                        m.relative_differences.push(relative_difference(prev, raw));
                    }
                }
                slot.prev_raw_input = Some(raw.to_vec());
            }
        }
        if let Some(trace) = trace {
            let n_params = self.network.layers()[slot.layer_index].1.param_count();
            trace.layers.push(LayerTrace {
                name: slot.name.clone(),
                kind: slot.kind,
                mode: stats.mode(true),
                n_inputs: stats.n_inputs,
                n_changed: stats.n_changed,
                n_outputs,
                n_params,
                macs_total: stats.macs_total,
                macs_performed: stats.macs_performed,
            });
        }
    }

    /// The reuse-phase hot path. Layer intermediates live in flat pooled
    /// `Vec<f32>` buffers (the network's layers all consume row-major data,
    /// so "reshapes" between layers are no-ops on the flat representation);
    /// every buffer taken from the pool is returned before the frame ends.
    fn reuse_execute_into(&mut self, frame: &[f32], out: &mut Vec<f32>) -> Result<(), ReuseError> {
        let expected_len = self.network.input_shape().volume();
        if frame.len() != expected_len {
            return Err(ReuseError::Nn(reuse_nn::NnError::InputShape {
                expected: expected_len,
                actual: frame.len(),
            }));
        }
        let parallel = *self.config.parallel_config();
        let mut pool_intact = true;
        let mut cur = self.pool.take(frame.len());
        cur.extend_from_slice(frame);
        let mut trace = if self.config.records_trace() {
            Some(ExecutionTrace::default())
        } else {
            None
        };
        let timed = self.telemetry.is_some();
        let n_layers = self.network.layers().len();
        for i in 0..n_layers {
            let slot_pos = self.slot_of_layer[i];
            let run_reuse = slot_pos != usize::MAX && self.slot_enabled(&self.slots[slot_pos]);
            if run_reuse {
                let mut next = self.pool.take(self.layer_out_volumes[i]);
                let span = span_start(timed);
                let stats: ExecStats = {
                    let network = &self.network;
                    let slot = &mut self.slots[slot_pos];
                    let q = slot
                        .quantizer_x
                        .as_ref()
                        .expect("enabled slot has quantizer");
                    match (&mut slot.state, &network.layers()[i].1) {
                        (SlotState::Fc(st), Layer::FullyConnected(fc)) => {
                            let s = st.execute_into(&parallel, fc, q, &cur, &mut next)?;
                            fc.activation().apply_in_place(&mut next);
                            s.into()
                        }
                        (SlotState::Conv2d(st), Layer::Conv2d(c)) => {
                            let s = st.execute_into(&parallel, c, q, &cur, &mut next)?;
                            c.activation().apply_in_place(&mut next);
                            s.into()
                        }
                        (SlotState::Conv3d(st), Layer::Conv3d(c)) => {
                            let s = st.execute_into(&parallel, c, q, &cur, &mut next)?;
                            c.activation().apply_in_place(&mut next);
                            s.into()
                        }
                        _ => unreachable!("slot state matches layer kind by construction"),
                    }
                };
                let span_ns = span_elapsed_ns(span);
                // `cur` (this layer's raw input) is still alive here, so the
                // relative-difference recorder reads it without the per-layer
                // copy the old path made unconditionally.
                let n_outputs = next.len() as u64;
                self.record_layer_execution(
                    slot_pos,
                    Some(&cur),
                    stats,
                    n_outputs,
                    span_ns,
                    trace.as_mut(),
                );
                self.pool.give(std::mem::replace(&mut cur, next));
            } else {
                // Full-precision fallback (no-weight or disabled layers):
                // route through the tensor API; allocation here is outside
                // the reuse steady-state contract.
                if let Some(trace) = trace.as_mut() {
                    if slot_pos != usize::MAX {
                        trace
                            .layers
                            .push(self.scratch_trace_entry(i, cur.len() as u64));
                    }
                }
                let in_shape = self.network.layer_input_shapes()[i].clone();
                let t = Tensor::from_vec(in_shape, std::mem::take(&mut cur))?;
                cur = self.network.apply_layer(i, t)?.into_vec();
                pool_intact = false;
            }
        }
        if let Some(trace) = trace {
            self.traces.push(trace);
        }
        self.executions_seen += 1;
        self.metrics.executions += 1;
        if let Some(tel) = self.telemetry.as_mut() {
            tel.frames += 1;
        }
        out.clear();
        out.extend_from_slice(&cur);
        self.pool.give(cur);
        // From here on every pool take must hit a recycled buffer; a miss
        // would mean a steady-state frame allocated. Pipelines with
        // full-precision fallback stages lose buffers to the tensor API, so
        // the contract (and its assertion) only covers all-reuse pipelines.
        if pool_intact {
            self.pool.steady = true;
        }
        self.reuse_frames += 1;
        let every = self.config.drift_check_every();
        if every > 0 && self.reuse_frames.is_multiple_of(every) {
            // Watchdog frames allocate (reference forward + re-baseline are
            // cold paths by design); they are outside the zero-alloc
            // contract, which covers the frames between checks.
            self.watchdog_check(frame, out)?;
        }
        Ok(())
    }

    /// One drift-watchdog check: compares this frame's incremental output
    /// against the full-precision reference and re-baselines every reuse
    /// layer when the deviation exceeds the configured bound. `out` is
    /// replaced with the exact reference output after a re-baseline.
    fn watchdog_check(&mut self, frame: &[f32], out: &mut Vec<f32>) -> Result<(), ReuseError> {
        let reference = self.reference_forward(frame)?;
        let drift = max_abs_diff(out, reference.as_slice());
        self.watchdog.checks += 1;
        self.watchdog.last_drift = drift;
        self.watchdog.max_drift = self.watchdog.max_drift.max(drift);
        if drift > self.config.drift_bound() {
            self.rebaseline_frame(frame, out)?;
            self.watchdog.rebaselines += 1;
        }
        Ok(())
    }

    /// Re-baselines every enabled reuse layer onto full-precision values for
    /// `frame`: buffered codes become the quantization of the layer's raw
    /// input and buffered linear outputs become the exact (serial) linear
    /// forward on that raw input, so this frame's output — written to `out` —
    /// is bit-identical to [`Self::reference_forward`] and subsequent frames
    /// correct from an exact baseline. Layers whose own buffered outputs had
    /// drifted beyond the bound collect a strike; a layer reaching
    /// [`ReuseConfig::drift_escalate_after`] strikes is auto-disabled
    /// (escalation into [`Self::auto_disabled_layers`]).
    fn rebaseline_frame(&mut self, frame: &[f32], out: &mut Vec<f32>) -> Result<(), ReuseError> {
        let bound = self.config.drift_bound();
        let escalate_after = self.config.escalate_after();
        let mut cur = Tensor::from_vec(self.network.input_shape().clone(), frame.to_vec())?;
        let n_layers = self.network.layers().len();
        for i in 0..n_layers {
            cur = self.reshape_to_layer(cur, i)?;
            let slot_pos = self.slot_of_layer[i];
            let run_reuse = slot_pos != usize::MAX && self.slot_enabled(&self.slots[slot_pos]);
            if !run_reuse {
                cur = self.network.apply_layer(i, cur)?;
                continue;
            }
            let network = &self.network;
            let slot = &mut self.slots[slot_pos];
            let q = slot
                .quantizer_x
                .as_ref()
                .expect("enabled slot has quantizer");
            // Serial linear forward on the RAW input — the same code path
            // `reference_forward` takes, so the adopted baseline is exact.
            let (linear, activation) = match &network.layers()[i].1 {
                Layer::FullyConnected(fc) => (fc.forward_linear(&cur)?, fc.activation()),
                Layer::Conv2d(c) => (c.forward_linear(&cur)?, c.activation()),
                Layer::Conv3d(c) => (c.forward_linear(&cur)?, c.activation()),
                _ => unreachable!("watchdog only runs on feed-forward networks"),
            };
            let buffered = match &slot.state {
                SlotState::Fc(st) => st.buffered_linear(),
                SlotState::Conv2d(st) => st.buffered_linear(),
                SlotState::Conv3d(st) => st.buffered_linear(),
                _ => &[],
            };
            // Separating genuine accumulated drift from plain quantization
            // error would need a second, quantized recomputation per layer;
            // the strike heuristic instead compares the buffered values
            // against the raw recomputation using the engine-level bound —
            // conservative, but consistent with what the watchdog just
            // observed at the network output.
            let drifted =
                buffered.len() == linear.len() && max_abs_diff(buffered, linear.as_slice()) > bound;
            match &mut slot.state {
                SlotState::Fc(st) => st.adopt_baseline(q, cur.as_slice(), linear.as_slice()),
                SlotState::Conv2d(st) => st.adopt_baseline(q, cur.as_slice(), linear.as_slice()),
                SlotState::Conv3d(st) => st.adopt_baseline(q, cur.as_slice(), linear.as_slice()),
                _ => unreachable!("watchdog only runs on feed-forward networks"),
            }
            slot.rebaselines += 1;
            if drifted {
                slot.drift_strikes += 1;
                if escalate_after > 0 && slot.drift_strikes >= escalate_after {
                    slot.auto_disabled = true;
                    // The pipeline now has a full-precision stage that routes
                    // buffers through the tensor API, so the all-reuse
                    // zero-alloc contract no longer holds: disarm the pool's
                    // steady-state assertion.
                    self.pool.steady = false;
                }
            }
            cur = activation.apply(&linear);
        }
        out.clear();
        out.extend_from_slice(cur.as_slice());
        Ok(())
    }

    fn reuse_sequence(&mut self, frames: &[Vec<f32>]) -> Result<Vec<Tensor>, ReuseError> {
        // Paper Section IV-D: the accelerator is power-gated between
        // sequences, so all buffered state starts fresh (metrics keep
        // accumulating across sequences).
        self.reset_buffers();
        let parallel = *self.config.parallel_config();
        let input_shape = self.network.input_shape().clone();
        let mut seq: Vec<Tensor> = frames
            .iter()
            .map(|f| Tensor::from_vec(input_shape.clone(), f.clone()).map_err(ReuseError::from))
            .collect::<Result<_, _>>()?;
        let n_layers = self.network.layers().len();
        let record_trace = self.config.records_trace();
        let mut traces: Vec<ExecutionTrace> = vec![ExecutionTrace::default(); frames.len()];
        for i in 0..n_layers {
            let slot_pos = self.slot_of_layer[i];
            let run_reuse = slot_pos != usize::MAX && self.slot_enabled(&self.slots[slot_pos]);
            let is_recurrent_layer = matches!(
                self.network.layers()[i].1,
                Layer::Lstm(_) | Layer::BiLstm(_)
            );
            if is_recurrent_layer && run_reuse {
                if matches!(self.network.layers()[i].1, Layer::Lstm(_)) {
                    seq = self.reuse_lstm_layer(i, slot_pos, seq, &mut traces)?;
                } else {
                    seq = self.reuse_bilstm_layer(i, slot_pos, seq, &mut traces)?;
                }
            } else if is_recurrent_layer {
                // Disabled recurrent layer: full-precision sequence pass.
                let xs: Vec<Vec<f32>> = seq.iter().map(|t| t.as_slice().to_vec()).collect();
                if record_trace {
                    for (t, frame) in seq.iter().enumerate() {
                        traces[t]
                            .layers
                            .push(self.scratch_trace_entry(i, frame.len() as u64));
                    }
                }
                let out = match &self.network.layers()[i].1 {
                    Layer::Lstm(cell) => cell.forward_sequence(&xs)?,
                    Layer::BiLstm(layer) => layer.forward_sequence(&xs)?,
                    _ => unreachable!(),
                };
                seq = out
                    .into_iter()
                    .map(|o| Tensor::from_slice_1d(&o).map_err(ReuseError::from))
                    .collect::<Result<_, _>>()?;
            } else if run_reuse {
                // Weighted frame-wise layer inside a recurrent network
                // (e.g. an FC output layer): consecutive timesteps are
                // consecutive executions.
                let timed = self.telemetry.is_some();
                let mut out_seq = Vec::with_capacity(seq.len());
                for (t, frame) in seq.iter().enumerate() {
                    let frame = self.reshape_to_layer(frame.clone(), i)?;
                    let span = span_start(timed);
                    let (out, stats): (Tensor, ExecStats) = {
                        let network = &self.network;
                        let slot = &mut self.slots[slot_pos];
                        let q = slot
                            .quantizer_x
                            .as_ref()
                            .expect("enabled slot has quantizer");
                        match (&mut slot.state, &network.layers()[i].1) {
                            (SlotState::Fc(st), Layer::FullyConnected(fc)) => {
                                let (lin, s) =
                                    st.execute_with(&parallel, fc, q, frame.as_slice())?;
                                (fc.activation().apply(&lin), s.into())
                            }
                            _ => unreachable!(
                                "recurrent nets only contain FC and BiLSTM weighted layers"
                            ),
                        }
                    };
                    let span_ns = span_elapsed_ns(span);
                    let n_outputs = out.len() as u64;
                    let trace_ref = if record_trace {
                        Some(&mut traces[t])
                    } else {
                        None
                    };
                    self.record_layer_execution(
                        slot_pos,
                        Some(frame.as_slice()),
                        stats,
                        n_outputs,
                        span_ns,
                        trace_ref,
                    );
                    out_seq.push(out);
                }
                seq = out_seq;
            } else {
                if record_trace {
                    for (t, frame) in seq.iter().enumerate() {
                        if slot_pos != usize::MAX {
                            traces[t]
                                .layers
                                .push(self.scratch_trace_entry(i, frame.len() as u64));
                        }
                    }
                }
                seq = seq
                    .into_iter()
                    .map(|t| -> Result<Tensor, ReuseError> {
                        let t = self.reshape_to_layer(t, i)?;
                        Ok(self.network.apply_layer(i, t)?)
                    })
                    .collect::<Result<_, _>>()?;
            }
        }
        if record_trace {
            self.traces.extend(traces);
        }
        self.executions_seen += frames.len() as u64;
        self.metrics.executions += frames.len() as u64;
        if let Some(tel) = self.telemetry.as_mut() {
            tel.frames += frames.len() as u64;
        }
        Ok(seq)
    }

    /// Runs one unidirectional LSTM layer over the sequence with reuse
    /// between consecutive timesteps.
    fn reuse_lstm_layer(
        &mut self,
        layer_index: usize,
        slot_pos: usize,
        seq: Vec<Tensor>,
        traces: &mut [ExecutionTrace],
    ) -> Result<Vec<Tensor>, ReuseError> {
        let record_trace = self.config.records_trace();
        let timed = self.telemetry.is_some();
        let parallel = *self.config.parallel_config();
        let xs: Vec<Vec<f32>> = seq.iter().map(|t| t.as_slice().to_vec()).collect();
        let (out, stats, spans) = {
            let network = &self.network;
            let Layer::Lstm(cell) = &network.layers()[layer_index].1 else {
                unreachable!()
            };
            let slot = &mut self.slots[slot_pos];
            let qx = slot.quantizer_x.expect("enabled lstm has x quantizer");
            let qh = slot.quantizer_h.expect("enabled lstm has h quantizer");
            let SlotState::Lstm(state) = &mut slot.state else {
                unreachable!()
            };
            let mut out = Vec::with_capacity(xs.len());
            let mut stats: Vec<ExecStats> = Vec::with_capacity(xs.len());
            let mut spans: Vec<u64> = Vec::with_capacity(xs.len());
            for x in &xs {
                let span = span_start(timed);
                let (h, s) = state.step_with(&parallel, cell, &qx, &qh, x)?;
                spans.push(span_elapsed_ns(span));
                out.push(h);
                stats.push(s.into());
            }
            (out, stats, spans)
        };
        for (t, s) in stats.into_iter().enumerate() {
            let trace_ref = if record_trace {
                Some(&mut traces[t])
            } else {
                None
            };
            let n_outputs = out[t].len() as u64;
            self.record_layer_execution(slot_pos, Some(&xs[t]), s, n_outputs, spans[t], trace_ref);
        }
        out.into_iter()
            .map(|o| Tensor::from_slice_1d(&o).map_err(ReuseError::from))
            .collect()
    }

    /// Runs one BiLSTM layer over the sequence with per-direction reuse.
    fn reuse_bilstm_layer(
        &mut self,
        layer_index: usize,
        slot_pos: usize,
        seq: Vec<Tensor>,
        traces: &mut [ExecutionTrace],
    ) -> Result<Vec<Tensor>, ReuseError> {
        let record_trace = self.config.records_trace();
        let timed = self.telemetry.is_some();
        let parallel = *self.config.parallel_config();
        let n = seq.len();
        let xs: Vec<Vec<f32>> = seq.iter().map(|t| t.as_slice().to_vec()).collect();
        let (out, fwd_stats, bwd_stats, spans) = {
            let network = &self.network;
            let Layer::BiLstm(layer) = &network.layers()[layer_index].1 else {
                unreachable!()
            };
            let d = layer.cell_dim();
            let slot = &mut self.slots[slot_pos];
            let qx = slot.quantizer_x.expect("enabled bilstm has x quantizer");
            let qh = slot.quantizer_h.expect("enabled bilstm has h quantizer");
            let SlotState::BiLstm { fwd, bwd } = &mut slot.state else {
                unreachable!()
            };
            let mut out = vec![vec![0.0f32; 2 * d]; n];
            let mut fwd_stats: Vec<ExecStats> = Vec::with_capacity(n);
            let mut bwd_stats: Vec<Option<ExecStats>> = vec![None; n];
            // Per-timestep span: forward and backward direction summed.
            let mut spans: Vec<u64> = vec![0; n];
            for (t, x) in xs.iter().enumerate() {
                let span = span_start(timed);
                let (h, s) = fwd.step_with(&parallel, layer.forward_cell(), &qx, &qh, x)?;
                spans[t] += span_elapsed_ns(span);
                out[t][..d].copy_from_slice(&h);
                fwd_stats.push(s.into());
            }
            for (t, x) in xs.iter().enumerate().rev() {
                let span = span_start(timed);
                let (h, s) = bwd.step_with(&parallel, layer.backward_cell(), &qx, &qh, x)?;
                spans[t] += span_elapsed_ns(span);
                out[t][d..].copy_from_slice(&h);
                bwd_stats[t] = Some(s.into());
            }
            (out, fwd_stats, bwd_stats, spans)
        };
        // Record metrics and traces per timestep, merging the two directions.
        for t in 0..n {
            let merged = fwd_stats[t].merge(bwd_stats[t].expect("filled for every t"));
            let trace_ref = if record_trace {
                Some(&mut traces[t])
            } else {
                None
            };
            let n_outputs = out[t].len() as u64;
            self.record_layer_execution(
                slot_pos,
                Some(&xs[t]),
                merged,
                n_outputs,
                spans[t],
                trace_ref,
            );
        }
        out.into_iter()
            .map(|o| Tensor::from_slice_1d(&o).map_err(ReuseError::from))
            .collect()
    }
}

// Engine-level behaviour is exercised by the integration tests in
// `crates/reuse/tests/engine.rs`; unit tests here cover the private pieces.
#[cfg(test)]
mod tests {
    use super::*;
    use reuse_nn::{Activation, NetworkBuilder};
    use reuse_tensor::Shape;

    #[test]
    fn slots_cover_only_weighted_layers() {
        let net = NetworkBuilder::with_input_shape("cnn", Shape::d3(1, 6, 6))
            .conv2d(2, 3, 1, 1, Activation::Relu)
            .pool2d(2)
            .flatten()
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap();
        let engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
        assert_eq!(engine.slots.len(), 2);
        assert_eq!(engine.metrics().layers.len(), 2);
        assert_eq!(engine.slot_of_layer[0], 0);
        assert_eq!(engine.slot_of_layer[1], usize::MAX);
        assert_eq!(engine.slot_of_layer[3], 1);
    }

    #[test]
    fn exec_stats_merge_adds_counts() {
        let a = ExecStats {
            n_inputs: 10,
            n_changed: 2,
            macs_total: 100,
            macs_performed: 20,
            from_scratch: false,
        };
        let b = ExecStats {
            n_inputs: 5,
            n_changed: 5,
            macs_total: 50,
            macs_performed: 50,
            from_scratch: true,
        };
        let m = a.merge(b);
        assert_eq!(m.n_inputs, 15);
        assert_eq!(m.n_changed, 7);
        assert_eq!(m.macs_total, 150);
        assert_eq!(m.macs_performed, 70);
        assert!(m.from_scratch);
        assert_eq!(m.mode(true), TraceKind::ScratchQuantized);
        assert_eq!(a.mode(true), TraceKind::Incremental);
        assert_eq!(a.mode(false), TraceKind::ScratchFp32);
    }
}

//! Per-layer reuse policies: the single place every reuse decision lives.
//!
//! Historically the knobs steering reuse were scattered — cluster counts in
//! [`LayerSetting`], the signature bailout fraction and watchdog escalation
//! in [`ReuseConfig`], and the "always correct, never refresh" decision
//! hard-coded in the fc/conv/lstm step loops. A [`ReusePolicy`] gathers
//! them behind one trait: the model resolves an immutable [`LayerPolicy`]
//! per slot at compile time, and sessions of adaptive policies own a
//! mutable [`AdaptiveController`] per layer that retunes the quantization
//! step and refresh threshold online against the drift watchdog's accuracy
//! proxy.
//!
//! Three implementations ship:
//!
//! * [`StaticPolicy`] — resolves every knob to exactly the value the
//!   pre-policy engine used; sessions behave bit-identically to the legacy
//!   path (property-tested in `tests/policy.rs`).
//! * [`AdaptivePolicy`] — arms a per-layer online controller (requires the
//!   drift watchdog; feed-forward networks only).
//! * [`TunedPolicy`] — a per-layer policy file emitted by `reuse_cli tune`,
//!   hand-rolled JSON with a dependency-free parser, loadable by
//!   [`CompiledModel`](crate::CompiledModel).

use std::fmt::Write as _;

use crate::{LayerSetting, ReuseConfig, ReuseError};

/// The resolved, immutable reuse policy of one layer — what a
/// [`CompiledModel`](crate::CompiledModel) stores per slot.
///
/// For a [`StaticPolicy`] every field mirrors the legacy knob it replaced
/// (`clusters` from the layer setting, `signature_bailout` and
/// `escalate_after` from the config) and `adaptive` is `false`, which
/// makes the whole policy layer a provable no-op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPolicy {
    /// Quantization cluster count (the paper's `C`); the calibrated base
    /// step is `range / clusters`.
    pub clusters: usize,
    /// Initial multiplier on the calibrated base step (1.0 = paper
    /// behavior). Adaptive controllers start here and move within
    /// `[1.0, max_step_scale]`.
    pub step_scale: f32,
    /// Upper bound for the controller's step scale.
    pub max_step_scale: f32,
    /// Changed-code fraction above which an adaptive layer refreshes: it
    /// recomputes exactly from the raw input and re-adopts a
    /// full-precision baseline instead of correcting. Ignored (never
    /// evaluated) when `adaptive` is `false`.
    pub reuse_threshold: f32,
    /// Input-similarity level at which the controller stops coarsening the
    /// grid — coarsening past it buys accuracy risk for no reuse gain.
    pub target_similarity: f32,
    /// Fraction of the drift bound considered safe headroom: the
    /// controller only grows the step while observed drift stays at or
    /// under `headroom * drift_bound`.
    pub headroom: f32,
    /// Signature-cache false-positive guard for this layer (mismatched
    /// quantized-code fraction above which a hit is abandoned).
    pub signature_bailout: f32,
    /// Drift strikes after which this layer is auto-disabled (0 = never).
    pub escalate_after: u64,
    /// Whether sessions attach an [`AdaptiveController`] to this layer.
    pub adaptive: bool,
}

impl LayerPolicy {
    /// The legacy resolution: every knob exactly where the pre-policy
    /// engine read it.
    pub fn static_for(setting: &LayerSetting, config: &ReuseConfig) -> Self {
        LayerPolicy {
            clusters: setting.clusters,
            step_scale: 1.0,
            max_step_scale: 1.0,
            reuse_threshold: 1.0,
            target_similarity: 1.0,
            headroom: 0.5,
            signature_bailout: config.signature_bailout(),
            escalate_after: config.escalate_after(),
            adaptive: false,
        }
    }
}

/// A reuse policy: resolves the per-layer decision knobs at model-compile
/// time. Implementations must be cheap and deterministic — `layer_policy`
/// is called once per weighted layer per [`CompiledModel`](crate::CompiledModel).
pub trait ReusePolicy: std::fmt::Debug + Send + Sync {
    /// Short name for telemetry/bench provenance (`"static"`, `"adaptive"`,
    /// `"tuned"`).
    fn name(&self) -> &'static str;

    /// Resolves the policy for one weighted layer given its legacy setting
    /// and the engine config.
    fn layer_policy(
        &self,
        layer: &str,
        setting: &LayerSetting,
        config: &ReuseConfig,
    ) -> LayerPolicy;
}

/// The do-exactly-what-the-paper-does policy: one fixed quantization step
/// per layer, correct every frame, never refresh. Bit-identical to the
/// pre-policy engine — this is the default when no policy is configured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticPolicy;

impl ReusePolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }

    fn layer_policy(
        &self,
        _layer: &str,
        setting: &LayerSetting,
        config: &ReuseConfig,
    ) -> LayerPolicy {
        LayerPolicy::static_for(setting, config)
    }
}

/// The online self-tuning policy: each layer gets an
/// [`AdaptiveController`] that coarsens the quantization step while the
/// drift watchdog's accuracy proxy shows headroom and backs off (down to
/// exactly the static grid) when it does not.
///
/// Requires an armed drift watchdog
/// ([`ReuseConfig::drift_watchdog`](crate::ReuseConfig::drift_watchdog)) —
/// [`CompiledModel::try_new`](crate::CompiledModel::try_new) rejects the
/// combination otherwise, since without the proxy the controller would be
/// flying blind. On recurrent networks the adaptive bits are masked off
/// and every layer runs the static resolution (sequence resets make the
/// drift feedback loop meaningless mid-sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Initial step-scale for every layer (default 1.0 — start at the
    /// paper's grid and earn coarseness from observed drift headroom).
    pub initial_step_scale: f32,
    /// Upper bound on the step scale (default 8.0).
    pub max_step_scale: f32,
    /// Initial changed-code-fraction refresh threshold (default 0.75).
    pub reuse_threshold: f32,
    /// Input-similarity target past which coarsening stops (default 0.95).
    pub target_similarity: f32,
    /// Safe fraction of the drift bound for growth (default 0.5).
    pub headroom: f32,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            initial_step_scale: 1.0,
            max_step_scale: 8.0,
            reuse_threshold: 0.75,
            target_similarity: 0.95,
            headroom: 0.5,
        }
    }
}

impl ReusePolicy for AdaptivePolicy {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn layer_policy(
        &self,
        _layer: &str,
        setting: &LayerSetting,
        config: &ReuseConfig,
    ) -> LayerPolicy {
        LayerPolicy {
            clusters: setting.clusters,
            step_scale: self.initial_step_scale.max(1.0),
            max_step_scale: self.max_step_scale.max(1.0),
            reuse_threshold: self.reuse_threshold,
            target_similarity: self.target_similarity,
            headroom: self.headroom,
            signature_bailout: config.signature_bailout(),
            escalate_after: config.escalate_after(),
            adaptive: true,
        }
    }
}

/// How far the refresh threshold may tighten below its configured start.
const MIN_THRESHOLD_FACTOR: f32 = 0.25;
/// Multiplicative step-scale growth per safe watchdog observation.
const SCALE_GROW: f32 = 1.5;
/// Multiplicative step-scale backoff per drift violation.
const SCALE_SHRINK: f32 = 0.5;
/// EWMA smoothing for the per-frame unchanged-fraction observation.
const EWMA_ALPHA: f32 = 0.1;

/// Mutable per-layer controller state owned by a session of an adaptive
/// policy (AIMD-style loop over the watchdog's drift observations).
///
/// Control law, evaluated once per watchdog check:
///
/// * drift **above** the bound → the refresh threshold tightens
///   (`t ← max(0.25·t₀, 0.5·t)`) and the step scale halves toward 1.0 —
///   the grid backs off to, at worst, exactly the static one.
/// * drift in band but the hot path **refreshed** since the last check →
///   the step scale halves toward 1.0 without growing. Refreshed frames
///   pay full recompute cost *and* pin the output to the exact values, so
///   the watchdog cannot see the coarse grid's error — a controller that
///   kept growing here would climb to max scale on an adversarial stream
///   while buying nothing. Backing off toward the static grid is the
///   known-safe operating point until the stream calms down.
/// * drift **at or under** `headroom · bound`, no refreshes since the
///   last check, and smoothed input similarity still below
///   `target_similarity` → the step scale grows (`s ← min(max, 1.5·s)`),
///   merging more inputs per code and raising skipped MACs; the threshold
///   relaxes back toward its start (`t ← min(t₀, 1.2·t)`).
///
/// A scale change is proposed first and committed only after the session
/// successfully rebuilds the layer's quantizer at the new step and
/// re-baselines the buffered state — the controller never disagrees with
/// the grid actually in use.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveController {
    policy: LayerPolicy,
    step_scale: f32,
    reuse_threshold: f32,
    /// Smoothed unchanged-code fraction over recent incremental frames.
    ewma_unchanged: f32,
    seen_execution: bool,
    /// Threshold refreshes since the last watchdog observation (refresh
    /// pressure — see the control law above).
    refreshes_since_check: u64,
    observations: u64,
    grows: u64,
    shrinks: u64,
    refreshes: u64,
}

impl AdaptiveController {
    /// A controller at the policy's initial operating point.
    pub fn new(policy: &LayerPolicy) -> Self {
        AdaptiveController {
            policy: *policy,
            step_scale: policy.step_scale.max(1.0),
            reuse_threshold: policy.reuse_threshold,
            ewma_unchanged: 0.0,
            seen_execution: false,
            refreshes_since_check: 0,
            observations: 0,
            grows: 0,
            shrinks: 0,
            refreshes: 0,
        }
    }

    /// Current step-scale multiplier on the calibrated base step.
    pub fn step_scale(&self) -> f32 {
        self.step_scale
    }

    /// Current changed-code-fraction refresh threshold.
    pub fn reuse_threshold(&self) -> f32 {
        self.reuse_threshold
    }

    /// Watchdog observations consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Committed step-scale growths.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Committed step-scale backoffs.
    pub fn shrinks(&self) -> u64 {
        self.shrinks
    }

    /// Threshold-triggered full refreshes performed by the hot path.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Feeds one incremental execution's unchanged-code fraction into the
    /// similarity EWMA (hot path; no allocation, a handful of flops).
    pub fn observe_execution(&mut self, unchanged_fraction: f32) {
        if self.seen_execution {
            self.ewma_unchanged += EWMA_ALPHA * (unchanged_fraction - self.ewma_unchanged);
        } else {
            self.ewma_unchanged = unchanged_fraction;
            self.seen_execution = true;
        }
    }

    /// Counts one threshold-triggered refresh.
    pub fn note_refresh(&mut self) {
        self.refreshes += 1;
        self.refreshes_since_check += 1;
    }

    /// Consumes one watchdog observation (network-output drift vs. the
    /// full-precision reference). Returns the step scale the controller
    /// wants to move to, or `None` to stay put; the caller rebuilds the
    /// quantizer and then calls [`Self::commit_scale`].
    pub fn on_watchdog(&mut self, drift: f32, bound: f32) -> Option<f32> {
        self.observations += 1;
        let refresh_pressure = self.refreshes_since_check > 0;
        self.refreshes_since_check = 0;
        let floor = self.policy.reuse_threshold * MIN_THRESHOLD_FACTOR;
        if drift > bound {
            self.reuse_threshold = (self.reuse_threshold * 0.5).max(floor);
            if self.step_scale > 1.0 {
                return Some((self.step_scale * SCALE_SHRINK).max(1.0));
            }
            return None;
        }
        if refresh_pressure {
            // Refreshed frames paid full cost and hid the grid's error from
            // the drift proxy; back off toward the static grid instead of
            // growing blind.
            if self.step_scale > 1.0 {
                return Some((self.step_scale * SCALE_SHRINK).max(1.0));
            }
            return None;
        }
        self.reuse_threshold = (self.reuse_threshold * 1.2).min(self.policy.reuse_threshold);
        if drift <= self.policy.headroom * bound
            && self.seen_execution
            && self.ewma_unchanged < self.policy.target_similarity
            && self.step_scale < self.policy.max_step_scale
        {
            return Some((self.step_scale * SCALE_GROW).min(self.policy.max_step_scale));
        }
        None
    }

    /// Commits a scale proposed by [`Self::on_watchdog`] after the session
    /// rebuilt the quantizer at the new step.
    pub fn commit_scale(&mut self, scale: f32) {
        if scale > self.step_scale {
            self.grows += 1;
        } else {
            self.shrinks += 1;
        }
        self.step_scale = scale;
    }
}

/// Point-in-time policy state of one layer, exported through
/// [`TelemetrySnapshot`](crate::TelemetrySnapshot) and the serving tier's
/// `ServerSnapshot` so operators can see what the controllers chose.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPolicyState {
    /// Layer name.
    pub name: String,
    /// Whether an adaptive controller is attached.
    pub adaptive: bool,
    /// Configured cluster count (base grid).
    pub clusters: usize,
    /// Current effective quantization step (0.0 until calibrated).
    pub step: f32,
    /// Current step-scale multiplier (1.0 = the paper's grid).
    pub step_scale: f32,
    /// Current refresh threshold (changed-code fraction).
    pub reuse_threshold: f32,
    /// Watchdog observations the controller consumed.
    pub observations: u64,
    /// Committed step-scale growths.
    pub grows: u64,
    /// Committed step-scale backoffs.
    pub shrinks: u64,
    /// Threshold-triggered full refreshes.
    pub refreshes: u64,
}

impl LayerPolicyState {
    /// One-line JSON object (no trailing newline), composed into telemetry
    /// and server snapshots.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"name\": {}, \"adaptive\": {}, \"clusters\": {}, \"step\": {}, \
             \"step_scale\": {}, \"reuse_threshold\": {}, \"observations\": {}, \
             \"grows\": {}, \"shrinks\": {}, \"refreshes\": {}}}",
            crate::telemetry::json_str(&self.name),
            self.adaptive,
            self.clusters,
            crate::telemetry::json_num(f64::from(self.step)),
            crate::telemetry::json_num(f64::from(self.step_scale)),
            crate::telemetry::json_num(f64::from(self.reuse_threshold)),
            self.observations,
            self.grows,
            self.shrinks,
            self.refreshes,
        );
        s
    }
}

/// One layer's entry in a tuned policy file.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedLayerPolicy {
    /// Layer name the entry applies to.
    pub layer: String,
    /// Cluster count for the base grid.
    pub clusters: usize,
    /// Initial step-scale multiplier.
    pub step_scale: f32,
    /// Changed-code-fraction refresh threshold.
    pub reuse_threshold: f32,
    /// Whether the layer keeps adapting online (else the tuned operating
    /// point is frozen).
    pub adaptive: bool,
}

/// A per-model policy file: the artifact `reuse_cli tune` emits after
/// sweeping replayed streams, loadable back into a
/// [`CompiledModel`](crate::CompiledModel) via
/// [`ReuseConfig::reuse_policy`](crate::ReuseConfig::reuse_policy).
///
/// Layers without an entry fall back to the static resolution. The file
/// format is hand-rolled JSON (the workspace carries no serde):
///
/// ```json
/// {
///   "policy_file": "reuse-policy",
///   "version": 1,
///   "network": "autopilot",
///   "layers": [
///     {"layer": "fc1", "clusters": 32, "step_scale": 2.25,
///      "reuse_threshold": 0.75, "adaptive": true}
///   ]
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TunedPolicy {
    /// Network the file was tuned for (informational; layer names do the
    /// actual matching).
    pub network: String,
    /// Per-layer tuned operating points.
    pub layers: Vec<TunedLayerPolicy>,
}

impl ReusePolicy for TunedPolicy {
    fn name(&self) -> &'static str {
        "tuned"
    }

    fn layer_policy(
        &self,
        layer: &str,
        setting: &LayerSetting,
        config: &ReuseConfig,
    ) -> LayerPolicy {
        let Some(t) = self.layers.iter().find(|l| l.layer == layer) else {
            return LayerPolicy::static_for(setting, config);
        };
        let defaults = AdaptivePolicy::default();
        LayerPolicy {
            clusters: t.clusters,
            step_scale: t.step_scale.max(1.0),
            max_step_scale: defaults.max_step_scale.max(t.step_scale),
            reuse_threshold: t.reuse_threshold,
            target_similarity: defaults.target_similarity,
            headroom: defaults.headroom,
            signature_bailout: config.signature_bailout(),
            escalate_after: config.escalate_after(),
            adaptive: t.adaptive,
        }
    }
}

impl TunedPolicy {
    /// Serializes the policy file (schema documented on the type).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"policy_file\": \"reuse-policy\",\n");
        s.push_str("  \"version\": 1,\n");
        let _ = writeln!(
            s,
            "  \"network\": {},",
            crate::telemetry::json_str(&self.network)
        );
        s.push_str("  \"layers\": [\n");
        for (i, l) in self.layers.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"layer\": {}, \"clusters\": {}, \"step_scale\": {}, \
                 \"reuse_threshold\": {}, \"adaptive\": {}}}{}",
                crate::telemetry::json_str(&l.layer),
                l.clusters,
                l.step_scale,
                l.reuse_threshold,
                l.adaptive,
                if i + 1 < self.layers.len() { "," } else { "" }
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a policy file (the inverse of [`Self::to_json`]; tolerant of
    /// whitespace and key order).
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::InvalidConfig`] on malformed JSON, a missing
    /// or wrong `policy_file`/`version` header, or out-of-range values
    /// (`clusters < 2`, `step_scale` outside `[1, 64]`, `reuse_threshold`
    /// outside `(0, 1]`).
    pub fn from_json(text: &str) -> Result<Self, ReuseError> {
        let invalid = |context: String| ReuseError::InvalidConfig { context };
        let root = json::parse(text).map_err(|e| invalid(format!("policy file: {e}")))?;
        let obj = root
            .as_object()
            .ok_or_else(|| invalid("policy file: root is not an object".into()))?;
        let field = |key: &str| -> Result<&json::Value, ReuseError> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| invalid(format!("policy file: missing key {key:?}")))
        };
        match field("policy_file")?.as_str() {
            Some("reuse-policy") => {}
            _ => return Err(invalid("policy file: not a reuse-policy file".into())),
        }
        if field("version")?.as_f64() != Some(1.0) {
            return Err(invalid("policy file: unsupported version".into()));
        }
        let network = field("network")?
            .as_str()
            .ok_or_else(|| invalid("policy file: network must be a string".into()))?
            .to_string();
        let layers_val = field("layers")?
            .as_array()
            .ok_or_else(|| invalid("policy file: layers must be an array".into()))?;
        let mut layers = Vec::with_capacity(layers_val.len());
        for (i, entry) in layers_val.iter().enumerate() {
            let obj = entry
                .as_object()
                .ok_or_else(|| invalid(format!("policy file: layers[{i}] is not an object")))?;
            let get = |key: &str| -> Result<&json::Value, ReuseError> {
                obj.iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| invalid(format!("policy file: layers[{i}] missing {key:?}")))
            };
            let layer = get("layer")?
                .as_str()
                .ok_or_else(|| invalid(format!("policy file: layers[{i}].layer not a string")))?
                .to_string();
            let clusters = get("clusters")?.as_f64().unwrap_or(-1.0);
            if clusters < 2.0 || clusters.fract() != 0.0 || clusters > 1e6 {
                return Err(invalid(format!(
                    "policy file: layer {layer:?} clusters must be an integer >= 2"
                )));
            }
            let step_scale = get("step_scale")?.as_f64().unwrap_or(f64::NAN) as f32;
            if !(1.0..=64.0).contains(&step_scale) {
                return Err(invalid(format!(
                    "policy file: layer {layer:?} step_scale must be in [1, 64]"
                )));
            }
            let reuse_threshold = get("reuse_threshold")?.as_f64().unwrap_or(f64::NAN) as f32;
            if !(reuse_threshold > 0.0 && reuse_threshold <= 1.0) {
                return Err(invalid(format!(
                    "policy file: layer {layer:?} reuse_threshold must be in (0, 1]"
                )));
            }
            let adaptive = get("adaptive")?.as_bool().ok_or_else(|| {
                invalid(format!("policy file: layers[{i}].adaptive not a boolean"))
            })?;
            layers.push(TunedLayerPolicy {
                layer,
                clusters: clusters as usize,
                step_scale,
                reuse_threshold,
                adaptive,
            });
        }
        Ok(TunedPolicy { network, layers })
    }
}

/// A minimal recursive-descent JSON reader — just enough for policy files.
/// The workspace's JSON *writers* are hand-rolled `format!` calls and its
/// schema *checks* are substring scans; the policy file is the first
/// artifact the engine reads back, so it gets a real (tiny) parser.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (parsed as f64).
        Num(f64),
        /// A string (escapes decoded).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, as ordered key/value pairs (duplicate keys keep the
        /// first occurrence on lookup).
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(_) => self.number(),
                None => Err("unexpected end of input".into()),
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        /// Scans a number with the strict JSON grammar
        /// `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`. Rust's
        /// `f64::parse` is laxer than JSON (it accepts `+1`, `.5`, `1.`,
        /// `inf`, ...), so the grammar is enforced here byte by byte and
        /// the parse below can never loosen it.
        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            match self.peek() {
                Some(b'0') => {
                    self.pos += 1;
                    if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                        return Err(format!("leading zero in number at byte {start}"));
                    }
                }
                Some(b) if b.is_ascii_digit() => {
                    while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                        self.pos += 1;
                    }
                }
                _ => return Err(format!("invalid number at byte {start}: expected a digit")),
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    return Err(format!(
                        "invalid number at byte {start}: no digits after decimal point"
                    ));
                }
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    return Err(format!(
                        "invalid number at byte {start}: no digits in exponent"
                    ));
                }
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .expect("number grammar only admits ASCII");
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("invalid number {text:?} at byte {start}"))
        }

        /// Reads exactly four hex digits at `at`. Strict digit validation:
        /// `u32::from_str_radix` alone would admit a leading `+`.
        fn hex4(&self, at: usize) -> Result<u32, String> {
            let hex = self
                .bytes
                .get(at..at + 4)
                .ok_or_else(|| format!("truncated \\u escape at byte {at}"))?;
            if !hex.iter().all(u8::is_ascii_hexdigit) {
                return Err(format!("bad \\u escape at byte {at}"));
            }
            let text = std::str::from_utf8(hex).expect("ascii hex digits");
            Ok(u32::from_str_radix(text, 16).expect("four hex digits fit u32"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'u') => {
                                // `self.pos` is at the 'u'; the shared
                                // `self.pos += 1` after this match walks
                                // past the escape's final hex digit.
                                let u_pos = self.pos;
                                let code = self.hex4(u_pos + 1)?;
                                match code {
                                    // High surrogate: JSON encodes non-BMP
                                    // characters as a UTF-16 pair, so the
                                    // low half must follow immediately.
                                    0xD800..=0xDBFF => {
                                        if self.bytes.get(u_pos + 5) != Some(&b'\\')
                                            || self.bytes.get(u_pos + 6) != Some(&b'u')
                                        {
                                            return Err(format!(
                                                "unpaired surrogate \\u{code:04X} at byte {u_pos}"
                                            ));
                                        }
                                        let lo = self.hex4(u_pos + 7)?;
                                        if !(0xDC00..=0xDFFF).contains(&lo) {
                                            return Err(format!(
                                                "unpaired surrogate \\u{code:04X} at byte {u_pos}"
                                            ));
                                        }
                                        let c = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                        out.push(
                                            char::from_u32(c)
                                                .expect("surrogate pairs decode in range"),
                                        );
                                        self.pos = u_pos + 10;
                                    }
                                    0xDC00..=0xDFFF => {
                                        return Err(format!(
                                            "unpaired surrogate \\u{code:04X} at byte {u_pos}"
                                        ));
                                    }
                                    bmp => {
                                        out.push(
                                            char::from_u32(bmp).expect("non-surrogate BMP scalar"),
                                        );
                                        self.pos = u_pos + 4;
                                    }
                                }
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (multi-byte sequences pass
                        // through unvalidated bytes of a &str, so they are
                        // valid by construction).
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|_| "non-utf8 string")?;
                        let c = s.chars().next().ok_or("unterminated string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(items));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                items.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(items));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ReuseConfig {
        ReuseConfig::uniform(16)
            .signature_bailout_fraction(0.3)
            .drift_escalate_after(5)
    }

    #[test]
    fn json_numbers_reject_non_json_forms() {
        // f64::parse accepts all of these; strict JSON must not. Each error
        // carries the byte offset of the offending number.
        for (text, offset) in [
            ("{\"v\": +1}", 6),
            ("{\"v\": .5}", 6),
            ("{\"v\": 1.}", 6),
            ("{\"v\": 1e}", 6),
            ("{\"v\": 1e+}", 6),
            ("{\"v\": 01}", 6),
            ("{\"v\": -}", 6),
        ] {
            let err = json::parse(text).expect_err(text);
            assert!(
                err.contains(&format!("byte {offset}")),
                "{text}: error {err:?} must name byte {offset}"
            );
        }
        // The strict grammar still admits every valid JSON shape.
        for (text, want) in [
            ("{\"v\": -0.5}", -0.5),
            ("{\"v\": 0}", 0.0),
            ("{\"v\": 10.25e-2}", 0.1025),
            ("{\"v\": 3E2}", 300.0),
        ] {
            let root = json::parse(text).expect(text);
            let obj = root.as_object().unwrap();
            assert_eq!(obj[0].1.as_f64(), Some(want), "{text}");
        }
    }

    #[test]
    fn unicode_escapes_decode_surrogate_pairs() {
        // One escaped non-BMP char (🚀 = U+1F680) must decode to a single
        // scalar, not two replacement characters.
        let root = json::parse("{\"name\": \"net \\ud83d\\ude80 v2\"}").unwrap();
        let obj = root.as_object().unwrap();
        assert_eq!(obj[0].1.as_str(), Some("net \u{1F680} v2"));
        // BMP escapes are unaffected, including literal text after them.
        let root = json::parse("{\"name\": \"\\u00e9tat\"}").unwrap();
        assert_eq!(root.as_object().unwrap()[0].1.as_str(), Some("état"));
    }

    #[test]
    fn unicode_escapes_reject_lone_surrogates_and_bad_hex() {
        for text in [
            "{\"name\": \"\\ud83d\"}",        // lone high surrogate
            "{\"name\": \"\\ud83d rest\"}",   // high surrogate, no pair
            "{\"name\": \"\\ude80\"}",        // lone low surrogate
            "{\"name\": \"\\ud83d\\u0041\"}", // high + non-surrogate
            "{\"name\": \"\\u+12F\"}",        // from_str_radix would take '+'
            "{\"name\": \"\\u12G4\"}",        // non-hex digit
            "{\"name\": \"\\u12\"}",          // truncated
        ] {
            assert!(json::parse(text).is_err(), "{text} must be rejected");
        }
    }

    #[test]
    fn policy_round_trips_non_bmp_network_name() {
        let policy = TunedPolicy {
            network: "kaldi \u{1F680}".to_string(),
            layers: vec![TunedLayerPolicy {
                layer: "fc1".to_string(),
                clusters: 16,
                step_scale: 2.0,
                reuse_threshold: 0.5,
                adaptive: true,
            }],
        };
        let parsed = TunedPolicy::from_json(&policy.to_json()).unwrap();
        assert_eq!(parsed.network, "kaldi \u{1F680}");
        // The same name arriving as an escaped surrogate pair decodes to
        // the identical string.
        let escaped = policy.to_json().replace('\u{1F680}', "\\uD83D\\uDE80");
        let parsed = TunedPolicy::from_json(&escaped).unwrap();
        assert_eq!(parsed.network, "kaldi \u{1F680}");
    }

    #[test]
    fn static_policy_mirrors_legacy_knobs() {
        let config = cfg();
        let setting = config.setting_for("fc1");
        let lp = StaticPolicy.layer_policy("fc1", &setting, &config);
        assert_eq!(lp.clusters, 16);
        assert_eq!(lp.step_scale, 1.0);
        assert!(!lp.adaptive);
        assert!((lp.signature_bailout - 0.3).abs() < 1e-9);
        assert_eq!(lp.escalate_after, 5);
    }

    #[test]
    fn adaptive_controller_grows_on_headroom_and_shrinks_on_violation() {
        let config = cfg();
        let setting = config.setting_for("fc1");
        let lp = AdaptivePolicy::default().layer_policy("fc1", &setting, &config);
        let mut c = AdaptiveController::new(&lp);
        // Low similarity + tiny drift: the controller wants a coarser grid.
        c.observe_execution(0.4);
        let proposed = c.on_watchdog(0.001, 0.05).expect("should grow");
        assert!(proposed > 1.0);
        c.commit_scale(proposed);
        assert_eq!(c.grows(), 1);
        // A violation walks it back down and tightens the threshold.
        let t_before = c.reuse_threshold();
        let back = c.on_watchdog(0.2, 0.05).expect("should shrink");
        assert!(back < proposed);
        c.commit_scale(back);
        assert_eq!(c.shrinks(), 1);
        assert!(c.reuse_threshold() < t_before);
        // At scale 1.0 a violation has nothing left to shrink.
        let mut floor = AdaptiveController::new(&lp);
        assert_eq!(floor.on_watchdog(0.2, 0.05), None);
        assert_eq!(floor.step_scale(), 1.0);
    }

    #[test]
    fn adaptive_controller_respects_target_similarity_and_max_scale() {
        let config = cfg();
        let setting = config.setting_for("fc1");
        let lp = AdaptivePolicy {
            max_step_scale: 2.0,
            ..AdaptivePolicy::default()
        }
        .layer_policy("fc1", &setting, &config);
        let mut c = AdaptiveController::new(&lp);
        // Similarity already above target: no growth however safe.
        c.observe_execution(0.99);
        assert_eq!(c.on_watchdog(0.0, 0.05), None);
        // Below target: grows, but saturates at the configured max.
        let mut c = AdaptiveController::new(&lp);
        c.observe_execution(0.2);
        let s1 = c.on_watchdog(0.0, 0.05).unwrap();
        c.commit_scale(s1);
        let s2 = c.on_watchdog(0.0, 0.05).unwrap();
        c.commit_scale(s2);
        assert_eq!(s2, 2.0);
        assert_eq!(c.on_watchdog(0.0, 0.05), None, "saturated at max scale");
    }

    #[test]
    fn adaptive_controller_backs_off_under_refresh_pressure() {
        let config = cfg();
        let setting = config.setting_for("fc1");
        let lp = AdaptivePolicy::default().layer_policy("fc1", &setting, &config);
        let mut c = AdaptiveController::new(&lp);
        c.observe_execution(0.3);
        let s = c.on_watchdog(0.0, 0.05).expect("grows while calm");
        c.commit_scale(s);
        // Refreshed frames hide the grid's error from the drift proxy, so
        // even a perfectly safe observation must shrink, not grow.
        c.note_refresh();
        let back = c.on_watchdog(0.0, 0.05).expect("backs off under pressure");
        assert!(back < s);
        c.commit_scale(back);
        // Pressure is consumed per check: the next calm observation may
        // grow again.
        assert!(c.on_watchdog(0.0, 0.05).is_some());
        // At the static grid, pressure has nothing left to shrink.
        let mut flat = AdaptiveController::new(&lp);
        flat.note_refresh();
        assert_eq!(flat.on_watchdog(0.0, 0.05), None);
        assert_eq!(flat.step_scale(), 1.0);
    }

    #[test]
    fn tuned_policy_round_trips_through_json() {
        let p = TunedPolicy {
            network: "autopilot".to_string(),
            layers: vec![
                TunedLayerPolicy {
                    layer: "conv1".to_string(),
                    clusters: 32,
                    step_scale: 2.25,
                    reuse_threshold: 0.75,
                    adaptive: true,
                },
                TunedLayerPolicy {
                    layer: "fc\"odd\\name".to_string(),
                    clusters: 8,
                    step_scale: 1.0,
                    reuse_threshold: 1.0,
                    adaptive: false,
                },
            ],
        };
        let text = p.to_json();
        let back = TunedPolicy::from_json(&text).expect("round trip parses");
        assert_eq!(back, p);
    }

    #[test]
    fn tuned_policy_rejects_malformed_files() {
        assert!(TunedPolicy::from_json("").is_err());
        assert!(TunedPolicy::from_json("{\"policy_file\": \"other\"}").is_err());
        assert!(TunedPolicy::from_json(
            "{\"policy_file\": \"reuse-policy\", \"version\": 2, \
             \"network\": \"x\", \"layers\": []}"
        )
        .is_err());
        // Out-of-range values are rejected with typed errors.
        for (clusters, scale, thresh) in [
            ("1", "2.0", "0.5"),
            ("16", "0.5", "0.5"),
            ("16", "2.0", "0.0"),
        ] {
            let text = format!(
                "{{\"policy_file\": \"reuse-policy\", \"version\": 1, \
                 \"network\": \"x\", \"layers\": [{{\"layer\": \"fc1\", \
                 \"clusters\": {clusters}, \"step_scale\": {scale}, \
                 \"reuse_threshold\": {thresh}, \"adaptive\": true}}]}}"
            );
            let err = TunedPolicy::from_json(&text).unwrap_err();
            assert!(matches!(err, ReuseError::InvalidConfig { .. }), "{text}");
        }
    }

    #[test]
    fn tuned_policy_falls_back_to_static_for_unknown_layers() {
        let config = cfg();
        let setting = config.setting_for("fc9");
        let p = TunedPolicy {
            network: "x".to_string(),
            layers: vec![TunedLayerPolicy {
                layer: "fc1".to_string(),
                clusters: 4,
                step_scale: 3.0,
                reuse_threshold: 0.5,
                adaptive: true,
            }],
        };
        let known = p.layer_policy("fc1", &setting, &config);
        assert_eq!(known.clusters, 4);
        assert!(known.adaptive);
        let unknown = p.layer_policy("fc9", &setting, &config);
        assert_eq!(unknown, LayerPolicy::static_for(&setting, &config));
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v = super::json::parse(
            " { \"a\" : [1, -2.5e1, true, null, \"q\\u0041\\n\"] , \"b\": {} } ",
        )
        .unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[4].as_str(), Some("qA\n"));
        assert!(super::json::parse("{\"a\": }").is_err());
        assert!(super::json::parse("[1,]").is_err());
        assert!(super::json::parse("{} trailing").is_err());
    }
}

//! Configuration of the reuse scheme: which layers participate and with how
//! many quantization clusters.
//!
//! The paper tunes this per network (Section III): quantization is applied
//! selectively starting from the last layer, because early-layer errors
//! propagate; 16 clusters suit Kaldi/EESEN, 32 suit C3D/AutoPilot; tiny
//! output layers are excluded because they have nothing to save.

use std::collections::HashMap;
use std::sync::Arc;

use reuse_tensor::ParallelConfig;

use crate::policy::ReusePolicy;
use crate::ReuseError;

/// Per-layer reuse setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerSetting {
    /// Whether this layer participates in quantization + reuse.
    pub enabled: bool,
    /// Number of linear-quantization clusters for this layer's inputs.
    pub clusters: usize,
}

/// When a session publishes a baseline into the shared signature cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureInsertPolicy {
    /// Insert only after cold-start from-scratch executions (a stream's
    /// first reuse frame, or the first frame after a state reset). Keeps
    /// cache-write traffic off the steady-state path entirely.
    ColdStart,
    /// Additionally refresh the cache whenever the drift watchdog
    /// re-baselines a layer — the freshly recomputed full-precision
    /// baseline replaces whatever the signature previously mapped to.
    ColdStartAndRebaseline,
}

/// Configuration of a [`crate::ReuseEngine`].
#[derive(Debug, Clone)]
pub struct ReuseConfig {
    default_clusters: usize,
    overrides: HashMap<String, LayerSetting>,
    range_margin: f32,
    calibration_executions: usize,
    record_relative_difference: bool,
    record_trace: bool,
    telemetry: bool,
    telemetry_window: usize,
    drift_check_every: u64,
    drift_bound: f32,
    drift_escalate_after: u64,
    parallel: ParallelConfig,
    signature_cache: bool,
    signature_capacity: usize,
    signature_bits: u32,
    signature_insert: SignatureInsertPolicy,
    signature_bailout: f32,
    /// The reuse policy every per-layer decision resolves through;
    /// `None` means [`crate::StaticPolicy`] (exactly the legacy behavior).
    policy: Option<Arc<dyn ReusePolicy>>,
}

impl ReuseConfig {
    /// All weighted layers enabled with the same cluster count.
    pub fn uniform(clusters: usize) -> Self {
        ReuseConfig {
            default_clusters: clusters,
            overrides: HashMap::new(),
            range_margin: 0.25,
            calibration_executions: 1,
            record_relative_difference: false,
            record_trace: false,
            telemetry: false,
            telemetry_window: 64,
            drift_check_every: 0,
            drift_bound: 1e-3,
            drift_escalate_after: 0,
            parallel: ParallelConfig::serial(),
            signature_cache: false,
            signature_capacity: 1024,
            signature_bits: 16,
            signature_insert: SignatureInsertPolicy::ColdStart,
            signature_bailout: 0.25,
            policy: None,
        }
    }

    /// Routes every per-layer reuse decision through `policy` (cluster
    /// count, step scale, refresh threshold, signature bailout, watchdog
    /// escalation). The default — no policy — resolves through
    /// [`crate::StaticPolicy`], which is bit-identical to the legacy
    /// hard-coded knobs.
    pub fn reuse_policy(mut self, policy: Arc<dyn ReusePolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// The configured reuse policy, if any.
    pub fn reuse_policy_config(&self) -> Option<&Arc<dyn ReusePolicy>> {
        self.policy.as_ref()
    }

    /// The active policy's short name (`"static"` when none is set) —
    /// recorded as provenance by the bench artifacts.
    pub fn policy_name(&self) -> &'static str {
        self.policy.as_ref().map_or("static", |p| p.name())
    }

    /// Checks the configuration for values that would silently misbehave
    /// downstream. Called by
    /// [`CompiledModel::try_new`](crate::CompiledModel::try_new); exposed
    /// for callers that assemble configs from external input and want the
    /// error before compiling a model.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::InvalidConfig`] when a cluster count is 0
    /// (the default or any enabled per-layer override), the signature
    /// bailout fraction lies outside `[0, 1]`, or the telemetry window
    /// is 0.
    pub fn validate(&self) -> Result<(), ReuseError> {
        if self.default_clusters == 0 {
            return Err(ReuseError::InvalidConfig {
                context: "default cluster count must be at least 1".into(),
            });
        }
        for (name, setting) in &self.overrides {
            if setting.enabled && setting.clusters == 0 {
                return Err(ReuseError::InvalidConfig {
                    context: format!("layer {name:?}: cluster count must be at least 1"),
                });
            }
        }
        if !(0.0..=1.0).contains(&self.signature_bailout) || self.signature_bailout.is_nan() {
            return Err(ReuseError::InvalidConfig {
                context: format!(
                    "signature bailout fraction must be in [0, 1], got {}",
                    self.signature_bailout
                ),
            });
        }
        if self.telemetry_window == 0 {
            return Err(ReuseError::InvalidConfig {
                context: "telemetry window must be at least 1 execution".into(),
            });
        }
        Ok(())
    }

    /// Disables quantization + reuse for one layer (it runs from scratch in
    /// full precision, like Kaldi FC1/FC2 or C3D CONV1 in the paper).
    pub fn disable_layer(mut self, name: &str) -> Self {
        let clusters = self.setting_for(name).clusters;
        self.overrides.insert(
            name.to_string(),
            LayerSetting {
                enabled: false,
                clusters,
            },
        );
        self
    }

    /// Overrides the cluster count for one layer.
    pub fn layer_clusters(mut self, name: &str, clusters: usize) -> Self {
        let enabled = self.setting_for(name).enabled;
        self.overrides
            .insert(name.to_string(), LayerSetting { enabled, clusters });
        self
    }

    /// Replaces the default cluster count while keeping every per-layer
    /// override's enabled/disabled status (used by the cluster-count sweep
    /// of paper Section III).
    pub fn with_default_clusters(mut self, clusters: usize) -> Self {
        self.default_clusters = clusters;
        for setting in self.overrides.values_mut() {
            setting.clusters = clusters;
        }
        self
    }

    /// Sets the relative widening of profiled input ranges (default 0.25).
    pub fn range_margin(mut self, margin: f32) -> Self {
        self.range_margin = margin;
        self
    }

    /// Sets how many initial executions (or sequences, for recurrent
    /// networks) run in full precision to profile input ranges (default 1,
    /// minimum 1).
    pub fn calibration_executions(mut self, n: usize) -> Self {
        self.calibration_executions = n.max(1);
        self
    }

    /// Enables recording of the Fig. 4 relative-difference series per layer.
    pub fn record_relative_difference(mut self, on: bool) -> Self {
        self.record_relative_difference = on;
        self
    }

    /// Enables recording of per-execution activity traces (consumed by the
    /// accelerator simulator).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Enables per-layer runtime telemetry (ring-buffer counters and timing
    /// spans; see [`crate::telemetry`]). Off by default; recording is
    /// allocation-free on the steady-state hot path when on.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Sets the telemetry ring-buffer capacity in executions (default 64).
    /// A window of 0 is rejected by [`Self::validate`] when the model is
    /// compiled — it used to be clamped silently, hiding the caller's bug.
    pub fn telemetry_window(mut self, window: usize) -> Self {
        self.telemetry_window = window;
        self
    }

    /// Arms the runtime drift watchdog: every `check_every` reuse frames the
    /// engine recomputes the output with [`crate::ReuseEngine::reference_forward`]
    /// and, if the max-abs deviation exceeds `bound`, re-baselines every
    /// reuse layer's buffered state from full-precision values.
    /// `check_every == 0` (the default) disables the watchdog.
    pub fn drift_watchdog(mut self, check_every: u64, bound: f32) -> Self {
        self.drift_check_every = check_every;
        self.drift_bound = bound;
        self
    }

    /// Escalation path: a layer whose own buffered outputs deviate beyond
    /// the drift bound this many times is auto-disabled (falls back to
    /// full-precision execution, joining
    /// [`crate::ReuseEngine::auto_disabled_layers`]). `0` (the default)
    /// means re-baseline forever without disabling.
    pub fn drift_escalate_after(mut self, strikes: u64) -> Self {
        self.drift_escalate_after = strikes;
        self
    }

    /// Enables the MCACHE-style cross-stream signature cache: when a
    /// session's per-stream frame-(t-1) baseline is missing (first reuse
    /// frame of a new stream, or after a state reset), the layer input is
    /// hashed with [`reuse_quant::RpqPlanes`] and a matching baseline
    /// published by *any* session of the same [`crate::CompiledModel`] is
    /// adopted and corrected with the ordinary `z' = z + (c'-c)·w` pass.
    /// Off by default; feed-forward networks only.
    pub fn signature_cache(mut self, on: bool) -> Self {
        self.signature_cache = on;
        self
    }

    /// Bounds the shared signature cache to roughly this many entries
    /// across all layers (default 1024). `0` keeps the cache armed but
    /// empty: every lookup misses and every insert is dropped, degrading
    /// to exactly the per-stream-only behavior.
    pub fn signature_cache_capacity(mut self, entries: usize) -> Self {
        self.signature_capacity = entries;
        self
    }

    /// Signature width in hyperplane sign bits, clamped to
    /// `1..=`[`reuse_quant::MAX_SIGNATURE_BITS`] (default 16). More bits
    /// mean fewer false collisions but also fewer cross-stream hits.
    pub fn signature_bits(mut self, bits: u32) -> Self {
        self.signature_bits = bits.clamp(1, reuse_quant::MAX_SIGNATURE_BITS);
        self
    }

    /// Sets when sessions publish baselines into the cache
    /// (default [`SignatureInsertPolicy::ColdStart`]).
    pub fn signature_insert_policy(mut self, policy: SignatureInsertPolicy) -> Self {
        self.signature_insert = policy;
        self
    }

    /// False-positive guard: a signature hit whose cached input disagrees
    /// with the live input on more than this fraction of quantized codes is
    /// abandoned (counted as a bailout) and the layer runs from scratch.
    /// Default 0.25. Fractions outside `0.0..=1.0` are rejected by
    /// [`Self::validate`] when the model is compiled — the old silent clamp
    /// hid the caller's bug.
    pub fn signature_bailout_fraction(mut self, fraction: f32) -> Self {
        self.signature_bailout = fraction;
        self
    }

    /// Whether the cross-stream signature cache is enabled.
    pub fn signature_cache_enabled(&self) -> bool {
        self.signature_cache
    }

    /// Shared signature-cache entry bound.
    pub fn signature_capacity(&self) -> usize {
        self.signature_capacity
    }

    /// Signature width in bits.
    pub fn signature_bits_config(&self) -> u32 {
        self.signature_bits
    }

    /// When sessions publish baselines into the cache.
    pub fn signature_insert_policy_config(&self) -> SignatureInsertPolicy {
        self.signature_insert
    }

    /// Mismatched-code fraction above which a signature hit is abandoned.
    pub fn signature_bailout(&self) -> f32 {
        self.signature_bailout
    }

    /// The effective setting for a layer.
    pub fn setting_for(&self, name: &str) -> LayerSetting {
        self.overrides.get(name).copied().unwrap_or(LayerSetting {
            enabled: true,
            clusters: self.default_clusters,
        })
    }

    /// The default cluster count.
    pub fn default_clusters(&self) -> usize {
        self.default_clusters
    }

    /// The profiled-range widening factor.
    pub fn margin(&self) -> f32 {
        self.range_margin
    }

    /// Number of full-precision calibration executions.
    pub fn calibration(&self) -> usize {
        self.calibration_executions
    }

    /// Whether Fig. 4 relative differences are recorded.
    pub fn records_relative_difference(&self) -> bool {
        self.record_relative_difference
    }

    /// Whether execution traces are recorded.
    pub fn records_trace(&self) -> bool {
        self.record_trace
    }

    /// Whether runtime telemetry is recorded.
    pub fn records_telemetry(&self) -> bool {
        self.telemetry
    }

    /// Telemetry ring-buffer capacity in executions.
    pub fn window(&self) -> usize {
        self.telemetry_window
    }

    /// Watchdog check cadence in reuse frames (`0` = disabled).
    pub fn drift_check_every(&self) -> u64 {
        self.drift_check_every
    }

    /// Max-abs output deviation tolerated before a re-baseline.
    pub fn drift_bound(&self) -> f32 {
        self.drift_bound
    }

    /// Per-layer strike count that escalates to auto-disable (`0` = never).
    pub fn escalate_after(&self) -> u64 {
        self.drift_escalate_after
    }

    /// Sets the parallel-execution budget the engine threads through every
    /// kernel and correction pass. Results are bit-identical for any value;
    /// the default is serial.
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// The configured parallel-execution budget.
    pub fn parallel_config(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Sets the per-call FLOP estimate below which kernels and correction
    /// passes run inline on the calling thread instead of fanning out
    /// (adaptive dispatch; see
    /// [`ParallelConfig::inline_flops`]). Convenience passthrough to the
    /// stored parallel budget.
    pub fn parallel_inline_flops(mut self, flops: u64) -> Self {
        self.parallel = self.parallel.inline_flops(flops);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_defaults() {
        let c = ReuseConfig::uniform(16);
        let s = c.setting_for("anything");
        assert!(s.enabled);
        assert_eq!(s.clusters, 16);
        assert_eq!(c.calibration(), 1);
    }

    #[test]
    fn disable_layer_keeps_clusters() {
        let c = ReuseConfig::uniform(32).disable_layer("conv1");
        assert!(!c.setting_for("conv1").enabled);
        assert_eq!(c.setting_for("conv1").clusters, 32);
        assert!(c.setting_for("conv2").enabled);
    }

    #[test]
    fn per_layer_clusters_preserved_across_disable_order() {
        let c = ReuseConfig::uniform(16)
            .layer_clusters("fc3", 32)
            .disable_layer("fc3");
        let s = c.setting_for("fc3");
        assert!(!s.enabled);
        assert_eq!(s.clusters, 32);
    }

    #[test]
    fn with_default_clusters_keeps_disables() {
        let c = ReuseConfig::uniform(16)
            .disable_layer("fc1")
            .with_default_clusters(32);
        assert!(!c.setting_for("fc1").enabled);
        assert_eq!(c.setting_for("fc1").clusters, 32);
        assert_eq!(c.setting_for("fc9").clusters, 32);
    }

    #[test]
    fn calibration_minimum_is_one() {
        let c = ReuseConfig::uniform(16).calibration_executions(0);
        assert_eq!(c.calibration(), 1);
    }

    #[test]
    fn flags() {
        let c = ReuseConfig::uniform(8)
            .record_relative_difference(true)
            .record_trace(true)
            .range_margin(0.5);
        assert!(c.records_relative_difference());
        assert!(c.records_trace());
        assert_eq!(c.margin(), 0.5);
    }

    #[test]
    fn telemetry_and_watchdog_knobs() {
        let c = ReuseConfig::uniform(16);
        assert!(!c.records_telemetry());
        assert_eq!(c.window(), 64);
        assert_eq!(c.drift_check_every(), 0);
        assert_eq!(c.escalate_after(), 0);
        let c = c
            .telemetry(true)
            .telemetry_window(7)
            .drift_watchdog(8, 0.5)
            .drift_escalate_after(3);
        assert!(c.records_telemetry());
        assert_eq!(c.window(), 7);
        assert_eq!(c.drift_check_every(), 8);
        assert!((c.drift_bound() - 0.5).abs() < 1e-9);
        assert_eq!(c.escalate_after(), 3);
    }

    #[test]
    fn signature_cache_knobs() {
        let c = ReuseConfig::uniform(16);
        assert!(!c.signature_cache_enabled());
        assert_eq!(c.signature_capacity(), 1024);
        assert_eq!(c.signature_bits_config(), 16);
        assert_eq!(
            c.signature_insert_policy_config(),
            SignatureInsertPolicy::ColdStart
        );
        assert!((c.signature_bailout() - 0.25).abs() < 1e-9);
        let c = c
            .signature_cache(true)
            .signature_cache_capacity(0)
            .signature_bits(200)
            .signature_insert_policy(SignatureInsertPolicy::ColdStartAndRebaseline)
            .signature_bailout_fraction(0.75);
        assert!(c.signature_cache_enabled());
        assert_eq!(c.signature_capacity(), 0);
        assert_eq!(
            c.signature_bits_config(),
            reuse_quant::MAX_SIGNATURE_BITS,
            "bits clamp to one u64"
        );
        assert_eq!(
            c.signature_insert_policy_config(),
            SignatureInsertPolicy::ColdStartAndRebaseline
        );
        assert_eq!(c.signature_bailout(), 0.75);
    }

    #[test]
    fn validate_accepts_the_defaults() {
        assert!(ReuseConfig::uniform(16).validate().is_ok());
        assert!(ReuseConfig::uniform(16)
            .signature_bailout_fraction(0.0)
            .validate()
            .is_ok());
        assert!(ReuseConfig::uniform(16)
            .signature_bailout_fraction(1.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_rejects_zero_clusters() {
        let err = ReuseConfig::uniform(0).validate().unwrap_err();
        assert!(matches!(err, crate::ReuseError::InvalidConfig { .. }));
        let err = ReuseConfig::uniform(16)
            .layer_clusters("fc1", 0)
            .validate()
            .unwrap_err();
        assert!(matches!(err, crate::ReuseError::InvalidConfig { .. }));
        // A disabled layer's cluster count is never used, so it may be 0.
        assert!(ReuseConfig::uniform(16)
            .layer_clusters("fc1", 0)
            .disable_layer("fc1")
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_bailout_fraction() {
        for bad in [-0.1f32, 1.5, f32::NAN] {
            let err = ReuseConfig::uniform(16)
                .signature_bailout_fraction(bad)
                .validate()
                .unwrap_err();
            assert!(
                matches!(err, crate::ReuseError::InvalidConfig { .. }),
                "bailout {bad} must be rejected"
            );
        }
    }

    #[test]
    fn validate_rejects_zero_telemetry_window() {
        let err = ReuseConfig::uniform(16)
            .telemetry_window(0)
            .validate()
            .unwrap_err();
        assert!(matches!(err, crate::ReuseError::InvalidConfig { .. }));
    }

    #[test]
    fn parallel_defaults_to_serial() {
        let c = ReuseConfig::uniform(8);
        assert_eq!(c.parallel_config().num_threads, 1);
        let c = c.parallel(ParallelConfig::with_threads(4));
        assert_eq!(c.parallel_config().num_threads, 4);
    }

    #[test]
    fn inline_flops_passthrough_updates_parallel_budget() {
        let c = ReuseConfig::uniform(8)
            .parallel(ParallelConfig::with_threads(4))
            .parallel_inline_flops(5000);
        assert_eq!(c.parallel_config().num_threads, 4);
        assert_eq!(c.parallel_config().inline_flops, 5000);
    }
}

//! Incremental convolution execution (paper Section IV-C).
//!
//! In a convolutional layer every input pixel/voxel feeds a bounded window
//! of output neurons: `k×k` positions per output feature map (`k×k×k` for 3D
//! convolution), for every filter. When an input's quantized index changes,
//! the accelerator corrects exactly that fan-out (paper Fig. 8); when it is
//! unchanged, the entire fan-out of computations and weight fetches is
//! skipped.
//!
//! The correction pass is cache-blocked: pass 1 quantizes the frame and
//! diffs the codes through [`LinearQuantizer::diff_codes_into`] (which
//! dispatches to the runtime-selected SIMD quantize/compare kernels — both
//! bit-exact at every [`reuse_tensor::SimdLevel`]), then precomputes each
//! changed input's geometry (channel weight offset, padded coordinates,
//! affected output ranges) into a reusable scratch list; pass 2 walks the
//! outputs **filter-tile-outer, delta-inner** — a worker owns a tile of
//! `FILTER_TILE` filters' output planes, which stay cache-resident while
//! every delta streams through them, so each delta's geometry is computed
//! once per tile instead of once per filter. Both paths read the
//! lazily-built `[in_c, k.., out_c]` weight transpose: it makes one tap's
//! weights for a tile of filters a single contiguous load. Pass 2 is a
//! deliberately scalar scatter walk (its access pattern is irregular), and
//! each output element receives its delta corrections in changed-list
//! (input) order, so results are bit-identical to the original scattered
//! walk — kept as a `#[doc(hidden)]` naive oracle — at every SIMD level.

use reuse_nn::{Conv2dLayer, Conv3dLayer};
use reuse_quant::{LinearQuantizer, QuantCode};
use reuse_tensor::parallel::{parallel_for_mut, parallel_for_mut_cost};
use reuse_tensor::{ParallelConfig, Shape, Tensor};

use crate::ReuseError;

/// Activity counters of one convolution execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvExecStats {
    /// Inputs read.
    pub n_inputs: u64,
    /// Inputs whose index changed.
    pub n_changed: u64,
    /// MACs a from-scratch execution performs.
    pub macs_total: u64,
    /// MACs actually performed.
    pub macs_performed: u64,
    /// Whether this was the state-initializing from-scratch execution.
    pub from_scratch: bool,
}

/// The output-position range `[lo, hi)` whose receptive field covers input
/// coordinate `y`, for kernel size `k`, stride `s`, padding `p` and output
/// extent `n`.
fn affected_range(y: usize, k: usize, s: usize, p: usize, n: usize) -> (usize, usize) {
    let y = y as isize + p as isize;
    let k = k as isize;
    let s = s as isize;
    // oy*s <= y  and  oy*s + k - 1 >= y
    let hi = y / s; // floor
    let lo = (y - k + 1 + s - 1).div_euclid(s); // ceil((y-k+1)/s)
    let lo = lo.max(0) as usize;
    let hi = (hi.min(n as isize - 1) + 1).max(0) as usize;
    (lo.min(n), hi.min(n))
}

/// Filters corrected together per pass-2 tile. Each delta's output-range
/// geometry is computed once and applied to this many filters' planes
/// (whose weights for one tap sit contiguously in the transpose), and the
/// four `+=` chains give the CPU independent FP-add streams — the same ILP
/// rationale as the packed forward tiles.
const FILTER_TILE: usize = 4;

/// Deltas walked together through all filter tiles before moving to the
/// next group. A dense frame's scratch list is far larger than L1, and the
/// tiled walk re-streams it once per tile; blocking keeps the group (~11
/// KiB) cache-hot across every re-stream. Groups are processed in list
/// order and each tile walks a group in list order, so per-output delta
/// order — and therefore bit-identity — is unchanged.
const DELTA_BLOCK: usize = 128;

/// One changed input's correction, with its geometry precomputed in pass 1
/// so the per-filter pass 2 does no division or range math: the channel's
/// weight-block offset `wc = c·kd·kh·kw`, the padded coordinates (so the
/// kernel tap for output `o` is `coord + pad − o·stride`), and the affected
/// output ranges.
#[derive(Debug, Clone, Copy)]
struct ConvDelta {
    delta: f32,
    wc: usize,
    zp: usize,
    yp: usize,
    xp: usize,
    oz_lo: usize,
    oz_hi: usize,
    oy_lo: usize,
    oy_hi: usize,
    ox_lo: usize,
    ox_hi: usize,
}

/// The immutable `[in_c, kh, kw, out_c]` weight transpose of a 2D
/// convolutional layer, packed once so every stream's correction pass can
/// share one copy (it lives in `CompiledModel`, not in per-stream state).
/// Built by the same routine as the per-state lazy transpose, so corrections
/// through a pack are bit-identical to the standalone path.
#[derive(Debug, Clone)]
pub struct Conv2dPack {
    w_t: Vec<f32>,
}

impl Conv2dPack {
    /// Packs a layer's weights into the shared correction transpose.
    pub fn new(layer: &Conv2dLayer) -> Self {
        let spec = layer.spec();
        Conv2dPack {
            w_t: transpose_2d(layer.weights().as_slice(), spec.out_channels, spec),
        }
    }

    /// Bytes occupied by the packed transpose.
    pub fn bytes(&self) -> u64 {
        (self.w_t.len() * 4) as u64
    }
}

/// The immutable `[in_c, kd, kh, kw, out_c]` weight transpose of a 3D
/// convolutional layer; see [`Conv2dPack`].
#[derive(Debug, Clone)]
pub struct Conv3dPack {
    w_t: Vec<f32>,
}

impl Conv3dPack {
    /// Packs a layer's weights into the shared correction transpose.
    pub fn new(layer: &Conv3dLayer) -> Self {
        let spec = layer.spec();
        Conv3dPack {
            w_t: transpose_3d(layer.weights().as_slice(), spec.out_channels, spec),
        }
    }

    /// Bytes occupied by the packed transpose.
    pub fn bytes(&self) -> u64 {
        (self.w_t.len() * 4) as u64
    }
}

/// Buffered state of one 2D convolutional layer between executions.
#[derive(Debug, Clone)]
pub struct Conv2dReuseState {
    prev_codes: Vec<QuantCode>,
    prev_linear: Vec<f32>,
    /// Lazily-built `[in_c, kh, kw, out_c]` weight transpose shared by both
    /// correction paths: the blocked walk reads one tap's tile of filters
    /// as a contiguous load, the naive oracle walks it filter-inner.
    w_t: Option<Vec<f32>>,
    /// Scratch list of precomputed per-delta corrections, collected
    /// serially in input order and applied per output-filter panel;
    /// capacity is reserved up front so steady-state frames never allocate.
    deltas: Vec<ConvDelta>,
    /// Scratch: this frame's fresh codes during the diff pass.
    scratch_codes: Vec<QuantCode>,
    /// Scratch: `(input index, centroid delta)` pairs from the diff pass.
    changed: Vec<(u32, f32)>,
    in_shape: Shape,
    out_shape: Shape,
    initialized: bool,
}

impl Conv2dReuseState {
    /// Creates state for a layer processing inputs of shape `in_shape`.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `in_shape` is incompatible with the layer.
    pub fn new(layer: &Conv2dLayer, in_shape: &Shape) -> Result<Self, ReuseError> {
        let d = in_shape.dims();
        if d.len() != 3 || d[0] != layer.spec().in_channels {
            return Err(ReuseError::InvalidConfig {
                context: format!("conv2d state input shape {in_shape} incompatible"),
            });
        }
        let spec = layer.spec();
        let (oh, ow) = spec.output_hw(d[1], d[2])?;
        let out_shape = Shape::d3(spec.out_channels, oh, ow);
        Ok(Conv2dReuseState {
            prev_codes: Vec::new(),
            prev_linear: Vec::new(),
            w_t: None,
            // Worst case every input changes; reserving up front keeps
            // steady-state execution allocation-free.
            deltas: Vec::with_capacity(in_shape.volume()),
            scratch_codes: Vec::with_capacity(in_shape.volume()),
            changed: Vec::with_capacity(in_shape.volume()),
            in_shape: in_shape.clone(),
            out_shape,
            initialized: false,
        })
    }

    /// Whether the first (from-scratch) execution has happened.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Drops buffered state.
    pub fn reset(&mut self) {
        self.prev_codes.clear();
        self.prev_linear.clear();
        self.deltas.clear();
        self.scratch_codes.clear();
        self.changed.clear();
        self.initialized = false;
    }

    /// Extra storage: one byte per input index plus four bytes per buffered
    /// output (Table III accounting; for CNNs these live in main memory
    /// between executions with one block staged on-chip).
    pub fn storage_bytes(&self) -> u64 {
        (self.in_shape.volume() + 4 * self.out_shape.volume()) as u64
    }

    /// The buffered linear (pre-activation) outputs of the last execution
    /// (empty before initialization). Read by the drift watchdog.
    pub fn buffered_linear(&self) -> &[f32] {
        &self.prev_linear
    }

    /// Replaces the buffered state with externally computed values (codes
    /// from quantizing `input`, linear outputs from `linear`); used by the
    /// drift watchdog to re-baseline onto full-precision values.
    pub fn adopt_baseline(&mut self, quantizer: &LinearQuantizer, input: &[f32], linear: &[f32]) {
        quantizer.quantize_slice_into(input, &mut self.prev_codes);
        self.prev_linear.clear();
        self.prev_linear.extend_from_slice(linear);
        self.initialized = true;
    }

    /// Executes the layer, reusing buffered results where quantized inputs
    /// are unchanged. Returns the linear (pre-activation) output.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when the input shape disagrees with the state.
    pub fn execute(
        &mut self,
        layer: &Conv2dLayer,
        quantizer: &LinearQuantizer,
        input: &Tensor,
    ) -> Result<(Tensor, ConvExecStats), ReuseError> {
        self.execute_with(&ParallelConfig::serial(), layer, quantizer, input)
    }

    /// [`Self::execute`] with an explicit parallelism budget.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when the input shape disagrees with the state.
    pub fn execute_with(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv2dLayer,
        quantizer: &LinearQuantizer,
        input: &Tensor,
    ) -> Result<(Tensor, ConvExecStats), ReuseError> {
        if input.shape() != &self.in_shape {
            return Err(ReuseError::InvalidConfig {
                context: format!(
                    "conv2d input {} != state shape {}",
                    input.shape(),
                    self.in_shape
                ),
            });
        }
        let mut out = Vec::new();
        let stats = self.execute_into(config, layer, quantizer, input.as_slice(), &mut out)?;
        Ok((Tensor::from_vec(self.out_shape.clone(), out)?, stats))
    }

    /// Allocation-free core of [`Self::execute`]: clears `out` and writes
    /// the linear feature maps (`[out_c, oh, ow]`, flattened) into it.
    ///
    /// Changed inputs are diffed serially (precomputing each delta's
    /// geometry); corrections are applied filter-outer/delta-inner with
    /// each worker owning whole output feature maps and streaming every
    /// delta through one filter's L1-resident weight block at a time. Every
    /// output accumulates its deltas in input order, so the result is
    /// bit-identical to serial execution and to the unblocked
    /// [`Self::execute_into_naive`] walk. Correction frames below the
    /// config's inline-FLOP threshold run inline with no thread spawns.
    ///
    /// `input` is the flat row-major `[in_c, h, w]` data; only its length is
    /// checked (the shape-checked entry points are [`Self::execute`] /
    /// [`Self::execute_with`]).
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `input` has the wrong length.
    pub fn execute_into(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv2dLayer,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ConvExecStats, ReuseError> {
        self.execute_into_impl(config, layer, quantizer, input, out, None, false)
    }

    /// [`Self::execute_into`] reading the weight transpose from a shared
    /// [`Conv2dPack`] instead of the state's lazily-built copy, so many
    /// per-stream states can correct against one packed model. Bit-identical
    /// to [`Self::execute_into`] (same transpose contents, same walk).
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `input` has the wrong length.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_into_packed(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv2dLayer,
        pack: &Conv2dPack,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ConvExecStats, ReuseError> {
        self.execute_into_impl(config, layer, quantizer, input, out, Some(&pack.w_t), false)
    }

    /// [`Self::execute_into`] with the original scattered correction walk
    /// over the `[in_c, kh, kw, out_c]` weight transpose (built lazily on
    /// first use). Bit-identity oracle and `kernel_bench` baseline for the
    /// blocked path; not for production use.
    #[doc(hidden)]
    pub fn execute_into_naive(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv2dLayer,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ConvExecStats, ReuseError> {
        self.execute_into_impl(config, layer, quantizer, input, out, None, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_into_impl(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv2dLayer,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
        shared_w_t: Option<&[f32]>,
        naive: bool,
    ) -> Result<ConvExecStats, ReuseError> {
        if input.len() != self.in_shape.volume() {
            return Err(ReuseError::InvalidConfig {
                context: format!(
                    "conv2d input length {} != state volume {}",
                    input.len(),
                    self.in_shape.volume()
                ),
            });
        }
        let spec = *layer.spec();
        let idims = self.in_shape.dims();
        let (h, w) = (idims[1], idims[2]);
        let odims = self.out_shape.dims();
        let (fc, oh, ow) = (odims[0], odims[1], odims[2]);
        let macs_total = spec.flops(h, w) / 2;
        let n_in = self.in_shape.volume() as u64;

        if !self.initialized {
            quantizer.quantize_slice_into(input, &mut self.prev_codes);
            let centroids: Vec<f32> = self
                .prev_codes
                .iter()
                .map(|&c| quantizer.centroid(c))
                .collect();
            let qin = Tensor::from_vec(self.in_shape.clone(), centroids)?;
            let linear = layer.forward_linear_with(config, &qin)?;
            self.prev_linear = linear.into_vec();
            self.initialized = true;
            out.clear();
            out.extend_from_slice(&self.prev_linear);
            return Ok(ConvExecStats {
                n_inputs: n_in,
                n_changed: n_in,
                macs_total,
                macs_performed: macs_total,
                from_scratch: true,
            });
        }

        // Pass 1 (serial): quantize the frame and diff the codes (both
        // dispatched, bit-exact at every SIMD level), then precompute each
        // delta's geometry and the correction MAC count in input order.
        quantizer.diff_codes_into(
            input,
            &mut self.prev_codes,
            &mut self.scratch_codes,
            &mut self.changed,
        );
        let mut macs = 0u64;
        let (kh, kw, s, p) = (spec.kh, spec.kw, spec.stride, spec.pad);
        let k_plane = kh * kw;
        let Self {
            deltas, changed, ..
        } = self;
        deltas.clear();
        for &(idx, delta) in changed.iter() {
            let idx = idx as usize;
            let c = idx / (h * w);
            let y = (idx / w) % h;
            let xw = idx % w;
            let (oy_lo, oy_hi) = affected_range(y, kh, s, p, oh);
            let (ox_lo, ox_hi) = affected_range(xw, kw, s, p, ow);
            macs += ((oy_hi - oy_lo) * (ox_hi - ox_lo) * fc) as u64;
            deltas.push(ConvDelta {
                delta,
                wc: c * k_plane,
                zp: 0,
                yp: y + p,
                xp: xw + p,
                oz_lo: 0,
                oz_hi: 1,
                oy_lo,
                oy_hi,
                ox_lo,
                ox_hi,
            });
        }

        // Pass 2 (parallel over output feature maps).
        let o_plane = oh * ow;
        let Self {
            w_t,
            deltas,
            prev_linear,
            ..
        } = self;
        let deltas: &[ConvDelta] = deltas;
        let w_t: &[f32] = match shared_w_t {
            Some(shared) => shared,
            None => w_t.get_or_insert_with(|| transpose_2d(layer.weights().as_slice(), fc, &spec)),
        };
        if naive {
            // Original scattered walk over the [c, ky, kx, f] transpose.
            parallel_for_mut(config, prev_linear, o_plane, |offset, chunk| {
                let first_f = offset / o_plane;
                let n_f = chunk.len() / o_plane;
                for d in deltas {
                    for oy in d.oy_lo..d.oy_hi {
                        let ky = d.yp - oy * s;
                        for ox in d.ox_lo..d.ox_hi {
                            let kx = d.xp - ox * s;
                            let wrow = &w_t[(d.wc + ky * kw + kx) * fc + first_f..][..n_f];
                            let obase = oy * ow + ox;
                            // Output layout is [f, oy, ox]; f stride is oh*ow.
                            for (f, &wv) in wrow.iter().enumerate() {
                                chunk[f * o_plane + obase] += d.delta * wv;
                            }
                        }
                    }
                }
            });
        } else {
            // Blocked walk: filter-tile-outer, delta-inner. A tile of
            // [`FILTER_TILE`] output planes stays cache-resident while
            // every delta streams through it, each delta's precomputed
            // geometry amortized over the tile; the [c, ky, kx, f]
            // transpose makes the tile's weights for one tap a single
            // contiguous load.
            let one = |plane: &mut [f32], f: usize, group: &[ConvDelta]| {
                for d in group {
                    for oy in d.oy_lo..d.oy_hi {
                        let ky = d.yp - oy * s;
                        let wrow = d.wc + ky * kw;
                        let orow = oy * ow;
                        for ox in d.ox_lo..d.ox_hi {
                            let kx = d.xp - ox * s;
                            plane[orow + ox] += d.delta * w_t[(wrow + kx) * fc + f];
                        }
                    }
                }
            };
            parallel_for_mut_cost(config, prev_linear, o_plane, 2 * macs, |offset, chunk| {
                for group in deltas.chunks(DELTA_BLOCK) {
                    let mut f = offset / o_plane;
                    for tile in chunk.chunks_mut(FILTER_TILE * o_plane) {
                        if tile.len() == FILTER_TILE * o_plane {
                            let (p0, rest) = tile.split_at_mut(o_plane);
                            let (p1, rest) = rest.split_at_mut(o_plane);
                            let (p2, p3) = rest.split_at_mut(o_plane);
                            for d in group {
                                for oy in d.oy_lo..d.oy_hi {
                                    let ky = d.yp - oy * s;
                                    let wrow = d.wc + ky * kw;
                                    let orow = oy * ow;
                                    for ox in d.ox_lo..d.ox_hi {
                                        let wt =
                                            &w_t[(wrow + d.xp - ox * s) * fc + f..][..FILTER_TILE];
                                        let oi = orow + ox;
                                        p0[oi] += d.delta * wt[0];
                                        p1[oi] += d.delta * wt[1];
                                        p2[oi] += d.delta * wt[2];
                                        p3[oi] += d.delta * wt[3];
                                    }
                                }
                            }
                            f += FILTER_TILE;
                        } else {
                            for plane in tile.chunks_mut(o_plane) {
                                one(plane, f, group);
                                f += 1;
                            }
                        }
                    }
                }
            });
        }
        out.clear();
        out.extend_from_slice(&self.prev_linear);
        Ok(ConvExecStats {
            n_inputs: n_in,
            n_changed: self.deltas.len() as u64,
            macs_total,
            macs_performed: macs,
            from_scratch: false,
        })
    }
}

/// Builds the `[in_c, kh, kw, out_c]` transpose of `[out_c, in_c, kh, kw]`
/// weights (the naive-oracle correction layout).
fn transpose_2d(w: &[f32], fc: usize, spec: &reuse_tensor::conv::Conv2dSpec) -> Vec<f32> {
    let (cc, kh, kw) = (spec.in_channels, spec.kh, spec.kw);
    let mut w_t = vec![0.0f32; w.len()];
    for f in 0..fc {
        for c in 0..cc {
            for ky in 0..kh {
                for kx in 0..kw {
                    let src = ((f * cc + c) * kh + ky) * kw + kx;
                    let dst = ((c * kh + ky) * kw + kx) * fc + f;
                    w_t[dst] = w[src];
                }
            }
        }
    }
    w_t
}

/// Buffered state of one 3D convolutional layer between executions.
#[derive(Debug, Clone)]
pub struct Conv3dReuseState {
    prev_codes: Vec<QuantCode>,
    prev_linear: Vec<f32>,
    /// Lazily-built `[in_c, kd, kh, kw, out_c]` weight transpose shared by
    /// both correction paths (see [`Conv2dReuseState`]).
    w_t: Option<Vec<f32>>,
    /// Precomputed per-delta scratch; see [`Conv2dReuseState`].
    deltas: Vec<ConvDelta>,
    /// Scratch: this frame's fresh codes during the diff pass.
    scratch_codes: Vec<QuantCode>,
    /// Scratch: `(input index, centroid delta)` pairs from the diff pass.
    changed: Vec<(u32, f32)>,
    in_shape: Shape,
    out_shape: Shape,
    initialized: bool,
}

impl Conv3dReuseState {
    /// Creates state for a layer processing inputs of shape `in_shape`.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `in_shape` is incompatible with the layer.
    pub fn new(layer: &Conv3dLayer, in_shape: &Shape) -> Result<Self, ReuseError> {
        let d = in_shape.dims();
        if d.len() != 4 || d[0] != layer.spec().in_channels {
            return Err(ReuseError::InvalidConfig {
                context: format!("conv3d state input shape {in_shape} incompatible"),
            });
        }
        let spec = layer.spec();
        let (od, oh, ow) = spec.output_dhw(d[1], d[2], d[3])?;
        let out_shape = Shape::d4(spec.out_channels, od, oh, ow);
        Ok(Conv3dReuseState {
            prev_codes: Vec::new(),
            prev_linear: Vec::new(),
            w_t: None,
            deltas: Vec::with_capacity(in_shape.volume()),
            scratch_codes: Vec::with_capacity(in_shape.volume()),
            changed: Vec::with_capacity(in_shape.volume()),
            in_shape: in_shape.clone(),
            out_shape,
            initialized: false,
        })
    }

    /// Whether the first (from-scratch) execution has happened.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Drops buffered state.
    pub fn reset(&mut self) {
        self.prev_codes.clear();
        self.prev_linear.clear();
        self.deltas.clear();
        self.scratch_codes.clear();
        self.changed.clear();
        self.initialized = false;
    }

    /// Extra storage bytes (indices + buffered outputs), as in Table III.
    pub fn storage_bytes(&self) -> u64 {
        (self.in_shape.volume() + 4 * self.out_shape.volume()) as u64
    }

    /// The buffered linear (pre-activation) outputs of the last execution
    /// (empty before initialization). Read by the drift watchdog.
    pub fn buffered_linear(&self) -> &[f32] {
        &self.prev_linear
    }

    /// Replaces the buffered state with externally computed values; see
    /// [`Conv2dReuseState::adopt_baseline`].
    pub fn adopt_baseline(&mut self, quantizer: &LinearQuantizer, input: &[f32], linear: &[f32]) {
        quantizer.quantize_slice_into(input, &mut self.prev_codes);
        self.prev_linear.clear();
        self.prev_linear.extend_from_slice(linear);
        self.initialized = true;
    }

    /// Executes the layer, reusing buffered results where quantized inputs
    /// are unchanged. Returns the linear (pre-activation) output.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when the input shape disagrees with the state.
    pub fn execute(
        &mut self,
        layer: &Conv3dLayer,
        quantizer: &LinearQuantizer,
        input: &Tensor,
    ) -> Result<(Tensor, ConvExecStats), ReuseError> {
        self.execute_with(&ParallelConfig::serial(), layer, quantizer, input)
    }

    /// [`Self::execute`] with an explicit parallelism budget.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when the input shape disagrees with the state.
    pub fn execute_with(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv3dLayer,
        quantizer: &LinearQuantizer,
        input: &Tensor,
    ) -> Result<(Tensor, ConvExecStats), ReuseError> {
        if input.shape() != &self.in_shape {
            return Err(ReuseError::InvalidConfig {
                context: format!(
                    "conv3d input {} != state shape {}",
                    input.shape(),
                    self.in_shape
                ),
            });
        }
        let mut out = Vec::new();
        let stats = self.execute_into(config, layer, quantizer, input.as_slice(), &mut out)?;
        Ok((Tensor::from_vec(self.out_shape.clone(), out)?, stats))
    }

    /// Allocation-free core of [`Self::execute`]; see
    /// [`Conv2dReuseState::execute_into`] for the blocked two-pass scheme.
    /// Workers own whole output volumes, so results are bit-identical to
    /// serial and to [`Self::execute_into_naive`].
    ///
    /// `input` is the flat row-major `[in_c, d, h, w]` data; only its length
    /// is checked.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `input` has the wrong length.
    pub fn execute_into(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv3dLayer,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ConvExecStats, ReuseError> {
        self.execute_into_impl(config, layer, quantizer, input, out, None, false)
    }

    /// [`Self::execute_into`] reading the weight transpose from a shared
    /// [`Conv3dPack`]; see [`Conv2dReuseState::execute_into_packed`].
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `input` has the wrong length.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_into_packed(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv3dLayer,
        pack: &Conv3dPack,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ConvExecStats, ReuseError> {
        self.execute_into_impl(config, layer, quantizer, input, out, Some(&pack.w_t), false)
    }

    /// [`Self::execute_into`] with the original scattered correction walk
    /// (lazily-built weight transpose); the bit-identity oracle and
    /// `kernel_bench` baseline. Not for production use.
    #[doc(hidden)]
    pub fn execute_into_naive(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv3dLayer,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ConvExecStats, ReuseError> {
        self.execute_into_impl(config, layer, quantizer, input, out, None, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_into_impl(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv3dLayer,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
        shared_w_t: Option<&[f32]>,
        naive: bool,
    ) -> Result<ConvExecStats, ReuseError> {
        if input.len() != self.in_shape.volume() {
            return Err(ReuseError::InvalidConfig {
                context: format!(
                    "conv3d input length {} != state volume {}",
                    input.len(),
                    self.in_shape.volume()
                ),
            });
        }
        let spec = *layer.spec();
        let idims = self.in_shape.dims();
        let (d, h, w) = (idims[1], idims[2], idims[3]);
        let odims = self.out_shape.dims();
        let (fc, od, oh, ow) = (odims[0], odims[1], odims[2], odims[3]);
        let macs_total = spec.flops(d, h, w) / 2;
        let n_in = self.in_shape.volume() as u64;

        if !self.initialized {
            quantizer.quantize_slice_into(input, &mut self.prev_codes);
            let centroids: Vec<f32> = self
                .prev_codes
                .iter()
                .map(|&c| quantizer.centroid(c))
                .collect();
            let qin = Tensor::from_vec(self.in_shape.clone(), centroids)?;
            let linear = layer.forward_linear_with(config, &qin)?;
            self.prev_linear = linear.into_vec();
            self.initialized = true;
            out.clear();
            out.extend_from_slice(&self.prev_linear);
            return Ok(ConvExecStats {
                n_inputs: n_in,
                n_changed: n_in,
                macs_total,
                macs_performed: macs_total,
                from_scratch: true,
            });
        }

        // Pass 1 (serial): quantize and diff the codes (dispatched,
        // bit-exact at every SIMD level), then precompute each delta's
        // geometry and the MAC count of the correction in input order.
        quantizer.diff_codes_into(
            input,
            &mut self.prev_codes,
            &mut self.scratch_codes,
            &mut self.changed,
        );
        let mut macs = 0u64;
        let (kd, kh, kw, s, p) = (spec.kd, spec.kh, spec.kw, spec.stride, spec.pad);
        let k_plane = kh * kw;
        let k_vol = kd * k_plane;
        let o_plane = oh * ow;
        let o_vol = od * o_plane;
        let Self {
            deltas, changed, ..
        } = self;
        deltas.clear();
        for &(idx, delta) in changed.iter() {
            let idx = idx as usize;
            let c = idx / (d * h * w);
            let z = (idx / (h * w)) % d;
            let y = (idx / w) % h;
            let xw = idx % w;
            let (oz_lo, oz_hi) = affected_range(z, kd, s, p, od);
            let (oy_lo, oy_hi) = affected_range(y, kh, s, p, oh);
            let (ox_lo, ox_hi) = affected_range(xw, kw, s, p, ow);
            macs += ((oz_hi - oz_lo) * (oy_hi - oy_lo) * (ox_hi - ox_lo) * fc) as u64;
            deltas.push(ConvDelta {
                delta,
                wc: c * k_vol,
                zp: z + p,
                yp: y + p,
                xp: xw + p,
                oz_lo,
                oz_hi,
                oy_lo,
                oy_hi,
                ox_lo,
                ox_hi,
            });
        }

        // Pass 2 (parallel over output volumes).
        let Self {
            w_t,
            deltas,
            prev_linear,
            ..
        } = self;
        let deltas: &[ConvDelta] = deltas;
        let w_t: &[f32] = match shared_w_t {
            Some(shared) => shared,
            None => w_t.get_or_insert_with(|| transpose_3d(layer.weights().as_slice(), fc, &spec)),
        };
        if naive {
            // Original scattered walk over the [c, kz, ky, kx, f] transpose.
            parallel_for_mut(config, prev_linear, o_vol, |offset, chunk| {
                let first_f = offset / o_vol;
                let n_f = chunk.len() / o_vol;
                for dl in deltas {
                    for oz in dl.oz_lo..dl.oz_hi {
                        let kz = dl.zp - oz * s;
                        for oy in dl.oy_lo..dl.oy_hi {
                            let ky = dl.yp - oy * s;
                            for ox in dl.ox_lo..dl.ox_hi {
                                let kx = dl.xp - ox * s;
                                let wrow = &w_t
                                    [(dl.wc + kz * k_plane + ky * kw + kx) * fc + first_f..][..n_f];
                                let obase = (oz * oh + oy) * ow + ox;
                                for (f, &wv) in wrow.iter().enumerate() {
                                    chunk[f * o_vol + obase] += dl.delta * wv;
                                }
                            }
                        }
                    }
                }
            });
        } else {
            // Blocked walk: filter-tile-outer, delta-inner; tile volumes
            // stay cache-resident and one tap's tile weights are a single
            // contiguous load (see Conv2dReuseState::execute_into).
            let one = |vol: &mut [f32], f: usize, group: &[ConvDelta]| {
                for dl in group {
                    for oz in dl.oz_lo..dl.oz_hi {
                        let kz = dl.zp - oz * s;
                        let wz = dl.wc + kz * k_plane;
                        let oplane = oz * o_plane;
                        for oy in dl.oy_lo..dl.oy_hi {
                            let ky = dl.yp - oy * s;
                            let wrow = wz + ky * kw;
                            let orow = oplane + oy * ow;
                            for ox in dl.ox_lo..dl.ox_hi {
                                let kx = dl.xp - ox * s;
                                vol[orow + ox] += dl.delta * w_t[(wrow + kx) * fc + f];
                            }
                        }
                    }
                }
            };
            parallel_for_mut_cost(config, prev_linear, o_vol, 2 * macs, |offset, chunk| {
                for group in deltas.chunks(DELTA_BLOCK) {
                    let mut f = offset / o_vol;
                    for tile in chunk.chunks_mut(FILTER_TILE * o_vol) {
                        if tile.len() == FILTER_TILE * o_vol {
                            let (v0, rest) = tile.split_at_mut(o_vol);
                            let (v1, rest) = rest.split_at_mut(o_vol);
                            let (v2, v3) = rest.split_at_mut(o_vol);
                            for dl in group {
                                for oz in dl.oz_lo..dl.oz_hi {
                                    let kz = dl.zp - oz * s;
                                    let wz = dl.wc + kz * k_plane;
                                    let oplane = oz * o_plane;
                                    for oy in dl.oy_lo..dl.oy_hi {
                                        let ky = dl.yp - oy * s;
                                        let wrow = wz + ky * kw;
                                        let orow = oplane + oy * ow;
                                        for ox in dl.ox_lo..dl.ox_hi {
                                            let wt = &w_t[(wrow + dl.xp - ox * s) * fc + f..]
                                                [..FILTER_TILE];
                                            let oi = orow + ox;
                                            v0[oi] += dl.delta * wt[0];
                                            v1[oi] += dl.delta * wt[1];
                                            v2[oi] += dl.delta * wt[2];
                                            v3[oi] += dl.delta * wt[3];
                                        }
                                    }
                                }
                            }
                            f += FILTER_TILE;
                        } else {
                            for vol in tile.chunks_mut(o_vol) {
                                one(vol, f, group);
                                f += 1;
                            }
                        }
                    }
                }
            });
        }
        out.clear();
        out.extend_from_slice(&self.prev_linear);
        Ok(ConvExecStats {
            n_inputs: n_in,
            n_changed: self.deltas.len() as u64,
            macs_total,
            macs_performed: macs,
            from_scratch: false,
        })
    }
}

/// Builds the `[in_c, kd, kh, kw, out_c]` transpose of
/// `[out_c, in_c, kd, kh, kw]` weights (naive-oracle layout).
fn transpose_3d(w: &[f32], fc: usize, spec: &reuse_tensor::conv::Conv3dSpec) -> Vec<f32> {
    let (cc, kd, kh, kw) = (spec.in_channels, spec.kd, spec.kh, spec.kw);
    let mut w_t = vec![0.0f32; w.len()];
    for f in 0..fc {
        for c in 0..cc {
            for kz in 0..kd {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let src = (((f * cc + c) * kd + kz) * kh + ky) * kw + kx;
                        let dst = (((c * kd + kz) * kh + ky) * kw + kx) * fc + f;
                        w_t[dst] = w[src];
                    }
                }
            }
        }
    }
    w_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_nn::{init::Rng64, Activation};
    use reuse_quant::InputRange;
    use reuse_tensor::conv::{Conv2dSpec, Conv3dSpec};

    fn q() -> LinearQuantizer {
        LinearQuantizer::new(InputRange::new(-1.0, 1.0), 32).unwrap()
    }

    fn layer2d(stride: usize, pad: usize) -> Conv2dLayer {
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 3,
            kh: 3,
            kw: 3,
            stride,
            pad,
        };
        Conv2dLayer::random(spec, Activation::Identity, &mut Rng64::new(21))
    }

    fn oracle2d(layer: &Conv2dLayer, q: &LinearQuantizer, input: &Tensor) -> Vec<f32> {
        let centroids = q.quantized_values(input.as_slice());
        let t = Tensor::from_vec(input.shape().clone(), centroids).unwrap();
        layer.forward_linear(&t).unwrap().into_vec()
    }

    fn rand_input(shape: Shape, seed: u64) -> Tensor {
        let mut rng = Rng64::new(seed);
        Tensor::from_fn(shape, |_| rng.uniform(0.9))
    }

    #[test]
    fn affected_range_stride1_interior() {
        // k=3, s=1, p=0, n=6: input y=3 is covered by outputs 1,2,3.
        assert_eq!(affected_range(3, 3, 1, 0, 6), (1, 4));
        // Border input y=0 only covered by output 0.
        assert_eq!(affected_range(0, 3, 1, 0, 6), (0, 1));
    }

    #[test]
    fn affected_range_with_padding() {
        // k=3, s=1, p=1, n=6 (same conv on a 6-long input):
        // y=0 covered by outputs 0 and 1 (and the padded -1 position).
        assert_eq!(affected_range(0, 3, 1, 1, 6), (0, 2));
        assert_eq!(affected_range(5, 3, 1, 1, 6), (4, 6));
    }

    #[test]
    fn affected_range_stride2() {
        // k=5, s=2, p=0: input y=6 covered by oy with 2oy<=6<=2oy+4
        // -> oy in {1,2,3}.
        assert_eq!(affected_range(6, 5, 2, 0, 10), (1, 4));
    }

    #[test]
    fn fanout_sums_to_total_macs_without_padding() {
        // Without padding every from-scratch MAC corresponds to exactly one
        // (input, output, filter) triple, so sum of fan-outs == total MACs.
        let layer = layer2d(1, 0);
        let in_shape = Shape::d3(2, 6, 6);
        let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        let a = rand_input(in_shape.clone(), 1);
        state.execute(&layer, &q(), &a).unwrap();
        // Shift every input by three steps: every code changes, so the
        // correction performs the full fan-out of every input.
        let shift = 3.0 * q().step();
        let b = reuse_tensor::ops::map(&a, |v| v + shift);
        let (_, stats) = state.execute(&layer, &q(), &b).unwrap();
        assert_eq!(stats.n_changed, stats.n_inputs);
        assert_eq!(stats.macs_performed, stats.macs_total);
    }

    #[test]
    fn incremental_matches_oracle_2d() {
        for (stride, pad) in [(1usize, 0usize), (1, 1), (2, 0), (2, 1)] {
            let layer = layer2d(stride, pad);
            let in_shape = Shape::d3(2, 7, 7);
            let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
            let a = rand_input(in_shape.clone(), 2);
            let (out0, s0) = state.execute(&layer, &q(), &a).unwrap();
            assert!(s0.from_scratch);
            let expect0 = oracle2d(&layer, &q(), &a);
            for (x, y) in out0.as_slice().iter().zip(expect0.iter()) {
                assert!((x - y).abs() < 1e-4);
            }
            // Perturb a few pixels heavily.
            let mut bdata = a.as_slice().to_vec();
            bdata[5] = -bdata[5] + 0.3;
            bdata[40] = 0.77;
            bdata[90] = -0.9;
            let b = Tensor::from_vec(in_shape.clone(), bdata).unwrap();
            let (out1, s1) = state.execute(&layer, &q(), &b).unwrap();
            assert!(!s1.from_scratch);
            assert!(s1.n_changed >= 2, "stride {stride} pad {pad}");
            assert!(s1.macs_performed < s1.macs_total);
            let expect1 = oracle2d(&layer, &q(), &b);
            for (x, y) in out1.as_slice().iter().zip(expect1.iter()) {
                assert!(
                    (x - y).abs() < 1e-3,
                    "stride {stride} pad {pad}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn identical_input_is_free_2d() {
        let layer = layer2d(1, 1);
        let in_shape = Shape::d3(2, 5, 5);
        let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        let a = rand_input(in_shape, 3);
        let (o1, _) = state.execute(&layer, &q(), &a).unwrap();
        let (o2, stats) = state.execute(&layer, &q(), &a).unwrap();
        assert_eq!(stats.macs_performed, 0);
        assert_eq!(stats.n_changed, 0);
        assert_eq!(o1.as_slice(), o2.as_slice());
    }

    #[test]
    fn incremental_matches_oracle_3d() {
        let spec = Conv3dSpec {
            in_channels: 2,
            out_channels: 2,
            kd: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let layer = Conv3dLayer::random(spec, Activation::Identity, &mut Rng64::new(5));
        let in_shape = Shape::d4(2, 4, 5, 5);
        let mut state = Conv3dReuseState::new(&layer, &in_shape).unwrap();
        let a = rand_input(in_shape.clone(), 6);
        state.execute(&layer, &q(), &a).unwrap();
        let mut bdata = a.as_slice().to_vec();
        bdata[17] = 0.9;
        bdata[100] = -0.6;
        let b = Tensor::from_vec(in_shape, bdata).unwrap();
        let (out, stats) = state.execute(&layer, &q(), &b).unwrap();
        assert!(stats.n_changed >= 1);
        let centroids = q().quantized_values(b.as_slice());
        let qb = Tensor::from_vec(b.shape().clone(), centroids).unwrap();
        let expect = layer.forward_linear(&qb).unwrap();
        for (x, y) in out.as_slice().iter().zip(expect.as_slice().iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_correction_matches_naive_walk_bitwise_2d() {
        for (stride, pad) in [(1usize, 0usize), (1, 1), (2, 0), (2, 1)] {
            let layer = layer2d(stride, pad);
            let in_shape = Shape::d3(2, 7, 7);
            let mut blocked = Conv2dReuseState::new(&layer, &in_shape).unwrap();
            let mut naive = Conv2dReuseState::new(&layer, &in_shape).unwrap();
            let cfg = ParallelConfig::serial();
            let mut data = rand_input(in_shape.clone(), 11).into_vec();
            let mut rng = Rng64::new(23);
            let (mut out_b, mut out_n) = (Vec::new(), Vec::new());
            for _ in 0..12 {
                for _ in 0..8 {
                    let i = (rng.next_u64() % data.len() as u64) as usize;
                    data[i] = (data[i] + rng.uniform(0.6)).clamp(-1.0, 1.0);
                }
                let sb = blocked
                    .execute_into(&cfg, &layer, &q(), &data, &mut out_b)
                    .unwrap();
                let sn = naive
                    .execute_into_naive(&cfg, &layer, &q(), &data, &mut out_n)
                    .unwrap();
                assert_eq!(sb, sn, "stride {stride} pad {pad}");
                let bb: Vec<u32> = out_b.iter().map(|v| v.to_bits()).collect();
                let nb: Vec<u32> = out_n.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bb, nb, "stride {stride} pad {pad}");
            }
        }
    }

    #[test]
    fn blocked_correction_matches_naive_walk_bitwise_3d() {
        let spec = Conv3dSpec {
            in_channels: 2,
            out_channels: 3,
            kd: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let layer = Conv3dLayer::random(spec, Activation::Identity, &mut Rng64::new(9));
        let in_shape = Shape::d4(2, 4, 5, 5);
        let mut blocked = Conv3dReuseState::new(&layer, &in_shape).unwrap();
        let mut naive = Conv3dReuseState::new(&layer, &in_shape).unwrap();
        let cfg = ParallelConfig::serial();
        let mut data = rand_input(in_shape.clone(), 31).into_vec();
        let mut rng = Rng64::new(37);
        let (mut out_b, mut out_n) = (Vec::new(), Vec::new());
        for _ in 0..10 {
            for _ in 0..10 {
                let i = (rng.next_u64() % data.len() as u64) as usize;
                data[i] = (data[i] + rng.uniform(0.6)).clamp(-1.0, 1.0);
            }
            let sb = blocked
                .execute_into(&cfg, &layer, &q(), &data, &mut out_b)
                .unwrap();
            let sn = naive
                .execute_into_naive(&cfg, &layer, &q(), &data, &mut out_n)
                .unwrap();
            assert_eq!(sb, sn);
            let bb: Vec<u32> = out_b.iter().map(|v| v.to_bits()).collect();
            let nb: Vec<u32> = out_n.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bb, nb);
        }
    }

    #[test]
    fn reset_and_storage() {
        let layer = layer2d(1, 0);
        let in_shape = Shape::d3(2, 6, 6);
        let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        // out: 3 x 4 x 4.
        assert_eq!(state.storage_bytes(), (2 * 36 + 4 * 3 * 16) as u64);
        let a = rand_input(in_shape, 7);
        state.execute(&layer, &q(), &a).unwrap();
        assert!(state.is_initialized());
        state.reset();
        assert!(!state.is_initialized());
    }

    #[test]
    fn wrong_shape_rejected() {
        let layer = layer2d(1, 0);
        let state = Conv2dReuseState::new(&layer, &Shape::d3(3, 6, 6));
        assert!(state.is_err());
        let mut ok = Conv2dReuseState::new(&layer, &Shape::d3(2, 6, 6)).unwrap();
        assert!(ok
            .execute(&layer, &q(), &Tensor::zeros(Shape::d3(2, 5, 5)))
            .is_err());
    }
}

//! Incremental convolution execution (paper Section IV-C).
//!
//! In a convolutional layer every input pixel/voxel feeds a bounded window
//! of output neurons: `k×k` positions per output feature map (`k×k×k` for 3D
//! convolution), for every filter. When an input's quantized index changes,
//! the accelerator corrects exactly that fan-out (paper Fig. 8); when it is
//! unchanged, the entire fan-out of computations and weight fetches is
//! skipped.
//!
//! To keep the correction loop contiguous in memory, each state holds a
//! transposed copy of the filter weights laid out input-major
//! (`[in_c, k.., out_c]`) — the software analogue of the interleaved
//! weights-buffer layout the paper uses for FC layers.

use reuse_nn::{Conv2dLayer, Conv3dLayer};
use reuse_quant::{LinearQuantizer, QuantCode};
use reuse_tensor::parallel::parallel_for_mut;
use reuse_tensor::{ParallelConfig, Shape, Tensor};

use crate::ReuseError;

/// Activity counters of one convolution execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvExecStats {
    /// Inputs read.
    pub n_inputs: u64,
    /// Inputs whose index changed.
    pub n_changed: u64,
    /// MACs a from-scratch execution performs.
    pub macs_total: u64,
    /// MACs actually performed.
    pub macs_performed: u64,
    /// Whether this was the state-initializing from-scratch execution.
    pub from_scratch: bool,
}

/// The output-position range `[lo, hi)` whose receptive field covers input
/// coordinate `y`, for kernel size `k`, stride `s`, padding `p` and output
/// extent `n`.
fn affected_range(y: usize, k: usize, s: usize, p: usize, n: usize) -> (usize, usize) {
    let y = y as isize + p as isize;
    let k = k as isize;
    let s = s as isize;
    // oy*s <= y  and  oy*s + k - 1 >= y
    let hi = y / s; // floor
    let lo = (y - k + 1 + s - 1).div_euclid(s); // ceil((y-k+1)/s)
    let lo = lo.max(0) as usize;
    let hi = (hi.min(n as isize - 1) + 1).max(0) as usize;
    (lo.min(n), hi.min(n))
}

/// Buffered state of one 2D convolutional layer between executions.
#[derive(Debug, Clone)]
pub struct Conv2dReuseState {
    prev_codes: Vec<QuantCode>,
    prev_linear: Vec<f32>,
    /// Weights transposed to `[in_c, kh, kw, out_c]` for contiguous
    /// correction updates.
    w_t: Vec<f32>,
    /// Scratch list of `(input index, centroid delta)` pairs, collected
    /// serially and applied per output-filter chunk; reused across frames.
    changed: Vec<(u32, f32)>,
    in_shape: Shape,
    out_shape: Shape,
    initialized: bool,
}

impl Conv2dReuseState {
    /// Creates state for a layer processing inputs of shape `in_shape`.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `in_shape` is incompatible with the layer.
    pub fn new(layer: &Conv2dLayer, in_shape: &Shape) -> Result<Self, ReuseError> {
        let d = in_shape.dims();
        if d.len() != 3 || d[0] != layer.spec().in_channels {
            return Err(ReuseError::InvalidConfig {
                context: format!("conv2d state input shape {in_shape} incompatible"),
            });
        }
        let spec = layer.spec();
        let (oh, ow) = spec.output_hw(d[1], d[2])?;
        let out_shape = Shape::d3(spec.out_channels, oh, ow);
        // Transpose [f, c, ky, kx] -> [c, ky, kx, f].
        let w = layer.weights().as_slice();
        let (fc, cc, kh, kw) = (spec.out_channels, spec.in_channels, spec.kh, spec.kw);
        let mut w_t = vec![0.0f32; w.len()];
        for f in 0..fc {
            for c in 0..cc {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let src = ((f * cc + c) * kh + ky) * kw + kx;
                        let dst = ((c * kh + ky) * kw + kx) * fc + f;
                        w_t[dst] = w[src];
                    }
                }
            }
        }
        Ok(Conv2dReuseState {
            prev_codes: Vec::new(),
            prev_linear: Vec::new(),
            w_t,
            changed: Vec::new(),
            in_shape: in_shape.clone(),
            out_shape,
            initialized: false,
        })
    }

    /// Whether the first (from-scratch) execution has happened.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Drops buffered state.
    pub fn reset(&mut self) {
        self.prev_codes.clear();
        self.prev_linear.clear();
        self.changed.clear();
        self.initialized = false;
    }

    /// Extra storage: one byte per input index plus four bytes per buffered
    /// output (Table III accounting; for CNNs these live in main memory
    /// between executions with one block staged on-chip).
    pub fn storage_bytes(&self) -> u64 {
        (self.in_shape.volume() + 4 * self.out_shape.volume()) as u64
    }

    /// The buffered linear (pre-activation) outputs of the last execution
    /// (empty before initialization). Read by the drift watchdog.
    pub fn buffered_linear(&self) -> &[f32] {
        &self.prev_linear
    }

    /// Replaces the buffered state with externally computed values (codes
    /// from quantizing `input`, linear outputs from `linear`); used by the
    /// drift watchdog to re-baseline onto full-precision values.
    pub fn adopt_baseline(&mut self, quantizer: &LinearQuantizer, input: &[f32], linear: &[f32]) {
        self.prev_codes.clear();
        self.prev_codes
            .extend(input.iter().map(|&x| quantizer.quantize(x)));
        self.prev_linear.clear();
        self.prev_linear.extend_from_slice(linear);
        self.initialized = true;
    }

    /// Executes the layer, reusing buffered results where quantized inputs
    /// are unchanged. Returns the linear (pre-activation) output.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when the input shape disagrees with the state.
    pub fn execute(
        &mut self,
        layer: &Conv2dLayer,
        quantizer: &LinearQuantizer,
        input: &Tensor,
    ) -> Result<(Tensor, ConvExecStats), ReuseError> {
        self.execute_with(&ParallelConfig::serial(), layer, quantizer, input)
    }

    /// [`Self::execute`] with an explicit parallelism budget.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when the input shape disagrees with the state.
    pub fn execute_with(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv2dLayer,
        quantizer: &LinearQuantizer,
        input: &Tensor,
    ) -> Result<(Tensor, ConvExecStats), ReuseError> {
        if input.shape() != &self.in_shape {
            return Err(ReuseError::InvalidConfig {
                context: format!(
                    "conv2d input {} != state shape {}",
                    input.shape(),
                    self.in_shape
                ),
            });
        }
        let mut out = Vec::new();
        let stats = self.execute_into(config, layer, quantizer, input.as_slice(), &mut out)?;
        Ok((Tensor::from_vec(self.out_shape.clone(), out)?, stats))
    }

    /// Allocation-free core of [`Self::execute`]: clears `out` and writes
    /// the linear feature maps (`[out_c, oh, ow]`, flattened) into it.
    ///
    /// Changed inputs are diffed serially; corrections are applied in
    /// parallel with each worker owning whole output feature maps, so every
    /// output accumulates its deltas in input order and the result is
    /// bit-identical to serial execution.
    ///
    /// `input` is the flat row-major `[in_c, h, w]` data; only its length is
    /// checked (the shape-checked entry points are [`Self::execute`] /
    /// [`Self::execute_with`]).
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `input` has the wrong length.
    pub fn execute_into(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv2dLayer,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ConvExecStats, ReuseError> {
        if input.len() != self.in_shape.volume() {
            return Err(ReuseError::InvalidConfig {
                context: format!(
                    "conv2d input length {} != state volume {}",
                    input.len(),
                    self.in_shape.volume()
                ),
            });
        }
        let spec = *layer.spec();
        let idims = self.in_shape.dims();
        let (h, w) = (idims[1], idims[2]);
        let odims = self.out_shape.dims();
        let (fc, oh, ow) = (odims[0], odims[1], odims[2]);
        let macs_total = spec.flops(h, w) / 2;
        let n_in = self.in_shape.volume() as u64;

        if !self.initialized {
            self.prev_codes = quantizer.quantize_slice(input);
            let centroids: Vec<f32> = self
                .prev_codes
                .iter()
                .map(|&c| quantizer.centroid(c))
                .collect();
            let qin = Tensor::from_vec(self.in_shape.clone(), centroids)?;
            let linear = layer.forward_linear_with(config, &qin)?;
            self.prev_linear = linear.into_vec();
            self.initialized = true;
            out.clear();
            out.extend_from_slice(&self.prev_linear);
            return Ok(ConvExecStats {
                n_inputs: n_in,
                n_changed: n_in,
                macs_total,
                macs_performed: macs_total,
                from_scratch: true,
            });
        }

        // Pass 1 (serial): diff the quantized codes in input order,
        // collecting the changed list and the MAC count of the correction.
        let x = input;
        let mut macs = 0u64;
        let (kh, kw, s, p) = (spec.kh, spec.kw, spec.stride, spec.pad);
        self.changed.clear();
        for (idx, &xv) in x.iter().enumerate() {
            let code = quantizer.quantize(xv);
            let prev = self.prev_codes[idx];
            if code == prev {
                continue;
            }
            self.prev_codes[idx] = code;
            let delta = quantizer.centroid(code) - quantizer.centroid(prev);
            self.changed.push((idx as u32, delta));
            let y = (idx / w) % h;
            let xw = idx % w;
            let (oy_lo, oy_hi) = affected_range(y, kh, s, p, oh);
            let (ox_lo, ox_hi) = affected_range(xw, kw, s, p, ow);
            macs += ((oy_hi - oy_lo) * (ox_hi - ox_lo) * fc) as u64;
        }

        // Pass 2 (parallel over output feature maps): each worker applies
        // every delta to the planes it owns.
        let o_plane = oh * ow;
        let w_t: &[f32] = &self.w_t;
        let changed: &[(u32, f32)] = &self.changed;
        parallel_for_mut(config, &mut self.prev_linear, o_plane, |offset, chunk| {
            let first_f = offset / o_plane;
            let n_f = chunk.len() / o_plane;
            for &(idx, delta) in changed {
                let idx = idx as usize;
                let c = idx / (h * w);
                let y = (idx / w) % h;
                let xw = idx % w;
                let (oy_lo, oy_hi) = affected_range(y, kh, s, p, oh);
                let (ox_lo, ox_hi) = affected_range(xw, kw, s, p, ow);
                for oy in oy_lo..oy_hi {
                    let ky = y + p - oy * s;
                    for ox in ox_lo..ox_hi {
                        let kx = xw + p - ox * s;
                        let wrow = &w_t[((c * kh + ky) * kw + kx) * fc + first_f..][..n_f];
                        let obase = oy * ow + ox;
                        // Output layout is [f, oy, ox]; stride over f is oh*ow.
                        for (f, &wv) in wrow.iter().enumerate() {
                            chunk[f * o_plane + obase] += delta * wv;
                        }
                    }
                }
            }
        });
        out.clear();
        out.extend_from_slice(&self.prev_linear);
        Ok(ConvExecStats {
            n_inputs: n_in,
            n_changed: self.changed.len() as u64,
            macs_total,
            macs_performed: macs,
            from_scratch: false,
        })
    }
}

/// Buffered state of one 3D convolutional layer between executions.
#[derive(Debug, Clone)]
pub struct Conv3dReuseState {
    prev_codes: Vec<QuantCode>,
    prev_linear: Vec<f32>,
    /// Weights transposed to `[in_c, kd, kh, kw, out_c]`.
    w_t: Vec<f32>,
    /// Scratch `(input index, centroid delta)` list; see [`Conv2dReuseState`].
    changed: Vec<(u32, f32)>,
    in_shape: Shape,
    out_shape: Shape,
    initialized: bool,
}

impl Conv3dReuseState {
    /// Creates state for a layer processing inputs of shape `in_shape`.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `in_shape` is incompatible with the layer.
    pub fn new(layer: &Conv3dLayer, in_shape: &Shape) -> Result<Self, ReuseError> {
        let d = in_shape.dims();
        if d.len() != 4 || d[0] != layer.spec().in_channels {
            return Err(ReuseError::InvalidConfig {
                context: format!("conv3d state input shape {in_shape} incompatible"),
            });
        }
        let spec = layer.spec();
        let (od, oh, ow) = spec.output_dhw(d[1], d[2], d[3])?;
        let out_shape = Shape::d4(spec.out_channels, od, oh, ow);
        let w = layer.weights().as_slice();
        let (fc, cc) = (spec.out_channels, spec.in_channels);
        let (kd, kh, kw) = (spec.kd, spec.kh, spec.kw);
        let mut w_t = vec![0.0f32; w.len()];
        for f in 0..fc {
            for c in 0..cc {
                for kz in 0..kd {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let src = (((f * cc + c) * kd + kz) * kh + ky) * kw + kx;
                            let dst = (((c * kd + kz) * kh + ky) * kw + kx) * fc + f;
                            w_t[dst] = w[src];
                        }
                    }
                }
            }
        }
        Ok(Conv3dReuseState {
            prev_codes: Vec::new(),
            prev_linear: Vec::new(),
            w_t,
            changed: Vec::new(),
            in_shape: in_shape.clone(),
            out_shape,
            initialized: false,
        })
    }

    /// Whether the first (from-scratch) execution has happened.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Drops buffered state.
    pub fn reset(&mut self) {
        self.prev_codes.clear();
        self.prev_linear.clear();
        self.changed.clear();
        self.initialized = false;
    }

    /// Extra storage bytes (indices + buffered outputs), as in Table III.
    pub fn storage_bytes(&self) -> u64 {
        (self.in_shape.volume() + 4 * self.out_shape.volume()) as u64
    }

    /// The buffered linear (pre-activation) outputs of the last execution
    /// (empty before initialization). Read by the drift watchdog.
    pub fn buffered_linear(&self) -> &[f32] {
        &self.prev_linear
    }

    /// Replaces the buffered state with externally computed values; see
    /// [`Conv2dReuseState::adopt_baseline`].
    pub fn adopt_baseline(&mut self, quantizer: &LinearQuantizer, input: &[f32], linear: &[f32]) {
        self.prev_codes.clear();
        self.prev_codes
            .extend(input.iter().map(|&x| quantizer.quantize(x)));
        self.prev_linear.clear();
        self.prev_linear.extend_from_slice(linear);
        self.initialized = true;
    }

    /// Executes the layer, reusing buffered results where quantized inputs
    /// are unchanged. Returns the linear (pre-activation) output.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when the input shape disagrees with the state.
    pub fn execute(
        &mut self,
        layer: &Conv3dLayer,
        quantizer: &LinearQuantizer,
        input: &Tensor,
    ) -> Result<(Tensor, ConvExecStats), ReuseError> {
        self.execute_with(&ParallelConfig::serial(), layer, quantizer, input)
    }

    /// [`Self::execute`] with an explicit parallelism budget.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when the input shape disagrees with the state.
    pub fn execute_with(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv3dLayer,
        quantizer: &LinearQuantizer,
        input: &Tensor,
    ) -> Result<(Tensor, ConvExecStats), ReuseError> {
        if input.shape() != &self.in_shape {
            return Err(ReuseError::InvalidConfig {
                context: format!(
                    "conv3d input {} != state shape {}",
                    input.shape(),
                    self.in_shape
                ),
            });
        }
        let mut out = Vec::new();
        let stats = self.execute_into(config, layer, quantizer, input.as_slice(), &mut out)?;
        Ok((Tensor::from_vec(self.out_shape.clone(), out)?, stats))
    }

    /// Allocation-free core of [`Self::execute`]; see
    /// [`Conv2dReuseState::execute_into`] for the two-pass scheme. Workers
    /// own whole output volumes, so results are bit-identical to serial.
    ///
    /// `input` is the flat row-major `[in_c, d, h, w]` data; only its length
    /// is checked.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `input` has the wrong length.
    pub fn execute_into(
        &mut self,
        config: &ParallelConfig,
        layer: &Conv3dLayer,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<ConvExecStats, ReuseError> {
        if input.len() != self.in_shape.volume() {
            return Err(ReuseError::InvalidConfig {
                context: format!(
                    "conv3d input length {} != state volume {}",
                    input.len(),
                    self.in_shape.volume()
                ),
            });
        }
        let spec = *layer.spec();
        let idims = self.in_shape.dims();
        let (d, h, w) = (idims[1], idims[2], idims[3]);
        let odims = self.out_shape.dims();
        let (fc, od, oh, ow) = (odims[0], odims[1], odims[2], odims[3]);
        let macs_total = spec.flops(d, h, w) / 2;
        let n_in = self.in_shape.volume() as u64;

        if !self.initialized {
            self.prev_codes = quantizer.quantize_slice(input);
            let centroids: Vec<f32> = self
                .prev_codes
                .iter()
                .map(|&c| quantizer.centroid(c))
                .collect();
            let qin = Tensor::from_vec(self.in_shape.clone(), centroids)?;
            let linear = layer.forward_linear_with(config, &qin)?;
            self.prev_linear = linear.into_vec();
            self.initialized = true;
            out.clear();
            out.extend_from_slice(&self.prev_linear);
            return Ok(ConvExecStats {
                n_inputs: n_in,
                n_changed: n_in,
                macs_total,
                macs_performed: macs_total,
                from_scratch: true,
            });
        }

        // Pass 1 (serial): diff codes in input order, collect changed list
        // and the MAC count of the correction.
        let x = input;
        let mut macs = 0u64;
        let (kd, kh, kw, s, p) = (spec.kd, spec.kh, spec.kw, spec.stride, spec.pad);
        let o_plane = oh * ow;
        let o_vol = od * o_plane;
        self.changed.clear();
        for (idx, &xv) in x.iter().enumerate() {
            let code = quantizer.quantize(xv);
            let prev = self.prev_codes[idx];
            if code == prev {
                continue;
            }
            self.prev_codes[idx] = code;
            let delta = quantizer.centroid(code) - quantizer.centroid(prev);
            self.changed.push((idx as u32, delta));
            let z = (idx / (h * w)) % d;
            let y = (idx / w) % h;
            let xw = idx % w;
            let (oz_lo, oz_hi) = affected_range(z, kd, s, p, od);
            let (oy_lo, oy_hi) = affected_range(y, kh, s, p, oh);
            let (ox_lo, ox_hi) = affected_range(xw, kw, s, p, ow);
            macs += ((oz_hi - oz_lo) * (oy_hi - oy_lo) * (ox_hi - ox_lo) * fc) as u64;
        }

        // Pass 2 (parallel over output volumes): each worker applies every
        // delta to the filter volumes it owns.
        let w_t: &[f32] = &self.w_t;
        let changed: &[(u32, f32)] = &self.changed;
        parallel_for_mut(config, &mut self.prev_linear, o_vol, |offset, chunk| {
            let first_f = offset / o_vol;
            let n_f = chunk.len() / o_vol;
            for &(idx, delta) in changed {
                let idx = idx as usize;
                let c = idx / (d * h * w);
                let z = (idx / (h * w)) % d;
                let y = (idx / w) % h;
                let xw = idx % w;
                let (oz_lo, oz_hi) = affected_range(z, kd, s, p, od);
                let (oy_lo, oy_hi) = affected_range(y, kh, s, p, oh);
                let (ox_lo, ox_hi) = affected_range(xw, kw, s, p, ow);
                for oz in oz_lo..oz_hi {
                    let kz = z + p - oz * s;
                    for oy in oy_lo..oy_hi {
                        let ky = y + p - oy * s;
                        for ox in ox_lo..ox_hi {
                            let kx = xw + p - ox * s;
                            let wrow =
                                &w_t[(((c * kd + kz) * kh + ky) * kw + kx) * fc + first_f..][..n_f];
                            let obase = (oz * oh + oy) * ow + ox;
                            for (f, &wv) in wrow.iter().enumerate() {
                                chunk[f * o_vol + obase] += delta * wv;
                            }
                        }
                    }
                }
            }
        });
        out.clear();
        out.extend_from_slice(&self.prev_linear);
        Ok(ConvExecStats {
            n_inputs: n_in,
            n_changed: self.changed.len() as u64,
            macs_total,
            macs_performed: macs,
            from_scratch: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_nn::{init::Rng64, Activation};
    use reuse_quant::InputRange;
    use reuse_tensor::conv::{Conv2dSpec, Conv3dSpec};

    fn q() -> LinearQuantizer {
        LinearQuantizer::new(InputRange::new(-1.0, 1.0), 32).unwrap()
    }

    fn layer2d(stride: usize, pad: usize) -> Conv2dLayer {
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 3,
            kh: 3,
            kw: 3,
            stride,
            pad,
        };
        Conv2dLayer::random(spec, Activation::Identity, &mut Rng64::new(21))
    }

    fn oracle2d(layer: &Conv2dLayer, q: &LinearQuantizer, input: &Tensor) -> Vec<f32> {
        let centroids = q.quantized_values(input.as_slice());
        let t = Tensor::from_vec(input.shape().clone(), centroids).unwrap();
        layer.forward_linear(&t).unwrap().into_vec()
    }

    fn rand_input(shape: Shape, seed: u64) -> Tensor {
        let mut rng = Rng64::new(seed);
        Tensor::from_fn(shape, |_| rng.uniform(0.9))
    }

    #[test]
    fn affected_range_stride1_interior() {
        // k=3, s=1, p=0, n=6: input y=3 is covered by outputs 1,2,3.
        assert_eq!(affected_range(3, 3, 1, 0, 6), (1, 4));
        // Border input y=0 only covered by output 0.
        assert_eq!(affected_range(0, 3, 1, 0, 6), (0, 1));
    }

    #[test]
    fn affected_range_with_padding() {
        // k=3, s=1, p=1, n=6 (same conv on a 6-long input):
        // y=0 covered by outputs 0 and 1 (and the padded -1 position).
        assert_eq!(affected_range(0, 3, 1, 1, 6), (0, 2));
        assert_eq!(affected_range(5, 3, 1, 1, 6), (4, 6));
    }

    #[test]
    fn affected_range_stride2() {
        // k=5, s=2, p=0: input y=6 covered by oy with 2oy<=6<=2oy+4
        // -> oy in {1,2,3}.
        assert_eq!(affected_range(6, 5, 2, 0, 10), (1, 4));
    }

    #[test]
    fn fanout_sums_to_total_macs_without_padding() {
        // Without padding every from-scratch MAC corresponds to exactly one
        // (input, output, filter) triple, so sum of fan-outs == total MACs.
        let layer = layer2d(1, 0);
        let in_shape = Shape::d3(2, 6, 6);
        let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        let a = rand_input(in_shape.clone(), 1);
        state.execute(&layer, &q(), &a).unwrap();
        // Shift every input by three steps: every code changes, so the
        // correction performs the full fan-out of every input.
        let shift = 3.0 * q().step();
        let b = reuse_tensor::ops::map(&a, |v| v + shift);
        let (_, stats) = state.execute(&layer, &q(), &b).unwrap();
        assert_eq!(stats.n_changed, stats.n_inputs);
        assert_eq!(stats.macs_performed, stats.macs_total);
    }

    #[test]
    fn incremental_matches_oracle_2d() {
        for (stride, pad) in [(1usize, 0usize), (1, 1), (2, 0), (2, 1)] {
            let layer = layer2d(stride, pad);
            let in_shape = Shape::d3(2, 7, 7);
            let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
            let a = rand_input(in_shape.clone(), 2);
            let (out0, s0) = state.execute(&layer, &q(), &a).unwrap();
            assert!(s0.from_scratch);
            let expect0 = oracle2d(&layer, &q(), &a);
            for (x, y) in out0.as_slice().iter().zip(expect0.iter()) {
                assert!((x - y).abs() < 1e-4);
            }
            // Perturb a few pixels heavily.
            let mut bdata = a.as_slice().to_vec();
            bdata[5] = -bdata[5] + 0.3;
            bdata[40] = 0.77;
            bdata[90] = -0.9;
            let b = Tensor::from_vec(in_shape.clone(), bdata).unwrap();
            let (out1, s1) = state.execute(&layer, &q(), &b).unwrap();
            assert!(!s1.from_scratch);
            assert!(s1.n_changed >= 2, "stride {stride} pad {pad}");
            assert!(s1.macs_performed < s1.macs_total);
            let expect1 = oracle2d(&layer, &q(), &b);
            for (x, y) in out1.as_slice().iter().zip(expect1.iter()) {
                assert!(
                    (x - y).abs() < 1e-3,
                    "stride {stride} pad {pad}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn identical_input_is_free_2d() {
        let layer = layer2d(1, 1);
        let in_shape = Shape::d3(2, 5, 5);
        let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        let a = rand_input(in_shape, 3);
        let (o1, _) = state.execute(&layer, &q(), &a).unwrap();
        let (o2, stats) = state.execute(&layer, &q(), &a).unwrap();
        assert_eq!(stats.macs_performed, 0);
        assert_eq!(stats.n_changed, 0);
        assert_eq!(o1.as_slice(), o2.as_slice());
    }

    #[test]
    fn incremental_matches_oracle_3d() {
        let spec = Conv3dSpec {
            in_channels: 2,
            out_channels: 2,
            kd: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let layer = Conv3dLayer::random(spec, Activation::Identity, &mut Rng64::new(5));
        let in_shape = Shape::d4(2, 4, 5, 5);
        let mut state = Conv3dReuseState::new(&layer, &in_shape).unwrap();
        let a = rand_input(in_shape.clone(), 6);
        state.execute(&layer, &q(), &a).unwrap();
        let mut bdata = a.as_slice().to_vec();
        bdata[17] = 0.9;
        bdata[100] = -0.6;
        let b = Tensor::from_vec(in_shape, bdata).unwrap();
        let (out, stats) = state.execute(&layer, &q(), &b).unwrap();
        assert!(stats.n_changed >= 1);
        let centroids = q().quantized_values(b.as_slice());
        let qb = Tensor::from_vec(b.shape().clone(), centroids).unwrap();
        let expect = layer.forward_linear(&qb).unwrap();
        for (x, y) in out.as_slice().iter().zip(expect.as_slice().iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn reset_and_storage() {
        let layer = layer2d(1, 0);
        let in_shape = Shape::d3(2, 6, 6);
        let mut state = Conv2dReuseState::new(&layer, &in_shape).unwrap();
        // out: 3 x 4 x 4.
        assert_eq!(state.storage_bytes(), (2 * 36 + 4 * 3 * 16) as u64);
        let a = rand_input(in_shape, 7);
        state.execute(&layer, &q(), &a).unwrap();
        assert!(state.is_initialized());
        state.reset();
        assert!(!state.is_initialized());
    }

    #[test]
    fn wrong_shape_rejected() {
        let layer = layer2d(1, 0);
        let state = Conv2dReuseState::new(&layer, &Shape::d3(3, 6, 6));
        assert!(state.is_err());
        let mut ok = Conv2dReuseState::new(&layer, &Shape::d3(2, 6, 6)).unwrap();
        assert!(ok
            .execute(&layer, &q(), &Tensor::zeros(Shape::d3(2, 5, 5)))
            .is_err());
    }
}

//! Per-execution activity traces.
//!
//! The accelerator simulator in `reuse-accel` is *trace-driven*: the reuse
//! engine records, for every execution and every weighted layer, how many
//! inputs it saw, how many changed, and how many multiply-accumulates were
//! performed. The simulator turns those counts into cycles and energy using
//! the Table II hardware parameters.

/// The execution mode a layer ran in for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Full-precision from-scratch execution (reuse disabled for the layer).
    ScratchFp32,
    /// Quantized from-scratch execution (first execution of a reuse layer).
    ScratchQuantized,
    /// Incremental execution correcting the buffered outputs.
    Incremental,
}

/// Activity of one weighted layer during one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTrace {
    /// Layer name within the network.
    pub name: String,
    /// Coarse layer kind.
    pub kind: reuse_nn::LayerKind,
    /// How the layer executed.
    pub mode: TraceKind,
    /// Scalar inputs read.
    pub n_inputs: u64,
    /// Inputs whose quantized index changed (equals `n_inputs` for
    /// from-scratch executions).
    pub n_changed: u64,
    /// Scalar outputs produced / buffered.
    pub n_outputs: u64,
    /// Weight + bias parameters of the layer (drives per-execution weight
    /// streaming traffic for models that do not fit on-chip).
    pub n_params: u64,
    /// Multiply-accumulates a from-scratch execution performs.
    pub macs_total: u64,
    /// Multiply-accumulates actually performed.
    pub macs_performed: u64,
}

impl LayerTrace {
    /// Weight elements fetched from the weights memory (one per MAC — the
    /// data master streams the weights that each processed input needs,
    /// paper Fig. 7).
    pub fn weight_fetches(&self) -> u64 {
        self.macs_performed
    }

    /// Output elements read-modify-written in the I/O buffer by the
    /// correction path (zero for from-scratch executions, which only write
    /// the final outputs).
    pub fn correction_output_accesses(&self) -> u64 {
        match self.mode {
            TraceKind::Incremental => self.macs_performed,
            _ => 0,
        }
    }
}

/// Activity of one whole DNN execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionTrace {
    /// Per-layer records in network order (weighted layers only).
    pub layers: Vec<LayerTrace>,
}

impl ExecutionTrace {
    /// Total MACs performed in this execution.
    pub fn macs_performed(&self) -> u64 {
        self.layers.iter().map(|l| l.macs_performed).sum()
    }

    /// Total MACs a from-scratch execution would perform.
    pub fn macs_total(&self) -> u64 {
        self.layers.iter().map(|l| l.macs_total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_nn::LayerKind;

    fn trace(mode: TraceKind, performed: u64) -> LayerTrace {
        LayerTrace {
            name: "fc1".into(),
            kind: LayerKind::Fc,
            mode,
            n_inputs: 10,
            n_changed: 4,
            n_outputs: 20,
            n_params: 200,
            macs_total: 200,
            macs_performed: performed,
        }
    }

    #[test]
    fn weight_fetches_track_performed_macs() {
        assert_eq!(trace(TraceKind::Incremental, 80).weight_fetches(), 80);
        assert_eq!(
            trace(TraceKind::ScratchQuantized, 200).weight_fetches(),
            200
        );
    }

    #[test]
    fn corrections_only_for_incremental() {
        assert_eq!(
            trace(TraceKind::Incremental, 80).correction_output_accesses(),
            80
        );
        assert_eq!(
            trace(TraceKind::ScratchFp32, 200).correction_output_accesses(),
            0
        );
    }

    #[test]
    fn execution_totals() {
        let e = ExecutionTrace {
            layers: vec![
                trace(TraceKind::Incremental, 80),
                trace(TraceKind::Incremental, 50),
            ],
        };
        assert_eq!(e.macs_performed(), 130);
        assert_eq!(e.macs_total(), 400);
    }
}

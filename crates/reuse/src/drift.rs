//! Numerical drift of incrementally-corrected outputs.
//!
//! The reuse scheme never recomputes a buffered output from scratch: every
//! execution *adds* correction terms (paper Eq. 10) with finite-precision
//! arithmetic, so rounding errors accumulate over a sequence. The hardware
//! implicitly bounds this by power-gating between sequences (state resets,
//! paper Section IV-A); this module quantifies the residual drift within a
//! sequence so that bound can be checked rather than assumed.

use reuse_nn::FullyConnected;
use reuse_quant::LinearQuantizer;
use reuse_tensor::Tensor;

use crate::fc::FcReuseState;
use crate::ReuseError;

/// Drift of the incremental path relative to from-scratch recomputation.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Executions measured (after the initializing one).
    pub executions: u64,
    /// Maximum absolute output error observed at each measured checkpoint.
    pub max_abs_error: Vec<f32>,
    /// Relative error (max abs error over output magnitude) at the end.
    pub final_relative_error: f64,
}

impl DriftReport {
    /// Whether drift stayed below `bound` (absolute) throughout.
    pub fn bounded_by(&self, bound: f32) -> bool {
        self.max_abs_error.iter().all(|&e| e <= bound)
    }
}

/// Maximum absolute element-wise difference between two equal-length
/// slices — the drift measure shared by [`measure_fc_drift`] and the
/// engine's runtime watchdog.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "slices must have equal length");
    a.iter()
        .zip(b.iter())
        .fold(0.0f32, |m, (&x, &y)| m.max((x - y).abs()))
}

/// Runs an FC layer incrementally over `inputs`, comparing the buffered
/// outputs against from-scratch recomputation on the same quantized inputs
/// every `checkpoint_every` executions.
///
/// # Errors
///
/// Propagates execution errors.
pub fn measure_fc_drift(
    layer: &FullyConnected,
    quantizer: &LinearQuantizer,
    inputs: &[Vec<f32>],
    checkpoint_every: usize,
) -> Result<DriftReport, ReuseError> {
    let mut state = FcReuseState::new(layer);
    let mut max_abs_error = Vec::new();
    let mut last_error = 0.0f64;
    let mut last_mag = 1.0f64;
    for (t, input) in inputs.iter().enumerate() {
        let (incremental, _) = state.execute(layer, quantizer, input)?;
        if t > 0 && t % checkpoint_every.max(1) == 0 {
            let centroids = quantizer.quantized_values(input);
            let t_in = Tensor::from_slice_1d(&centroids)?;
            let scratch = layer.forward_linear(&t_in)?;
            let err = max_abs_diff(incremental.as_slice(), scratch.as_slice());
            max_abs_error.push(err);
            last_error = err as f64;
            last_mag = scratch.max_abs().max(1e-9) as f64;
        }
    }
    Ok(DriftReport {
        executions: inputs.len().saturating_sub(1) as u64,
        max_abs_error,
        final_relative_error: last_error / last_mag,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_nn::{init::Rng64, Activation};
    use reuse_quant::InputRange;

    fn walk(len: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Rng64::new(seed);
        let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.5)).collect();
        (0..len)
            .map(|_| {
                for v in &mut frame {
                    *v = (*v + rng.uniform(0.1)).clamp(-1.0, 1.0);
                }
                frame.clone()
            })
            .collect()
    }

    #[test]
    fn drift_stays_tiny_over_a_long_utterance() {
        // 500 executions ~ a five-second utterance at 10ms frames.
        let layer = FullyConnected::random(40, 100, Activation::Identity, &mut Rng64::new(1));
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let report = measure_fc_drift(&layer, &q, &walk(500, 40, 2), 50).unwrap();
        assert_eq!(report.executions, 499);
        assert_eq!(report.max_abs_error.len(), 9);
        // f32 corrections on O(1) values: drift must stay far below the
        // quantization step (0.125), or the scheme's accuracy story breaks.
        assert!(
            report.bounded_by(q.step() / 10.0),
            "drift {:?}",
            report.max_abs_error
        );
        assert!(report.final_relative_error < 1e-3);
    }

    #[test]
    fn drift_grows_slowly_not_exponentially() {
        let layer = FullyConnected::random(20, 50, Activation::Identity, &mut Rng64::new(3));
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let report = measure_fc_drift(&layer, &q, &walk(400, 20, 4), 100).unwrap();
        // Later checkpoints may exceed earlier ones, but by bounded factors
        // (random-walk accumulation), not orders of magnitude.
        let first = report
            .max_abs_error
            .first()
            .copied()
            .unwrap_or(0.0)
            .max(1e-9);
        let last = report.max_abs_error.last().copied().unwrap_or(0.0);
        assert!(last / first < 100.0, "first {first}, last {last}");
    }

    #[test]
    fn max_abs_diff_basics() {
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, -1.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn max_abs_diff_length_mismatch_panics() {
        max_abs_diff(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn bounded_by_is_strict() {
        let r = DriftReport {
            executions: 10,
            max_abs_error: vec![1e-6, 5e-6],
            final_relative_error: 1e-7,
        };
        assert!(r.bounded_by(1e-5));
        assert!(!r.bounded_by(1e-6));
    }
}

//! The MCACHE-style cross-stream signature cache (MERCURY, arXiv
//! 2110.14904, adapted to the paper's correction machinery).
//!
//! Per-stream reuse is strictly temporal: frame t corrects against frame
//! t-1 of the *same* stream, so a stream's first reuse frame always runs
//! from scratch. At serving scale, *different* streams are often
//! near-identical (silence frames, idle dashcam video), and that
//! first-frame cost dominates whenever streams churn through the LRU pool.
//!
//! This module recovers that reuse: each reuse slot of a feed-forward
//! [`CompiledModel`](crate::CompiledModel) gets a fixed set of random
//! hyperplanes ([`RpqPlanes`]) hashing layer inputs to short binary
//! signatures, and the model carries one shared, sharded, bounded
//! [`SignatureCache`] mapping `(slot, signature)` to a published baseline —
//! the raw input a session ran from scratch plus the linear outputs it
//! buffered. A session whose own baseline is missing looks its input up;
//! on a hit it adopts the cached baseline under its *own* quantizer and
//! lets the ordinary `z' = z + (c'-c)·w` correction pass absorb the
//! difference. A cheap code-diff pre-check bails out of false-positive
//! collisions before any baseline is touched.
//!
//! Entries deliberately store the producer's **raw** (pre-quantization)
//! input rather than its codes: codes are meaningless under another
//! session's independently calibrated quantizer, while re-quantizing raw
//! values under the consumer's grid is exact. The residual baseline error
//! (producer centroids vs consumer centroids of the same values) is the
//! same order as ordinary quantization error and is policed by the same
//! drift watchdog.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use reuse_nn::LayerKind;
use reuse_quant::RpqPlanes;

use crate::model::CompiledSlot;
use crate::ReuseConfig;

/// Number of independently locked shards. A power of two so shard
/// selection is a mask; small enough that an empty cache stays cheap.
const SHARDS: usize = 8;

/// A baseline published by one session for adoption by others.
#[derive(Debug)]
pub struct CachedBaseline {
    /// The raw (pre-quantization) layer input of the from-scratch execution.
    pub input: Vec<f32>,
    /// The buffered linear outputs (pre-activation) for that input.
    pub linear: Vec<f32>,
}

type SigKey = (u32, u64);

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<SigKey, Arc<CachedBaseline>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<SigKey>,
}

/// A sharded, bounded, read-mostly map from `(slot, signature)` to a
/// published [`CachedBaseline`].
///
/// Writes happen only on cold-start from-scratch executions (and, under
/// [`SignatureInsertPolicy::ColdStartAndRebaseline`](crate::SignatureInsertPolicy),
/// watchdog re-baselines), so contention is negligible: the steady-state
/// hot path never touches a lock. Each shard evicts FIFO once it reaches
/// its share of the configured capacity.
#[derive(Debug)]
pub struct SignatureCache {
    shards: Vec<Mutex<Shard>>,
    /// Entry bound per shard (total capacity split evenly, rounded up).
    shard_capacity: usize,
}

impl SignatureCache {
    /// Creates a cache bounded to roughly `capacity` entries in total.
    /// `capacity == 0` is a valid degenerate cache: every lookup misses
    /// and every insert is dropped.
    pub fn new(capacity: usize) -> Self {
        SignatureCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS),
        }
    }

    fn shard_for(&self, slot: u32, sig: u64) -> &Mutex<Shard> {
        // Mix the slot in so one hot layer doesn't pile onto one shard.
        let h = sig ^ (u64::from(slot)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Looks up a published baseline. The `Arc` is cloned under a brief
    /// shard lock, so the caller reads the entry without holding it.
    pub fn get(&self, slot: u32, sig: u64) -> Option<Arc<CachedBaseline>> {
        if self.shard_capacity == 0 {
            return None;
        }
        let shard = self.shard_for(slot, sig).lock().expect("cache poisoned");
        shard.entries.get(&(slot, sig)).cloned()
    }

    /// Publishes a baseline, evicting the shard's oldest entry when full.
    /// Returns `false` when the cache has no capacity and the entry was
    /// dropped; re-publishing an existing key replaces its baseline.
    pub fn insert(&self, slot: u32, sig: u64, entry: CachedBaseline) -> bool {
        if self.shard_capacity == 0 {
            return false;
        }
        let key = (slot, sig);
        let mut shard = self.shard_for(slot, sig).lock().expect("cache poisoned");
        if shard.entries.insert(key, Arc::new(entry)).is_none() {
            shard.order.push_back(key);
            if shard.order.len() > self.shard_capacity {
                if let Some(old) = shard.order.pop_front() {
                    shard.entries.remove(&old);
                }
            }
        }
        true
    }

    /// Total entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").entries.len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-model signature machinery: one plane set per eligible reuse
/// slot plus the shared cache. Built by
/// [`CompiledModel::new`](crate::CompiledModel::new) when the config
/// enables the cache on a feed-forward network.
#[derive(Debug)]
pub(crate) struct ModelSignatures {
    /// Indexed by slot position; `None` for slots that never participate
    /// (reuse-disabled layers, recurrent cells).
    planes: Vec<Option<RpqPlanes>>,
    cache: SignatureCache,
}

impl ModelSignatures {
    pub(crate) fn new(
        slots: &[CompiledSlot],
        input_volumes: &[usize],
        config: &ReuseConfig,
    ) -> Self {
        let planes = slots
            .iter()
            .map(|slot| {
                // Passthrough slots hold no baseline to share: no planes.
                if !slot.setting.enabled
                    || slot.kind == LayerKind::Recurrent
                    || slot.kind == LayerKind::Passthrough
                {
                    return None;
                }
                let dim = input_volumes[slot.layer_index];
                // Per-slot seed so layers with equal input volumes still
                // hash through distinct planes.
                let seed = 0x5157_5349_4743_4143 ^ (slot.layer_index as u64) << 32;
                Some(RpqPlanes::new(dim, config.signature_bits_config(), seed))
            })
            .collect();
        ModelSignatures {
            planes,
            cache: SignatureCache::new(config.signature_capacity()),
        }
    }

    pub(crate) fn planes(&self, slot_pos: usize) -> Option<&RpqPlanes> {
        self.planes.get(slot_pos).and_then(|p| p.as_ref())
    }

    pub(crate) fn cache(&self) -> &SignatureCache {
        &self.cache
    }

    /// Bytes held by the plane matrices (cache entries are dynamic).
    pub(crate) fn plane_bytes(&self) -> usize {
        self.planes
            .iter()
            .flatten()
            .map(RpqPlanes::storage_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: f32) -> CachedBaseline {
        CachedBaseline {
            input: vec![tag; 4],
            linear: vec![tag * 2.0; 2],
        }
    }

    #[test]
    fn get_returns_what_insert_published() {
        let cache = SignatureCache::new(64);
        assert!(cache.insert(3, 0xABCD, entry(1.5)));
        let hit = cache.get(3, 0xABCD).expect("hit");
        assert_eq!(hit.input, vec![1.5; 4]);
        assert_eq!(hit.linear, vec![3.0; 2]);
        assert!(cache.get(3, 0xABCE).is_none(), "different signature");
        assert!(cache.get(2, 0xABCD).is_none(), "different slot");
    }

    #[test]
    fn capacity_zero_drops_everything() {
        let cache = SignatureCache::new(0);
        assert!(!cache.insert(0, 1, entry(1.0)));
        assert!(cache.get(0, 1).is_none());
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_replaces_without_growing() {
        let cache = SignatureCache::new(64);
        cache.insert(0, 7, entry(1.0));
        cache.insert(0, 7, entry(2.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(0, 7).unwrap().input[0], 2.0);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        // Capacity 8 over 8 shards = 1 entry per shard: inserting two keys
        // that land in the same shard must evict the older one.
        let cache = SignatureCache::new(8);
        let mut sigs = Vec::new();
        for sig in 0..64u64 {
            cache.insert(0, sig, entry(sig as f32));
            sigs.push(sig);
        }
        assert!(cache.len() <= 8, "bounded: {} entries", cache.len());
        // The newest insert in any shard is always resident.
        assert!(cache.get(0, 63).is_some());
    }

    #[test]
    fn len_counts_across_shards() {
        let cache = SignatureCache::new(1024);
        for sig in 0..100u64 {
            cache.insert(1, sig, entry(0.0));
        }
        assert_eq!(cache.len(), 100);
    }
}

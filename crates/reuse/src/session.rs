//! The mutable, per-stream half of the reuse engine.
//!
//! A [`ReuseSession`] owns everything one input stream mutates — buffered
//! quantized indices and outputs, quantizer calibration, metrics,
//! telemetry rings, drift-watchdog counters and the recycling buffer pool —
//! while reading the immutable network, plan and packed weights from a
//! shared [`CompiledModel`]. Sessions are created, reset and dropped
//! independently: interleaving many sessions over one model is
//! bit-identical to running each stream alone.

use std::sync::Arc;

use reuse_nn::Layer;
use reuse_quant::{InputRange, LinearQuantizer, QuantCode, QuantError, RangeProfiler};
use reuse_tensor::{ParallelConfig, Tensor};

use crate::drift::max_abs_diff;
use crate::layer::{build_state, span_elapsed_ns, span_start, ExecStats, ReuseLayer, StepCtx};
use crate::metrics::{relative_difference, EngineMetrics, LayerMetrics};
use crate::model::CompiledModel;
use crate::policy::{AdaptiveController, LayerPolicyState};
use crate::signature::CachedBaseline;
use crate::telemetry::{
    EngineTelemetry, LayerTelemetrySnapshot, PoolStats, SignatureStats, TelemetrySnapshot,
    WatchdogStats,
};
use crate::trace::{ExecutionTrace, LayerTrace, TraceKind};
use crate::{ReuseError, SignatureInsertPolicy};

/// A recycling arena of `f32` buffers for a session's per-frame
/// intermediates.
///
/// Every buffer taken during a frame is given back before the frame ends, so
/// after the first reuse-phase execution the pool holds one buffer per
/// pipeline stage and steady-state frames allocate nothing. Once `steady` is
/// armed, a pool miss (which would allocate) trips a debug assertion — the
/// zero-allocation contract of [`ReuseSession::execute_into`].
#[derive(Debug)]
struct BufferPool {
    free: Vec<Vec<f32>>,
    steady: bool,
    max_free: usize,
    /// Hit/miss counters, exported through [`TelemetrySnapshot`].
    stats: PoolStats,
}

impl BufferPool {
    fn new(max_free: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            steady: false,
            max_free,
            stats: PoolStats::default(),
        }
    }

    /// Takes a cleared buffer with at least `cap` capacity (best fit), or
    /// allocates one on a miss. Only buffers with `capacity >= cap` are
    /// candidates — a smaller recycled buffer must never be handed out, or
    /// the caller's `extend_from_slice` would silently reallocate and defeat
    /// the zero-alloc invariant while the pool reported a hit.
    fn take(&mut self, cap: usize) -> Vec<f32> {
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.free.iter().enumerate() {
            let c = b.capacity();
            if c >= cap && best.is_none_or(|(_, bc)| c < bc) {
                best = Some((i, c));
            }
        }
        let buf = match best {
            Some((i, _)) => {
                self.stats.hits += 1;
                let mut b = self.free.swap_remove(i);
                b.clear();
                b
            }
            None => {
                self.stats.misses += 1;
                debug_assert!(
                    !self.steady,
                    "steady-state buffer-pool miss: a frame allocated (needed capacity {cap})"
                );
                Vec::with_capacity(cap)
            }
        };
        debug_assert!(
            buf.capacity() >= cap,
            "pool handed out an undersized buffer"
        );
        buf
    }

    /// Returns a buffer to the pool for reuse by later frames. Pipelines
    /// with full-precision fallback layers route buffers through the tensor
    /// API (losing them to the pool), so cap the free list to stop foreign
    /// replacement buffers from accumulating.
    fn give(&mut self, buf: Vec<f32>) {
        if self.free.len() < self.max_free {
            self.free.push(buf);
        }
    }
}

/// Per-stream runtime state for one reuse slot: calibration, quantizers,
/// drift counters and the layer's buffered state behind the
/// [`ReuseLayer`] trait.
#[derive(Debug)]
struct SlotRuntime {
    /// Set when the profiled range was degenerate (or drift escalated) and
    /// reuse was disabled for this stream.
    auto_disabled: bool,
    profiler_x: RangeProfiler,
    profiler_h: RangeProfiler,
    quantizer_x: Option<LinearQuantizer>,
    quantizer_h: Option<LinearQuantizer>,
    /// Calibrated (margin-padded) input range, kept only for adaptive
    /// layers so the controller can rebuild the quantizer at a new step.
    base_range_x: Option<InputRange>,
    /// Online policy controller — present only when the slot's resolved
    /// [`LayerPolicy`](crate::LayerPolicy) is adaptive.
    controller: Option<AdaptiveController>,
    /// Previous raw input (for the Fig. 4 relative-difference series).
    prev_raw_input: Option<Vec<f32>>,
    /// Times the drift watchdog re-baselined this layer's buffered outputs.
    rebaselines: u64,
    /// Re-baselines where this layer's own buffered outputs had drifted
    /// beyond the bound (feeds the auto-disable escalation).
    drift_strikes: u64,
    /// The layer's buffered reuse state, dispatched through the trait.
    state: Box<dyn ReuseLayer>,
}

/// One stream's mutable reuse state over a shared [`CompiledModel`].
///
/// Lifecycle (same as [`ReuseEngine`](crate::ReuseEngine), which is now a
/// facade over one session):
///
/// 1. The first `calibration_executions` executions (sequences, for
///    recurrent networks) run in full precision while input ranges are
///    profiled per layer — the paper's offline profiling pass.
/// 2. The next execution builds the linear quantizers and runs from scratch
///    on quantized inputs, initializing the buffered state (the paper's
///    "first execution", Fig. 7).
/// 3. Every further execution quantizes inputs, skips unchanged ones and
///    corrects the buffered outputs (Eq. 10).
///
/// Calibration and quantizers are per-session: each stream profiles its own
/// input ranges, so a session behaves bit-identically to a standalone
/// engine built from the same network and config.
#[derive(Debug)]
pub struct ReuseSession {
    model: Arc<CompiledModel>,
    /// Runtime per plan slot, ordered like `model.slots()`.
    runtimes: Vec<SlotRuntime>,
    metrics: EngineMetrics,
    traces: Vec<ExecutionTrace>,
    calibrated: bool,
    executions_seen: u64,
    calibration_units_seen: u64,
    /// Recycled per-frame intermediate buffers (zero-alloc steady state).
    pool: BufferPool,
    /// Per-layer ring-buffer counters, preallocated when enabled in config.
    telemetry: Option<EngineTelemetry>,
    /// Drift-watchdog counters (maintained even without telemetry).
    watchdog: WatchdogStats,
    /// Reuse-phase feed-forward frames seen (drives the watchdog cadence).
    reuse_frames: u64,
    /// Cross-stream signature-cache counters (maintained even without
    /// telemetry, like the watchdog's).
    signature: SignatureStats,
    /// Scratch code buffers for the signature false-positive pre-check
    /// (cold path, but reused so repeated cold starts don't churn).
    sig_scratch_cur: Vec<QuantCode>,
    sig_scratch_cached: Vec<QuantCode>,
}

impl ReuseSession {
    pub(crate) fn new(model: Arc<CompiledModel>) -> Self {
        let config = model.config();
        let mut metrics = EngineMetrics::default();
        let runtimes: Vec<SlotRuntime> = model
            .slots()
            .iter()
            .map(|slot| {
                metrics.layers.push(LayerMetrics::new(&slot.name));
                let (_, layer) = &model.network().layers()[slot.layer_index];
                let in_shape = &model.network().layer_input_shapes()[slot.layer_index];
                SlotRuntime {
                    auto_disabled: false,
                    profiler_x: RangeProfiler::new(),
                    profiler_h: RangeProfiler::new(),
                    quantizer_x: None,
                    quantizer_h: None,
                    base_range_x: None,
                    controller: slot
                        .policy
                        .adaptive
                        .then(|| AdaptiveController::new(&slot.policy)),
                    prev_raw_input: None,
                    rebaselines: 0,
                    drift_strikes: 0,
                    state: build_state(layer, in_shape).expect("slot layers have reuse states"),
                }
            })
            .collect();
        let telemetry = config.records_telemetry().then(|| {
            EngineTelemetry::new(
                model.slots().iter().map(|s| s.name.as_str()),
                config.window(),
            )
        });
        let pool = BufferPool::new(model.layer_out_volumes().len() + 2);
        ReuseSession {
            model,
            runtimes,
            metrics,
            traces: Vec::new(),
            calibrated: false,
            executions_seen: 0,
            calibration_units_seen: 0,
            pool,
            telemetry,
            watchdog: WatchdogStats::default(),
            reuse_frames: 0,
            signature: SignatureStats::default(),
            sig_scratch_cur: Vec::new(),
            sig_scratch_cached: Vec::new(),
        }
    }

    /// The shared compiled model this session runs against.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// The wrapped network.
    pub fn network(&self) -> &reuse_nn::Network {
        self.model.network()
    }

    /// Accumulated reuse metrics for this stream.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Total executions so far (calibration included; timesteps for
    /// recurrent networks).
    pub fn executions(&self) -> u64 {
        self.executions_seen
    }

    /// Whether quantizers have been built (calibration finished).
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Layers whose profiled range was degenerate (or whose drift
    /// escalated), forcing full-precision execution for this stream.
    /// Borrowed names — no allocation, safe to call per frame.
    pub fn auto_disabled_layers(&self) -> impl Iterator<Item = &str> + '_ {
        self.model
            .slots()
            .iter()
            .zip(self.runtimes.iter())
            .filter(|(_, rt)| rt.auto_disabled)
            .map(|(s, _)| s.name.as_str())
    }

    /// Takes the recorded execution traces (empties the internal buffer).
    pub fn take_traces(&mut self) -> Vec<ExecutionTrace> {
        std::mem::take(&mut self.traces)
    }

    /// Drift-watchdog counters (zeroed when the watchdog is not armed).
    /// Returned by value — `WatchdogStats` is `Copy`, no allocation.
    pub fn watchdog_stats(&self) -> WatchdogStats {
        self.watchdog
    }

    /// Buffer-pool hit/miss counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats
    }

    /// Cross-stream signature-cache counters for this session (all zero
    /// when the model carries no cache). Returned by value —
    /// `SignatureStats` is `Copy`, no allocation.
    pub fn signature_stats(&self) -> SignatureStats {
        self.signature
    }

    /// Live per-layer telemetry, when enabled via
    /// [`crate::ReuseConfig::telemetry`].
    pub fn telemetry(&self) -> Option<&EngineTelemetry> {
        self.telemetry.as_ref()
    }

    /// Builds an owned, serializable snapshot of the current telemetry.
    /// Returns `None` unless telemetry was enabled in the config. This
    /// allocates — call it from reporting paths, not per frame.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        let tel = self.telemetry.as_ref()?;
        let layers = self
            .model
            .slots()
            .iter()
            .zip(self.runtimes.iter())
            .map(|(slot, rt)| {
                let lt = &tel.layers[slot.metrics_index];
                LayerTelemetrySnapshot {
                    name: slot.name.clone(),
                    reuse_executions: lt.reuse_executions,
                    hit_rate: lt.lifetime_hit_rate(),
                    hit_rate_window: lt.hit_rate.mean(),
                    corrections_total: lt.corrections_total,
                    macs_skipped_total: lt.macs_skipped_total,
                    span_ns_window: lt.span_ns.mean(),
                    rebaselines: rt.rebaselines,
                    auto_disabled: rt.auto_disabled,
                    signature_lookups: lt.signature_lookups,
                    signature_hits: lt.signature_hits,
                    signature_bailouts: lt.signature_bailouts,
                }
            })
            .collect();
        Some(TelemetrySnapshot {
            network: self.model.network().name().to_string(),
            frames: tel.frames,
            window: tel.window(),
            pool: self.pool.stats,
            watchdog: self.watchdog,
            drift_check_every: self.model.config().drift_check_every(),
            drift_bound: self.model.config().drift_bound(),
            signature: self.signature,
            policy: self.model.policy_name().to_string(),
            policy_layers: self.policy_states(),
            layers,
        })
    }

    /// Point-in-time per-layer policy state: the configured grid plus
    /// whatever operating point the adaptive controllers have moved to
    /// (static layers report their fixed resolution with zeroed counters).
    /// Allocates — a reporting path, mirrored into [`TelemetrySnapshot`]
    /// and the serving tier's snapshot.
    pub fn policy_states(&self) -> Vec<LayerPolicyState> {
        self.model
            .slots()
            .iter()
            .zip(self.runtimes.iter())
            .map(|(slot, rt)| {
                let (step_scale, reuse_threshold) = rt
                    .controller
                    .as_ref()
                    .map_or((slot.policy.step_scale, slot.policy.reuse_threshold), |c| {
                        (c.step_scale(), c.reuse_threshold())
                    });
                let ctrl = rt.controller.as_ref();
                LayerPolicyState {
                    name: slot.name.clone(),
                    adaptive: slot.policy.adaptive,
                    clusters: slot.policy.clusters,
                    step: rt.quantizer_x.map_or(0.0, |q| q.step()),
                    step_scale,
                    reuse_threshold,
                    observations: ctrl.map_or(0, |c| c.observations()),
                    grows: ctrl.map_or(0, |c| c.grows()),
                    shrinks: ctrl.map_or(0, |c| c.shrinks()),
                    refreshes: ctrl.map_or(0, |c| c.refreshes()),
                }
            })
            .collect()
    }

    /// The quantizer used for a layer's (feed-forward) inputs, if built.
    pub fn quantizer_for(&self, name: &str) -> Option<&LinearQuantizer> {
        let pos = self.model.slots().iter().position(|s| s.name == name)?;
        self.runtimes[pos].quantizer_x.as_ref()
    }

    /// The Fig. 4 relative-difference series recorded for a layer (requires
    /// [`crate::ReuseConfig::record_relative_difference`]).
    pub fn layer_relative_differences(&self, name: &str) -> Option<&[f32]> {
        let slot = self.model.slots().iter().find(|s| s.name == name)?;
        Some(&self.metrics.layers[slot.metrics_index].relative_differences)
    }

    /// Extra I/O-buffer/main-memory bytes this stream's reuse state needs:
    /// indices plus buffered outputs for every enabled layer (Table III
    /// accounting). Per session — the packed weights shared across sessions
    /// are accounted by [`CompiledModel::packed_weight_bytes`].
    pub fn reuse_storage_bytes(&self) -> u64 {
        self.model
            .slots()
            .iter()
            .zip(self.runtimes.iter())
            .filter(|(slot, rt)| slot.setting.enabled && !rt.auto_disabled)
            .map(|(slot, rt)| {
                let (_, layer) = &self.model.network().layers()[slot.layer_index];
                rt.state.storage_bytes(layer)
            })
            .sum()
    }

    /// Bytes of centroid tables stored in the control unit (paper reports
    /// 1.25 KB for its configuration).
    pub fn centroid_table_bytes(&self) -> u64 {
        self.model
            .slots()
            .iter()
            .zip(self.runtimes.iter())
            .filter(|(slot, rt)| slot.setting.enabled && !rt.auto_disabled)
            .map(|(_, rt)| {
                rt.quantizer_x
                    .map_or(0, |q| q.centroid_table_bytes() as u64)
                    + rt.quantizer_h
                        .map_or(0, |q| q.centroid_table_bytes() as u64)
            })
            .sum()
    }

    /// Drops buffered layer state only — metrics, telemetry and calibration
    /// are untouched. This is the between-sequence power-gate reset
    /// (statistics keep accumulating across a recurrent workload's
    /// sequences, paper Fig. 5).
    fn reset_buffers(&mut self) {
        let model = Arc::clone(&self.model);
        for (slot, rt) in model.slots().iter().zip(self.runtimes.iter_mut()) {
            let (_, layer) = &model.network().layers()[slot.layer_index];
            rt.state.reset(layer);
            rt.prev_raw_input = None;
        }
    }

    /// Drops all buffered layer state; the next execution recomputes from
    /// scratch. Models the accelerator being power-gated between sequences.
    ///
    /// Accumulated statistics are cleared along with the buffers:
    /// [`EngineMetrics`], the per-layer relative-difference series, pending
    /// traces, telemetry rings and watchdog counters all restart from zero —
    /// a reset session must not report the previous sequence's numbers. If
    /// calibration had not finished, it is re-armed from the beginning
    /// (profiled ranges are discarded). Built quantizers and auto-disable
    /// decisions are kept.
    pub fn reset_state(&mut self) {
        self.reset_buffers();
        self.metrics.reset();
        self.traces.clear();
        if let Some(tel) = self.telemetry.as_mut() {
            tel.reset();
        }
        self.watchdog = WatchdogStats::default();
        self.reuse_frames = 0;
        self.signature = SignatureStats::default();
        let model = Arc::clone(&self.model);
        for (slot, rt) in model.slots().iter().zip(self.runtimes.iter_mut()) {
            rt.rebaselines = 0;
            rt.drift_strikes = 0;
            if let Some(ctrl) = rt.controller.as_mut() {
                // The controller restarts at its initial operating point,
                // and the grid must follow — a kept scaled quantizer would
                // disagree with the reset controller.
                *ctrl = AdaptiveController::new(&slot.policy);
                if !rt.auto_disabled {
                    if let Some(range) = rt.base_range_x {
                        if let Ok(q) = Self::quantizer_at_scale(
                            range,
                            slot.policy.clusters,
                            slot.policy.step_scale.max(1.0),
                        ) {
                            rt.quantizer_x = Some(q);
                        }
                    }
                }
            }
        }
        if !self.calibrated {
            // A partial calibration must not mix pre- and post-reset frames:
            // discard the profiled ranges and start over.
            self.calibration_units_seen = 0;
            for rt in &mut self.runtimes {
                rt.profiler_x = RangeProfiler::new();
                rt.profiler_h = RangeProfiler::new();
            }
        }
    }

    /// Full-precision from-scratch output for the same frame — the accuracy
    /// oracle used by the workloads' accuracy proxy.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn reference_forward(&self, frame: &[f32]) -> Result<Tensor, ReuseError> {
        Ok(self.model.network().forward_flat(frame)?)
    }

    fn slot_enabled(&self, slot_pos: usize) -> bool {
        self.model.slots()[slot_pos].setting.enabled && !self.runtimes[slot_pos].auto_disabled
    }

    /// Executes the network on one frame (feed-forward networks only).
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::WrongApi`] for recurrent networks; otherwise
    /// propagates shape/quantizer errors.
    pub fn execute(&mut self, frame: &[f32]) -> Result<Tensor, ReuseError> {
        if self.model.network().is_recurrent() {
            return Err(ReuseError::WrongApi {
                context: "recurrent network: use execute_sequence".into(),
            });
        }
        if !self.calibrated
            && self.calibration_units_seen < self.model.config().calibration() as u64
        {
            let out = self.calibration_execute(frame)?;
            self.calibration_units_seen += 1;
            return Ok(out);
        }
        if !self.calibrated {
            self.build_quantizers();
        }
        let mut out = Vec::new();
        self.reuse_execute_into(frame, &mut out)?;
        Ok(Tensor::from_vec(
            self.model.network().output_shape().clone(),
            out,
        )?)
    }

    /// Allocation-free variant of [`Self::execute`]: clears `out` and writes
    /// the flat network output into it, reusing its capacity across calls.
    ///
    /// Once the buffered state is initialized (second reuse-phase frame
    /// onward) and with the default serial
    /// [`ParallelConfig`](crate::ParallelConfig), a call performs **zero
    /// heap allocations**: per-frame intermediates come from the session's
    /// recycling pool and the per-layer scratch (changed lists, quantized
    /// codes, buffered outputs) is reused in place. Calibration frames, the
    /// state-initializing first execution, tracing and the
    /// relative-difference recorder still allocate.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::WrongApi`] for recurrent networks; otherwise
    /// propagates shape/quantizer errors.
    pub fn execute_into(&mut self, frame: &[f32], out: &mut Vec<f32>) -> Result<(), ReuseError> {
        if self.model.network().is_recurrent() {
            return Err(ReuseError::WrongApi {
                context: "recurrent network: use execute_sequence".into(),
            });
        }
        if !self.calibrated
            && self.calibration_units_seen < self.model.config().calibration() as u64
        {
            let t = self.calibration_execute(frame)?;
            self.calibration_units_seen += 1;
            out.clear();
            out.extend_from_slice(t.as_slice());
            return Ok(());
        }
        if !self.calibrated {
            self.build_quantizers();
        }
        self.reuse_execute_into(frame, out)
    }

    /// Executes a whole temporal sequence. For feed-forward networks the
    /// frames are executed back-to-back (state carries across frames). For
    /// recurrent networks the sequence is the paper's execution unit: each
    /// layer runs over all timesteps before the next layer, with reuse
    /// between consecutive timesteps, and all state resets at the start.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::Nn`] on shape mismatches or an empty sequence.
    pub fn execute_sequence(&mut self, frames: &[Vec<f32>]) -> Result<Vec<Tensor>, ReuseError> {
        if frames.is_empty() {
            return Err(ReuseError::Nn(reuse_nn::NnError::EmptySequence));
        }
        if !self.model.network().is_recurrent() {
            return frames.iter().map(|f| self.execute(f)).collect();
        }
        if !self.calibrated
            && self.calibration_units_seen < self.model.config().calibration() as u64
        {
            let out = self.calibration_sequence(frames)?;
            self.calibration_units_seen += 1;
            return Ok(out);
        }
        if !self.calibrated {
            self.build_quantizers();
        }
        self.reuse_sequence(frames)
    }

    /// Allocation-conscious sequence runner for feed-forward networks:
    /// executes the frames back-to-back through [`Self::execute_into`],
    /// reusing the inner `Vec`s of `outs` across calls instead of
    /// allocating a fresh `Tensor` per frame. `outs` is resized to
    /// `frames.len()`; extra entries are dropped, missing entries appended.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::WrongApi`] for recurrent networks and
    /// [`ReuseError::Nn`] on an empty sequence; otherwise propagates
    /// shape/quantizer errors.
    pub fn execute_sequence_into(
        &mut self,
        frames: &[Vec<f32>],
        outs: &mut Vec<Vec<f32>>,
    ) -> Result<(), ReuseError> {
        if frames.is_empty() {
            return Err(ReuseError::Nn(reuse_nn::NnError::EmptySequence));
        }
        if self.model.network().is_recurrent() {
            return Err(ReuseError::WrongApi {
                context: "recurrent network: use execute_sequence".into(),
            });
        }
        outs.truncate(frames.len());
        while outs.len() < frames.len() {
            outs.push(Vec::new());
        }
        for (frame, out) in frames.iter().zip(outs.iter_mut()) {
            self.execute_into(frame, out)?;
        }
        Ok(())
    }

    // ---------------------------------------------------------------------
    // Calibration phase
    // ---------------------------------------------------------------------

    fn calibration_execute(&mut self, frame: &[f32]) -> Result<Tensor, ReuseError> {
        let model = Arc::clone(&self.model);
        let input_shape = model.network().input_shape().clone();
        if frame.len() != input_shape.volume() {
            return Err(ReuseError::Nn(reuse_nn::NnError::InputShape {
                expected: input_shape.volume(),
                actual: frame.len(),
            }));
        }
        let mut cur = Tensor::from_vec(input_shape, frame.to_vec())?;
        let mut trace = ExecutionTrace::default();
        for i in 0..model.network().layers().len() {
            cur = self.reshape_to_layer(cur, i)?;
            let slot_pos = model.slot_of_layer()[i];
            if slot_pos != usize::MAX {
                // Passthrough slots recompute unquantized: no profiling.
                if self.slot_enabled(slot_pos)
                    && model.slots()[slot_pos].kind != reuse_nn::LayerKind::Passthrough
                {
                    self.runtimes[slot_pos]
                        .profiler_x
                        .observe_slice(cur.as_slice());
                }
                if model.config().records_trace() {
                    trace
                        .layers
                        .push(self.scratch_trace_entry(i, cur.len() as u64));
                }
            }
            cur = model.network().apply_layer(i, cur)?;
        }
        if model.config().records_trace() {
            self.traces.push(trace);
        }
        self.executions_seen += 1;
        self.metrics.executions += 1;
        Ok(cur)
    }

    fn calibration_sequence(&mut self, frames: &[Vec<f32>]) -> Result<Vec<Tensor>, ReuseError> {
        let model = Arc::clone(&self.model);
        let input_shape = model.network().input_shape().clone();
        let mut seq: Vec<Tensor> = frames
            .iter()
            .map(|f| Tensor::from_vec(input_shape.clone(), f.clone()).map_err(ReuseError::from))
            .collect::<Result<_, _>>()?;
        let n_layers = model.network().layers().len();
        let mut traces: Vec<ExecutionTrace> = vec![ExecutionTrace::default(); frames.len()];
        for i in 0..n_layers {
            let slot_pos = model.slot_of_layer()[i];
            let layer = &model.network().layers()[i].1;
            if slot_pos != usize::MAX {
                if self.slot_enabled(slot_pos)
                    && model.slots()[slot_pos].kind != reuse_nn::LayerKind::Passthrough
                {
                    for t in &seq {
                        self.runtimes[slot_pos]
                            .profiler_x
                            .observe_slice(t.as_slice());
                    }
                }
                if model.config().records_trace() {
                    for (t, frame) in seq.iter().enumerate() {
                        traces[t]
                            .layers
                            .push(self.scratch_trace_entry(i, frame.len() as u64));
                    }
                }
            }
            // Calibration is a cold path, so stepping the recurrent cells
            // manually (to profile the hidden-state inputs too) may match on
            // the concrete layer kinds — the no-kind-match contract covers
            // the reuse execute path, which dispatches through `ReuseLayer`.
            if let Layer::Lstm(cell) = layer {
                let xs: Vec<Vec<f32>> = seq.iter().map(|t| t.as_slice().to_vec()).collect();
                let mut h_values: Vec<f32> = Vec::new();
                let mut state = reuse_nn::LstmState::zeros(cell.cell_dim());
                let mut out = Vec::with_capacity(xs.len());
                for x in &xs {
                    h_values.extend_from_slice(&state.h);
                    state = cell.step(x, &state)?;
                    out.push(state.h.clone());
                }
                if slot_pos != usize::MAX && self.slot_enabled(slot_pos) {
                    self.runtimes[slot_pos].profiler_h.observe_slice(&h_values);
                }
                seq = out
                    .into_iter()
                    .map(|o| Tensor::from_slice_1d(&o).map_err(ReuseError::from))
                    .collect::<Result<_, _>>()?;
            } else if let Layer::BiLstm(layer) = layer {
                let d = layer.cell_dim();
                let xs: Vec<Vec<f32>> = seq.iter().map(|t| t.as_slice().to_vec()).collect();
                let mut out = vec![vec![0.0f32; 2 * d]; xs.len()];
                let mut h_values: Vec<f32> = Vec::new();
                let mut state = reuse_nn::LstmState::zeros(d);
                for (t, x) in xs.iter().enumerate() {
                    h_values.extend_from_slice(&state.h);
                    state = layer.forward_cell().step(x, &state)?;
                    out[t][..d].copy_from_slice(&state.h);
                }
                let mut state = reuse_nn::LstmState::zeros(d);
                for (t, x) in xs.iter().enumerate().rev() {
                    h_values.extend_from_slice(&state.h);
                    state = layer.backward_cell().step(x, &state)?;
                    out[t][d..].copy_from_slice(&state.h);
                }
                if slot_pos != usize::MAX && self.slot_enabled(slot_pos) {
                    self.runtimes[slot_pos].profiler_h.observe_slice(&h_values);
                }
                seq = out
                    .into_iter()
                    .map(|o| Tensor::from_slice_1d(&o).map_err(ReuseError::from))
                    .collect::<Result<_, _>>()?;
            } else {
                seq = seq
                    .into_iter()
                    .map(|t| -> Result<Tensor, ReuseError> {
                        let t = self.reshape_to_layer(t, i)?;
                        Ok(model.network().apply_layer(i, t)?)
                    })
                    .collect::<Result<_, _>>()?;
            }
        }
        if model.config().records_trace() {
            self.traces.extend(traces);
        }
        self.executions_seen += frames.len() as u64;
        self.metrics.executions += frames.len() as u64;
        Ok(seq)
    }

    fn scratch_trace_entry(&self, layer_index: usize, input_len: u64) -> LayerTrace {
        let (name, layer) = &self.model.network().layers()[layer_index];
        let in_shape = &self.model.network().layer_input_shapes()[layer_index];
        let macs = layer.flops(in_shape) / 2;
        LayerTrace {
            name: name.clone(),
            kind: layer.kind(),
            mode: TraceKind::ScratchFp32,
            n_inputs: input_len,
            n_changed: input_len,
            n_outputs: self.model.layer_out_volumes()[layer_index] as u64,
            n_params: layer.param_count(),
            macs_total: macs,
            macs_performed: macs,
        }
    }

    /// Builds a layer quantizer at `scale` times the calibrated base step
    /// (`range / clusters`). Scale 1.0 goes through [`LinearQuantizer::new`]
    /// — the exact constructor the pre-policy engine used — so static
    /// policies stay bit-identical; other scales derive the step explicitly.
    fn quantizer_at_scale(
        range: InputRange,
        clusters: usize,
        scale: f32,
    ) -> Result<LinearQuantizer, QuantError> {
        if scale == 1.0 {
            LinearQuantizer::new(range, clusters)
        } else {
            LinearQuantizer::with_step(range, range.width() / clusters as f32 * scale)
        }
    }

    fn build_quantizers(&mut self) {
        let model = Arc::clone(&self.model);
        let margin = model.config().margin();
        for (slot, rt) in model.slots().iter().zip(self.runtimes.iter_mut()) {
            if !slot.setting.enabled {
                continue;
            }
            // Passthrough slots recompute at full precision: no quantizer,
            // and nothing that could auto-disable them.
            if slot.kind == reuse_nn::LayerKind::Passthrough {
                continue;
            }
            let scale = rt
                .controller
                .as_ref()
                .map_or(slot.policy.step_scale, AdaptiveController::step_scale);
            match rt.profiler_x.range(margin) {
                Ok(range) => match Self::quantizer_at_scale(range, slot.policy.clusters, scale) {
                    Ok(q) => {
                        rt.quantizer_x = Some(q);
                        if slot.policy.adaptive {
                            rt.base_range_x = Some(range);
                        }
                    }
                    Err(_) => rt.auto_disabled = true,
                },
                Err(_) => rt.auto_disabled = true,
            }
            if slot.kind == reuse_nn::LayerKind::Recurrent && !rt.auto_disabled {
                match rt.profiler_h.range(margin) {
                    Ok(range) => match LinearQuantizer::new(range, slot.policy.clusters) {
                        Ok(q) => rt.quantizer_h = Some(q),
                        Err(_) => rt.auto_disabled = true,
                    },
                    Err(_) => rt.auto_disabled = true,
                }
            }
        }
        self.calibrated = true;
    }

    // ---------------------------------------------------------------------
    // Reuse phase
    // ---------------------------------------------------------------------

    fn reshape_to_layer(&self, cur: Tensor, layer_index: usize) -> Result<Tensor, ReuseError> {
        let expected = &self.model.network().layer_input_shapes()[layer_index];
        if cur.shape() == expected {
            Ok(cur)
        } else {
            Ok(cur.reshape(expected.clone())?)
        }
    }

    fn record_layer_execution(
        &mut self,
        slot_pos: usize,
        raw_input: Option<&[f32]>,
        stats: ExecStats,
        n_outputs: u64,
        span_ns: u64,
        trace: Option<&mut ExecutionTrace>,
    ) {
        let model = Arc::clone(&self.model);
        let record_rd = model.config().records_relative_difference();
        let slot = &model.slots()[slot_pos];
        let rt = &mut self.runtimes[slot_pos];
        let m = &mut self.metrics.layers[slot.metrics_index];
        if !stats.from_scratch {
            m.record(
                stats.n_inputs,
                stats.n_inputs - stats.n_changed,
                stats.macs_total,
                stats.macs_performed,
            );
            // Same indexing and same inputs as the metrics record above, so
            // a telemetry snapshot's lifetime hit rate equals the metric's
            // input similarity exactly. Ring pushes never allocate.
            if let Some(tel) = self.telemetry.as_mut() {
                tel.layers[slot.metrics_index].record(
                    stats.n_inputs,
                    stats.n_changed,
                    stats.macs_total,
                    stats.macs_performed,
                    span_ns,
                );
            }
        }
        if record_rd {
            if let Some(raw) = raw_input {
                if let Some(prev) = &rt.prev_raw_input {
                    if prev.len() == raw.len() {
                        m.relative_differences.push(relative_difference(prev, raw));
                    }
                }
                rt.prev_raw_input = Some(raw.to_vec());
            }
        }
        if let Some(trace) = trace {
            let n_params = model.network().layers()[slot.layer_index].1.param_count();
            trace.layers.push(LayerTrace {
                name: slot.name.clone(),
                kind: slot.kind,
                mode: stats.mode(true),
                n_inputs: stats.n_inputs,
                n_changed: stats.n_changed,
                n_outputs,
                n_params,
                macs_total: stats.macs_total,
                macs_performed: stats.macs_performed,
            });
        }
    }

    /// The reuse-phase hot path. Layer intermediates live in flat pooled
    /// `Vec<f32>` buffers (the network's layers all consume row-major data,
    /// so "reshapes" between layers are no-ops on the flat representation);
    /// every buffer taken from the pool is returned before the frame ends.
    /// Dispatch is uniform: every enabled slot steps through its
    /// [`ReuseLayer`] trait object — no per-kind `match`.
    fn reuse_execute_into(&mut self, frame: &[f32], out: &mut Vec<f32>) -> Result<(), ReuseError> {
        let model = Arc::clone(&self.model);
        let expected_len = model.network().input_shape().volume();
        if frame.len() != expected_len {
            return Err(ReuseError::Nn(reuse_nn::NnError::InputShape {
                expected: expected_len,
                actual: frame.len(),
            }));
        }
        let parallel = *model.config().parallel_config();
        let mut pool_intact = true;
        let mut cur = self.pool.take(frame.len());
        cur.extend_from_slice(frame);
        let mut trace = if model.config().records_trace() {
            Some(ExecutionTrace::default())
        } else {
            None
        };
        let timed = self.telemetry.is_some();
        let n_layers = model.network().layers().len();
        for i in 0..n_layers {
            let slot_pos = model.slot_of_layer()[i];
            let run_reuse = slot_pos != usize::MAX && self.slot_enabled(slot_pos);
            if run_reuse {
                let mut next = self.pool.take(model.layer_out_volumes()[i]);
                // Cross-stream adoption runs only when this stream has no
                // baseline yet (cold start), so steady-state frames pay a
                // single branch here and never touch the shared cache.
                let pending_sig = if model.signatures().is_some()
                    && !self.runtimes[slot_pos].state.is_initialized()
                {
                    self.signature_lookup(slot_pos, i, &cur, &parallel)
                } else {
                    None
                };
                let span = span_start(timed);
                let stats = {
                    let slot = &model.slots()[slot_pos];
                    let rt = &mut self.runtimes[slot_pos];
                    // `None` only for passthrough slots, which recompute
                    // without quantizing.
                    let qx = rt.quantizer_x;
                    let qh = rt.quantizer_h;
                    let ctx = StepCtx {
                        parallel: &parallel,
                        layer: &model.network().layers()[i].1,
                        weights: &slot.weights,
                        quantizer_x: qx.as_ref(),
                        quantizer_h: qh.as_ref(),
                    };
                    let mut stats = rt.state.step(&ctx, &cur, &mut next)?;
                    // Adaptive layers only: when the changed-code fraction
                    // exceeds the controller's refresh threshold, correcting
                    // costs more than recomputing — replace the incremental
                    // result with an exact forward and re-adopt a
                    // full-precision baseline. Static policies never take
                    // this branch (no controller), keeping the legacy path
                    // bit-identical. Refresh frames allocate; like watchdog
                    // frames they sit outside the zero-alloc contract.
                    if let Some(ctrl) = rt
                        .controller
                        .as_mut()
                        .filter(|_| !stats.from_scratch && stats.n_inputs > 0)
                    {
                        let changed_frac = stats.n_changed as f32 / stats.n_inputs as f32;
                        ctrl.observe_execution(1.0 - changed_frac);
                        if changed_frac > ctrl.reuse_threshold() {
                            let raw = Tensor::from_vec(
                                model.network().layer_input_shapes()[i].clone(),
                                cur.clone(),
                            )?;
                            let linear = ctx.layer.forward_linear(&raw)?;
                            let activation = ctx
                                .layer
                                .activation()
                                .expect("adaptive policies run on feed-forward networks");
                            rt.state.adopt_baseline(&ctx, &cur, linear.as_slice());
                            let act = activation.apply(&linear);
                            next.clear();
                            next.extend_from_slice(act.as_slice());
                            ctrl.note_refresh();
                            // Honest accounting: similarity stays what was
                            // observed, but the frame paid full cost.
                            stats.macs_performed = stats.macs_total;
                        }
                    }
                    stats
                };
                let span_ns = span_elapsed_ns(span);
                if let Some(sig) = pending_sig {
                    if stats.from_scratch {
                        // The lookup missed (or bailed) and the slot just
                        // initialized from scratch: publish the fresh
                        // baseline for other streams under the signature
                        // computed from the same input.
                        self.signature_insert(slot_pos, sig, &cur);
                    }
                }
                // `cur` (this layer's raw input) is still alive here, so the
                // relative-difference recorder reads it without the per-layer
                // copy the old path made unconditionally.
                let n_outputs = next.len() as u64;
                self.record_layer_execution(
                    slot_pos,
                    Some(&cur),
                    stats,
                    n_outputs,
                    span_ns,
                    trace.as_mut(),
                );
                self.pool.give(std::mem::replace(&mut cur, next));
            } else {
                // Full-precision fallback (no-weight or disabled layers):
                // route through the tensor API; allocation here is outside
                // the reuse steady-state contract.
                if let Some(trace) = trace.as_mut() {
                    if slot_pos != usize::MAX {
                        trace
                            .layers
                            .push(self.scratch_trace_entry(i, cur.len() as u64));
                    }
                }
                let in_shape = model.network().layer_input_shapes()[i].clone();
                let t = Tensor::from_vec(in_shape, std::mem::take(&mut cur))?;
                cur = model.network().apply_layer(i, t)?.into_vec();
                pool_intact = false;
            }
        }
        if let Some(trace) = trace {
            self.traces.push(trace);
        }
        self.executions_seen += 1;
        self.metrics.executions += 1;
        if let Some(tel) = self.telemetry.as_mut() {
            tel.frames += 1;
        }
        out.clear();
        out.extend_from_slice(&cur);
        self.pool.give(cur);
        // From here on every pool take must hit a recycled buffer; a miss
        // would mean a steady-state frame allocated. Pipelines with
        // full-precision fallback stages lose buffers to the tensor API, so
        // the contract (and its assertion) only covers all-reuse pipelines.
        if pool_intact {
            self.pool.steady = true;
        }
        self.reuse_frames += 1;
        let every = model.config().drift_check_every();
        if every > 0 && self.reuse_frames.is_multiple_of(every) {
            // Watchdog frames allocate (reference forward + re-baseline are
            // cold paths by design); they are outside the zero-alloc
            // contract, which covers the frames between checks.
            self.watchdog_check(frame, out)?;
        }
        Ok(())
    }

    /// Attempts cross-stream baseline adoption for an uninitialized slot.
    ///
    /// Hashes the raw layer input with the model's RPQ planes and consults
    /// the shared cache. On a hit that survives the false-positive guard,
    /// the cached baseline is adopted — codes become *this* session's
    /// quantization of the cached raw input, buffered outputs become the
    /// cached linear values — and the regular step that follows corrects
    /// the few differing codes through the ordinary `z' = z + (c'-c)·w`
    /// pass. Returns the signature when no adoption happened (miss or
    /// bailout) so the caller can publish the from-scratch baseline under
    /// it, and `None` after a successful adoption (the cache already
    /// covers this signature).
    fn signature_lookup(
        &mut self,
        slot_pos: usize,
        layer_index: usize,
        input: &[f32],
        parallel: &ParallelConfig,
    ) -> Option<u64> {
        let model = Arc::clone(&self.model);
        let sigs = model.signatures()?;
        let planes = sigs.planes(slot_pos)?;
        let sig = planes.signature(input);
        self.signature.lookups += 1;
        let metrics_index = model.slots()[slot_pos].metrics_index;
        let Some(entry) = sigs.cache().get(slot_pos as u32, sig) else {
            if let Some(tel) = self.telemetry.as_mut() {
                tel.layers[metrics_index].record_signature(false, false);
            }
            return Some(sig);
        };
        self.signature.hits += 1;
        // False-positive guard: quantize both the live and the cached
        // input under this session's grid and count disagreeing codes. A
        // hash collision between genuinely different inputs shows up as a
        // large changed fraction, where adopting would cost more in
        // corrections (and accuracy) than running from scratch.
        let qx = self.runtimes[slot_pos]
            .quantizer_x
            .expect("enabled slot has quantizer");
        let bail = entry.input.len() != input.len() || {
            qx.quantize_slice_into(input, &mut self.sig_scratch_cur);
            qx.quantize_slice_into(&entry.input, &mut self.sig_scratch_cached);
            let changed = self
                .sig_scratch_cur
                .iter()
                .zip(self.sig_scratch_cached.iter())
                .filter(|(a, b)| a != b)
                .count();
            changed as f32 > model.slots()[slot_pos].policy.signature_bailout * input.len() as f32
        };
        if let Some(tel) = self.telemetry.as_mut() {
            tel.layers[metrics_index].record_signature(true, bail);
        }
        if bail {
            self.signature.bailouts += 1;
            return Some(sig);
        }
        let qh = self.runtimes[slot_pos].quantizer_h;
        let ctx = StepCtx {
            parallel,
            layer: &model.network().layers()[layer_index].1,
            weights: &model.slots()[slot_pos].weights,
            quantizer_x: Some(&qx),
            quantizer_h: qh.as_ref(),
        };
        self.runtimes[slot_pos]
            .state
            .adopt_baseline(&ctx, &entry.input, &entry.linear);
        self.signature.adoptions += 1;
        None
    }

    /// Publishes a slot's freshly initialized baseline — the raw input it
    /// just ran from scratch on plus the buffered linear outputs — into
    /// the shared cache under `sig`.
    fn signature_insert(&mut self, slot_pos: usize, sig: u64, input: &[f32]) {
        let model = Arc::clone(&self.model);
        let Some(sigs) = model.signatures() else {
            return;
        };
        let linear = self.runtimes[slot_pos].state.buffered_linear();
        if linear.is_empty() {
            return;
        }
        let entry = CachedBaseline {
            input: input.to_vec(),
            linear: linear.to_vec(),
        };
        if sigs.cache().insert(slot_pos as u32, sig, entry) {
            self.signature.inserts += 1;
        }
    }

    /// One drift-watchdog check: compares this frame's incremental output
    /// against the full-precision reference and re-baselines every reuse
    /// layer when the deviation exceeds the configured bound. `out` is
    /// replaced with the exact reference output after a re-baseline.
    fn watchdog_check(&mut self, frame: &[f32], out: &mut Vec<f32>) -> Result<(), ReuseError> {
        let reference = self.reference_forward(frame)?;
        let drift = max_abs_diff(out, reference.as_slice());
        self.watchdog.checks += 1;
        self.watchdog.last_drift = drift;
        self.watchdog.max_drift = self.watchdog.max_drift.max(drift);
        let bound = self.model.config().drift_bound();
        let violated = drift > bound;
        // Adaptive controllers consume the same observation as their
        // accuracy proxy: each proposes a step scale, the quantizer is
        // rebuilt at it, and the scale commits only on success — the
        // controller never disagrees with the grid actually in use.
        let rescaled = self.apply_policy_feedback(drift, bound);
        if violated || rescaled {
            // A rescale re-baselines too: buffered codes quantized under
            // the old grid are meaningless under the new one.
            self.rebaseline_frame(frame, out)?;
        }
        if violated {
            self.watchdog.rebaselines += 1;
        }
        Ok(())
    }

    /// Feeds one watchdog observation to every adaptive controller and
    /// rebuilds the quantizers of those that moved. Returns whether any
    /// layer's grid changed (forcing a re-baseline). A no-op — and the
    /// watchdog path stays exactly the legacy one — when no layer is
    /// adaptive.
    fn apply_policy_feedback(&mut self, drift: f32, bound: f32) -> bool {
        let model = Arc::clone(&self.model);
        let mut rescaled = false;
        for (slot, rt) in model.slots().iter().zip(self.runtimes.iter_mut()) {
            if !slot.setting.enabled || rt.auto_disabled {
                continue;
            }
            let Some(ctrl) = rt.controller.as_mut() else {
                continue;
            };
            let Some(proposed) = ctrl.on_watchdog(drift, bound) else {
                continue;
            };
            let Some(range) = rt.base_range_x else {
                continue;
            };
            if let Ok(q) = Self::quantizer_at_scale(range, slot.policy.clusters, proposed) {
                rt.quantizer_x = Some(q);
                ctrl.commit_scale(proposed);
                rescaled = true;
            }
        }
        rescaled
    }

    /// Re-baselines every enabled reuse layer onto full-precision values for
    /// `frame`: buffered codes become the quantization of the layer's raw
    /// input and buffered linear outputs become the exact (serial) linear
    /// forward on that raw input, so this frame's output — written to `out` —
    /// is bit-identical to [`Self::reference_forward`] and subsequent frames
    /// correct from an exact baseline. Layers whose own buffered outputs had
    /// drifted beyond the bound collect a strike; a layer reaching its
    /// resolved policy's `escalate_after` strikes (seeded from
    /// [`crate::ReuseConfig::drift_escalate_after`]) is auto-disabled
    /// (escalation into [`Self::auto_disabled_layers`]).
    fn rebaseline_frame(&mut self, frame: &[f32], out: &mut Vec<f32>) -> Result<(), ReuseError> {
        let model = Arc::clone(&self.model);
        let bound = model.config().drift_bound();
        let parallel = *model.config().parallel_config();
        let mut cur = Tensor::from_vec(model.network().input_shape().clone(), frame.to_vec())?;
        let n_layers = model.network().layers().len();
        for i in 0..n_layers {
            cur = self.reshape_to_layer(cur, i)?;
            let slot_pos = model.slot_of_layer()[i];
            let run_reuse = slot_pos != usize::MAX && self.slot_enabled(slot_pos);
            if !run_reuse {
                cur = model.network().apply_layer(i, cur)?;
                continue;
            }
            let slot = &model.slots()[slot_pos];
            let layer = &model.network().layers()[i].1;
            // Passthrough slots buffer nothing: there is no baseline to
            // re-adopt (and no linear part to recompute) — just run the op
            // exactly and move on.
            if slot.kind == reuse_nn::LayerKind::Passthrough {
                cur = model.network().apply_layer(i, cur)?;
                continue;
            }
            let rt = &mut self.runtimes[slot_pos];
            // Serial linear forward on the RAW input — the same code path
            // `reference_forward` takes, so the adopted baseline is exact.
            let linear = layer.forward_linear(&cur)?;
            let activation = layer
                .activation()
                .expect("watchdog only runs on feed-forward networks");
            // Separating genuine accumulated drift from plain quantization
            // error would need a second, quantized recomputation per layer;
            // the strike heuristic instead compares the buffered values
            // against the raw recomputation using the engine-level bound —
            // conservative, but consistent with what the watchdog just
            // observed at the network output.
            let buffered = rt.state.buffered_linear();
            let drifted =
                buffered.len() == linear.len() && max_abs_diff(buffered, linear.as_slice()) > bound;
            let qx = rt.quantizer_x.expect("enabled slot has quantizer");
            let qh = rt.quantizer_h;
            let ctx = StepCtx {
                parallel: &parallel,
                layer,
                weights: &slot.weights,
                quantizer_x: Some(&qx),
                quantizer_h: qh.as_ref(),
            };
            rt.state
                .adopt_baseline(&ctx, cur.as_slice(), linear.as_slice());
            rt.rebaselines += 1;
            if drifted {
                rt.drift_strikes += 1;
                let escalate_after = slot.policy.escalate_after;
                if escalate_after > 0 && rt.drift_strikes >= escalate_after {
                    rt.auto_disabled = true;
                    // The pipeline now has a full-precision stage that routes
                    // buffers through the tensor API, so the all-reuse
                    // zero-alloc contract no longer holds: disarm the pool's
                    // steady-state assertion.
                    self.pool.steady = false;
                }
            }
            if model.config().signature_insert_policy_config()
                == SignatureInsertPolicy::ColdStartAndRebaseline
            {
                // The re-baseline just recomputed an exact full-precision
                // baseline; refresh the shared cache so other streams
                // adopt the corrected values instead of the drifted ones.
                if let Some(sigs) = model.signatures() {
                    if let Some(planes) = sigs.planes(slot_pos) {
                        let sig = planes.signature(cur.as_slice());
                        let entry = CachedBaseline {
                            input: cur.as_slice().to_vec(),
                            linear: linear.as_slice().to_vec(),
                        };
                        if sigs.cache().insert(slot_pos as u32, sig, entry) {
                            self.signature.inserts += 1;
                        }
                    }
                }
            }
            cur = activation.apply(&linear);
        }
        out.clear();
        out.extend_from_slice(cur.as_slice());
        Ok(())
    }

    /// Sequence runner for recurrent networks: each layer runs over all
    /// timesteps before the next layer. Enabled slots — recurrent or
    /// frame-wise — dispatch uniformly through
    /// [`ReuseLayer::step_sequence`]; disabled recurrent layers fall back to
    /// the full-precision sequence pass and passive layers apply frame-wise.
    fn reuse_sequence(&mut self, frames: &[Vec<f32>]) -> Result<Vec<Tensor>, ReuseError> {
        // Paper Section IV-D: the accelerator is power-gated between
        // sequences, so all buffered state starts fresh (metrics keep
        // accumulating across sequences).
        self.reset_buffers();
        let model = Arc::clone(&self.model);
        let parallel = *model.config().parallel_config();
        let input_shape = model.network().input_shape().clone();
        // Flat per-timestep buffers; the from_vec round-trip validates the
        // frame shapes exactly like the tensor-based path did.
        let mut seq: Vec<Vec<f32>> = frames
            .iter()
            .map(|f| {
                Tensor::from_vec(input_shape.clone(), f.clone())
                    .map(Tensor::into_vec)
                    .map_err(ReuseError::from)
            })
            .collect::<Result<_, _>>()?;
        let n_layers = model.network().layers().len();
        let record_trace = model.config().records_trace();
        let timed = self.telemetry.is_some();
        let mut traces: Vec<ExecutionTrace> = vec![ExecutionTrace::default(); frames.len()];
        for i in 0..n_layers {
            let slot_pos = model.slot_of_layer()[i];
            let run_reuse = slot_pos != usize::MAX && self.slot_enabled(slot_pos);
            let layer = &model.network().layers()[i].1;
            if run_reuse {
                let mut out: Vec<Vec<f32>> = Vec::with_capacity(seq.len());
                let mut stats: Vec<ExecStats> = Vec::with_capacity(seq.len());
                let mut spans: Vec<u64> = Vec::with_capacity(seq.len());
                {
                    let slot = &model.slots()[slot_pos];
                    let rt = &mut self.runtimes[slot_pos];
                    let qx = rt.quantizer_x;
                    let qh = rt.quantizer_h;
                    let ctx = StepCtx {
                        parallel: &parallel,
                        layer,
                        weights: &slot.weights,
                        quantizer_x: qx.as_ref(),
                        quantizer_h: qh.as_ref(),
                    };
                    rt.state
                        .step_sequence(&ctx, &seq, timed, &mut out, &mut stats, &mut spans)?;
                }
                for (t, s) in stats.into_iter().enumerate() {
                    let trace_ref = if record_trace {
                        Some(&mut traces[t])
                    } else {
                        None
                    };
                    let n_outputs = out[t].len() as u64;
                    self.record_layer_execution(
                        slot_pos,
                        Some(&seq[t]),
                        s,
                        n_outputs,
                        spans[t],
                        trace_ref,
                    );
                }
                seq = out;
            } else if layer.is_recurrent() {
                // Disabled recurrent layer: full-precision sequence pass.
                if record_trace {
                    for (t, frame) in seq.iter().enumerate() {
                        traces[t]
                            .layers
                            .push(self.scratch_trace_entry(i, frame.len() as u64));
                    }
                }
                seq = layer.forward_sequence(&seq)?;
            } else {
                if record_trace && slot_pos != usize::MAX {
                    for (t, frame) in seq.iter().enumerate() {
                        traces[t]
                            .layers
                            .push(self.scratch_trace_entry(i, frame.len() as u64));
                    }
                }
                let in_shape = model.network().layer_input_shapes()[i].clone();
                seq = seq
                    .into_iter()
                    .map(|f| -> Result<Vec<f32>, ReuseError> {
                        let t = Tensor::from_vec(in_shape.clone(), f)?;
                        Ok(model.network().apply_layer(i, t)?.into_vec())
                    })
                    .collect::<Result<_, _>>()?;
            }
        }
        if record_trace {
            self.traces.extend(traces);
        }
        self.executions_seen += frames.len() as u64;
        self.metrics.executions += frames.len() as u64;
        if let Some(tel) = self.telemetry.as_mut() {
            tel.frames += frames.len() as u64;
        }
        seq.into_iter()
            .map(|o| Tensor::from_slice_1d(&o).map_err(ReuseError::from))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::BufferPool;

    /// A miss (empty pool, or no candidate large enough) must allocate
    /// exactly the requested capacity — over-allocating would hide sizing
    /// bugs behind slack, under-allocating would trip the caller's extend.
    #[test]
    fn pool_miss_allocates_exactly_the_requested_capacity() {
        let mut pool = BufferPool::new(8);
        let buf = pool.take(100);
        assert_eq!(buf.capacity(), 100);
        assert!(buf.is_empty());
        assert_eq!(pool.stats.misses, 1);
        // An oversized request with only smaller buffers free is still a
        // miss with an exact allocation, never a smaller recycled buffer.
        pool.give(Vec::with_capacity(10));
        let buf = pool.take(1000);
        assert_eq!(buf.capacity(), 1000);
        assert_eq!(pool.stats.misses, 2);
        assert_eq!(pool.stats.hits, 0);
    }

    /// Best fit: among candidates that are large enough, the smallest wins,
    /// so big buffers stay available for big layers.
    #[test]
    fn pool_take_prefers_the_smallest_sufficient_buffer() {
        let mut pool = BufferPool::new(8);
        pool.give(Vec::with_capacity(400));
        pool.give(Vec::with_capacity(64));
        pool.give(Vec::with_capacity(100));
        let buf = pool.take(80);
        assert_eq!(buf.capacity(), 100, "best fit is 100, not 400");
        assert_eq!(pool.stats.hits, 1);
        // The 400 survives for a later large request.
        let big = pool.take(300);
        assert_eq!(big.capacity(), 400);
        assert_eq!(pool.stats.hits, 2);
        assert_eq!(pool.stats.misses, 0);
    }

    /// Regression for the serving dispatch pattern: layers of mismatched
    /// sizes interleave takes and gives. Once one buffer per size class has
    /// been allocated, steady-state cycles are all hits — the undersized-
    /// buffer and steady-miss debug_asserts in `take` must never fire.
    #[test]
    fn interleaved_mismatched_capacities_reach_a_steady_state() {
        let mut pool = BufferPool::new(8);
        let caps = [24usize, 64, 48, 10];
        // Priming pass: one miss per distinct request size.
        let bufs: Vec<Vec<f32>> = caps.iter().map(|&c| pool.take(c)).collect();
        assert_eq!(pool.stats.misses, caps.len() as u64);
        for b in bufs {
            pool.give(b);
        }
        // Steady state: any request order must be served from the free
        // list with adequate capacity.
        pool.steady = true;
        for round in 0..4 {
            // Rotate the take order so every size eventually sees every
            // free-list configuration.
            let mut held = Vec::new();
            for i in 0..caps.len() {
                let cap = caps[(i + round) % caps.len()];
                let mut buf = pool.take(cap);
                buf.resize(cap, 0.0);
                held.push(buf);
            }
            for b in held {
                pool.give(b);
            }
        }
        assert_eq!(pool.stats.misses, caps.len() as u64, "no steady misses");
        assert_eq!(pool.stats.hits, 16);
    }

    /// The free list stays capped: foreign buffers beyond `max_free` are
    /// dropped, not hoarded.
    #[test]
    fn pool_free_list_is_capped() {
        let mut pool = BufferPool::new(2);
        for _ in 0..5 {
            pool.give(Vec::with_capacity(8));
        }
        assert_eq!(pool.free.len(), 2);
    }
}

//! Incremental LSTM execution (paper Section IV-D).
//!
//! Recurrent layers are especially amenable to reuse:
//!
//! 1. The four gates of a cell share the same two inputs (`x_t` and
//!    `h_{t-1}`), so one index comparison saves work in all four gates.
//! 2. The layer is executed back-to-back for every timestep before moving
//!    on, so only one layer's state needs to stay resident.
//!
//! The state buffers, per direction: the quantized indices of the previous
//! feed-forward input (`x_{t-1}`) and previous recurrent input (`h_{t-2}`),
//! and the four gates' linear pre-activations from the previous timestep.
//! The nonlinear part (σ/φ, cell-state update) is always recomputed — it is
//! a negligible `O(cell)` cost next to the `O((n_in + cell) · cell)` gate
//! matrices.

use reuse_nn::lstm::NUM_GATES;
use reuse_nn::{LstmCell, LstmState};
use reuse_quant::{LinearQuantizer, QuantCode};
use reuse_tensor::block::apply_deltas_rows;
use reuse_tensor::parallel::parallel_for_mut;
use reuse_tensor::ParallelConfig;

use crate::ReuseError;

/// Activity counters of one LSTM cell step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LstmExecStats {
    /// Inputs compared (feed-forward + recurrent; counted once, not per gate).
    pub n_inputs: u64,
    /// Inputs whose index changed.
    pub n_changed: u64,
    /// MACs a from-scratch step performs (all four gates).
    pub macs_total: u64,
    /// MACs actually performed.
    pub macs_performed: u64,
    /// Whether this was the state-initializing from-scratch step.
    pub from_scratch: bool,
}

/// The immutable combined four-gate weight matrices of one LSTM cell,
/// packed once so every stream's correction pass can share one copy (it
/// lives in `CompiledModel`, not in per-stream state). Column `g·d + u` is
/// gate `g`, unit `u` — the layout the batched row walk corrects against.
#[derive(Debug, Clone)]
pub struct LstmGatePack {
    /// All four gates' feed-forward weights, row-major `[n_in, NUM_GATES·d]`.
    combined_x: Vec<f32>,
    /// Same combined matrix for the recurrent weights (`[d, NUM_GATES·d]`).
    combined_h: Vec<f32>,
}

impl LstmGatePack {
    /// Combines the eight gate weight matrices into the two four-gate
    /// matrices.
    pub fn new(cell: &LstmCell) -> Self {
        let (n_in, d) = (cell.n_in(), cell.cell_dim());
        let combine = |rows: usize, gates: [&[f32]; NUM_GATES]| {
            let mut all = vec![0.0f32; rows * NUM_GATES * d];
            for (g, w) in gates.iter().enumerate() {
                for i in 0..rows {
                    all[i * NUM_GATES * d + g * d..][..d].copy_from_slice(&w[i * d..(i + 1) * d]);
                }
            }
            all
        };
        LstmGatePack {
            combined_x: combine(n_in, core::array::from_fn(|g| cell.w_x(g).as_slice())),
            combined_h: combine(d, core::array::from_fn(|g| cell.w_h(g).as_slice())),
        }
    }

    /// Bytes occupied by the two combined matrices.
    pub fn bytes(&self) -> u64 {
        ((self.combined_x.len() + self.combined_h.len()) * 4) as u64
    }
}

/// Buffered reuse state of one LSTM cell (one direction of a BiLSTM layer).
#[derive(Debug, Clone)]
pub struct LstmReuseState {
    prev_x_codes: Vec<QuantCode>,
    prev_h_codes: Vec<QuantCode>,
    /// Previous gate pre-activations, `[NUM_GATES × cell_dim]` row-major.
    prev_pre: Vec<f32>,
    /// Scratch `(index, centroid delta)` list of changed feed-forward
    /// inputs; collected serially, applied per chunk, reused across steps.
    changed_x: Vec<(u32, f32)>,
    /// Scratch changed list for the recurrent inputs.
    changed_h: Vec<(u32, f32)>,
    /// Scratch: fresh codes during the diff pass (shared by x and h).
    scratch_codes: Vec<QuantCode>,
    /// All four gates' feed-forward weights combined into one row-major
    /// `[n_in, NUM_GATES·d]` matrix (column `g·d + u` is gate `g`, unit
    /// `u`), built once at construction. Its column layout matches the
    /// `[NUM_GATES × d]` pre-activation buffer, so one batched row walk
    /// corrects all four gates — the "one comparison pays four gates"
    /// property of the paper, with the gate loop folded into the row.
    combined_x: Vec<f32>,
    /// Same combined matrix for the recurrent weights (`[d, NUM_GATES·d]`).
    combined_h: Vec<f32>,
    /// Recurrent (h, c) state carried between timesteps.
    state: LstmState,
    initialized: bool,
}

impl LstmReuseState {
    /// Creates empty state for a cell. Combines the eight gate weight
    /// matrices into the two four-gate matrices here (once,
    /// pre-steady-state) so every later correction is allocation-free.
    pub fn new(cell: &LstmCell) -> Self {
        let pack = LstmGatePack::new(cell);
        let (n_in, d) = (cell.n_in(), cell.cell_dim());
        LstmReuseState {
            prev_x_codes: Vec::with_capacity(n_in),
            prev_h_codes: Vec::with_capacity(d),
            prev_pre: Vec::new(),
            changed_x: Vec::with_capacity(n_in),
            changed_h: Vec::with_capacity(d),
            scratch_codes: Vec::with_capacity(n_in.max(d)),
            combined_x: pack.combined_x,
            combined_h: pack.combined_h,
            state: LstmState::zeros(d),
            initialized: false,
        }
    }

    /// Creates state that carries **no** private combined weight matrices:
    /// corrections must go through [`Self::step_into_packed`] with a shared
    /// [`LstmGatePack`]. This is what per-stream sessions use — N streams
    /// share one pack instead of rebuilding `O(params)` copies each.
    pub fn new_shared(cell: &LstmCell) -> Self {
        let (n_in, d) = (cell.n_in(), cell.cell_dim());
        LstmReuseState {
            prev_x_codes: Vec::with_capacity(n_in),
            prev_h_codes: Vec::with_capacity(d),
            prev_pre: Vec::new(),
            changed_x: Vec::with_capacity(n_in),
            changed_h: Vec::with_capacity(d),
            scratch_codes: Vec::with_capacity(n_in.max(d)),
            combined_x: Vec::new(),
            combined_h: Vec::new(),
            state: LstmState::zeros(d),
            initialized: false,
        }
    }

    /// Whether the first (from-scratch) step has happened.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Resets recurrent and reuse state (start of a new sequence).
    pub fn reset(&mut self, cell: &LstmCell) {
        self.prev_x_codes.clear();
        self.prev_h_codes.clear();
        self.prev_pre.clear();
        self.changed_x.clear();
        self.changed_h.clear();
        self.scratch_codes.clear();
        let d = cell.cell_dim();
        if self.state.h.len() == d {
            self.state.h.fill(0.0);
            self.state.c.fill(0.0);
        } else {
            self.state = LstmState::zeros(d);
        }
        self.initialized = false;
    }

    /// The current recurrent state (h after the last step).
    pub fn state(&self) -> &LstmState {
        &self.state
    }

    /// Extra I/O-buffer bytes: indices for x and h (1 byte each) plus the
    /// buffered pre-activations of the four gates (4 bytes each).
    pub fn storage_bytes(&self, cell: &LstmCell) -> u64 {
        (cell.n_in() + cell.cell_dim() + 4 * NUM_GATES * cell.cell_dim()) as u64
    }

    /// Runs one timestep on feed-forward input `x`, reusing unchanged
    /// inputs. Returns the new hidden output `h_t`.
    ///
    /// Both `x` and the recurrent input `h_{t-1}` are quantized with the
    /// provided quantizers; the correction updates the pre-activations of
    /// all four gates at once.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `x` has the wrong length.
    pub fn step(
        &mut self,
        cell: &LstmCell,
        x_quantizer: &LinearQuantizer,
        h_quantizer: &LinearQuantizer,
        x: &[f32],
    ) -> Result<(Vec<f32>, LstmExecStats), ReuseError> {
        self.step_with(&ParallelConfig::serial(), cell, x_quantizer, h_quantizer, x)
    }

    /// [`Self::step`] with an explicit parallelism budget.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `x` has the wrong length.
    pub fn step_with(
        &mut self,
        config: &ParallelConfig,
        cell: &LstmCell,
        x_quantizer: &LinearQuantizer,
        h_quantizer: &LinearQuantizer,
        x: &[f32],
    ) -> Result<(Vec<f32>, LstmExecStats), ReuseError> {
        let mut h_out = Vec::new();
        let stats = self.step_into(config, cell, x_quantizer, h_quantizer, x, &mut h_out)?;
        Ok((h_out, stats))
    }

    /// Allocation-free core of [`Self::step`]: clears `h_out` and writes the
    /// new hidden output `h_t` into it.
    ///
    /// Changed x and h inputs are diffed serially, then the corrections are
    /// applied through the combined four-gate matrices in delta batches:
    /// every output accumulates all x deltas then all h deltas in input
    /// order — the same per-output order as the naive scattered row walk
    /// ([`Self::step_into_naive`]) — so under the scalar SIMD level results
    /// are bit-identical for any `config` (under AVX2 the batched walk
    /// fuses deltas into FMAs and agrees within
    /// `reuse_tensor::simd::fma_tolerance`). Calls cheaper than the
    /// config's inline-FLOP threshold stay on the calling thread.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `x` has the wrong length.
    pub fn step_into(
        &mut self,
        config: &ParallelConfig,
        cell: &LstmCell,
        x_quantizer: &LinearQuantizer,
        h_quantizer: &LinearQuantizer,
        x: &[f32],
        h_out: &mut Vec<f32>,
    ) -> Result<LstmExecStats, ReuseError> {
        self.step_into_impl(
            config,
            cell,
            x_quantizer,
            h_quantizer,
            x,
            h_out,
            None,
            false,
        )
    }

    /// [`Self::step_into`] correcting through a shared [`LstmGatePack`]
    /// instead of the state's private combined matrices, so many per-stream
    /// states can share one packed copy of the gate weights. Bit-identical
    /// to [`Self::step_into`] (same combined layout, same walk). Required
    /// for states built with [`Self::new_shared`].
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `x` has the wrong length.
    #[allow(clippy::too_many_arguments)]
    pub fn step_into_packed(
        &mut self,
        config: &ParallelConfig,
        cell: &LstmCell,
        pack: &LstmGatePack,
        x_quantizer: &LinearQuantizer,
        h_quantizer: &LinearQuantizer,
        x: &[f32],
        h_out: &mut Vec<f32>,
    ) -> Result<LstmExecStats, ReuseError> {
        self.step_into_impl(
            config,
            cell,
            x_quantizer,
            h_quantizer,
            x,
            h_out,
            Some(pack),
            false,
        )
    }

    /// [`Self::step_into`] through the pre-blocking scattered row walk.
    /// Kept as the bit-identity oracle for tests and as the before-side of
    /// the kernel benchmarks; not part of the supported API.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `x` has the wrong length.
    #[doc(hidden)]
    pub fn step_into_naive(
        &mut self,
        config: &ParallelConfig,
        cell: &LstmCell,
        x_quantizer: &LinearQuantizer,
        h_quantizer: &LinearQuantizer,
        x: &[f32],
        h_out: &mut Vec<f32>,
    ) -> Result<LstmExecStats, ReuseError> {
        self.step_into_impl(config, cell, x_quantizer, h_quantizer, x, h_out, None, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn step_into_impl(
        &mut self,
        config: &ParallelConfig,
        cell: &LstmCell,
        x_quantizer: &LinearQuantizer,
        h_quantizer: &LinearQuantizer,
        x: &[f32],
        h_out: &mut Vec<f32>,
        pack: Option<&LstmGatePack>,
        naive: bool,
    ) -> Result<LstmExecStats, ReuseError> {
        let n_in = cell.n_in();
        let d = cell.cell_dim();
        if x.len() != n_in {
            return Err(ReuseError::Nn(reuse_nn::NnError::InputShape {
                expected: n_in,
                actual: x.len(),
            }));
        }
        let macs_total = (NUM_GATES * (n_in + d) * d) as u64;
        let n_inputs = (n_in + d) as u64;

        if !self.initialized {
            // First timestep: quantize x and h (h starts at zero), compute
            // the four gates from scratch on the centroids.
            x_quantizer.quantize_slice_into(x, &mut self.prev_x_codes);
            h_quantizer.quantize_slice_into(&self.state.h, &mut self.prev_h_codes);
            let qx: Vec<f32> = self
                .prev_x_codes
                .iter()
                .map(|&c| x_quantizer.centroid(c))
                .collect();
            let qh: Vec<f32> = self
                .prev_h_codes
                .iter()
                .map(|&c| h_quantizer.centroid(c))
                .collect();
            self.prev_pre = cell.gate_preactivations(&qx, &qh)?;
            cell.step_from_preactivations_in_place(&self.prev_pre, &mut self.state);
            self.initialized = true;
            h_out.clear();
            h_out.extend_from_slice(&self.state.h);
            return Ok(LstmExecStats {
                n_inputs,
                n_changed: n_inputs,
                macs_total,
                macs_performed: macs_total,
                from_scratch: true,
            });
        }

        // Pass 1 (serial): diff x_t vs x_{t-1} and h_{t-1} vs h_{t-2},
        // collecting the changed lists in input order. Vectorized under the
        // AVX2 level with bit-exact codes and deltas at every level.
        x_quantizer.diff_codes_into(
            x,
            &mut self.prev_x_codes,
            &mut self.scratch_codes,
            &mut self.changed_x,
        );
        h_quantizer.diff_codes_into(
            &self.state.h,
            &mut self.prev_h_codes,
            &mut self.scratch_codes,
            &mut self.changed_h,
        );

        // Pass 2: correct the 4×d pre-activation buffer; one index
        // comparison above pays for the correction in all four gates. Each
        // output accumulates all x deltas then all h deltas in input order
        // on both branches (bit-identical under the scalar SIMD level,
        // FMA-fused under AVX2).
        let changed_x: &[(u32, f32)] = &self.changed_x;
        let changed_h: &[(u32, f32)] = &self.changed_h;
        if naive {
            // Scattered row walk over the raw weight matrices; a chunk may
            // span gate boundaries, so walk its per-gate segments.
            parallel_for_mut(config, &mut self.prev_pre, 1, |offset, chunk| {
                let end = offset + chunk.len();
                for g in offset / d..NUM_GATES {
                    let lo = (g * d).max(offset);
                    let hi = ((g + 1) * d).min(end);
                    if lo >= hi {
                        break;
                    }
                    let within = lo - g * d;
                    let seg_len = hi - lo;
                    let seg = &mut chunk[lo - offset..hi - offset];
                    let wx = cell.w_x(g).as_slice();
                    for &(i, delta) in changed_x {
                        let row = &wx[i as usize * d + within..][..seg_len];
                        for (z, &wij) in seg.iter_mut().zip(row.iter()) {
                            *z += delta * wij;
                        }
                    }
                    let wh = cell.w_h(g).as_slice();
                    for &(i, delta) in changed_h {
                        let row = &wh[i as usize * d + within..][..seg_len];
                        for (z, &wij) in seg.iter_mut().zip(row.iter()) {
                            *z += delta * wij;
                        }
                    }
                }
            });
        } else {
            // Delta-batched walk over the combined four-gate matrices:
            // DELTA_BATCH changed rows streamed together per pass, all
            // gates corrected in one sweep per source.
            let width = NUM_GATES * d;
            let (cx, ch) = match pack {
                Some(p) => (&p.combined_x[..], &p.combined_h[..]),
                None => (&self.combined_x[..], &self.combined_h[..]),
            };
            apply_deltas_rows(config, cx, width, changed_x, &mut self.prev_pre);
            apply_deltas_rows(config, ch, width, changed_h, &mut self.prev_pre);
        }
        let changed = (self.changed_x.len() + self.changed_h.len()) as u64;
        cell.step_from_preactivations_in_place(&self.prev_pre, &mut self.state);
        h_out.clear();
        h_out.extend_from_slice(&self.state.h);
        Ok(LstmExecStats {
            n_inputs,
            n_changed: changed,
            macs_total,
            macs_performed: changed * (NUM_GATES * d) as u64,
            from_scratch: false,
        })
    }
}

/// Reference from-scratch LSTM on quantized inputs — the oracle the
/// incremental path must match. Runs a whole sequence and returns the h
/// outputs.
///
/// # Errors
///
/// Returns [`ReuseError`] when a frame has the wrong length.
pub fn quantized_scratch_sequence(
    cell: &LstmCell,
    x_quantizer: &LinearQuantizer,
    h_quantizer: &LinearQuantizer,
    xs: &[Vec<f32>],
) -> Result<Vec<Vec<f32>>, ReuseError> {
    let mut state = LstmState::zeros(cell.cell_dim());
    let mut out = Vec::with_capacity(xs.len());
    for x in xs {
        let qx = x_quantizer.quantized_values(x);
        let qh = h_quantizer.quantized_values(&state.h);
        let pre = cell.gate_preactivations(&qx, &qh)?;
        state = cell.step_from_preactivations(&pre, &state);
        out.push(state.h.clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_nn::init::Rng64;
    use reuse_quant::InputRange;

    fn setup() -> (LstmCell, LinearQuantizer, LinearQuantizer) {
        let cell = LstmCell::random(5, 3, &mut Rng64::new(31));
        let xq = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let hq = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        (cell, xq, hq)
    }

    fn sequence(len: usize, seed: u64) -> Vec<Vec<f32>> {
        // Smooth random walk so consecutive frames are similar.
        let mut rng = Rng64::new(seed);
        let mut frame = vec![0.0f32; 5];
        (0..len)
            .map(|_| {
                for v in &mut frame {
                    *v = (*v + rng.uniform(0.15)).clamp(-1.0, 1.0);
                }
                frame.clone()
            })
            .collect()
    }

    #[test]
    fn incremental_matches_quantized_scratch_over_sequence() {
        let (cell, xq, hq) = setup();
        let xs = sequence(40, 7);
        let oracle = quantized_scratch_sequence(&cell, &xq, &hq, &xs).unwrap();
        let mut state = LstmReuseState::new(&cell);
        for (t, x) in xs.iter().enumerate() {
            let (h, _) = state.step(&cell, &xq, &hq, x).unwrap();
            for (a, b) in h.iter().zip(oracle[t].iter()) {
                assert!((a - b).abs() < 1e-3, "t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn first_step_is_scratch_then_incremental() {
        let (cell, xq, hq) = setup();
        let mut state = LstmReuseState::new(&cell);
        let (_, s0) = state.step(&cell, &xq, &hq, &[0.1; 5]).unwrap();
        assert!(s0.from_scratch);
        assert_eq!(s0.macs_performed, s0.macs_total);
        let (_, s1) = state.step(&cell, &xq, &hq, &[0.1; 5]).unwrap();
        assert!(!s1.from_scratch);
        // x unchanged; only h inputs that crossed a cluster boundary cost.
        assert!(s1.macs_performed < s1.macs_total);
    }

    #[test]
    fn constant_input_converges_to_full_reuse() {
        // With a constant input the hidden state converges, so eventually
        // neither x nor h codes change and steps become free.
        let (cell, xq, hq) = setup();
        let mut state = LstmReuseState::new(&cell);
        let x = [0.3f32, -0.2, 0.1, 0.0, 0.25];
        let mut last = 0;
        for _ in 0..50 {
            let (_, s) = state.step(&cell, &xq, &hq, &x).unwrap();
            last = s.macs_performed;
        }
        assert_eq!(last, 0, "steady state should be fully reused");
    }

    #[test]
    fn shared_gate_comparison_counts_inputs_once() {
        let (cell, xq, hq) = setup();
        let mut state = LstmReuseState::new(&cell);
        let (_, s) = state.step(&cell, &xq, &hq, &[0.0; 5]).unwrap();
        // inputs = n_in + cell_dim, NOT multiplied by 4 gates.
        assert_eq!(s.n_inputs, 5 + 3);
    }

    #[test]
    fn changed_input_costs_four_gates() {
        let (cell, xq, hq) = setup();
        let mut state = LstmReuseState::new(&cell);
        state.step(&cell, &xq, &hq, &[0.0; 5]).unwrap();
        // Freeze h by re-stepping until stable, then flip one x input.
        for _ in 0..30 {
            state.step(&cell, &xq, &hq, &[0.0; 5]).unwrap();
        }
        let mut x = [0.0f32; 5];
        x[2] = 0.9;
        let (_, s) = state.step(&cell, &xq, &hq, &x).unwrap();
        // The one changed x input costs 4 gates × cell_dim MACs (plus any h
        // drift, which is zero at the fixed point).
        assert_eq!(s.macs_performed % (4 * 3) as u64, 0);
        assert!(s.macs_performed >= (4 * 3) as u64);
    }

    #[test]
    fn panel_batched_step_matches_naive_walk() {
        // Odd cell_dim so the packed panels have a partial tail lane.
        // Under the scalar SIMD level the two walks are bit-identical
        // (including stats). Under AVX2 the batched walk fuses deltas into
        // FMAs, and — because h feeds back into the next step's code
        // comparison — a ULP difference could in principle flip a cluster
        // boundary, so only the hidden outputs are compared (within FMA
        // tolerance), not the per-step stats.
        let cell = LstmCell::random(13, 11, &mut Rng64::new(5));
        let xq = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let hq = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let mut blocked = LstmReuseState::new(&cell);
        let mut naive = LstmReuseState::new(&cell);
        let cfg = ParallelConfig::serial();
        let bit_exact = reuse_tensor::simd::is_bit_exact();
        let mut rng = Rng64::new(17);
        let mut frame = vec![0.0f32; 13];
        let (mut hb, mut hn) = (Vec::new(), Vec::new());
        for step in 0..25 {
            for v in &mut frame {
                *v = (*v + rng.uniform(0.2)).clamp(-1.0, 1.0);
            }
            let sb = blocked
                .step_into(&cfg, &cell, &xq, &hq, &frame, &mut hb)
                .unwrap();
            let sn = naive
                .step_into_naive(&cfg, &cell, &xq, &hq, &frame, &mut hn)
                .unwrap();
            if bit_exact {
                assert_eq!(sb, sn);
            }
            // σ/φ keep |pre| differences contractive; a loose absolute
            // bound still catches any real indexing/batching bug.
            let tol = reuse_tensor::simd::fma_tolerance(24 * 25, 30.0);
            let mismatch = reuse_tensor::simd::kernel_mismatch(&hb, &hn, tol);
            assert!(mismatch.is_none(), "step {step}: {mismatch:?}");
        }
    }

    #[test]
    fn reset_starts_over() {
        let (cell, xq, hq) = setup();
        let mut state = LstmReuseState::new(&cell);
        state.step(&cell, &xq, &hq, &[0.5; 5]).unwrap();
        state.reset(&cell);
        assert!(!state.is_initialized());
        assert_eq!(state.state().h, vec![0.0; 3]);
        let (_, s) = state.step(&cell, &xq, &hq, &[0.5; 5]).unwrap();
        assert!(s.from_scratch);
    }

    #[test]
    fn storage_accounting() {
        let (cell, _, _) = setup();
        let state = LstmReuseState::new(&cell);
        // x indices (5) + h indices (3) + 4 gates × 3 preacts × 4 bytes.
        assert_eq!(state.storage_bytes(&cell), 5 + 3 + 48);
    }

    #[test]
    fn wrong_length_rejected() {
        let (cell, xq, hq) = setup();
        let mut state = LstmReuseState::new(&cell);
        assert!(state.step(&cell, &xq, &hq, &[0.0; 4]).is_err());
    }
}

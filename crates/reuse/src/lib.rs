//! Temporal computation reuse across consecutive DNN executions — the core
//! contribution of *"Computation Reuse in DNNs by Exploiting Input
//! Similarity"* (ISCA 2018).
//!
//! # The mechanism
//!
//! When a DNN processes a temporal sequence (audio frames, video frames),
//! the inputs each layer sees change very little between consecutive
//! executions. After linear quantization (paper Eq. 9) most inputs map to
//! the *same* cluster index as in the previous execution. For those inputs
//! nothing needs to be computed: their contribution to every buffered
//! output is already there. For the few inputs whose index changed, the
//! buffered outputs are corrected (paper Eq. 10):
//!
//! ```text
//! z' = z + Σᵢ (c'ᵢ − cᵢ) · wᵢₒ        (only over changed inputs i)
//! ```
//!
//! # Crate layout
//!
//! * [`ReuseConfig`] — which layers participate and with how many clusters.
//! * [`policy`] — the [`ReusePolicy`] abstraction: every per-layer reuse
//!   knob (cluster count, quantization step scale, refresh threshold,
//!   signature bailout, watchdog escalation) resolved in one place, with a
//!   bit-identical [`StaticPolicy`], an online [`AdaptivePolicy`] controller
//!   and a replay-tuned [`TunedPolicy`] loaded from a policy file.
//! * [`CompiledModel`] — the immutable, `Sync` compile step: network,
//!   execution plan and packed/blocked weights, built once and shared
//!   behind an `Arc` by any number of streams.
//! * [`ReuseSession`] — one input stream's mutable state: quantizers,
//!   buffered per-layer reuse state, metrics, telemetry, buffer pool.
//!   Created with [`CompiledModel::new_session`].
//! * [`ReuseEngine`] — single-stream facade (one model + one session):
//!   runs a `reuse_nn::Network` over a sequence of frames, calibrating
//!   quantizers, buffering per-layer state and producing outputs, metrics
//!   and execution traces.
//! * [`layer`] — the [`ReuseLayer`] trait the session dispatches through,
//!   one implementation per layer family.
//! * [`fc`], [`conv`], [`lstm`] — the incremental kernels for each layer
//!   family (paper Sections IV-B/C/D).
//! * [`signature`] — the MCACHE-style cross-stream signature cache: RPQ
//!   hashes of layer inputs let a new stream adopt a near-identical
//!   baseline published by any other stream of the same model.
//! * [`metrics`] — input similarity, computation reuse and the Fig. 4
//!   relative-difference metric.
//! * [`trace`] — per-execution, per-layer activity records consumed by the
//!   accelerator model in `reuse-accel`.
//!
//! # Example
//!
//! ```
//! use reuse_core::{ReuseConfig, ReuseEngine};
//! use reuse_nn::{Activation, NetworkBuilder};
//!
//! let net = NetworkBuilder::new("demo", 8)
//!     .fully_connected(16, Activation::Relu)
//!     .fully_connected(4, Activation::Identity)
//!     .build()
//!     .unwrap();
//! let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
//! let frame = vec![0.25f32; 8];
//! engine.execute(&frame)?;          // calibrates, runs from scratch
//! engine.execute(&frame)?;          // stores quantized state
//! engine.execute(&frame)?;          // identical frame: everything reused
//! assert!(engine.metrics().overall_input_similarity() > 0.99);
//! # Ok::<(), reuse_core::ReuseError>(())
//! ```

#![warn(missing_docs)]

mod config;
pub mod conv;
pub mod drift;
mod engine;
mod error;
pub mod fc;
pub mod layer;
pub mod lstm;
pub mod metrics;
mod model;
pub mod policy;
pub mod replay;
mod session;
pub mod signature;
pub mod summary;
pub mod telemetry;
pub mod trace;

pub use config::{LayerSetting, ReuseConfig, SignatureInsertPolicy};
pub use engine::ReuseEngine;
pub use error::ReuseError;
pub use layer::{ExecStats, ReuseLayer, StepCtx};
pub use metrics::{relative_difference, EngineMetrics, LayerMetrics};
pub use model::{CompiledModel, CompiledWeights};
pub use policy::{
    AdaptiveController, AdaptivePolicy, LayerPolicy, LayerPolicyState, ReusePolicy, StaticPolicy,
    TunedLayerPolicy, TunedPolicy,
};
pub use reuse_tensor::ParallelConfig;
pub use session::ReuseSession;
pub use signature::{CachedBaseline, SignatureCache};
pub use telemetry::{
    EngineTelemetry, LayerTelemetry, LayerTelemetrySnapshot, PoolStats, SignatureStats,
    TelemetrySnapshot, WatchdogStats,
};
pub use trace::{ExecutionTrace, LayerTrace, TraceKind};

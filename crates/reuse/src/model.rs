//! The immutable, shareable half of the reuse engine.
//!
//! A [`CompiledModel`] is built once per network/config pair and holds
//! everything every stream reads but never writes: the network itself, the
//! per-layer reuse settings, the execution plan (which layers have reuse
//! slots), and the packed/blocked weight layouts the correction kernels
//! walk. It is `Sync`, so one `Arc<CompiledModel>` can back any number of
//! concurrent [`ReuseSession`](crate::ReuseSession)s — the model/state
//! split that per-stream serving needs.

use std::sync::Arc;

use reuse_nn::{Layer, LayerKind, Network};

use crate::conv::{Conv2dPack, Conv3dPack};
use crate::lstm::LstmGatePack;
use crate::policy::{LayerPolicy, ReusePolicy, StaticPolicy};
use crate::session::ReuseSession;
use crate::signature::{ModelSignatures, SignatureCache};
use crate::{LayerSetting, ReuseConfig, ReuseError};

/// Packed/blocked weight layouts for one reuse slot, shared by every
/// session of the model. Fully-connected corrections read weight rows
/// straight from the network, so they carry no pack.
#[derive(Debug)]
pub enum CompiledWeights {
    /// Fully-connected: corrections walk the network's own row-major
    /// weights — nothing to pack.
    Fc,
    /// Conv2d: the `[in_c, kh, kw, out_c]` weight transpose.
    Conv2d(Conv2dPack),
    /// Conv3d: the `[in_c, kd, kh, kw, out_c]` weight transpose.
    Conv3d(Conv3dPack),
    /// LSTM: the combined four-gate `[rows, 4*d]` matrices.
    Lstm(LstmGatePack),
    /// BiLSTM: one combined gate pack per direction.
    BiLstm {
        /// Forward-direction gate pack.
        fwd: LstmGatePack,
        /// Backward-direction gate pack.
        bwd: LstmGatePack,
    },
    /// Recompute-always passthrough: weightless, nothing to pack.
    Passthrough,
}

impl CompiledWeights {
    fn new(layer: &Layer) -> Option<Self> {
        match layer {
            Layer::FullyConnected(_) => Some(CompiledWeights::Fc),
            Layer::Conv2d(c) => Some(CompiledWeights::Conv2d(Conv2dPack::new(c))),
            Layer::Conv3d(c) => Some(CompiledWeights::Conv3d(Conv3dPack::new(c))),
            Layer::Lstm(cell) => Some(CompiledWeights::Lstm(LstmGatePack::new(cell))),
            Layer::BiLstm(l) => Some(CompiledWeights::BiLstm {
                fwd: LstmGatePack::new(l.forward_cell()),
                bwd: LstmGatePack::new(l.backward_cell()),
            }),
            Layer::Passthrough(_) => Some(CompiledWeights::Passthrough),
            _ => None,
        }
    }

    /// Bytes of packed weights this slot shares across sessions.
    pub fn bytes(&self) -> u64 {
        match self {
            CompiledWeights::Fc => 0,
            CompiledWeights::Conv2d(p) => p.bytes(),
            CompiledWeights::Conv3d(p) => p.bytes(),
            CompiledWeights::Lstm(p) => p.bytes(),
            CompiledWeights::BiLstm { fwd, bwd } => fwd.bytes() + bwd.bytes(),
            CompiledWeights::Passthrough => 0,
        }
    }
}

/// The compile-time plan entry for one weighted layer.
#[derive(Debug)]
pub(crate) struct CompiledSlot {
    /// Index into the network's layer list.
    pub(crate) layer_index: usize,
    pub(crate) name: String,
    pub(crate) kind: LayerKind,
    pub(crate) setting: LayerSetting,
    /// The resolved per-layer reuse policy (every reuse decision knob).
    pub(crate) policy: LayerPolicy,
    /// Index into `EngineMetrics::layers` (== slot position).
    pub(crate) metrics_index: usize,
    /// Packed weights shared by every session.
    pub(crate) weights: CompiledWeights,
}

/// The immutable network + plan + packed weights + config, built once and
/// shared by reference across [`ReuseSession`]s.
///
/// `CompiledModel` is `Sync`. The plan and weights hold no interior
/// mutability; the only mutable state is the optional cross-stream
/// [`SignatureCache`], whose per-shard `Mutex`es are touched exclusively
/// on cold-start (never steady-state) paths. An `Arc<CompiledModel>` can
/// be handed to any number of threads, each running its own session (see
/// [`CompiledModel::new_session`]).
#[derive(Debug)]
pub struct CompiledModel {
    network: Network,
    config: ReuseConfig,
    /// Slot per weighted layer, ordered by layer index.
    slots: Vec<CompiledSlot>,
    /// Map from layer index to slot position (`usize::MAX` = no slot).
    slot_of_layer: Vec<usize>,
    /// Output volume of every layer, precomputed so the hot path never
    /// re-derives shapes.
    layer_out_volumes: Vec<usize>,
    /// RPQ planes + shared cache when the config enables cross-stream
    /// signature reuse (feed-forward networks only).
    signatures: Option<ModelSignatures>,
}

impl CompiledModel {
    /// Compiles a network (cloned) under a reuse configuration: builds the
    /// execution plan and the packed weight layouts the correction kernels
    /// share. Infallible wrapper over [`Self::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if [`Self::try_new`] rejects the configuration (invalid
    /// knob values, or an adaptive policy without the drift watchdog), or
    /// if a layer's output shape cannot be derived — impossible for
    /// networks built through `NetworkBuilder`, whose shapes are validated.
    pub fn new(network: &Network, config: &ReuseConfig) -> Self {
        Self::try_new(network, config).expect("valid reuse configuration")
    }

    /// Fallible compilation: validates the configuration (see
    /// [`ReuseConfig::validate`]) and resolves the per-layer reuse policy
    /// before building the plan.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError::InvalidConfig`] when the config fails
    /// validation or when the resolved policy marks any layer adaptive
    /// while the drift watchdog is disarmed — the adaptive controller
    /// tunes against the watchdog's accuracy proxy and cannot run without
    /// it.
    pub fn try_new(network: &Network, config: &ReuseConfig) -> Result<Self, ReuseError> {
        config.validate()?;
        let network = network.clone();
        let static_policy = StaticPolicy;
        let policy: &dyn ReusePolicy = config
            .reuse_policy_config()
            .map_or(&static_policy, |p| p.as_ref());
        // Recurrent networks mask the adaptive machinery off: the drift
        // watchdog (the controller's feedback signal) only runs on the
        // feed-forward frame path, and sequence resets would discard the
        // rescaled grids mid-stream anyway.
        let mask_adaptive = network.is_recurrent();
        let mut slots = Vec::new();
        let mut slot_of_layer = vec![usize::MAX; network.layers().len()];
        for (i, (name, layer)) in network.layers().iter().enumerate() {
            // Passthrough layers are weightless but still get a slot so
            // their full recompute cost lands in metrics and telemetry.
            let passthrough = layer.kind() == LayerKind::Passthrough;
            if !layer.has_weights() && !passthrough {
                continue;
            }
            let Some(weights) = CompiledWeights::new(layer) else {
                continue;
            };
            let setting = config.setting_for(name);
            let mut layer_policy = policy.layer_policy(name, &setting, config);
            if mask_adaptive || passthrough {
                // Passthroughs never participate in policy decisions:
                // force the static resolution regardless of active policy.
                layer_policy = LayerPolicy::static_for(&setting, config);
            }
            if layer_policy.clusters == 0 {
                return Err(ReuseError::InvalidConfig {
                    context: format!("policy resolved 0 clusters for layer {name:?}"),
                });
            }
            if layer_policy.adaptive && config.drift_check_every() == 0 {
                return Err(ReuseError::InvalidConfig {
                    context: format!(
                        "layer {name:?} is adaptive but the drift watchdog is disarmed; \
                         arm it with ReuseConfig::drift_watchdog"
                    ),
                });
            }
            let metrics_index = slots.len();
            slot_of_layer[i] = slots.len();
            slots.push(CompiledSlot {
                layer_index: i,
                name: name.clone(),
                kind: layer.kind(),
                setting,
                policy: layer_policy,
                metrics_index,
                weights,
            });
        }
        let layer_out_volumes: Vec<usize> = network
            .layers()
            .iter()
            .zip(network.layer_input_shapes().iter())
            .map(|((_, layer), in_shape)| {
                layer
                    .output_shape(in_shape)
                    .expect("validated at network build")
                    .volume()
            })
            .collect();
        // Signature adoption rides the feed-forward step path; recurrent
        // networks keep their per-stream-only reuse (sequence resets make
        // a cross-stream baseline meaningless mid-sequence).
        let signatures = if config.signature_cache_enabled() && !network.is_recurrent() {
            let input_volumes: Vec<usize> = network
                .layer_input_shapes()
                .iter()
                .map(reuse_tensor::Shape::volume)
                .collect();
            Some(ModelSignatures::new(&slots, &input_volumes, config))
        } else {
            None
        };
        Ok(CompiledModel {
            network,
            config: config.clone(),
            slots,
            slot_of_layer,
            layer_out_volumes,
            signatures,
        })
    }

    /// The active policy's short name (`"static"` when none was set).
    pub fn policy_name(&self) -> &'static str {
        self.config.policy_name()
    }

    /// The resolved per-layer policy specs, in slot order — the immutable
    /// half of the policy state (sessions own the mutable controllers).
    pub fn layer_policy_specs(&self) -> impl Iterator<Item = (&str, LayerPolicy)> + '_ {
        self.slots.iter().map(|s| (s.name.as_str(), s.policy))
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The reuse configuration the model was compiled under.
    pub fn config(&self) -> &ReuseConfig {
        &self.config
    }

    /// Creates a fresh per-stream session against this shared model. Each
    /// session owns all mutable state — buffered indices and outputs,
    /// quantizer calibration, metrics, telemetry, drift-watchdog counters,
    /// buffer pool — and sessions never observe one another.
    pub fn new_session(self: &Arc<Self>) -> ReuseSession {
        ReuseSession::new(Arc::clone(self))
    }

    /// Bytes of packed weights shared by all sessions (weight transposes,
    /// combined gate matrices).
    pub fn packed_weight_bytes(&self) -> u64 {
        self.slots.iter().map(|s| s.weights.bytes()).sum()
    }

    pub(crate) fn slots(&self) -> &[CompiledSlot] {
        &self.slots
    }

    pub(crate) fn slot_of_layer(&self) -> &[usize] {
        &self.slot_of_layer
    }

    pub(crate) fn layer_out_volumes(&self) -> &[usize] {
        &self.layer_out_volumes
    }

    pub(crate) fn signatures(&self) -> Option<&ModelSignatures> {
        self.signatures.as_ref()
    }

    /// The shared cross-stream signature cache, when the model was
    /// compiled with [`ReuseConfig::signature_cache`] on a feed-forward
    /// network.
    pub fn signature_cache(&self) -> Option<&SignatureCache> {
        self.signatures.as_ref().map(ModelSignatures::cache)
    }

    /// Bytes held by the baked-in RPQ plane matrices (0 when the
    /// signature cache is off).
    pub fn signature_plane_bytes(&self) -> usize {
        self.signatures
            .as_ref()
            .map_or(0, ModelSignatures::plane_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_nn::{Activation, NetworkBuilder};
    use reuse_tensor::Shape;

    #[test]
    fn slots_cover_only_weighted_layers() {
        let net = NetworkBuilder::with_input_shape("cnn", Shape::d3(1, 6, 6))
            .conv2d(2, 3, 1, 1, Activation::Relu)
            .pool2d(2)
            .flatten()
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap();
        let model = CompiledModel::new(&net, &ReuseConfig::uniform(16));
        assert_eq!(model.slots().len(), 2);
        assert_eq!(model.slot_of_layer()[0], 0);
        assert_eq!(model.slot_of_layer()[1], usize::MAX);
        assert_eq!(model.slot_of_layer()[3], 1);
    }

    #[test]
    fn compiled_model_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<CompiledModel>();
    }

    #[test]
    fn signature_cache_is_off_by_default_and_feed_forward_only() {
        let net = NetworkBuilder::new("mlp", 8)
            .fully_connected(16, Activation::Relu)
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap();
        let off = CompiledModel::new(&net, &ReuseConfig::uniform(16));
        assert!(off.signature_cache().is_none());
        assert_eq!(off.signature_plane_bytes(), 0);

        let on = CompiledModel::new(&net, &ReuseConfig::uniform(16).signature_cache(true));
        assert!(on.signature_cache().is_some());
        assert!(on.signature_plane_bytes() > 0);

        let rnn = NetworkBuilder::new("rnn", 8)
            .lstm(6)
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap();
        let rnn_on = CompiledModel::new(&rnn, &ReuseConfig::uniform(16).signature_cache(true));
        assert!(
            rnn_on.signature_cache().is_none(),
            "recurrent networks keep per-stream-only reuse"
        );
    }

    #[test]
    fn try_new_rejects_invalid_configs_and_blind_adaptive_policies() {
        use crate::policy::AdaptivePolicy;
        use std::sync::Arc;
        let net = NetworkBuilder::new("mlp", 8)
            .fully_connected(16, Activation::Relu)
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap();
        // Config validation surfaces through try_new.
        let err = CompiledModel::try_new(&net, &ReuseConfig::uniform(0)).unwrap_err();
        assert!(matches!(err, ReuseError::InvalidConfig { .. }));
        // Adaptive without the watchdog is flying blind: rejected.
        let blind = ReuseConfig::uniform(16).reuse_policy(Arc::new(AdaptivePolicy::default()));
        let err = CompiledModel::try_new(&net, &blind).unwrap_err();
        assert!(matches!(err, ReuseError::InvalidConfig { .. }));
        // With the watchdog armed it compiles, and the slots are adaptive.
        let armed = blind.drift_watchdog(8, 0.05);
        let model = CompiledModel::try_new(&net, &armed).unwrap();
        assert!(model.layer_policy_specs().all(|(_, p)| p.adaptive));
        assert_eq!(model.policy_name(), "adaptive");
    }

    #[test]
    fn adaptive_policy_is_masked_off_on_recurrent_networks() {
        use crate::policy::AdaptivePolicy;
        use std::sync::Arc;
        let rnn = NetworkBuilder::new("rnn", 8)
            .lstm(6)
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap();
        // Masked to static before the watchdog check, so this compiles
        // even without the watchdog and behaves exactly like the legacy
        // engine.
        let config = ReuseConfig::uniform(16).reuse_policy(Arc::new(AdaptivePolicy::default()));
        let model = CompiledModel::try_new(&rnn, &config).unwrap();
        assert!(model.layer_policy_specs().all(|(_, p)| !p.adaptive));
    }

    #[test]
    fn passthrough_slots_compile_static_without_planes() {
        use crate::policy::AdaptivePolicy;
        use std::sync::Arc;
        let net = NetworkBuilder::new("with-pass", 8)
            .fully_connected(16, Activation::Relu)
            .passthrough(reuse_nn::PassthroughOp::Softmax)
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap();
        // The passthrough gets a slot (honest accounting) but is forced
        // static even under an adaptive policy, and gets no RPQ planes.
        let config = ReuseConfig::uniform(16)
            .signature_cache(true)
            .reuse_policy(Arc::new(AdaptivePolicy::default()))
            .drift_watchdog(8, 0.05);
        let model = CompiledModel::try_new(&net, &config).unwrap();
        assert_eq!(model.slots().len(), 3);
        assert_eq!(model.slots()[1].kind, LayerKind::Passthrough);
        assert!(!model.slots()[1].policy.adaptive);
        assert!(model.slots()[0].policy.adaptive);
        let sigs = model.signatures().unwrap();
        assert!(sigs.planes(0).is_some());
        assert!(
            sigs.planes(1).is_none(),
            "passthrough slots never join the signature cache"
        );
        assert!(sigs.planes(2).is_some());
    }

    #[test]
    fn disabled_layers_get_no_planes() {
        let net = NetworkBuilder::new("mlp", 8)
            .fully_connected(16, Activation::Relu)
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap();
        let config = ReuseConfig::uniform(16)
            .signature_cache(true)
            .disable_layer("fc1");
        let model = CompiledModel::new(&net, &config);
        let sigs = model.signatures().unwrap();
        assert!(sigs.planes(0).is_none(), "fc1 is reuse-disabled");
        assert!(sigs.planes(1).is_some());
    }
}

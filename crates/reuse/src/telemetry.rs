//! Runtime observability for the reuse engine: per-layer ring-buffer
//! counters, buffer-pool and drift-watchdog statistics, and their JSON
//! export ([`TelemetrySnapshot`]).
//!
//! The paper's value proposition is statistical — hit rates and correction
//! counts vary per layer and over time (Figs. 4/5) — so a long-running
//! deployment needs live numbers, not just the lifetime aggregates of
//! [`crate::EngineMetrics`]. Everything here is preallocated at engine
//! construction: recording into the rings is O(1) and allocation-free, so
//! telemetry can stay enabled on the zero-allocation steady-state hot path.
//! Building a [`TelemetrySnapshot`] (and serializing it) allocates and is
//! meant for cold reporting paths only.

// The module reports floating-point statistics; exact comparisons are
// always a bug here (the watchdog compares against bounds, never equality).
#![deny(clippy::float_cmp)]

use std::fmt::Write as _;

/// A fixed-capacity ring buffer of `f32` samples.
///
/// The backing storage is allocated once at construction; `push` overwrites
/// the oldest sample when full and never allocates.
#[derive(Debug, Clone)]
pub struct Ring {
    buf: Vec<f32>,
    /// Next write position.
    head: usize,
    /// Number of valid samples (≤ capacity).
    len: usize,
}

impl Ring {
    /// Creates an empty ring holding up to `capacity` samples (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Ring {
            buf: vec![0.0; capacity.max(1)],
            head: 0,
            len: 0,
        }
    }

    /// Appends a sample, overwriting the oldest when full. Never allocates.
    pub fn push(&mut self, v: f32) {
        let cap = self.buf.len();
        self.buf[self.head] = v;
        self.head = (self.head + 1) % cap;
        if self.len < cap {
            self.len += 1;
        }
    }

    /// Number of valid samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of samples held.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// The most recently pushed sample.
    pub fn last(&self) -> Option<f32> {
        if self.len == 0 {
            return None;
        }
        let cap = self.buf.len();
        Some(self.buf[(self.head + cap - 1) % cap])
    }

    /// Iterates the valid samples from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = f32> + '_ {
        let cap = self.buf.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(move |i| self.buf[(start + i) % cap])
    }

    /// Mean of the valid samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.iter().map(f64::from).sum::<f64>() / self.len as f64
    }

    /// Drops all samples, keeping the allocation.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

/// Buffer-pool activity: how often per-frame intermediates were recycled
/// (`hits`) versus freshly allocated (`misses`). In steady state misses
/// must stop growing — each one is a heap allocation on the hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from a recycled buffer.
    pub hits: u64,
    /// Takes that had to allocate.
    pub misses: u64,
}

/// Drift-watchdog activity (see `DESIGN.md`): reference comparisons run,
/// re-baselines triggered, and the drift observed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WatchdogStats {
    /// Reference-forward comparisons performed.
    pub checks: u64,
    /// Checks whose drift exceeded the bound, triggering a re-baseline.
    pub rebaselines: u64,
    /// Max-abs output deviation at the most recent check.
    pub last_drift: f32,
    /// Largest deviation seen across all checks.
    pub max_drift: f32,
}

/// Cross-stream signature-cache activity for one session (see
/// [`crate::signature`]): lookups are attempted only when the per-stream
/// frame-(t-1) baseline is missing, so every counter here is cold-path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SignatureStats {
    /// Signature lookups attempted (uninitialized baseline + eligible slot).
    pub lookups: u64,
    /// Lookups that found a cached entry for the signature.
    pub hits: u64,
    /// Hits adopted as the layer's baseline.
    pub adoptions: u64,
    /// Hits abandoned because the cached input disagreed with the live
    /// input on too many quantized codes (false-positive collisions).
    pub bailouts: u64,
    /// Baselines this session published into the shared cache.
    pub inserts: u64,
}

/// Per-layer, per-execution telemetry: recent-window rings plus lifetime
/// totals. Only incremental (non-from-scratch) executions are recorded,
/// matching [`crate::LayerMetrics`].
#[derive(Debug, Clone)]
pub struct LayerTelemetry {
    /// Layer name within the network.
    pub name: String,
    /// Per-execution quantized-input hit rate (unchanged / inputs).
    pub hit_rate: Ring,
    /// Per-execution corrections applied (changed inputs).
    pub corrections: Ring,
    /// Per-execution MACs skipped (total − performed).
    pub macs_skipped: Ring,
    /// Per-execution skip/correct span in nanoseconds (0 = unmeasured).
    pub span_ns: Ring,
    /// Incremental executions recorded.
    pub reuse_executions: u64,
    /// Inputs seen across incremental executions.
    pub inputs_total: u64,
    /// Inputs whose quantized index was unchanged.
    pub inputs_unchanged: u64,
    /// Corrections applied across incremental executions.
    pub corrections_total: u64,
    /// MACs skipped across incremental executions.
    pub macs_skipped_total: u64,
    /// Measured span nanoseconds summed across executions.
    pub span_ns_total: u64,
    /// Cross-stream signature lookups attempted for this layer.
    pub signature_lookups: u64,
    /// Signature hits for this layer.
    pub signature_hits: u64,
    /// Signature hits abandoned by the false-positive guard.
    pub signature_bailouts: u64,
}

impl LayerTelemetry {
    fn new(name: &str, window: usize) -> Self {
        LayerTelemetry {
            name: name.to_string(),
            hit_rate: Ring::new(window),
            corrections: Ring::new(window),
            macs_skipped: Ring::new(window),
            span_ns: Ring::new(window),
            reuse_executions: 0,
            inputs_total: 0,
            inputs_unchanged: 0,
            corrections_total: 0,
            macs_skipped_total: 0,
            span_ns_total: 0,
            signature_lookups: 0,
            signature_hits: 0,
            signature_bailouts: 0,
        }
    }

    /// Lifetime hit rate — identical to
    /// [`crate::LayerMetrics::input_similarity`] for the same run.
    pub fn lifetime_hit_rate(&self) -> f64 {
        if self.inputs_total == 0 {
            return 0.0;
        }
        self.inputs_unchanged as f64 / self.inputs_total as f64
    }

    /// Records one incremental execution. Allocation-free.
    pub(crate) fn record(
        &mut self,
        n_inputs: u64,
        n_changed: u64,
        macs_total: u64,
        macs_performed: u64,
        span_ns: u64,
    ) {
        let unchanged = n_inputs.saturating_sub(n_changed);
        let skipped = macs_total.saturating_sub(macs_performed);
        self.reuse_executions += 1;
        self.inputs_total += n_inputs;
        self.inputs_unchanged += unchanged;
        self.corrections_total += n_changed;
        self.macs_skipped_total += skipped;
        self.span_ns_total += span_ns;
        let rate = if n_inputs == 0 {
            0.0
        } else {
            unchanged as f32 / n_inputs as f32
        };
        self.hit_rate.push(rate);
        self.corrections.push(n_changed as f32);
        self.macs_skipped.push(skipped as f32);
        self.span_ns.push(span_ns as f32);
    }

    /// Records the outcome of one cross-stream signature lookup
    /// (cold path, but still allocation-free).
    pub(crate) fn record_signature(&mut self, hit: bool, bailed: bool) {
        self.signature_lookups += 1;
        if hit {
            self.signature_hits += 1;
        }
        if bailed {
            self.signature_bailouts += 1;
        }
    }

    fn reset(&mut self) {
        self.hit_rate.clear();
        self.corrections.clear();
        self.macs_skipped.clear();
        self.span_ns.clear();
        self.reuse_executions = 0;
        self.inputs_total = 0;
        self.inputs_unchanged = 0;
        self.corrections_total = 0;
        self.macs_skipped_total = 0;
        self.span_ns_total = 0;
        self.signature_lookups = 0;
        self.signature_hits = 0;
        self.signature_bailouts = 0;
    }
}

/// Live telemetry state owned by a [`crate::ReuseEngine`] when
/// [`crate::ReuseConfig::telemetry`] is enabled. All storage is
/// preallocated at engine construction; recording never allocates.
#[derive(Debug, Clone)]
pub struct EngineTelemetry {
    /// One entry per weighted layer, in network order (same indexing as
    /// [`crate::EngineMetrics::layers`]).
    pub layers: Vec<LayerTelemetry>,
    /// Reuse-phase frames observed (timesteps for recurrent networks).
    pub frames: u64,
    window: usize,
}

impl EngineTelemetry {
    /// Creates telemetry with a `window`-sample ring per layer.
    pub(crate) fn new<'a>(names: impl Iterator<Item = &'a str>, window: usize) -> Self {
        let window = window.max(1);
        EngineTelemetry {
            layers: names.map(|n| LayerTelemetry::new(n, window)).collect(),
            frames: 0,
            window,
        }
    }

    /// The configured ring capacity.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Finds a layer's telemetry by name.
    pub fn layer(&self, name: &str) -> Option<&LayerTelemetry> {
        self.layers.iter().find(|l| l.name == name)
    }

    pub(crate) fn reset(&mut self) {
        for l in &mut self.layers {
            l.reset();
        }
        self.frames = 0;
    }
}

/// Owned, serializable snapshot of one engine's telemetry — what
/// `reuse_cli run <workload> --telemetry` prints as JSON.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Network name.
    pub network: String,
    /// Reuse-phase frames observed.
    pub frames: u64,
    /// Ring capacity used for the windowed statistics.
    pub window: usize,
    /// Buffer-pool hits/misses.
    pub pool: PoolStats,
    /// Watchdog counters.
    pub watchdog: WatchdogStats,
    /// Configured check cadence (0 = watchdog disabled).
    pub drift_check_every: u64,
    /// Configured drift bound.
    pub drift_bound: f32,
    /// Cross-stream signature-cache counters (all zero when the cache is
    /// disabled for the model).
    pub signature: SignatureStats,
    /// Active reuse-policy name (`"static"`, `"adaptive"`, `"tuned"`).
    pub policy: String,
    /// Per-layer policy state (grid, step scale, refresh threshold and the
    /// controllers' counters), in slot order.
    pub policy_layers: Vec<crate::policy::LayerPolicyState>,
    /// Per-layer records, in network order.
    pub layers: Vec<LayerTelemetrySnapshot>,
}

/// Per-layer entry of a [`TelemetrySnapshot`].
#[derive(Debug, Clone)]
pub struct LayerTelemetrySnapshot {
    /// Layer name.
    pub name: String,
    /// Incremental executions recorded.
    pub reuse_executions: u64,
    /// Lifetime hit rate (matches `LayerMetrics::input_similarity`).
    pub hit_rate: f64,
    /// Mean hit rate over the most recent window.
    pub hit_rate_window: f64,
    /// Corrections applied across all incremental executions.
    pub corrections_total: u64,
    /// MACs skipped across all incremental executions.
    pub macs_skipped_total: u64,
    /// Mean skip/correct span (ns) over the most recent window.
    pub span_ns_window: f64,
    /// Times the watchdog re-baselined this layer's buffered outputs.
    pub rebaselines: u64,
    /// Whether the layer has been escalated to full-precision execution.
    pub auto_disabled: bool,
    /// Cross-stream signature lookups attempted for this layer.
    pub signature_lookups: u64,
    /// Signature hits for this layer.
    pub signature_hits: u64,
    /// Signature hits abandoned by the false-positive guard.
    pub signature_bailouts: u64,
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping for layer/network names.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl TelemetrySnapshot {
    /// Serializes the snapshot as pretty-printed JSON (no external
    /// dependencies; same hand-rolled style as the bench binaries).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"network\": {},", json_str(&self.network));
        let _ = writeln!(s, "  \"frames\": {},", self.frames);
        let _ = writeln!(s, "  \"window\": {},", self.window);
        let _ = writeln!(
            s,
            "  \"pool\": {{\"hits\": {}, \"misses\": {}}},",
            self.pool.hits, self.pool.misses
        );
        let _ = writeln!(
            s,
            "  \"watchdog\": {{\"check_every\": {}, \"bound\": {}, \"checks\": {}, \
             \"rebaselines\": {}, \"last_drift\": {}, \"max_drift\": {}}},",
            self.drift_check_every,
            json_num(f64::from(self.drift_bound)),
            self.watchdog.checks,
            self.watchdog.rebaselines,
            json_num(f64::from(self.watchdog.last_drift)),
            json_num(f64::from(self.watchdog.max_drift)),
        );
        let _ = writeln!(
            s,
            "  \"signature_cache\": {{\"lookups\": {}, \"hits\": {}, \"adoptions\": {}, \
             \"bailouts\": {}, \"inserts\": {}}},",
            self.signature.lookups,
            self.signature.hits,
            self.signature.adoptions,
            self.signature.bailouts,
            self.signature.inserts,
        );
        let _ = writeln!(s, "  \"policy\": {},", json_str(&self.policy));
        s.push_str("  \"policy_layers\": [\n");
        for (i, p) in self.policy_layers.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {}{}",
                p.to_json(),
                if i + 1 < self.policy_layers.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        s.push_str("  ],\n");
        s.push_str("  \"layers\": [\n");
        for (i, l) in self.layers.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"name\": {}, \"reuse_executions\": {}, \"hit_rate\": {}, \
                 \"hit_rate_window\": {}, \"corrections_total\": {}, \
                 \"macs_skipped_total\": {}, \"span_ns_window\": {}, \
                 \"rebaselines\": {}, \"auto_disabled\": {}, \
                 \"signature_lookups\": {}, \"signature_hits\": {}, \
                 \"signature_bailouts\": {}}}{}",
                json_str(&l.name),
                l.reuse_executions,
                json_num(l.hit_rate),
                json_num(l.hit_rate_window),
                l.corrections_total,
                l.macs_skipped_total,
                json_num(l.span_ns_window),
                l.rebaselines,
                l.auto_disabled,
                l.signature_lookups,
                l.signature_hits,
                l.signature_bailouts,
                if i + 1 < self.layers.len() { "," } else { "" }
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = Ring::new(3);
        assert!(r.is_empty());
        assert_eq!(r.last(), None);
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        let vals: Vec<f32> = r.iter().collect();
        assert_eq!(vals, vec![2.0, 3.0, 4.0]);
        assert_eq!(r.last(), Some(4.0));
        assert!((r.mean() - 3.0).abs() < 1e-12);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn ring_minimum_capacity_is_one() {
        let mut r = Ring::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(7.0);
        r.push(8.0);
        assert_eq!(r.last(), Some(8.0));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn layer_record_accumulates_and_windows() {
        let mut l = LayerTelemetry::new("fc1", 2);
        l.record(100, 25, 1000, 250, 500);
        l.record(100, 75, 1000, 750, 300);
        assert_eq!(l.reuse_executions, 2);
        assert_eq!(l.inputs_total, 200);
        assert_eq!(l.inputs_unchanged, 100);
        assert_eq!(l.corrections_total, 100);
        assert_eq!(l.macs_skipped_total, 1000);
        assert!((l.lifetime_hit_rate() - 0.5).abs() < 1e-12);
        assert!((l.hit_rate.mean() - 0.5).abs() < 1e-6);
        // A third record evicts the first from the window but not the totals.
        l.record(100, 100, 1000, 1000, 0);
        assert_eq!(l.hit_rate.len(), 2);
        assert_eq!(l.inputs_total, 300);
    }

    #[test]
    fn snapshot_serializes_valid_shape() {
        let snap = TelemetrySnapshot {
            network: "demo\"net".to_string(),
            frames: 12,
            window: 64,
            pool: PoolStats {
                hits: 30,
                misses: 4,
            },
            watchdog: WatchdogStats {
                checks: 3,
                rebaselines: 1,
                last_drift: 0.5,
                max_drift: f32::INFINITY,
            },
            drift_check_every: 4,
            drift_bound: 1e-3,
            signature: SignatureStats {
                lookups: 5,
                hits: 3,
                adoptions: 2,
                bailouts: 1,
                inserts: 4,
            },
            policy: "adaptive".to_string(),
            policy_layers: vec![crate::policy::LayerPolicyState {
                name: "fc1".to_string(),
                adaptive: true,
                clusters: 16,
                step: 0.125,
                step_scale: 1.5,
                reuse_threshold: 0.75,
                observations: 6,
                grows: 2,
                shrinks: 1,
                refreshes: 3,
            }],
            layers: vec![LayerTelemetrySnapshot {
                name: "fc1".to_string(),
                reuse_executions: 10,
                hit_rate: 0.875,
                hit_rate_window: 0.9,
                corrections_total: 42,
                macs_skipped_total: 10_000,
                span_ns_window: 1234.5,
                rebaselines: 1,
                auto_disabled: false,
                signature_lookups: 2,
                signature_hits: 1,
                signature_bailouts: 0,
            }],
        };
        let json = snap.to_json();
        assert!(json.contains("\"network\": \"demo\\\"net\""));
        assert!(json.contains("\"hit_rate\": 0.875000"));
        assert!(json.contains("\"misses\": 4"));
        assert!(json.contains("\"signature_cache\": {\"lookups\": 5, \"hits\": 3"));
        assert!(json.contains("\"signature_lookups\": 2"));
        assert!(json.contains("\"policy\": \"adaptive\""));
        assert!(json.contains("\"step_scale\": 1.500000"));
        // Non-finite floats degrade to null, keeping the JSON parseable.
        assert!(json.contains("\"max_drift\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}

use std::fmt;

use reuse_nn::NnError;
use reuse_quant::QuantError;
use reuse_tensor::TensorError;

/// Errors produced by the reuse engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReuseError {
    /// An error from the DNN substrate.
    Nn(NnError),
    /// An error from quantizer construction (usually a degenerate profiled
    /// range — calibrate with more varied data).
    Quant(QuantError),
    /// A tensor-level error.
    Tensor(TensorError),
    /// The engine was used with the wrong execution API for its network.
    WrongApi {
        /// Description of the misuse.
        context: String,
    },
    /// The engine configuration is inconsistent.
    InvalidConfig {
        /// Description of the inconsistency.
        context: String,
    },
}

impl fmt::Display for ReuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseError::Nn(e) => write!(f, "network error: {e}"),
            ReuseError::Quant(e) => write!(f, "quantization error: {e}"),
            ReuseError::Tensor(e) => write!(f, "tensor error: {e}"),
            ReuseError::WrongApi { context } => write!(f, "wrong execution api: {context}"),
            ReuseError::InvalidConfig { context } => {
                write!(f, "invalid reuse configuration: {context}")
            }
        }
    }
}

impl std::error::Error for ReuseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReuseError::Nn(e) => Some(e),
            ReuseError::Quant(e) => Some(e),
            ReuseError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for ReuseError {
    fn from(e: NnError) -> Self {
        ReuseError::Nn(e)
    }
}

impl From<QuantError> for ReuseError {
    fn from(e: QuantError) -> Self {
        ReuseError::Quant(e)
    }
}

impl From<TensorError> for ReuseError {
    fn from(e: TensorError) -> Self {
        ReuseError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        use std::error::Error;
        let e: ReuseError = NnError::EmptySequence.into();
        assert!(e.source().is_some());
        let e: ReuseError = QuantError::TooFewClusters { clusters: 0 }.into();
        assert!(e.to_string().contains("quantization"));
        let e: ReuseError = TensorError::EmptyShape.into();
        assert!(e.to_string().contains("tensor"));
    }

    #[test]
    fn send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<ReuseError>();
    }
}

//! Incremental fully-connected execution (paper Section IV-B, Eq. 10).
//!
//! The state buffers the layer's quantized input indices and its linear
//! (pre-activation) outputs from the previous execution — the two extra
//! I/O-buffer areas of paper Fig. 7. Each new execution quantizes the
//! current inputs, skips every input whose index is unchanged, and corrects
//! the buffered outputs for the rest:
//!
//! ```text
//! z'ₒ = zₒ + Σᵢ (c'ᵢ − cᵢ) · wᵢₒ        over changed inputs i only
//! ```

use reuse_nn::FullyConnected;
use reuse_quant::{LinearQuantizer, QuantCode};
use reuse_tensor::block::apply_deltas_rows;
use reuse_tensor::parallel::parallel_for_mut;
use reuse_tensor::{ParallelConfig, Shape, Tensor};

use crate::ReuseError;

/// Buffered state of one FC layer between executions.
#[derive(Debug, Clone)]
pub struct FcReuseState {
    /// Quantized input indices of the previous execution.
    prev_codes: Vec<QuantCode>,
    /// Linear (pre-activation) outputs of the previous execution.
    prev_linear: Vec<f32>,
    /// Scratch: `(input index, centroid delta)` of this frame's changed
    /// inputs. Collected serially, then applied to output chunks (possibly
    /// in parallel). Reused across executions so the steady state performs
    /// no heap allocation.
    changed: Vec<(u32, f32)>,
    /// Scratch: this frame's fresh codes during the diff pass.
    scratch_codes: Vec<QuantCode>,
    initialized: bool,
}

/// Activity counters of one FC execution, fed into metrics and traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FcExecStats {
    /// Inputs read.
    pub n_inputs: u64,
    /// Inputs whose index changed (== `n_inputs` on the first execution).
    pub n_changed: u64,
    /// MACs a from-scratch execution performs.
    pub macs_total: u64,
    /// MACs actually performed.
    pub macs_performed: u64,
    /// Whether this was the state-initializing from-scratch execution.
    pub from_scratch: bool,
}

impl FcReuseState {
    /// Creates empty (uninitialized) state for a layer.
    pub fn new(layer: &FullyConnected) -> Self {
        FcReuseState {
            prev_codes: Vec::with_capacity(layer.n_in()),
            prev_linear: Vec::with_capacity(layer.n_out()),
            changed: Vec::with_capacity(layer.n_in()),
            scratch_codes: Vec::with_capacity(layer.n_in()),
            initialized: false,
        }
    }

    /// Whether the first (from-scratch) execution has happened.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Drops the buffered state; the next execution recomputes from scratch
    /// (the paper's accelerator does this when power-gated between
    /// sequences).
    pub fn reset(&mut self) {
        self.prev_codes.clear();
        self.prev_linear.clear();
        self.changed.clear();
        self.scratch_codes.clear();
        self.initialized = false;
    }

    /// Extra I/O-buffer bytes this state occupies: one byte per input index
    /// plus four bytes per buffered output (paper Table III accounting).
    pub fn storage_bytes(&self, layer: &FullyConnected) -> u64 {
        (layer.n_in() + 4 * layer.n_out()) as u64
    }

    /// The buffered linear (pre-activation) outputs of the last execution
    /// (empty before initialization). Read by the drift watchdog to measure
    /// per-layer deviation.
    pub fn buffered_linear(&self) -> &[f32] {
        &self.prev_linear
    }

    /// Replaces the buffered state with externally computed values: codes
    /// from quantizing `input`, linear outputs from `linear`. The drift
    /// watchdog uses this to re-baseline a drifted layer onto exact
    /// full-precision values without dropping reuse for subsequent frames.
    pub fn adopt_baseline(&mut self, quantizer: &LinearQuantizer, input: &[f32], linear: &[f32]) {
        quantizer.quantize_slice_into(input, &mut self.prev_codes);
        self.prev_linear.clear();
        self.prev_linear.extend_from_slice(linear);
        self.initialized = true;
    }

    /// Executes the layer on `input`, reusing the previous execution's
    /// results where the quantized inputs are unchanged. Returns the linear
    /// (pre-activation) output; the caller applies the activation.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `input` has the wrong length.
    pub fn execute(
        &mut self,
        layer: &FullyConnected,
        quantizer: &LinearQuantizer,
        input: &[f32],
    ) -> Result<(Tensor, FcExecStats), ReuseError> {
        self.execute_with(&ParallelConfig::serial(), layer, quantizer, input)
    }

    /// [`Self::execute`] with an explicit parallelism budget.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `input` has the wrong length.
    pub fn execute_with(
        &mut self,
        config: &ParallelConfig,
        layer: &FullyConnected,
        quantizer: &LinearQuantizer,
        input: &[f32],
    ) -> Result<(Tensor, FcExecStats), ReuseError> {
        let mut out = Vec::new();
        let stats = self.execute_into(config, layer, quantizer, input, &mut out)?;
        Ok((Tensor::from_vec(Shape::d1(layer.n_out()), out)?, stats))
    }

    /// Allocation-free core of [`Self::execute`]: clears `out` and writes
    /// the `n_out` linear outputs into it, reusing its capacity.
    ///
    /// Changed inputs are detected serially (updating the code buffer in
    /// input order), then the whole batch of `(i, Δc)` deltas is applied
    /// panel-by-panel over the layer's cache-blocked weight repack: each
    /// 8-output panel is loaded once and every delta streams through it
    /// before the next panel (sequential weight reads, multiple deltas per
    /// panel pass). Each output neuron still accumulates its deltas in
    /// changed-list (ascending input) order on exactly one thread, so under
    /// the scalar SIMD level the result is bit-identical to the unblocked
    /// row walk ([`Self::execute_into_naive`]) for any `config`; under the
    /// AVX2 level the batched walk fuses each delta into an FMA and agrees
    /// within `reuse_tensor::simd::fma_tolerance` (codes, changed counts,
    /// and MAC statistics stay bit-exact at every level). Correction frames
    /// below the config's inline-FLOP threshold run inline with no thread
    /// spawns.
    ///
    /// # Errors
    ///
    /// Returns [`ReuseError`] when `input` has the wrong length.
    pub fn execute_into(
        &mut self,
        config: &ParallelConfig,
        layer: &FullyConnected,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<FcExecStats, ReuseError> {
        self.execute_into_impl(config, layer, quantizer, input, out, false)
    }

    /// [`Self::execute_into`] with the original unblocked correction walk
    /// (one scattered weight-row pass per changed input). Serves as the
    /// bit-identity oracle for the panel-batched path in proptests and as
    /// the before/after baseline in `kernel_bench`; not for production use.
    #[doc(hidden)]
    pub fn execute_into_naive(
        &mut self,
        config: &ParallelConfig,
        layer: &FullyConnected,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<FcExecStats, ReuseError> {
        self.execute_into_impl(config, layer, quantizer, input, out, true)
    }

    fn execute_into_impl(
        &mut self,
        config: &ParallelConfig,
        layer: &FullyConnected,
        quantizer: &LinearQuantizer,
        input: &[f32],
        out: &mut Vec<f32>,
        naive: bool,
    ) -> Result<FcExecStats, ReuseError> {
        let n_in = layer.n_in();
        let n_out = layer.n_out();
        if input.len() != n_in {
            return Err(ReuseError::Nn(reuse_nn::NnError::InputShape {
                expected: n_in,
                actual: input.len(),
            }));
        }
        let macs_total = (n_in * n_out) as u64;
        if !self.initialized {
            // First execution: quantize every input, compute from scratch on
            // the centroids, buffer indices and linear outputs (paper
            // Fig. 7, "first execution").
            quantizer.quantize_slice_into(input, &mut self.prev_codes);
            let centroids: Vec<f32> = self
                .prev_codes
                .iter()
                .map(|&c| quantizer.centroid(c))
                .collect();
            let qin = Tensor::from_vec(Shape::d1(n_in), centroids)?;
            self.prev_linear.clear();
            layer.forward_linear_into(config, &qin, &mut self.prev_linear)?;
            self.changed.reserve(n_in);
            self.initialized = true;
            out.clear();
            out.extend_from_slice(&self.prev_linear);
            return Ok(FcExecStats {
                n_inputs: n_in as u64,
                n_changed: n_in as u64,
                macs_total,
                macs_performed: macs_total,
                from_scratch: true,
            });
        }

        // Pass 1 (serial): quantize the frame and diff the codes, collecting
        // the changed list in ascending input order. Vectorized under the
        // AVX2 level, with bit-exact codes and deltas at every level.
        quantizer.diff_codes_into(
            input,
            &mut self.prev_codes,
            &mut self.scratch_codes,
            &mut self.changed,
        );

        // Pass 2 (parallel over output neurons): apply every delta to this
        // worker's span of the buffered linear outputs.
        let changed: &[(u32, f32)] = &self.changed;
        if naive {
            // Original scattered walk: one n_out-wide weight-row pass per
            // changed input.
            let w = layer.weights().as_slice();
            parallel_for_mut(config, &mut self.prev_linear, 1, |offset, chunk| {
                for &(i, delta) in changed {
                    let base = i as usize * n_out + offset;
                    let row = &w[base..base + chunk.len()];
                    for (z, &wij) in chunk.iter_mut().zip(row.iter()) {
                        *z += delta * wij;
                    }
                }
            });
        } else {
            // Batched walk: DELTA_BATCH changed rows streamed together, one
            // read-modify-write sweep of the buffered outputs per batch.
            let w = layer.weights().as_slice();
            apply_deltas_rows(config, w, n_out, changed, &mut self.prev_linear);
        }
        out.clear();
        out.extend_from_slice(&self.prev_linear);
        Ok(FcExecStats {
            n_inputs: n_in as u64,
            n_changed: self.changed.len() as u64,
            macs_total,
            macs_performed: self.changed.len() as u64 * n_out as u64,
            from_scratch: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_nn::{init::Rng64, Activation};
    use reuse_quant::InputRange;

    fn setup() -> (FullyConnected, LinearQuantizer) {
        let layer = FullyConnected::random(6, 4, Activation::Identity, &mut Rng64::new(3));
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        (layer, q)
    }

    /// From-scratch execution on quantized inputs, the correctness oracle.
    fn oracle(layer: &FullyConnected, q: &LinearQuantizer, input: &[f32]) -> Vec<f32> {
        let centroids = q.quantized_values(input);
        let t = Tensor::from_slice_1d(&centroids).unwrap();
        layer.forward_linear(&t).unwrap().into_vec()
    }

    #[test]
    fn first_execution_matches_oracle_and_counts_all() {
        let (layer, q) = setup();
        let mut state = FcReuseState::new(&layer);
        let input = [0.3f32, -0.5, 0.9, 0.0, 0.1, -0.99];
        let (out, stats) = state.execute(&layer, &q, &input).unwrap();
        assert!(stats.from_scratch);
        assert_eq!(stats.n_changed, 6);
        assert_eq!(stats.macs_performed, 24);
        let expect = oracle(&layer, &q, &input);
        for (a, b) in out.as_slice().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn identical_input_skips_everything() {
        let (layer, q) = setup();
        let mut state = FcReuseState::new(&layer);
        let input = [0.3f32, -0.5, 0.9, 0.0, 0.1, -0.99];
        let (out1, _) = state.execute(&layer, &q, &input).unwrap();
        let (out2, stats) = state.execute(&layer, &q, &input).unwrap();
        assert!(!stats.from_scratch);
        assert_eq!(stats.n_changed, 0);
        assert_eq!(stats.macs_performed, 0);
        assert_eq!(out1.as_slice(), out2.as_slice());
    }

    #[test]
    fn sub_step_perturbation_is_free() {
        let (layer, q) = setup();
        let mut state = FcReuseState::new(&layer);
        let input = [0.31f32, -0.52, 0.88, 0.01, 0.12, -0.97];
        state.execute(&layer, &q, &input).unwrap();
        // Perturb each value by much less than half a step: codes unchanged.
        let nudged: Vec<f32> = input.iter().map(|v| v + q.step() * 0.05).collect();
        let (_, stats) = state.execute(&layer, &q, &nudged).unwrap();
        // Most codes unchanged (a value can sit on a rounding boundary).
        assert!(stats.n_changed <= 1, "changed {}", stats.n_changed);
    }

    #[test]
    fn incremental_matches_oracle_after_changes() {
        let (layer, q) = setup();
        let mut state = FcReuseState::new(&layer);
        let a = [0.3f32, -0.5, 0.9, 0.0, 0.1, -0.99];
        let b = [0.3f32, 0.5, 0.9, -0.4, 0.1, 0.2]; // 3 inputs changed a lot
        state.execute(&layer, &q, &a).unwrap();
        let (out, stats) = state.execute(&layer, &q, &b).unwrap();
        assert!(stats.n_changed >= 3);
        let expect = oracle(&layer, &q, &b);
        for (x, y) in out.as_slice().iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn long_chain_stays_close_to_oracle() {
        let (layer, q) = setup();
        let mut state = FcReuseState::new(&layer);
        let mut input = [0.0f32; 6];
        let mut rng = Rng64::new(99);
        for step in 0..200 {
            for v in &mut input {
                *v = (*v + rng.uniform(0.1)).clamp(-1.0, 1.0);
            }
            let (out, _) = state.execute(&layer, &q, &input).unwrap();
            let expect = oracle(&layer, &q, &input);
            for (x, y) in out.as_slice().iter().zip(expect.iter()) {
                assert!((x - y).abs() < 1e-3, "step {step}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn batched_correction_matches_naive_walk() {
        // Odd dims (partial tail panel) + drifting frames: the panel-batched
        // pass 2 must equal the original scattered row walk — bit-for-bit
        // under the scalar SIMD level, within FMA tolerance under AVX2 —
        // and report identical stats at every level (codes are bit-exact,
        // so telemetry MAC counts never depend on the SIMD level).
        let layer = FullyConnected::random(23, 29, Activation::Identity, &mut Rng64::new(5));
        let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
        let mut blocked = FcReuseState::new(&layer);
        let mut naive = FcReuseState::new(&layer);
        let cfg = ParallelConfig::serial();
        let mut input = vec![0.0f32; 23];
        let mut rng = Rng64::new(17);
        let (mut out_b, mut out_n) = (Vec::new(), Vec::new());
        for frame in 0..30 {
            for v in input.iter_mut().take(6) {
                *v = (*v + rng.uniform(0.4)).clamp(-1.0, 1.0);
            }
            let sb = blocked
                .execute_into(&cfg, &layer, &q, &input, &mut out_b)
                .unwrap();
            let sn = naive
                .execute_into_naive(&cfg, &layer, &q, &input, &mut out_n)
                .unwrap();
            assert_eq!(sb, sn);
            // 30 frames × ≤23 deltas accumulate on each buffered output.
            let tol = reuse_tensor::simd::fma_tolerance(23 * 30, 10.0);
            let mismatch = reuse_tensor::simd::kernel_mismatch(&out_b, &out_n, tol);
            assert!(mismatch.is_none(), "frame {frame}: {mismatch:?}");
        }
    }

    #[test]
    fn reset_forces_scratch() {
        let (layer, q) = setup();
        let mut state = FcReuseState::new(&layer);
        let input = [0.1f32; 6];
        state.execute(&layer, &q, &input).unwrap();
        assert!(state.is_initialized());
        state.reset();
        assert!(!state.is_initialized());
        let (_, stats) = state.execute(&layer, &q, &input).unwrap();
        assert!(stats.from_scratch);
    }

    #[test]
    fn storage_accounting() {
        let (layer, _) = setup();
        let state = FcReuseState::new(&layer);
        // 6 one-byte indices + 4 four-byte outputs.
        assert_eq!(state.storage_bytes(&layer), 6 + 16);
    }

    #[test]
    fn wrong_length_rejected() {
        let (layer, q) = setup();
        let mut state = FcReuseState::new(&layer);
        assert!(state.execute(&layer, &q, &[0.0; 5]).is_err());
    }
}
